//! Generic properties every registered scene must satisfy — the contract a
//! `SceneDef` signs up to when it joins the registry. These run over the
//! *entire* global registry (paper scenes, the zoo families, and anything a
//! future crate adds), so a new scene gets the full battery for free.

use asdr_math::Vec3;
use asdr_scenes::procedural::SdfScene;
use asdr_scenes::registry::{self, RegistryError, SceneDef, SceneRegistry};

/// Deterministic low-discrepancy probe points in `[0, 1)^3`.
fn probes01(n: usize) -> Vec<Vec3> {
    // additive recurrence with irrational strides (Kronecker sequence)
    (0..n)
        .map(|i| {
            let k = i as f32 + 0.5;
            Vec3::new(
                (k * 0.754_877_7).fract(),
                (k * 0.569_840_3).fract(),
                (k * 0.138_719_5).fract(),
            )
        })
        .collect()
}

#[test]
fn density_is_finite_nonnegative_and_bounded_inside_bounds() {
    for scene in registry::all() {
        let f = scene.build();
        let b = f.bounds();
        for u in probes01(512) {
            let p = b.denormalize(u);
            let d = f.density(p);
            assert!(d.is_finite(), "{scene}: density({p}) is not finite");
            assert!(d >= 0.0, "{scene}: density({p}) = {d} is negative");
            assert!(d <= 1e4, "{scene}: density({p}) = {d} is implausibly large");
            let a = f.albedo(p);
            assert!(a.is_finite(), "{scene}: albedo({p}) is not finite");
        }
    }
}

#[test]
fn density_vanishes_outside_bounds() {
    for scene in registry::all() {
        let f = scene.build();
        let b = f.bounds();
        let half = (b.max - b.min) * 0.5;
        let center = (b.max + b.min) * 0.5;
        for u in probes01(64) {
            // points pushed 10–60% beyond the faces
            let dir = (u * 2.0 - Vec3::splat(1.0)).normalized();
            let p = center + dir.hadamard(half) * 1.6;
            if b.contains(p) {
                continue;
            }
            assert_eq!(f.density(p), 0.0, "{scene}: density outside bounds at {p}");
        }
    }
}

#[test]
fn standard_camera_center_ray_hits_bounds() {
    for scene in registry::all() {
        let f = scene.build();
        let cam = scene.camera(32, 32);
        let ray = cam.ray_for_pixel(16, 16);
        assert!(
            f.bounds().intersect(&ray).is_some(),
            "{scene}: standard camera's center ray misses the scene bounds"
        );
    }
}

#[test]
fn every_scene_has_content() {
    for scene in registry::all() {
        let f = scene.build();
        let occ = f.occupancy(0.5, 16);
        assert!(occ > 0.0, "{scene}: no occupied cells at all");
    }
}

#[test]
fn name_lookup_round_trips() {
    for scene in registry::all() {
        assert_eq!(registry::get(scene.name()), Some(scene.clone()));
        assert_eq!(registry::get(&scene.name().to_lowercase()), Some(scene.clone()));
        assert_eq!(registry::handle(scene.name()), scene);
    }
}

#[test]
fn registry_names_are_unique_and_metadata_present() {
    let all = registry::all();
    let mut names: Vec<String> = all.iter().map(|s| s.name().to_lowercase()).collect();
    names.sort();
    let before = names.len();
    names.dedup();
    assert_eq!(names.len(), before, "duplicate scene names in the registry");
    for s in &all {
        assert!(!s.dataset().is_empty(), "{s}: empty dataset label");
        let (w, h) = s.resolution();
        assert!(w > 0 && h > 0, "{s}: degenerate native resolution");
    }
}

fn dummy_def(name: &str) -> SceneDef {
    SceneDef::new(name.to_string(), || {
        Box::new(SdfScene::new("dummy", |q| (q.norm() - 0.4, asdr_math::Rgb::WHITE), 50.0, 0.03))
    })
}

#[test]
fn duplicate_registration_is_rejected_globally_and_locally() {
    // global: a builtin name, any case
    let err = registry::register(dummy_def("lego")).unwrap_err();
    assert!(matches!(err, RegistryError::DuplicateName(_)), "{err}");
    // local: fresh registry, same name twice
    let mut reg = SceneRegistry::empty();
    reg.register(dummy_def("solo")).unwrap();
    let err = reg.register(dummy_def("SOLO")).unwrap_err();
    assert!(matches!(err, RegistryError::DuplicateName(_)), "{err}");
    assert_eq!(reg.len(), 1);
}

#[test]
fn zoo_families_are_registered() {
    for name in ["Pulse", "Carved", "Cloud"] {
        let s = registry::handle(name);
        assert_eq!(s.dataset(), "ASDR-Zoo");
        assert!(s.build().occupancy(0.5, 12) > 0.0, "{name} has no content");
    }
}
