//! A constructive-solid-geometry scene family: boolean expression trees
//! over primitives ("Carved").
//!
//! Unlike the paper scenes — flat unions written out by hand — a [`Csg`]
//! value is a runtime expression tree (trait objects in the registry sense:
//! data, not code), so scenes can be assembled programmatically, loaded from
//! tools, or generated. The registered `Carved` scene is a carved-block
//! composition exercising subtraction and intersection, which produce
//! concave interiors and thin shells the union-only paper scenes never hit.

use crate::field::{density_from_sdf, SceneField};
use crate::registry::{OrbitCamera, SceneDef, SceneKind};
use crate::sdf;
use asdr_math::{Aabb, Rgb, Vec3};

/// A CSG expression: leaves are primitives with an albedo, interior nodes
/// are boolean combinators.
#[derive(Debug, Clone)]
pub enum Csg {
    /// Sphere at `center` with `radius`.
    Sphere {
        /// Center.
        center: Vec3,
        /// Radius.
        radius: f32,
        /// Surface color.
        albedo: Rgb,
    },
    /// Axis-aligned box at `center` with half-extents `half`.
    Box {
        /// Center.
        center: Vec3,
        /// Half-extents.
        half: Vec3,
        /// Surface color.
        albedo: Rgb,
    },
    /// Y-axis cylinder at `center` with `radius` and `half_height`.
    Cylinder {
        /// Center.
        center: Vec3,
        /// Radius.
        radius: f32,
        /// Half-height.
        half_height: f32,
        /// Surface color.
        albedo: Rgb,
    },
    /// Union of two subtrees (minimum distance).
    Union(Box<Csg>, Box<Csg>),
    /// Smooth union with blending radius.
    SmoothUnion(Box<Csg>, Box<Csg>, f32),
    /// Intersection (maximum distance); keeps the first subtree's albedo.
    Intersect(Box<Csg>, Box<Csg>),
    /// Subtraction: first subtree minus the second.
    Subtract(Box<Csg>, Box<Csg>),
}

impl Csg {
    /// Evaluates the tree: signed distance and albedo at `p`.
    pub fn eval(&self, p: Vec3) -> (f32, Rgb) {
        match self {
            Csg::Sphere { center, radius, albedo } => (sdf::sphere(p, *center, *radius), *albedo),
            Csg::Box { center, half, albedo } => (sdf::boxed(p, *center, *half), *albedo),
            Csg::Cylinder { center, radius, half_height, albedo } => {
                (sdf::cylinder_y(p, *center, *radius, *half_height), *albedo)
            }
            Csg::Union(a, b) => {
                let (da, ca) = a.eval(p);
                let (db, cb) = b.eval(p);
                if da <= db {
                    (da, ca)
                } else {
                    (db, cb)
                }
            }
            Csg::SmoothUnion(a, b, k) => {
                let (da, ca) = a.eval(p);
                let (db, cb) = b.eval(p);
                (sdf::smooth_union(da, db, *k), if da <= db { ca } else { cb })
            }
            Csg::Intersect(a, b) => {
                let (da, ca) = a.eval(p);
                let (db, _) = b.eval(p);
                (sdf::intersect(da, db), ca)
            }
            Csg::Subtract(a, b) => {
                let (da, ca) = a.eval(p);
                let (db, _) = b.eval(p);
                (sdf::subtract(da, db), ca)
            }
        }
    }

    /// Union helper.
    pub fn union(self, other: Csg) -> Csg {
        Csg::Union(self.into(), other.into())
    }

    /// Smooth-union helper.
    pub fn smooth_union(self, other: Csg, k: f32) -> Csg {
        Csg::SmoothUnion(self.into(), other.into(), k)
    }

    /// Intersection helper.
    pub fn intersect(self, other: Csg) -> Csg {
        Csg::Intersect(self.into(), other.into())
    }

    /// Subtraction helper.
    pub fn subtract(self, other: Csg) -> Csg {
        Csg::Subtract(self.into(), other.into())
    }
}

/// A scene field backed by a CSG expression tree.
#[derive(Debug, Clone)]
pub struct CsgScene {
    root: Csg,
    bounds: Aabb,
}

impl CsgScene {
    /// Wraps an expression tree; `bounds` must contain the whole solid.
    pub fn new(root: Csg, bounds: Aabb) -> Self {
        CsgScene { root, bounds }
    }

    /// Signed distance at `p` (used by tests).
    pub fn distance(&self, p: Vec3) -> f32 {
        self.root.eval(p).0
    }
}

impl SceneField for CsgScene {
    fn density(&self, p: Vec3) -> f32 {
        if !self.bounds.contains(p) {
            return 0.0;
        }
        density_from_sdf(self.root.eval(p).0, 50.0, 0.03)
    }

    fn albedo(&self, p: Vec3) -> Rgb {
        self.root.eval(p).1
    }

    fn bounds(&self) -> Aabb {
        self.bounds
    }
}

/// The `Carved` composition: a block hollowed by a sphere, windowed by
/// cylinders, capped with a dome ∩ box, on a plinth.
pub fn carved() -> CsgScene {
    let stone = Rgb::new(0.7, 0.66, 0.58);
    let jade = Rgb::new(0.2, 0.55, 0.4);
    let dark = Rgb::new(0.22, 0.2, 0.2);

    let block =
        Csg::Box { center: Vec3::new(0.0, -0.25, 0.0), half: Vec3::splat(0.45), albedo: stone };
    // hollow the block with a sphere, then punch a cylindrical window
    let hollow = Csg::Sphere { center: Vec3::new(0.0, -0.1, 0.0), radius: 0.42, albedo: stone };
    let window = Csg::Cylinder {
        center: Vec3::new(0.0, -0.25, 0.0),
        radius: 0.18,
        half_height: 0.9,
        albedo: stone,
    };
    let shell = block.subtract(hollow).subtract(window);
    // a dome clipped to a box: intersection produces flat-cut curved faces
    let dome = Csg::Sphere { center: Vec3::new(0.0, 0.2, 0.0), radius: 0.33, albedo: jade };
    let clip = Csg::Box {
        center: Vec3::new(0.0, 0.34, 0.0),
        half: Vec3::new(0.4, 0.18, 0.4),
        albedo: jade,
    };
    let cap = dome.intersect(clip);
    let plinth = Csg::Cylinder {
        center: Vec3::new(0.0, -0.78, 0.0),
        radius: 0.6,
        half_height: 0.08,
        albedo: dark,
    };
    let root = shell.smooth_union(cap, 0.04).union(plinth);
    CsgScene::new(root, Aabb::centered(1.0))
}

/// The `Carved` scene's registry descriptor.
pub fn scene_def() -> SceneDef {
    SceneDef::new("Carved", || Box::new(carved()))
        .dataset("ASDR-Zoo")
        .resolution(800, 800)
        .kind(SceneKind::Synthetic)
        .camera_spec(OrbitCamera::new(-40.0, 28.0, 3.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_ops_carve_the_block() {
        let s = carved();
        // the sphere-hollowed center is empty…
        assert_eq!(s.density(Vec3::new(0.0, -0.1, 0.0)), 0.0, "hollow center must be empty");
        // …but the shell between hollow and block face is solid
        assert!(s.density(Vec3::new(0.3, -0.66, 0.0)) > 1.0, "bottom shell must be solid");
        // the window cylinder drills through the block along its axis
        assert_eq!(s.density(Vec3::new(0.0, -0.63, 0.0)), 0.0, "window axis must be empty");
    }

    #[test]
    fn intersection_clips_the_dome() {
        let s = carved();
        // dome interior inside the clip box is solid
        assert!(s.density(Vec3::new(0.0, 0.3, 0.0)) > 1.0);
        // above the clip box the sphere is cut away
        assert_eq!(s.density(Vec3::new(0.0, 0.6, 0.0)), 0.0);
    }

    #[test]
    fn tree_eval_matches_manual_composition() {
        let a = Csg::Sphere { center: Vec3::ZERO, radius: 0.5, albedo: Rgb::WHITE };
        let b = Csg::Box { center: Vec3::ZERO, half: Vec3::splat(0.3), albedo: Rgb::BLACK };
        let p = Vec3::new(0.4, 0.1, 0.0);
        let (du, _) = a.clone().union(b.clone()).eval(p);
        assert_eq!(du, sdf::union(a.eval(p).0, b.eval(p).0));
        let (ds, _) = a.clone().subtract(b.clone()).eval(p);
        assert_eq!(ds, sdf::subtract(a.eval(p).0, b.eval(p).0));
        let (di, _) = a.clone().intersect(b.clone()).eval(p);
        assert_eq!(di, sdf::intersect(a.eval(p).0, b.eval(p).0));
    }

    #[test]
    fn scene_has_content_and_background() {
        let s = carved();
        let occ = s.occupancy(1.0, 24);
        assert!(occ > 0.005 && occ < 0.6, "occ = {occ}");
        assert_eq!(s.density(Vec3::splat(1.5)), 0.0);
    }
}
