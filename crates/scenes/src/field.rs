//! The analytic scene-field abstraction.

use asdr_math::{Aabb, Rgb, Vec3};

/// A continuous volumetric scene: density plus view-dependent color, the same
/// quantities a trained NeRF predicts per sample point.
///
/// Implementations must be deterministic and cheap enough to evaluate tens of
/// millions of times (they serve both as ground truth and as the fitting
/// target for the hash-grid model).
pub trait SceneField: Send + Sync {
    /// Volume density `σ(p) ≥ 0` at world-space position `p`.
    fn density(&self, p: Vec3) -> f32;

    /// Base (view-independent) albedo at `p`.
    fn albedo(&self, p: Vec3) -> Rgb;

    /// World-space bounds containing all non-zero density.
    fn bounds(&self) -> Aabb;

    /// Approximate surface normal from the density gradient (central
    /// differences). Points *outward* (toward decreasing density).
    fn normal(&self, p: Vec3) -> Vec3 {
        let e = 1e-3;
        let g = Vec3::new(
            self.density(p + Vec3::X * e) - self.density(p - Vec3::X * e),
            self.density(p + Vec3::Y * e) - self.density(p - Vec3::Y * e),
            self.density(p + Vec3::Z * e) - self.density(p - Vec3::Z * e),
        );
        if g.norm() < 1e-9 {
            Vec3::Z
        } else {
            (-g).normalized()
        }
    }

    /// View-independent (diffuse) radiance at `p`: albedo under Lambertian
    /// shading from a fixed key light. This is the part of the appearance the
    /// hash-grid features can store exactly per position.
    fn diffuse(&self, p: Vec3) -> Rgb {
        let albedo = self.albedo(p);
        let n = self.normal(p);
        let light = Vec3::new(0.5, 0.8, 0.3).normalized();
        let shade = 0.35 + 0.65 * n.dot(light).max(0.0);
        Rgb::new(albedo.r * shade, albedo.g * shade, albedo.b * shade)
    }

    /// View-dependent emitted color at `p` seen from direction `view_dir`
    /// (pointing *from* the camera *into* the scene).
    ///
    /// The default is [`SceneField::diffuse`] plus a global specular lobe
    /// [`specular_lobe`] that depends only on the view direction. Keeping the
    /// view-dependent term low-rank (position-independent) makes the scene
    /// exactly representable by the NGP decomposition `c(p, d) = c_diff(p) +
    /// W·SH(d)` while still exercising the color MLP's direction input; the
    /// residual fit error of the SH projection provides a genuine (small)
    /// quality gap, mirroring a trained model's imperfection.
    fn color(&self, p: Vec3, view_dir: Vec3) -> Rgb {
        let d = self.diffuse(p);
        let s = specular_lobe(view_dir);
        Rgb::new((d.r + s).min(1.0), (d.g + s).min(1.0), (d.b + s).min(1.0))
    }

    /// Fraction of probe points (coarse grid over the bounds) with density
    /// above `thresh` — a cheap occupancy statistic used by tests and the
    /// dataset table.
    fn occupancy(&self, thresh: f32, grid: usize) -> f32 {
        let b = self.bounds();
        let mut hit = 0usize;
        let mut total = 0usize;
        for i in 0..grid {
            for j in 0..grid {
                for k in 0..grid {
                    let u = Vec3::new(
                        (i as f32 + 0.5) / grid as f32,
                        (j as f32 + 0.5) / grid as f32,
                        (k as f32 + 0.5) / grid as f32,
                    );
                    if self.density(b.denormalize(u)) > thresh {
                        hit += 1;
                    }
                    total += 1;
                }
            }
        }
        hit as f32 / total as f32
    }
}

impl<T: SceneField + ?Sized> SceneField for Box<T> {
    fn density(&self, p: Vec3) -> f32 {
        (**self).density(p)
    }
    fn albedo(&self, p: Vec3) -> Rgb {
        (**self).albedo(p)
    }
    fn bounds(&self) -> Aabb {
        (**self).bounds()
    }
    fn normal(&self, p: Vec3) -> Vec3 {
        (**self).normal(p)
    }
    fn diffuse(&self, p: Vec3) -> Rgb {
        (**self).diffuse(p)
    }
    fn color(&self, p: Vec3, view_dir: Vec3) -> Rgb {
        (**self).color(p, view_dir)
    }
}

/// The global specular highlight as a function of view direction only.
///
/// A Phong-style lobe around a fixed reflected-light direction; shared by all
/// scenes and all positions (see [`SceneField::color`] for why).
///
/// ```
/// use asdr_scenes::field::specular_lobe;
/// use asdr_math::Vec3;
/// let peak = specular_lobe(Vec3::new(-0.5, -0.8, -0.3).normalized());
/// assert!(peak > specular_lobe(Vec3::Y));
/// ```
#[inline]
pub fn specular_lobe(view_dir: Vec3) -> f32 {
    // the lobe peaks when looking along the negated key-light direction
    let h = Vec3::new(-0.5, -0.8, -0.3).normalized();
    0.18 * view_dir.normalized().dot(h).max(0.0).powi(8)
}

/// Converts a signed distance to a volume density.
///
/// Inside the surface (negative distance) density saturates at `sigma_max`;
/// it decays smoothly across a shell of width `softness` so the field is
/// friendly to trilinear reconstruction at the hash-grid resolutions.
///
/// ```
/// use asdr_scenes::field::density_from_sdf;
/// assert!(density_from_sdf(-1.0, 40.0, 0.02) > 39.0); // deep inside
/// assert_eq!(density_from_sdf(1.0, 40.0, 0.02), 0.0); // far outside
/// ```
#[inline]
pub fn density_from_sdf(d: f32, sigma_max: f32, softness: f32) -> f32 {
    debug_assert!(softness > 0.0);
    if d >= softness {
        0.0
    } else if d <= -softness {
        sigma_max
    } else {
        // smoothstep from 1 (inside) to 0 (outside)
        let t = (softness - d) / (2.0 * softness); // 0 at d=softness, 1 at d=-softness
        sigma_max * t * t * (3.0 - 2.0 * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A solid unit-radius sphere of uniform red, for trait-default checks.
    struct Ball;

    impl SceneField for Ball {
        fn density(&self, p: Vec3) -> f32 {
            density_from_sdf(p.norm() - 1.0, 50.0, 0.05)
        }
        fn albedo(&self, _p: Vec3) -> Rgb {
            Rgb::new(0.8, 0.1, 0.1)
        }
        fn bounds(&self) -> Aabb {
            Aabb::centered(1.5)
        }
    }

    #[test]
    fn density_profile_shape() {
        assert_eq!(density_from_sdf(0.2, 40.0, 0.05), 0.0);
        assert_eq!(density_from_sdf(-0.2, 40.0, 0.05), 40.0);
        let mid = density_from_sdf(0.0, 40.0, 0.05);
        assert!(mid > 0.0 && mid < 40.0);
        // monotone decreasing across the shell
        let a = density_from_sdf(-0.04, 40.0, 0.05);
        let b = density_from_sdf(0.0, 40.0, 0.05);
        let c = density_from_sdf(0.04, 40.0, 0.05);
        assert!(a > b && b > c);
    }

    #[test]
    fn ball_density_inside_outside() {
        let ball = Ball;
        assert!(ball.density(Vec3::ZERO) > 49.0);
        assert_eq!(ball.density(Vec3::new(2.0, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn normal_points_outward() {
        let ball = Ball;
        let p = Vec3::new(1.0, 0.0, 0.0);
        let n = ball.normal(p);
        assert!(n.dot(Vec3::X) > 0.9, "normal {n} should point along +X");
    }

    #[test]
    fn color_is_view_dependent() {
        let ball = Ball;
        let p = Vec3::new(0.0, 1.0, 0.0);
        let c1 = ball.color(p, Vec3::new(-0.5, -0.8, -0.3).normalized());
        let c2 = ball.color(p, Vec3::Y);
        // specular lobe differs between viewing directions
        assert!(c1.max_channel_abs_diff(c2) > 1e-4);
        // diffuse part itself is view independent
        assert_eq!(ball.diffuse(p), ball.diffuse(p));
    }

    #[test]
    fn specular_lobe_is_bounded_and_peaked() {
        let peak_dir = Vec3::new(-0.5, -0.8, -0.3).normalized();
        let peak = specular_lobe(peak_dir);
        assert!(peak > 0.15 && peak <= 0.18 + 1e-6);
        assert_eq!(specular_lobe(-peak_dir), 0.0);
    }

    #[test]
    fn occupancy_of_ball_in_box() {
        let ball = Ball;
        let occ = ball.occupancy(1.0, 16);
        // sphere of r=1 inside box of half-extent 1.5: 4/3π / 27 ≈ 0.155
        assert!(occ > 0.08 && occ < 0.25, "occ = {occ}");
    }
}
