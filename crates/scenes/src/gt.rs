//! Ground-truth volumetric renderer.
//!
//! Renders the analytic scene field directly with dense ray marching and the
//! exact volume-rendering integral of Eq. (1). The output serves as the
//! reference image ("ground truth") against which both the fitted NGP model
//! and ASDR's optimized renders are scored.

use crate::SceneField;
use asdr_math::{Camera, Image, Rgb};

/// Renders `field` from `cam` with `samples` evenly spaced samples per ray.
///
/// Uses the same compositing as the neural renderer:
/// `C = Σ T_i α_i c_i`, `α_i = 1 − exp(−σ_i δ_i)`, `T_i = Π_{j<i}(1 − α_j)`.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn render_ground_truth(field: &dyn SceneField, cam: &Camera, samples: usize) -> Image {
    assert!(samples > 0, "need at least one sample per ray");
    let mut img = Image::new(cam.width(), cam.height());
    let bounds = field.bounds();
    for py in 0..cam.height() {
        for px in 0..cam.width() {
            let ray = cam.ray_for_pixel(px, py);
            let Some(range) = bounds.intersect(&ray) else {
                continue; // background stays black
            };
            if range.is_empty() {
                continue;
            }
            let dt = range.span() / samples as f32;
            let mut transmittance = 1.0f32;
            let mut acc = Rgb::BLACK;
            for t in range.midpoints(samples) {
                let p = ray.at(t);
                let sigma = field.density(p);
                if sigma <= 0.0 {
                    continue;
                }
                let alpha = 1.0 - (-sigma * dt).exp();
                let c = field.color(p, ray.dir);
                acc += c * (transmittance * alpha);
                transmittance *= 1.0 - alpha;
                if transmittance < 1e-4 {
                    break; // fully opaque: exact early exit, no approximation
                }
            }
            img.set(px, py, acc.clamp01());
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use asdr_math::metrics::psnr;

    #[test]
    fn ground_truth_has_content() {
        let scene = registry::handle("Lego").build();
        let cam = registry::handle("Lego").camera(24, 24);
        let img = render_ground_truth(scene.as_ref(), &cam, 64);
        assert!(img.mean_luminance() > 0.01, "image is empty");
        assert!(img.mean_luminance() < 0.9, "image is saturated");
    }

    #[test]
    fn more_samples_converge() {
        let scene = registry::handle("Mic").build();
        let cam = registry::handle("Mic").camera(16, 16);
        let coarse = render_ground_truth(scene.as_ref(), &cam, 64);
        let fine = render_ground_truth(scene.as_ref(), &cam, 256);
        let finer = render_ground_truth(scene.as_ref(), &cam, 512);
        // doubling samples from an already-fine render changes little
        let p_cf = psnr(&coarse, &finer);
        let p_ff = psnr(&fine, &finer);
        assert!(p_ff > p_cf, "finer sampling should be closer to reference");
        assert!(p_ff > 30.0, "256 vs 512 samples differ too much: {p_ff} dB");
    }

    #[test]
    fn background_pixels_are_black() {
        let scene = registry::handle("Mic").build();
        let cam = registry::handle("Mic").camera(32, 32);
        let img = render_ground_truth(scene.as_ref(), &cam, 32);
        // corners look past the object
        let corner = img.get(0, 0);
        assert!(corner.luminance() < 0.05, "corner should be background: {corner}");
    }

    #[test]
    fn deterministic() {
        let scene = registry::handle("Chair").build();
        let cam = registry::handle("Chair").camera(12, 12);
        let a = render_ground_truth(scene.as_ref(), &cam, 48);
        let b = render_ground_truth(scene.as_ref(), &cam, 48);
        assert_eq!(a, b);
    }
}
