//! Signed-distance-field primitives and combinators.
//!
//! These are the building blocks of the procedural stand-in scenes. All
//! functions return conservative signed distances (negative inside), which
//! [`crate::field::density_from_sdf`] converts to volume density.

use asdr_math::Vec3;

/// Distance to a sphere of radius `r` centered at `c`.
#[inline]
pub fn sphere(p: Vec3, c: Vec3, r: f32) -> f32 {
    (p - c).norm() - r
}

/// Distance to an axis-aligned box centered at `c` with half-extents `h`.
#[inline]
pub fn boxed(p: Vec3, c: Vec3, h: Vec3) -> f32 {
    let q = (p - c).abs() - h;
    let outside = q.max(Vec3::ZERO).norm();
    let inside = q.max_component().min(0.0);
    outside + inside
}

/// Distance to a box with rounded edges (radius `r`).
#[inline]
pub fn rounded_box(p: Vec3, c: Vec3, h: Vec3, r: f32) -> f32 {
    boxed(p, c, h) - r
}

/// Distance to a Y-axis cylinder centered at `c` with radius `r` and
/// half-height `hh`.
#[inline]
pub fn cylinder_y(p: Vec3, c: Vec3, r: f32, hh: f32) -> f32 {
    let q = p - c;
    let dxz = (q.x * q.x + q.z * q.z).sqrt() - r;
    let dy = q.y.abs() - hh;
    let outside = Vec3::new(dxz.max(0.0), dy.max(0.0), 0.0).norm();
    let inside = dxz.max(dy).min(0.0);
    outside + inside
}

/// Distance to a torus in the XZ plane centered at `c` with major radius `rr`
/// and tube radius `tr`.
#[inline]
pub fn torus_xz(p: Vec3, c: Vec3, rr: f32, tr: f32) -> f32 {
    let q = p - c;
    let ring = ((q.x * q.x + q.z * q.z).sqrt() - rr).hypot(q.y);
    ring - tr
}

/// Distance to a capsule (line segment `a`–`b` inflated by radius `r`).
#[inline]
pub fn capsule(p: Vec3, a: Vec3, b: Vec3, r: f32) -> f32 {
    let pa = p - a;
    let ba = b - a;
    let h = (pa.dot(ba) / ba.norm_sq()).clamp(0.0, 1.0);
    (pa - ba * h).norm() - r
}

/// Distance to a cone standing on the XZ plane at `base`, with base radius
/// `r` and height `h` (apex at `base + (0, h, 0)`).
#[inline]
pub fn cone_y(p: Vec3, base: Vec3, r: f32, h: f32) -> f32 {
    let q = p - base;
    let dxz = (q.x * q.x + q.z * q.z).sqrt();
    // 2D cross-section distance in (radial, vertical) space
    let t = (q.y / h).clamp(0.0, 1.0);
    let radius_at = r * (1.0 - t);
    let lateral = dxz - radius_at;
    let below = -q.y;
    let above = q.y - h;
    lateral.max(below).max(above) * 0.85 // slight conservative shrink
}

/// Distance to the horizontal plane `y = level` (negative below).
#[inline]
pub fn plane_y(p: Vec3, level: f32) -> f32 {
    p.y - level
}

/// Union (minimum distance).
#[inline]
pub fn union(a: f32, b: f32) -> f32 {
    a.min(b)
}

/// Smooth union with blending radius `k` (polynomial smooth-min).
#[inline]
pub fn smooth_union(a: f32, b: f32, k: f32) -> f32 {
    debug_assert!(k > 0.0);
    let h = (0.5 + 0.5 * (b - a) / k).clamp(0.0, 1.0);
    b + (a - b) * h - k * h * (1.0 - h)
}

/// Subtraction: keeps `a` outside `b`.
#[inline]
pub fn subtract(a: f32, b: f32) -> f32 {
    a.max(-b)
}

/// Intersection (maximum distance).
#[inline]
pub fn intersect(a: f32, b: f32) -> f32 {
    a.max(b)
}

/// Infinite repetition of space with period `period` along each axis,
/// returning the repeated local coordinates (cell centered at origin).
#[inline]
pub fn repeat(p: Vec3, period: Vec3) -> Vec3 {
    debug_assert!(period.min_component() > 0.0);
    let half = period * 0.5;
    Vec3::new(
        (p.x + half.x).rem_euclid(period.x) - half.x,
        (p.y + half.y).rem_euclid(period.y) - half.y,
        (p.z + half.z).rem_euclid(period.z) - half.z,
    )
}

/// Cheap deterministic 3D value noise in `[-1, 1]` (single octave, trilinear
/// smoothing) — used for organic surface perturbation.
pub fn value_noise(p: Vec3, freq: f32) -> f32 {
    let q = p * freq;
    let base = q.floor();
    let f = q.fract();
    // smooth the interpolant
    let sm = Vec3::new(smooth(f.x), smooth(f.y), smooth(f.z));
    let mut acc = 0.0;
    for (i, &(dx, dy, dz)) in asdr_math::interp::CORNER_OFFSETS.iter().enumerate() {
        let corner = base + Vec3::new(dx as f32, dy as f32, dz as f32);
        let w = asdr_math::interp::trilinear_weights(sm.x, sm.y, sm.z)[i];
        acc += w * hash3(corner);
    }
    acc
}

#[inline]
fn smooth(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Hashes integer lattice coordinates to `[-1, 1]`.
fn hash3(p: Vec3) -> f32 {
    let xi = p.x as i64;
    let yi = p.y as i64;
    let zi = p.z as i64;
    let mut h = (xi.wrapping_mul(73_856_093)
        ^ yi.wrapping_mul(19_349_663)
        ^ zi.wrapping_mul(83_492_791)) as u64;
    h ^= h >> 13;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    (h & 0xffff) as f32 / 32767.5 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_distance() {
        assert_eq!(sphere(Vec3::new(2.0, 0.0, 0.0), Vec3::ZERO, 1.0), 1.0);
        assert_eq!(sphere(Vec3::ZERO, Vec3::ZERO, 1.0), -1.0);
        assert!(sphere(Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO, 1.0).abs() < 1e-6);
    }

    #[test]
    fn box_distance_inside_and_out() {
        let h = Vec3::splat(1.0);
        assert!(boxed(Vec3::ZERO, Vec3::ZERO, h) < 0.0);
        assert!((boxed(Vec3::new(2.0, 0.0, 0.0), Vec3::ZERO, h) - 1.0).abs() < 1e-6);
        // corner distance is Euclidean
        let d = boxed(Vec3::new(2.0, 2.0, 2.0), Vec3::ZERO, h);
        assert!((d - (3.0f32).sqrt()).abs() < 1e-5);
    }

    #[test]
    fn cylinder_and_torus_signs() {
        assert!(cylinder_y(Vec3::ZERO, Vec3::ZERO, 1.0, 1.0) < 0.0);
        assert!(cylinder_y(Vec3::new(3.0, 0.0, 0.0), Vec3::ZERO, 1.0, 1.0) > 0.0);
        // point on the ring center-line of the torus is inside the tube
        assert!(torus_xz(Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO, 1.0, 0.2) < 0.0);
        assert!(torus_xz(Vec3::ZERO, Vec3::ZERO, 1.0, 0.2) > 0.0);
    }

    #[test]
    fn capsule_contains_segment() {
        let a = Vec3::ZERO;
        let b = Vec3::new(0.0, 2.0, 0.0);
        assert!(capsule(Vec3::new(0.0, 1.0, 0.0), a, b, 0.3) < 0.0);
        assert!(capsule(Vec3::new(1.0, 1.0, 0.0), a, b, 0.3) > 0.0);
    }

    #[test]
    fn combinators_bounds() {
        let a = 0.5;
        let b = -0.25;
        assert_eq!(union(a, b), -0.25);
        assert_eq!(intersect(a, b), 0.5);
        assert_eq!(subtract(a, b), 0.5);
        // smooth union is never larger than plain union
        assert!(smooth_union(a, b, 0.2) <= union(a, b) + 1e-6);
    }

    #[test]
    fn smooth_union_blends() {
        // two equal distances blend below either input
        let d = smooth_union(0.1, 0.1, 0.2);
        assert!(d < 0.1);
    }

    #[test]
    fn repeat_is_periodic() {
        let period = Vec3::splat(1.0);
        let p = Vec3::new(0.3, -0.2, 5.4);
        let q1 = repeat(p, period);
        let q2 = repeat(p + Vec3::new(3.0, -2.0, 7.0), period);
        assert!((q1 - q2).norm() < 1e-5);
        assert!(q1.abs().max_component() <= 0.5 + 1e-6);
    }

    #[test]
    fn value_noise_is_deterministic_and_bounded() {
        let p = Vec3::new(0.3, 0.7, -0.2);
        let a = value_noise(p, 8.0);
        let b = value_noise(p, 8.0);
        assert_eq!(a, b);
        for i in 0..50 {
            let q = Vec3::new(i as f32 * 0.13, i as f32 * 0.07, -(i as f32) * 0.11);
            let v = value_noise(q, 5.0);
            assert!((-1.01..=1.01).contains(&v), "noise {v} out of range");
        }
    }

    #[test]
    fn cone_apex_and_base() {
        let base = Vec3::ZERO;
        assert!(cone_y(Vec3::new(0.0, 0.5, 0.0), base, 1.0, 1.0) < 0.0);
        assert!(cone_y(Vec3::new(2.0, 0.5, 0.0), base, 1.0, 1.0) > 0.0);
        assert!(cone_y(Vec3::new(0.0, -0.5, 0.0), base, 1.0, 1.0) > 0.0);
    }
}
