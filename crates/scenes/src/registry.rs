//! Scene registry: ids, Table-1 metadata, standard cameras.

use crate::procedural;
use crate::procedural::SdfScene;
use crate::SceneField;
use asdr_math::{Camera, Vec3};
use std::fmt;

/// Identifier for each of the ten evaluation scenes (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SceneId {
    Mic,
    Hotdog,
    Ship,
    Chair,
    Ficus,
    Lego,
    Palace,
    Fountain,
    Family,
    Fox,
}

impl SceneId {
    /// All scenes in the order the paper lists them in Table 1.
    pub const ALL: [SceneId; 10] = [
        SceneId::Mic,
        SceneId::Hotdog,
        SceneId::Ship,
        SceneId::Chair,
        SceneId::Ficus,
        SceneId::Lego,
        SceneId::Palace,
        SceneId::Fountain,
        SceneId::Family,
        SceneId::Fox,
    ];

    /// The five scenes used by the performance figures (Figs. 17–19, 22,
    /// 25–27).
    pub const PERF: [SceneId; 5] =
        [SceneId::Palace, SceneId::Fountain, SceneId::Family, SceneId::Fox, SceneId::Mic];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SceneId::Mic => "Mic",
            SceneId::Hotdog => "Hotdog",
            SceneId::Ship => "Ship",
            SceneId::Chair => "Chair",
            SceneId::Ficus => "Ficus",
            SceneId::Lego => "Lego",
            SceneId::Palace => "Palace",
            SceneId::Fountain => "Fountain",
            SceneId::Family => "Family",
            SceneId::Fox => "Fox",
        }
    }

    /// Parses a case-insensitive scene name.
    pub fn parse(s: &str) -> Option<SceneId> {
        SceneId::ALL.iter().copied().find(|id| id.name().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for SceneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Synthetic or real-world capture (Table 1 "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneKind {
    /// Rendered synthetic dataset.
    Synthetic,
    /// Real-world photographic capture.
    RealWorld,
}

impl fmt::Display for SceneKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SceneKind::Synthetic => f.write_str("Synthetic"),
            SceneKind::RealWorld => f.write_str("Real World"),
        }
    }
}

/// Per-scene metadata reproducing Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneInfo {
    /// Scene id.
    pub id: SceneId,
    /// Source dataset name.
    pub dataset: &'static str,
    /// Native evaluation resolution (width, height).
    pub resolution: (u32, u32),
    /// Synthetic vs real-world.
    pub kind: SceneKind,
}

/// Table-1 metadata for a scene.
pub fn info(id: SceneId) -> SceneInfo {
    let (dataset, resolution, kind) = match id {
        SceneId::Mic
        | SceneId::Hotdog
        | SceneId::Ship
        | SceneId::Chair
        | SceneId::Ficus
        | SceneId::Lego => ("Synthetic-NeRF", (800, 800), SceneKind::Synthetic),
        SceneId::Palace => ("Synthetic-NSVF", (800, 800), SceneKind::Synthetic),
        SceneId::Fountain => ("BlendedMVS", (768, 576), SceneKind::RealWorld),
        SceneId::Family => ("Tanks&Temples", (1920, 1080), SceneKind::RealWorld),
        SceneId::Fox => ("Instant-NGP", (1080, 1920), SceneKind::RealWorld),
    };
    SceneInfo { id, dataset, resolution, kind }
}

/// Builds the procedural field for a scene.
pub fn build(id: SceneId) -> Box<dyn SceneField> {
    Box::new(build_sdf(id))
}

/// Signature of a procedural field: position to (signed distance, albedo).
type FieldFn = fn(Vec3) -> (f32, asdr_math::Rgb);

/// Builds the concrete [`SdfScene`] (exposes `distance` for tests).
pub fn build_sdf(id: SceneId) -> SdfScene {
    let (name, f): (&'static str, FieldFn) = match id {
        SceneId::Lego => ("Lego", procedural::lego),
        SceneId::Mic => ("Mic", procedural::mic),
        SceneId::Ship => ("Ship", procedural::ship),
        SceneId::Chair => ("Chair", procedural::chair),
        SceneId::Ficus => ("Ficus", procedural::ficus),
        SceneId::Hotdog => ("Hotdog", procedural::hotdog),
        SceneId::Palace => ("Palace", procedural::palace),
        SceneId::Fountain => ("Fountain", procedural::fountain),
        SceneId::Family => ("Family", procedural::family),
        SceneId::Fox => ("Fox", procedural::fox),
    };
    SdfScene::new(name, f, 50.0, 0.03)
}

/// The standard evaluation viewpoint for a scene at the requested output
/// resolution. Azimuth/elevation vary per scene so each has a distinct ray
/// distribution.
pub fn standard_camera(id: SceneId, width: u32, height: u32) -> Camera {
    let (az, el, radius) = match id {
        SceneId::Lego => (35.0, 25.0, 3.2),
        SceneId::Mic => (-30.0, 15.0, 3.0),
        SceneId::Ship => (60.0, 20.0, 3.4),
        SceneId::Chair => (15.0, 18.0, 3.2),
        SceneId::Ficus => (-50.0, 12.0, 3.0),
        SceneId::Hotdog => (0.0, 40.0, 3.2),
        SceneId::Palace => (45.0, 22.0, 3.6),
        SceneId::Fountain => (-20.0, 18.0, 3.4),
        SceneId::Family => (5.0, 10.0, 3.4),
        SceneId::Fox => (25.0, 8.0, 3.0),
    };
    Camera::orbit(Vec3::ZERO, radius, az, el, 42.0, width, height)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_metadata_matches_paper() {
        assert_eq!(info(SceneId::Lego).dataset, "Synthetic-NeRF");
        assert_eq!(info(SceneId::Lego).resolution, (800, 800));
        assert_eq!(info(SceneId::Palace).dataset, "Synthetic-NSVF");
        assert_eq!(info(SceneId::Fountain).resolution, (768, 576));
        assert_eq!(info(SceneId::Family).resolution, (1920, 1080));
        assert_eq!(info(SceneId::Fox).resolution, (1080, 1920));
        assert_eq!(info(SceneId::Fox).kind, SceneKind::RealWorld);
        assert_eq!(info(SceneId::Mic).kind, SceneKind::Synthetic);
    }

    #[test]
    fn seven_synthetic_three_real() {
        let synth = SceneId::ALL.iter().filter(|&&s| info(s).kind == SceneKind::Synthetic).count();
        assert_eq!(synth, 7);
        assert_eq!(SceneId::ALL.len() - synth, 3);
    }

    #[test]
    fn parse_roundtrip() {
        for id in SceneId::ALL {
            assert_eq!(SceneId::parse(id.name()), Some(id));
            assert_eq!(SceneId::parse(&id.name().to_lowercase()), Some(id));
        }
        assert_eq!(SceneId::parse("nonexistent"), None);
    }

    #[test]
    fn all_scenes_buildable() {
        for id in SceneId::ALL {
            let f = build(id);
            // camera looks at content: center ray must enter the bounds
            let cam = standard_camera(id, 16, 16);
            let ray = cam.ray_for_pixel(8, 8);
            assert!(f.bounds().intersect(&ray).is_some(), "{id}: camera misses scene");
        }
    }

    #[test]
    fn perf_subset_is_five_distinct() {
        let mut v = SceneId::PERF.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 5);
    }
}
