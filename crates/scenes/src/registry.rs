//! The open scene registry: descriptors, handles, and the global table.
//!
//! A scene is described by a [`SceneDef`] — display name, source-dataset
//! metadata, a field builder, and the standard evaluation camera. Defs live
//! in a [`SceneRegistry`] behind cheap [`SceneHandle`]s (interned name +
//! `Arc<SceneDef>`). The process-wide [global registry](self::register) is
//! pre-populated with the paper's ten Table-1 scenes plus the showcase
//! families ([`crate::animated`], [`crate::csg`], [`crate::cloud`]); any
//! crate can add more with [`register`] — no enum to extend, no match arms
//! to touch.
//!
//! ```
//! use asdr_scenes::registry::{self, OrbitCamera, SceneDef};
//! use asdr_scenes::procedural::SdfScene;
//!
//! // built-ins are available by name
//! let lego = registry::handle("Lego");
//! let field = lego.build();
//! let cam = lego.camera(32, 32);
//! assert!(field.bounds().intersect(&cam.ray_for_pixel(16, 16)).is_some());
//!
//! // and any crate can register its own scene
//! let def = SceneDef::new("doc-ball", || {
//!     Box::new(SdfScene::new("doc-ball", |p| (p.norm() - 0.5, asdr_math::Rgb::WHITE), 50.0, 0.03))
//! })
//! .dataset("Docs")
//! .camera_spec(OrbitCamera { radius: 2.5, ..OrbitCamera::default() });
//! let ball = registry::register(def).unwrap();
//! assert_eq!(registry::get("doc-ball"), Some(ball));
//! ```

use crate::procedural::{self, SdfScene};
use crate::SceneField;
use asdr_math::{Camera, Rgb, Vec3};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

// ---------------------------------------------------------------------------
// Metadata types
// ---------------------------------------------------------------------------

/// Synthetic or real-world capture (Table 1 "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneKind {
    /// Rendered synthetic dataset.
    Synthetic,
    /// Real-world photographic capture.
    RealWorld,
}

impl fmt::Display for SceneKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SceneKind::Synthetic => f.write_str("Synthetic"),
            SceneKind::RealWorld => f.write_str("Real World"),
        }
    }
}

/// The standard evaluation viewpoint of a scene: an orbit around `center`.
/// Azimuth/elevation vary per scene so each has a distinct ray distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrbitCamera {
    /// Horizontal angle around the orbit center, degrees.
    pub azimuth_deg: f32,
    /// Vertical angle above the horizon, degrees.
    pub elevation_deg: f32,
    /// Distance from the orbit center.
    pub radius: f32,
    /// Vertical field of view, degrees.
    pub fov_deg: f32,
    /// Point the camera looks at.
    pub center: Vec3,
}

impl Default for OrbitCamera {
    fn default() -> Self {
        OrbitCamera {
            azimuth_deg: 30.0,
            elevation_deg: 20.0,
            radius: 3.2,
            fov_deg: 42.0,
            center: Vec3::ZERO,
        }
    }
}

impl OrbitCamera {
    /// Shorthand for the common case: azimuth, elevation, radius.
    pub fn new(azimuth_deg: f32, elevation_deg: f32, radius: f32) -> Self {
        OrbitCamera { azimuth_deg, elevation_deg, radius, ..Default::default() }
    }

    /// Instantiates the camera at the requested output resolution.
    pub fn camera(&self, width: u32, height: u32) -> Camera {
        Camera::orbit(
            self.center,
            self.radius,
            self.azimuth_deg,
            self.elevation_deg,
            self.fov_deg,
            width,
            height,
        )
    }
}

// ---------------------------------------------------------------------------
// SceneDef
// ---------------------------------------------------------------------------

/// Constructs a scene's field. Boxed so defs can capture arbitrary state
/// (time parameters, CSG trees, noise seeds) — not just fn pointers.
type FieldBuilder = Box<dyn Fn() -> Box<dyn SceneField> + Send + Sync>;

/// A scene descriptor: everything the pipeline needs to fit, render, and
/// report on a scene. Build one with [`SceneDef::new`] plus the chained
/// setters, then hand it to [`register`] (or [`SceneRegistry::register`]).
pub struct SceneDef {
    name: String,
    dataset: String,
    resolution: (u32, u32),
    kind: SceneKind,
    camera: OrbitCamera,
    builder: FieldBuilder,
}

impl fmt::Debug for SceneDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SceneDef")
            .field("name", &self.name)
            .field("dataset", &self.dataset)
            .field("resolution", &self.resolution)
            .field("kind", &self.kind)
            .field("camera", &self.camera)
            .finish_non_exhaustive()
    }
}

impl SceneDef {
    /// Starts a descriptor for `name` with the given field builder and
    /// default metadata (`Custom` dataset, 800×800, synthetic, default
    /// orbit).
    pub fn new<F>(name: impl Into<String>, builder: F) -> Self
    where
        F: Fn() -> Box<dyn SceneField> + Send + Sync + 'static,
    {
        SceneDef {
            name: name.into(),
            dataset: "Custom".to_string(),
            resolution: (800, 800),
            kind: SceneKind::Synthetic,
            camera: OrbitCamera::default(),
            builder: Box::new(builder),
        }
    }

    /// Sets the source-dataset label (Table 1 "Dataset" column).
    #[must_use]
    pub fn dataset(mut self, dataset: impl Into<String>) -> Self {
        self.dataset = dataset.into();
        self
    }

    /// Sets the native evaluation resolution.
    #[must_use]
    pub fn resolution(mut self, width: u32, height: u32) -> Self {
        self.resolution = (width, height);
        self
    }

    /// Sets the synthetic/real-world kind.
    #[must_use]
    pub fn kind(mut self, kind: SceneKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the standard evaluation viewpoint.
    #[must_use]
    pub fn camera_spec(mut self, camera: OrbitCamera) -> Self {
        self.camera = camera;
        self
    }

    /// Scene display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Source dataset label.
    pub fn dataset_name(&self) -> &str {
        &self.dataset
    }

    /// Native evaluation resolution (width, height).
    pub fn native_resolution(&self) -> (u32, u32) {
        self.resolution
    }

    /// Synthetic vs real-world.
    pub fn scene_kind(&self) -> SceneKind {
        self.kind
    }

    /// The standard viewpoint specification.
    pub fn camera_orbit(&self) -> OrbitCamera {
        self.camera
    }

    /// Builds a fresh instance of the scene field.
    pub fn build(&self) -> Box<dyn SceneField> {
        (self.builder)()
    }
}

// ---------------------------------------------------------------------------
// SceneHandle
// ---------------------------------------------------------------------------

/// A cheap, copyable-by-clone reference to a registered scene: the interned
/// name plus a shared pointer to the [`SceneDef`]. Equality, ordering, and
/// hashing go by name, so handles work directly as map keys.
#[derive(Clone)]
pub struct SceneHandle {
    name: &'static str,
    def: Arc<SceneDef>,
}

impl SceneHandle {
    /// Scene display name (interned; lives for the process lifetime).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The underlying descriptor.
    pub fn def(&self) -> &SceneDef {
        &self.def
    }

    /// Source dataset label.
    pub fn dataset(&self) -> &str {
        self.def.dataset_name()
    }

    /// Native evaluation resolution (width, height).
    pub fn resolution(&self) -> (u32, u32) {
        self.def.native_resolution()
    }

    /// Synthetic vs real-world.
    pub fn kind(&self) -> SceneKind {
        self.def.scene_kind()
    }

    /// Builds a fresh instance of the scene field.
    pub fn build(&self) -> Box<dyn SceneField> {
        self.def.build()
    }

    /// The standard evaluation camera at the requested output resolution.
    pub fn camera(&self, width: u32, height: u32) -> Camera {
        self.def.camera_orbit().camera(width, height)
    }

    /// Whether two handles point at the *same* [`SceneDef`] instance.
    ///
    /// `==` compares names only (handles are map keys); two registries can
    /// each hold a scene of the same name with different defs. Caches that
    /// key by name use this to detect such aliasing.
    pub fn shares_def(&self, other: &SceneHandle) -> bool {
        Arc::ptr_eq(&self.def, &other.def)
    }
}

impl fmt::Debug for SceneHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SceneHandle({})", self.name)
    }
}

impl fmt::Display for SceneHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

impl PartialEq for SceneHandle {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.name, other.name) || self.name == other.name
    }
}

impl Eq for SceneHandle {}

impl std::hash::Hash for SceneHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

impl PartialOrd for SceneHandle {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SceneHandle {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.name.cmp(other.name)
    }
}

/// Interns a scene name so handles can carry `&'static str`. Names are tiny
/// and registries live for the process lifetime, so the leak is bounded by
/// the set of distinct scene names ever registered.
fn intern(name: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL.get_or_init(|| Mutex::new(HashSet::new())).lock().unwrap();
    match pool.get(name) {
        Some(s) => s,
        None => {
            let s: &'static str = Box::leak(name.to_string().into_boxed_str());
            pool.insert(s);
            s
        }
    }
}

// ---------------------------------------------------------------------------
// SceneRegistry
// ---------------------------------------------------------------------------

/// Errors from [`SceneRegistry::register`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A scene with this (case-insensitive) name already exists.
    DuplicateName(String),
    /// The scene name is empty.
    EmptyName,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateName(n) => write!(f, "scene {n:?} is already registered"),
            RegistryError::EmptyName => f.write_str("scene name must not be empty"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// An ordered collection of scene defs with case-insensitive name lookup.
///
/// Most code uses the process-wide instance through the free functions of
/// this module ([`register`], [`get`], [`handle`], [`all`]); owning a
/// `SceneRegistry` directly is useful for tests and tools that need an
/// isolated scene set.
#[derive(Debug, Default)]
pub struct SceneRegistry {
    scenes: Vec<SceneHandle>,
    by_name: HashMap<String, usize>,
}

impl SceneRegistry {
    /// Creates an empty registry.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Creates a registry holding the ten paper scenes (Table 1).
    pub fn with_builtins() -> Self {
        let mut reg = Self::empty();
        for b in &PAPER_SCENES {
            reg.register(b.def()).expect("builtin scene table has unique names");
        }
        reg
    }

    /// Registers a scene, returning its handle.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::DuplicateName`] if a scene with the same
    /// name (ignoring ASCII case) exists, or [`RegistryError::EmptyName`]
    /// for an empty name.
    pub fn register(&mut self, def: SceneDef) -> Result<SceneHandle, RegistryError> {
        if def.name.is_empty() {
            return Err(RegistryError::EmptyName);
        }
        let key = def.name.to_ascii_lowercase();
        if self.by_name.contains_key(&key) {
            return Err(RegistryError::DuplicateName(def.name.clone()));
        }
        let handle = SceneHandle { name: intern(&def.name), def: Arc::new(def) };
        self.by_name.insert(key, self.scenes.len());
        self.scenes.push(handle.clone());
        Ok(handle)
    }

    /// Looks a scene up by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<SceneHandle> {
        self.by_name.get(&name.to_ascii_lowercase()).map(|&i| self.scenes[i].clone())
    }

    /// All registered scenes, in registration order.
    pub fn all(&self) -> Vec<SceneHandle> {
        self.scenes.clone()
    }

    /// Number of registered scenes.
    pub fn len(&self) -> usize {
        self.scenes.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.scenes.is_empty()
    }
}

// ---------------------------------------------------------------------------
// The builtin table: the ten Table-1 scenes in one place
// ---------------------------------------------------------------------------

/// One row of the builtin-scene table.
struct PaperScene {
    name: &'static str,
    dataset: &'static str,
    resolution: (u32, u32),
    kind: SceneKind,
    field: fn(Vec3) -> (f32, Rgb),
    camera: (f32, f32, f32), // azimuth, elevation, radius
}

impl PaperScene {
    fn def(&self) -> SceneDef {
        let (name, field) = (self.name, self.field);
        SceneDef::new(name, move || Box::new(SdfScene::new(name, field, 50.0, 0.03)))
            .dataset(self.dataset)
            .resolution(self.resolution.0, self.resolution.1)
            .kind(self.kind)
            .camera_spec(OrbitCamera::new(self.camera.0, self.camera.1, self.camera.2))
    }
}

use SceneKind::{RealWorld, Synthetic};

/// Table 1 of the paper, in the order it lists the scenes.
const PAPER_SCENES: [PaperScene; 10] = [
    PaperScene {
        name: "Mic",
        dataset: "Synthetic-NeRF",
        resolution: (800, 800),
        kind: Synthetic,
        field: procedural::mic,
        camera: (-30.0, 15.0, 3.0),
    },
    PaperScene {
        name: "Hotdog",
        dataset: "Synthetic-NeRF",
        resolution: (800, 800),
        kind: Synthetic,
        field: procedural::hotdog,
        camera: (0.0, 40.0, 3.2),
    },
    PaperScene {
        name: "Ship",
        dataset: "Synthetic-NeRF",
        resolution: (800, 800),
        kind: Synthetic,
        field: procedural::ship,
        camera: (60.0, 20.0, 3.4),
    },
    PaperScene {
        name: "Chair",
        dataset: "Synthetic-NeRF",
        resolution: (800, 800),
        kind: Synthetic,
        field: procedural::chair,
        camera: (15.0, 18.0, 3.2),
    },
    PaperScene {
        name: "Ficus",
        dataset: "Synthetic-NeRF",
        resolution: (800, 800),
        kind: Synthetic,
        field: procedural::ficus,
        camera: (-50.0, 12.0, 3.0),
    },
    PaperScene {
        name: "Lego",
        dataset: "Synthetic-NeRF",
        resolution: (800, 800),
        kind: Synthetic,
        field: procedural::lego,
        camera: (35.0, 25.0, 3.2),
    },
    PaperScene {
        name: "Palace",
        dataset: "Synthetic-NSVF",
        resolution: (800, 800),
        kind: Synthetic,
        field: procedural::palace,
        camera: (45.0, 22.0, 3.6),
    },
    PaperScene {
        name: "Fountain",
        dataset: "BlendedMVS",
        resolution: (768, 576),
        kind: RealWorld,
        field: procedural::fountain,
        camera: (-20.0, 18.0, 3.4),
    },
    PaperScene {
        name: "Family",
        dataset: "Tanks&Temples",
        resolution: (1920, 1080),
        kind: RealWorld,
        field: procedural::family,
        camera: (5.0, 10.0, 3.4),
    },
    PaperScene {
        name: "Fox",
        dataset: "Instant-NGP",
        resolution: (1080, 1920),
        kind: RealWorld,
        field: procedural::fox,
        camera: (25.0, 8.0, 3.0),
    },
];

/// The five scenes used by the performance figures (Figs. 17–19, 22, 25–27).
const PERF_SCENE_NAMES: [&str; 5] = ["Palace", "Fountain", "Family", "Fox", "Mic"];

// ---------------------------------------------------------------------------
// The process-wide registry
// ---------------------------------------------------------------------------

fn global() -> &'static RwLock<SceneRegistry> {
    static GLOBAL: OnceLock<RwLock<SceneRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let mut reg = SceneRegistry::with_builtins();
        // the showcase families: one file + one register() call each
        reg.register(crate::animated::scene_def()).expect("animated scene name unique");
        reg.register(crate::csg::scene_def()).expect("csg scene name unique");
        reg.register(crate::cloud::scene_def()).expect("cloud scene name unique");
        RwLock::new(reg)
    })
}

/// Registers a scene in the process-wide registry.
///
/// # Errors
///
/// See [`SceneRegistry::register`].
pub fn register(def: SceneDef) -> Result<SceneHandle, RegistryError> {
    global().write().unwrap().register(def)
}

/// Looks a scene up by case-insensitive name in the process-wide registry.
pub fn get(name: &str) -> Option<SceneHandle> {
    global().read().unwrap().get(name)
}

/// Like [`get`], but panics with the known scene names on a miss — for call
/// sites where the name is a literal.
///
/// # Panics
///
/// Panics if no scene with that name is registered.
pub fn handle(name: &str) -> SceneHandle {
    get(name).unwrap_or_else(|| {
        let known: Vec<&str> = all().iter().map(|h| h.name()).collect();
        panic!("unknown scene {name:?}; registered: {known:?}")
    })
}

/// Every registered scene, in registration order (paper scenes first).
pub fn all() -> Vec<SceneHandle> {
    global().read().unwrap().all()
}

/// The ten Table-1 paper scenes, in the order the paper lists them.
pub fn paper_scenes() -> Vec<SceneHandle> {
    PAPER_SCENES.iter().map(|b| handle(b.name)).collect()
}

/// The five-scene subset the paper's performance figures use.
pub fn perf_scenes() -> Vec<SceneHandle> {
    PERF_SCENE_NAMES.iter().map(|n| handle(n)).collect()
}

// ---------------------------------------------------------------------------
// Deprecated closed-enum shim
// ---------------------------------------------------------------------------

/// Identifier for each of the ten evaluation scenes (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
#[deprecated(note = "use `SceneHandle` via `registry::handle(name)`; the registry is open now")]
pub enum SceneId {
    Mic,
    Hotdog,
    Ship,
    Chair,
    Ficus,
    Lego,
    Palace,
    Fountain,
    Family,
    Fox,
}

#[allow(deprecated)]
impl SceneId {
    /// All scenes in the order the paper lists them in Table 1.
    pub const ALL: [SceneId; 10] = [
        SceneId::Mic,
        SceneId::Hotdog,
        SceneId::Ship,
        SceneId::Chair,
        SceneId::Ficus,
        SceneId::Lego,
        SceneId::Palace,
        SceneId::Fountain,
        SceneId::Family,
        SceneId::Fox,
    ];

    /// The five scenes used by the performance figures.
    pub const PERF: [SceneId; 5] =
        [SceneId::Palace, SceneId::Fountain, SceneId::Family, SceneId::Fox, SceneId::Mic];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SceneId::Mic => "Mic",
            SceneId::Hotdog => "Hotdog",
            SceneId::Ship => "Ship",
            SceneId::Chair => "Chair",
            SceneId::Ficus => "Ficus",
            SceneId::Lego => "Lego",
            SceneId::Palace => "Palace",
            SceneId::Fountain => "Fountain",
            SceneId::Family => "Family",
            SceneId::Fox => "Fox",
        }
    }

    /// Parses a case-insensitive scene name.
    pub fn parse(s: &str) -> Option<SceneId> {
        SceneId::ALL.iter().copied().find(|id| id.name().eq_ignore_ascii_case(s))
    }

    /// The registry handle for this builtin.
    pub fn handle(self) -> SceneHandle {
        handle(self.name())
    }
}

#[allow(deprecated)]
impl fmt::Display for SceneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[allow(deprecated)]
impl From<SceneId> for SceneHandle {
    fn from(id: SceneId) -> Self {
        id.handle()
    }
}

/// Per-scene metadata reproducing Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[deprecated(note = "read metadata off a `SceneHandle` instead")]
#[allow(deprecated)]
pub struct SceneInfo {
    /// Scene id.
    pub id: SceneId,
    /// Source dataset name.
    pub dataset: &'static str,
    /// Native evaluation resolution (width, height).
    pub resolution: (u32, u32),
    /// Synthetic vs real-world.
    pub kind: SceneKind,
}

/// Table-1 metadata for a scene.
#[deprecated(note = "read metadata off a `SceneHandle` instead")]
#[allow(deprecated)]
pub fn info(id: SceneId) -> SceneInfo {
    let b = PAPER_SCENES.iter().find(|b| b.name == id.name()).expect("builtin");
    SceneInfo { id, dataset: b.dataset, resolution: b.resolution, kind: b.kind }
}

/// Builds the procedural field for a builtin scene.
#[deprecated(note = "use `registry::handle(name).build()`")]
#[allow(deprecated)]
pub fn build(id: SceneId) -> Box<dyn SceneField> {
    id.handle().build()
}

/// Builds the concrete [`SdfScene`] of a builtin (exposes `distance` for
/// tests).
#[deprecated(note = "use `registry::handle(name).build()`")]
#[allow(deprecated)]
pub fn build_sdf(id: SceneId) -> SdfScene {
    let b = PAPER_SCENES.iter().find(|b| b.name == id.name()).expect("builtin");
    SdfScene::new(b.name, b.field, 50.0, 0.03)
}

/// The standard evaluation viewpoint for a builtin scene.
#[deprecated(note = "use `registry::handle(name).camera(width, height)`")]
#[allow(deprecated)]
pub fn standard_camera(id: SceneId, width: u32, height: u32) -> Camera {
    id.handle().camera(width, height)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_metadata_matches_paper() {
        assert_eq!(handle("Lego").dataset(), "Synthetic-NeRF");
        assert_eq!(handle("Lego").resolution(), (800, 800));
        assert_eq!(handle("Palace").dataset(), "Synthetic-NSVF");
        assert_eq!(handle("Fountain").resolution(), (768, 576));
        assert_eq!(handle("Family").resolution(), (1920, 1080));
        assert_eq!(handle("Fox").resolution(), (1080, 1920));
        assert_eq!(handle("Fox").kind(), SceneKind::RealWorld);
        assert_eq!(handle("Mic").kind(), SceneKind::Synthetic);
    }

    #[test]
    fn seven_synthetic_three_real() {
        let synth = paper_scenes().iter().filter(|s| s.kind() == SceneKind::Synthetic).count();
        assert_eq!(synth, 7);
        assert_eq!(paper_scenes().len() - synth, 3);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        for s in all() {
            assert_eq!(get(s.name()), Some(s.clone()));
            assert_eq!(get(&s.name().to_lowercase()), Some(s.clone()));
            assert_eq!(get(&s.name().to_uppercase()), Some(s));
        }
        assert_eq!(get("nonexistent"), None);
    }

    #[test]
    fn all_scenes_buildable() {
        for s in all() {
            let f = s.build();
            // camera looks at content: center ray must enter the bounds
            let cam = s.camera(16, 16);
            let ray = cam.ray_for_pixel(8, 8);
            assert!(f.bounds().intersect(&ray).is_some(), "{s}: camera misses scene");
        }
    }

    #[test]
    fn perf_subset_is_five_distinct() {
        let mut v = perf_scenes();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn registry_is_open() {
        let h = register(
            SceneDef::new("registry-test-ball", || {
                Box::new(SdfScene::new(
                    "registry-test-ball",
                    |p| (p.norm() - 0.4, Rgb::new(0.9, 0.2, 0.2)),
                    50.0,
                    0.03,
                ))
            })
            .dataset("UnitTest"),
        )
        .unwrap();
        assert_eq!(get("registry-test-ball"), Some(h.clone()));
        assert!(all().contains(&h));
        // duplicate registration (any case) is rejected
        let dup = register(SceneDef::new("Registry-Test-Ball", || {
            Box::new(SdfScene::new("x", |p| (p.norm() - 0.4, Rgb::WHITE), 50.0, 0.03))
        }));
        assert!(matches!(dup, Err(RegistryError::DuplicateName(_))));
    }

    #[test]
    fn empty_names_are_rejected() {
        let mut reg = SceneRegistry::empty();
        let err = reg.register(SceneDef::new("", || {
            Box::new(SdfScene::new("x", |p| (p.norm() - 0.4, Rgb::WHITE), 50.0, 0.03))
        }));
        assert_eq!(err.unwrap_err(), RegistryError::EmptyName);
        assert!(reg.is_empty());
    }

    #[test]
    fn isolated_registries_do_not_touch_the_global() {
        let reg = SceneRegistry::with_builtins();
        assert_eq!(reg.len(), 10);
        assert!(reg.get("Pulse").is_none(), "builtin-only registry has no zoo scenes");
        assert!(get("Pulse").is_some(), "global registry has the zoo scenes");
    }

    #[test]
    #[allow(deprecated)]
    fn scene_id_shim_round_trips() {
        for id in SceneId::ALL {
            assert_eq!(SceneId::parse(id.name()), Some(id));
            let h: SceneHandle = id.into();
            assert_eq!(h.name(), id.name());
            assert_eq!(info(id).dataset, h.dataset());
            let cam_old = standard_camera(id, 16, 16);
            let cam_new = h.camera(16, 16);
            assert_eq!(cam_old.ray_for_pixel(3, 5).dir, cam_new.ray_for_pixel(3, 5).dir);
        }
        assert_eq!(SceneId::parse("nonexistent"), None);
    }
}
