//! A time-parameterized animated field: the pulsating SDF ("Pulse").
//!
//! The ten paper scenes are plain `fn(Vec3)` fields; this family shows what
//! the open registry unlocks — a [`SceneField`] that carries *state* (the
//! animation phase) which the closed `FieldFn` API could not express. The
//! registered `Pulse` scene is one frozen phase of the animation; callers
//! that want the full animation build frames directly with
//! [`PulseScene::at_phase`] (each frame fits and renders like any scene).

use crate::field::{density_from_sdf, SceneField};
use crate::registry::{OrbitCamera, SceneDef, SceneKind};
use crate::sdf::{smooth_union, sphere, torus_xz};
use asdr_math::{Aabb, Rgb, Vec3};

/// A breathing central blob orbited by three pulsing satellites, all driven
/// by one phase parameter in `[0, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct PulseScene {
    /// Animation phase in `[0, 1)` (wraps).
    phase: f32,
}

impl PulseScene {
    /// The phase the registered `Pulse` scene is frozen at.
    pub const REGISTERED_PHASE: f32 = 0.3;

    /// The scene at animation phase `phase` (wrapped into `[0, 1)`).
    pub fn at_phase(phase: f32) -> Self {
        PulseScene { phase: phase.rem_euclid(1.0) }
    }

    /// This frame's animation phase.
    pub fn phase(&self) -> f32 {
        self.phase
    }

    /// Signed distance of the animated composition at `p`.
    pub fn distance(&self, p: Vec3) -> f32 {
        self.eval(p).0
    }

    fn eval(&self, p: Vec3) -> (f32, Rgb) {
        let t = self.phase * std::f32::consts::TAU;
        // central blob breathes between 0.28 and 0.44
        let core_r = 0.36 + 0.08 * t.sin();
        let core = sphere(p, Vec3::new(0.0, -0.1, 0.0), core_r);
        // an equatorial ring swells in counter-phase
        let ring = torus_xz(p, Vec3::new(0.0, -0.1, 0.0), 0.55, 0.06 + 0.03 * (t + 1.5).sin());
        let mut d = smooth_union(core, ring, 0.08);
        let mut albedo = Rgb::new(0.85, 0.35, 0.1);
        // three satellites orbit and pulse at staggered phases
        for k in 0..3 {
            let ang = t + k as f32 * std::f32::consts::TAU / 3.0;
            let c = Vec3::new(0.62 * ang.cos(), 0.25 * (2.0 * ang).sin(), 0.62 * ang.sin());
            let r = 0.12 + 0.05 * (3.0 * ang).cos();
            let s = sphere(p, c, r);
            if s < d {
                albedo = Rgb::new(0.2, 0.45, 0.85);
            }
            d = smooth_union(d, s, 0.05);
        }
        (d, albedo)
    }
}

impl SceneField for PulseScene {
    fn density(&self, p: Vec3) -> f32 {
        if !self.bounds().contains(p) {
            return 0.0;
        }
        density_from_sdf(self.eval(p).0, 50.0, 0.03)
    }

    fn albedo(&self, p: Vec3) -> Rgb {
        self.eval(p).1
    }

    fn bounds(&self) -> Aabb {
        Aabb::centered(1.0)
    }
}

/// The `Pulse` scene's registry descriptor (frozen at
/// [`PulseScene::REGISTERED_PHASE`]).
pub fn scene_def() -> SceneDef {
    SceneDef::new("Pulse", || Box::new(PulseScene::at_phase(PulseScene::REGISTERED_PHASE)))
        .dataset("ASDR-Zoo")
        .resolution(800, 800)
        .kind(SceneKind::Synthetic)
        .camera_spec(OrbitCamera::new(20.0, 24.0, 3.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn animation_actually_moves() {
        let a = PulseScene::at_phase(0.0);
        let b = PulseScene::at_phase(0.5);
        let probes =
            [Vec3::new(0.0, -0.1, 0.4), Vec3::new(0.5, 0.0, 0.3), Vec3::new(-0.3, 0.2, -0.5)];
        assert!(
            probes.iter().any(|&p| (a.distance(p) - b.distance(p)).abs() > 1e-3),
            "two phases half a period apart must differ"
        );
    }

    #[test]
    fn phase_wraps() {
        let a = PulseScene::at_phase(0.25);
        let b = PulseScene::at_phase(1.25);
        let p = Vec3::new(0.3, 0.1, -0.2);
        assert_eq!(a.distance(p), b.distance(p));
    }

    #[test]
    fn every_phase_has_content_and_background() {
        for i in 0..5 {
            let s = PulseScene::at_phase(i as f32 / 5.0);
            let occ = s.occupancy(1.0, 20);
            assert!(occ > 0.005, "phase {i}: almost empty (occ={occ})");
            assert!(occ < 0.6, "phase {i}: too little background (occ={occ})");
            assert_eq!(s.density(Vec3::splat(1.5)), 0.0);
        }
    }
}
