//! Procedural scene fields and ground-truth rendering for the ASDR
//! reproduction.
//!
//! The paper evaluates on ten scenes drawn from five datasets (Table 1):
//! Synthetic-NeRF (Mic, Hotdog, Ship, Chair, Ficus, Lego), Synthetic-NSVF
//! (Palace), BlendedMVS (Fountain), Tanks&Temples (Family) and the
//! Instant-NGP Fox capture. Trained checkpoints and the underlying photos are
//! not available offline, so this crate provides *analytic procedural stand-
//! ins*: each scene is a signed-distance-field composition with an albedo
//! field and simple view-dependent shading. The neural-rendering substrate
//! (`asdr-nerf`) fits its hash-grid model to these fields, after which every
//! pipeline stage behaves exactly as with a trained model (see DESIGN.md §1).
//!
//! # Example
//!
//! ```
//! use asdr_scenes::{SceneId, registry};
//!
//! let scene = registry::build(SceneId::Lego);
//! let cam = registry::standard_camera(SceneId::Lego, 32, 32);
//! let gt = asdr_scenes::gt::render_ground_truth(scene.as_ref(), &cam, 64);
//! assert_eq!(gt.width(), 32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod field;
pub mod gt;
pub mod procedural;
pub mod registry;
pub mod sdf;

pub use field::SceneField;
pub use registry::{SceneId, SceneInfo, SceneKind};
