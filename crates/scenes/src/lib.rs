//! Procedural scene fields and ground-truth rendering for the ASDR
//! reproduction.
//!
//! The paper evaluates on ten scenes drawn from five datasets (Table 1).
//! Trained checkpoints and the underlying photos are not available offline,
//! so this crate provides *analytic procedural stand-ins*: fields the
//! neural-rendering substrate (`asdr-nerf`) fits its hash-grid model to,
//! after which every pipeline stage behaves exactly as with a trained model
//! (see DESIGN.md §1).
//!
//! Scenes live in an **open registry** ([`registry`]): a scene is a
//! [`registry::SceneDef`] (name, metadata, field builder, standard camera)
//! and any crate can add one with [`registry::register`] — see
//! `src/README.md` for the guide. The ten paper scenes are pre-registered,
//! along with three showcase families the closed paper set cannot express:
//! a time-parameterized animated field ([`animated`]), a CSG expression
//! tree ([`csg`]), and a surface-free volumetric cloud ([`cloud`]).
//!
//! # Example
//!
//! ```
//! use asdr_scenes::registry;
//!
//! let lego = registry::handle("Lego");
//! let scene = lego.build();
//! let cam = lego.camera(32, 32);
//! let gt = asdr_scenes::gt::render_ground_truth(scene.as_ref(), &cam, 64);
//! assert_eq!(gt.width(), 32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod animated;
pub mod cloud;
pub mod csg;
pub mod field;
pub mod gt;
pub mod procedural;
pub mod registry;
pub mod sdf;

pub use field::SceneField;
pub use registry::{OrbitCamera, SceneDef, SceneHandle, SceneKind, SceneRegistry};
#[allow(deprecated)]
pub use registry::{SceneId, SceneInfo};
