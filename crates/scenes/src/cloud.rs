//! A volumetric cloud: smooth density with no sharp surface ("Cloud").
//!
//! Every paper scene converts an SDF to density through a thin shell, so
//! rays saturate within a few samples of the first surface. A cloud has no
//! surface at all: density is a smooth noise-modulated falloff, rays stay
//! semi-transparent deep into the volume, and early termination / adaptive
//! sampling face their worst case. The registry makes shipping such a field
//! a one-file affair — it is just another [`SceneField`] implementation.

use crate::field::SceneField;
use crate::registry::{OrbitCamera, SceneDef, SceneKind};
use crate::sdf::value_noise;
use asdr_math::{Aabb, Rgb, Vec3};

/// A puffy ellipsoidal cloud bank: three lobes with fbm-style noise erosion
/// and a soft quadratic envelope instead of a surface shell.
#[derive(Debug, Clone, Copy)]
pub struct CloudScene {
    /// Peak density at a lobe center.
    sigma_peak: f32,
}

impl Default for CloudScene {
    fn default() -> Self {
        CloudScene { sigma_peak: 8.0 }
    }
}

impl CloudScene {
    /// A cloud with the given peak density (the default is 8, chosen so a
    /// ray through a lobe center accumulates opacity gradually over dozens
    /// of samples rather than saturating at a shell).
    pub fn with_peak(sigma_peak: f32) -> Self {
        assert!(sigma_peak > 0.0);
        CloudScene { sigma_peak }
    }

    /// The smooth `[0, 1]` envelope: sum of three squared-falloff lobes,
    /// eroded by two octaves of value noise.
    fn envelope(p: Vec3) -> f32 {
        let lobes = [
            (Vec3::new(-0.25, -0.1, 0.05), 0.55),
            (Vec3::new(0.3, 0.05, -0.15), 0.45),
            (Vec3::new(0.05, 0.25, 0.3), 0.38),
        ];
        let mut e = 0.0f32;
        for (c, r) in lobes {
            let q = ((p - c).norm() / r).min(1.0);
            // quadratic falloff: 1 at the center, 0 at the lobe radius
            e += (1.0 - q * q).max(0.0);
        }
        let e = e.min(1.0);
        // erode with two noise octaves for wispy edges
        let n = 0.55 * value_noise(p, 4.0) + 0.25 * value_noise(p, 9.0);
        (e + 0.45 * n - 0.25).clamp(0.0, 1.0)
    }
}

impl SceneField for CloudScene {
    fn density(&self, p: Vec3) -> f32 {
        if !self.bounds().contains(p) {
            return 0.0;
        }
        self.sigma_peak * Self::envelope(p)
    }

    fn albedo(&self, p: Vec3) -> Rgb {
        // brighter tops, grey-blue undersides
        let t = ((p.y + 0.6) / 1.2).clamp(0.0, 1.0);
        Rgb::new(0.62, 0.66, 0.74).lerp(Rgb::new(0.97, 0.97, 0.99), t)
    }

    fn bounds(&self) -> Aabb {
        Aabb::centered(1.0)
    }
}

/// The `Cloud` scene's registry descriptor.
pub fn scene_def() -> SceneDef {
    SceneDef::new("Cloud", || Box::<CloudScene>::default())
        .dataset("ASDR-Zoo")
        .resolution(800, 800)
        .kind(SceneKind::Synthetic)
        .camera_spec(OrbitCamera::new(55.0, 12.0, 3.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_smooth_not_shell_like() {
        let s = CloudScene::default();
        // walk a line through the first lobe: density must take many small
        // steps, never the near-instant 0 -> sigma_max jump of an SDF shell
        let c = Vec3::new(-0.25, -0.1, 0.05);
        let mut max_step = 0.0f32;
        let mut prev = s.density(c + Vec3::new(-0.8, 0.0, 0.0));
        for i in 1..=160 {
            let p = c + Vec3::new(-0.8 + i as f32 * 0.01, 0.0, 0.0);
            let d = s.density(p);
            max_step = max_step.max((d - prev).abs());
            prev = d;
        }
        assert!(
            max_step < 0.35 * s.sigma_peak,
            "cloud density jumps like a surface shell: {max_step}"
        );
    }

    #[test]
    fn rays_stay_semi_transparent() {
        // transmittance through the densest lobe stays well above the
        // early-termination threshold for the first half of the traversal
        let s = CloudScene::default();
        let steps = 64;
        let dt = 2.0 / steps as f32;
        let mut transmittance = 1.0f32;
        for i in 0..steps / 2 {
            let p = Vec3::new(-1.0 + (i as f32 + 0.5) * dt, -0.1, 0.05);
            transmittance *= (-s.density(p) * dt).exp();
        }
        assert!(transmittance > 1e-3, "cloud saturates like a solid: T = {transmittance}");
    }

    #[test]
    fn has_content_and_background() {
        let s = CloudScene::default();
        let occ = s.occupancy(1.0, 24);
        assert!(occ > 0.01 && occ < 0.7, "occ = {occ}");
        assert_eq!(s.density(Vec3::splat(1.5)), 0.0);
        assert!(s.density(Vec3::new(-0.25, -0.1, 0.05)) > 1.0, "lobe center must have density");
    }
}
