//! The ten procedural stand-in scenes.
//!
//! Each scene is a function `Vec3 -> (signed distance, albedo)` wrapped in
//! [`SdfScene`]. The shapes are rough caricatures of the originals (a blocky
//! excavator for Lego, a studio microphone for Mic, …) — what matters for the
//! reproduction is that they span the same *difficulty spectrum*: large empty
//! backgrounds, thin structures (Ficus leaves, ship rigging), flat easy
//! regions (Hotdog plate), and dense clutter (Palace, Family).

use crate::field::{density_from_sdf, SceneField};
use crate::sdf::*;
use asdr_math::{Aabb, Rgb, Vec3};
use std::fmt;

/// A scene defined by a single SDF+albedo function.
#[derive(Clone)]
pub struct SdfScene {
    name: &'static str,
    eval: fn(Vec3) -> (f32, Rgb),
    sigma_max: f32,
    softness: f32,
    bounds: Aabb,
}

impl fmt::Debug for SdfScene {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SdfScene")
            .field("name", &self.name)
            .field("sigma_max", &self.sigma_max)
            .field("softness", &self.softness)
            .finish()
    }
}

impl SdfScene {
    /// Wraps an SDF+albedo function into a scene field.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_max <= 0` or `softness <= 0`.
    pub fn new(
        name: &'static str,
        eval: fn(Vec3) -> (f32, Rgb),
        sigma_max: f32,
        softness: f32,
    ) -> Self {
        assert!(sigma_max > 0.0 && softness > 0.0);
        SdfScene { name, eval, sigma_max, softness, bounds: Aabb::centered(1.0) }
    }

    /// Scene display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Raw signed distance at `p` (used by tests).
    pub fn distance(&self, p: Vec3) -> f32 {
        (self.eval)(p).0
    }
}

impl SceneField for SdfScene {
    fn density(&self, p: Vec3) -> f32 {
        if !self.bounds.contains(p) {
            return 0.0;
        }
        density_from_sdf((self.eval)(p).0, self.sigma_max, self.softness)
    }

    fn albedo(&self, p: Vec3) -> Rgb {
        (self.eval)(p).1
    }

    fn bounds(&self) -> Aabb {
        self.bounds
    }
}

/// Helper: keep the (distance, albedo) pair with the smaller distance.
#[inline]
fn closest(a: (f32, Rgb), b: (f32, Rgb)) -> (f32, Rgb) {
    if a.0 <= b.0 {
        a
    } else {
        b
    }
}

/// Lego — blocky excavator: base plate, tracked chassis, cab, boom arm.
pub fn lego(p: Vec3) -> (f32, Rgb) {
    let yellow = Rgb::new(0.85, 0.65, 0.08);
    let grey = Rgb::new(0.35, 0.35, 0.38);
    let dark = Rgb::new(0.12, 0.12, 0.12);
    // studded texture on yellow parts
    let stud = 0.03 * value_noise(p, 14.0);

    let plate = (boxed(p, Vec3::new(0.0, -0.72, 0.0), Vec3::new(0.85, 0.06, 0.85)), grey);
    let track_l =
        (rounded_box(p, Vec3::new(-0.42, -0.52, 0.0), Vec3::new(0.16, 0.12, 0.55), 0.04), dark);
    let track_r =
        (rounded_box(p, Vec3::new(0.42, -0.52, 0.0), Vec3::new(0.16, 0.12, 0.55), 0.04), dark);
    let body = (
        rounded_box(p, Vec3::new(0.0, -0.18, -0.05), Vec3::new(0.38, 0.22, 0.42), 0.03) + stud,
        yellow,
    );
    let cab = (
        rounded_box(p, Vec3::new(-0.1, 0.22, -0.25), Vec3::new(0.2, 0.18, 0.18), 0.02) + stud,
        yellow,
    );
    let boom =
        (capsule(p, Vec3::new(0.05, 0.15, 0.1), Vec3::new(0.25, 0.55, 0.55), 0.09) + stud, yellow);
    let stick =
        (capsule(p, Vec3::new(0.25, 0.55, 0.55), Vec3::new(0.15, 0.05, 0.85), 0.06), yellow);
    let bucket = (boxed(p, Vec3::new(0.15, -0.02, 0.88), Vec3::new(0.16, 0.1, 0.08)), grey);

    [track_l, track_r, body, cab, boom, stick, bucket].into_iter().fold(plate, closest)
}

/// Mic — studio microphone: mesh ball head, short neck, tripod stand.
pub fn mic(p: Vec3) -> (f32, Rgb) {
    let mesh = Rgb::new(0.55, 0.55, 0.6);
    let metal = Rgb::new(0.25, 0.25, 0.28);
    let accent = Rgb::new(0.7, 0.1, 0.1);

    let head_c = Vec3::new(0.0, 0.45, 0.0);
    let grille = 0.015 * value_noise(p, 30.0);
    let head = (sphere(p, head_c, 0.32) + grille, mesh);
    let band = (torus_xz(p, head_c, 0.32, 0.035), accent);
    let neck = (capsule(p, Vec3::new(0.0, 0.13, 0.0), Vec3::new(0.0, -0.35, 0.0), 0.05), metal);
    let hinge = (sphere(p, Vec3::new(0.0, -0.35, 0.0), 0.08), metal);
    let mut out = [band, neck, hinge].into_iter().fold(head, closest);
    // three tripod legs
    for k in 0..3 {
        let ang = k as f32 * std::f32::consts::TAU / 3.0;
        let foot = Vec3::new(0.5 * ang.cos(), -0.85, 0.5 * ang.sin());
        let leg = (capsule(p, Vec3::new(0.0, -0.38, 0.0), foot, 0.035), metal);
        out = closest(out, leg);
    }
    out
}

/// Ship — hull on a water disk, deck, two masts with yards.
pub fn ship(p: Vec3) -> (f32, Rgb) {
    let wood = Rgb::new(0.45, 0.27, 0.12);
    let sail = Rgb::new(0.85, 0.82, 0.72);
    let water = Rgb::new(0.1, 0.25, 0.4);

    let waves = 0.02 * value_noise(p, 10.0);
    let sea = (boxed(p, Vec3::new(0.0, -0.8, 0.0), Vec3::new(0.95, 0.08, 0.95)) + waves, water);
    // hull: elongated rounded box carved by a sphere from above
    let hull_core = rounded_box(p, Vec3::new(0.0, -0.52, 0.0), Vec3::new(0.22, 0.16, 0.6), 0.06);
    let hollow = sphere(p, Vec3::new(0.0, -0.25, 0.0), 0.45);
    let hull = (subtract(hull_core, hollow) + 0.01 * value_noise(p, 22.0), wood);
    let deck = (boxed(p, Vec3::new(0.0, -0.42, 0.0), Vec3::new(0.18, 0.02, 0.55)), wood);
    let mast1 = (capsule(p, Vec3::new(0.0, -0.42, 0.2), Vec3::new(0.0, 0.65, 0.2), 0.035), wood);
    let mast2 = (capsule(p, Vec3::new(0.0, -0.42, -0.25), Vec3::new(0.0, 0.45, -0.25), 0.03), wood);
    let sail1 = (boxed(p, Vec3::new(0.0, 0.25, 0.2), Vec3::new(0.3, 0.28, 0.02)), sail);
    let sail2 = (boxed(p, Vec3::new(0.0, 0.12, -0.25), Vec3::new(0.24, 0.2, 0.02)), sail);

    [hull, deck, mast1, mast2, sail1, sail2].into_iter().fold(sea, closest)
}

/// Chair — seat, backrest, four legs, two armrests.
pub fn chair(p: Vec3) -> (f32, Rgb) {
    let wood = Rgb::new(0.55, 0.35, 0.18);
    let cushion = Rgb::new(0.65, 0.15, 0.2);

    let seat =
        (rounded_box(p, Vec3::new(0.0, -0.1, 0.0), Vec3::new(0.42, 0.06, 0.4), 0.03), cushion);
    let back =
        (rounded_box(p, Vec3::new(0.0, 0.42, -0.36), Vec3::new(0.4, 0.45, 0.05), 0.03), cushion);
    let mut out = closest(seat, back);
    for (sx, sz) in [(-1.0f32, -1.0f32), (1.0, -1.0), (-1.0, 1.0), (1.0, 1.0)] {
        let top = Vec3::new(0.36 * sx, -0.16, 0.34 * sz);
        let bottom = Vec3::new(0.36 * sx, -0.9, 0.34 * sz);
        out = closest(out, (capsule(p, top, bottom, 0.045), wood));
    }
    for sx in [-1.0f32, 1.0] {
        let arm = (
            capsule(p, Vec3::new(0.42 * sx, 0.12, -0.3), Vec3::new(0.42 * sx, 0.12, 0.25), 0.04),
            wood,
        );
        out = closest(out, arm);
    }
    out
}

/// Ficus — potted plant: pot, trunk, three branches, noisy foliage blobs.
pub fn ficus(p: Vec3) -> (f32, Rgb) {
    let terracotta = Rgb::new(0.6, 0.3, 0.15);
    let bark = Rgb::new(0.35, 0.22, 0.1);
    let leaf = Rgb::new(0.12, 0.45, 0.15);

    let pot = (cylinder_y(p, Vec3::new(0.0, -0.75, 0.0), 0.3, 0.2), terracotta);
    let trunk = (capsule(p, Vec3::new(0.0, -0.6, 0.0), Vec3::new(0.05, 0.1, 0.0), 0.06), bark);
    let mut out = closest(pot, trunk);
    let crowns = [
        (Vec3::new(0.0, 0.45, 0.0), 0.42),
        (Vec3::new(-0.35, 0.25, 0.15), 0.27),
        (Vec3::new(0.32, 0.3, -0.2), 0.3),
    ];
    for (c, r) in crowns {
        let branch = (capsule(p, Vec3::new(0.03, 0.0, 0.0), c, 0.035), bark);
        // strongly perturbed surface → thin-structure foliage
        let blob = (sphere(p, c, r) + 0.09 * value_noise(p, 16.0), leaf);
        out = closest(out, closest(branch, blob));
    }
    out
}

/// Hotdog — plate with two buns and a sausage.
pub fn hotdog(p: Vec3) -> (f32, Rgb) {
    let plate_c = Rgb::new(0.9, 0.9, 0.92);
    let bun = Rgb::new(0.85, 0.6, 0.3);
    let sausage_c = Rgb::new(0.65, 0.2, 0.12);

    let plate = (cylinder_y(p, Vec3::new(0.0, -0.6, 0.0), 0.8, 0.05), plate_c);
    let bun1 =
        (capsule(p, Vec3::new(-0.14, -0.45, -0.45), Vec3::new(-0.14, -0.45, 0.45), 0.14), bun);
    let bun2 = (capsule(p, Vec3::new(0.14, -0.45, -0.45), Vec3::new(0.14, -0.45, 0.45), 0.14), bun);
    let sausage =
        (capsule(p, Vec3::new(0.0, -0.34, -0.52), Vec3::new(0.0, -0.34, 0.52), 0.09), sausage_c);
    [bun1, bun2, sausage].into_iter().fold(plate, closest)
}

/// Palace — stepped terraces, four corner towers with conical roofs, a dome.
pub fn palace(p: Vec3) -> (f32, Rgb) {
    let stone = Rgb::new(0.75, 0.7, 0.6);
    let roof = Rgb::new(0.5, 0.15, 0.1);
    let gold = Rgb::new(0.85, 0.7, 0.2);

    let tex = 0.012 * value_noise(p, 24.0);
    let base = (boxed(p, Vec3::new(0.0, -0.7, 0.0), Vec3::new(0.85, 0.12, 0.85)) + tex, stone);
    let tier2 = (boxed(p, Vec3::new(0.0, -0.42, 0.0), Vec3::new(0.6, 0.16, 0.6)) + tex, stone);
    let tier3 = (boxed(p, Vec3::new(0.0, -0.1, 0.0), Vec3::new(0.4, 0.18, 0.4)) + tex, stone);
    let dome = (sphere(p, Vec3::new(0.0, 0.25, 0.0), 0.3), gold);
    let mut out = [tier2, tier3, dome].into_iter().fold(base, closest);
    for (sx, sz) in [(-1.0f32, -1.0f32), (1.0, -1.0), (-1.0, 1.0), (1.0, 1.0)] {
        let c = Vec3::new(0.72 * sx, 0.0, 0.72 * sz);
        let tower = (cylinder_y(p, c - Vec3::new(0.0, 0.35, 0.0), 0.1, 0.5) + tex, stone);
        let cap = (cone_y(p, c + Vec3::new(0.0, 0.15, 0.0), 0.14, 0.3), roof);
        out = closest(out, closest(tower, cap));
    }
    out
}

/// Fountain — basin ring, pedestal, bowl, central jet with noisy water dome.
pub fn fountain(p: Vec3) -> (f32, Rgb) {
    let stone = Rgb::new(0.65, 0.65, 0.62);
    let water = Rgb::new(0.25, 0.45, 0.65);

    let tex = 0.015 * value_noise(p, 18.0);
    let basin = (torus_xz(p, Vec3::new(0.0, -0.7, 0.0), 0.68, 0.12) + tex, stone);
    let pool = (
        cylinder_y(p, Vec3::new(0.0, -0.74, 0.0), 0.64, 0.04) + 0.02 * value_noise(p, 12.0),
        water,
    );
    let pedestal = (cylinder_y(p, Vec3::new(0.0, -0.45, 0.0), 0.1, 0.3) + tex, stone);
    let bowl_core = cylinder_y(p, Vec3::new(0.0, -0.08, 0.0), 0.38, 0.08);
    let bowl = (subtract(bowl_core, sphere(p, Vec3::new(0.0, 0.06, 0.0), 0.34)) + tex, stone);
    let jet = (capsule(p, Vec3::new(0.0, -0.1, 0.0), Vec3::new(0.0, 0.55, 0.0), 0.05), water);
    let spray = (sphere(p, Vec3::new(0.0, 0.55, 0.0), 0.18) + 0.06 * value_noise(p, 20.0), water);
    [pool, pedestal, bowl, jet, spray].into_iter().fold(basin, closest)
}

/// Family — four stylized figures of decreasing height on a ground slab.
pub fn family(p: Vec3) -> (f32, Rgb) {
    let ground = Rgb::new(0.4, 0.4, 0.38);
    let coats = [
        Rgb::new(0.2, 0.3, 0.6),
        Rgb::new(0.6, 0.25, 0.2),
        Rgb::new(0.25, 0.5, 0.3),
        Rgb::new(0.65, 0.55, 0.2),
    ];
    let skin = Rgb::new(0.85, 0.68, 0.55);

    let slab = (boxed(p, Vec3::new(0.0, -0.85, 0.0), Vec3::new(0.9, 0.06, 0.5)), ground);
    let mut out = slab;
    let xs = [-0.55f32, -0.18, 0.2, 0.55];
    let heights = [0.75f32, 0.7, 0.45, 0.35];
    for i in 0..4 {
        let foot = Vec3::new(xs[i], -0.79, 0.0);
        let top = foot + Vec3::new(0.0, heights[i], 0.0);
        let body = (capsule(p, foot, top, 0.1 + 0.02 * (i % 2) as f32), coats[i]);
        let head = (sphere(p, top + Vec3::new(0.0, 0.09, 0.0), 0.085), skin);
        out = closest(out, closest(body, head));
    }
    out
}

/// Fox — ellipsoid body, head with two conical ears, bushy tail.
pub fn fox(p: Vec3) -> (f32, Rgb) {
    let fur = Rgb::new(0.8, 0.4, 0.1);
    let belly = Rgb::new(0.9, 0.85, 0.8);
    let dark = Rgb::new(0.2, 0.12, 0.08);

    let fuzz = 0.025 * value_noise(p, 18.0);
    // ellipsoid body via anisotropic scaling
    let q = (p - Vec3::new(0.0, -0.35, 0.0)).hadamard(Vec3::new(1.0, 1.6, 0.8));
    let body = (q.norm() - 0.42 + fuzz, fur);
    let chest = (sphere(p, Vec3::new(0.0, -0.35, 0.28), 0.28) + fuzz, belly);
    let head = (sphere(p, Vec3::new(0.0, 0.15, 0.3), 0.22) + fuzz, fur);
    let snout = (
        cone_y(
            p.hadamard(Vec3::new(1.0, 1.0, -1.0)) + Vec3::new(0.0, 0.1, 0.52),
            Vec3::ZERO,
            0.1,
            0.25,
        ),
        dark,
    );
    let ear_l = (cone_y(p, Vec3::new(-0.12, 0.28, 0.25), 0.08, 0.22), dark);
    let ear_r = (cone_y(p, Vec3::new(0.12, 0.28, 0.25), 0.08, 0.22), dark);
    let tail =
        (capsule(p, Vec3::new(0.0, -0.5, -0.3), Vec3::new(0.15, -0.1, -0.75), 0.14) + fuzz, fur);
    let tip = (sphere(p, Vec3::new(0.15, -0.1, -0.75), 0.1), belly);
    let legs = {
        let mut d = (f32::INFINITY, fur);
        for (sx, sz) in [(-1.0f32, -1.0f32), (1.0, -1.0), (-1.0, 1.0), (1.0, 1.0)] {
            let top = Vec3::new(0.18 * sx, -0.5, 0.15 * sz);
            let bottom = Vec3::new(0.18 * sx, -0.85, 0.15 * sz);
            d = closest(d, (capsule(p, top, bottom, 0.05), dark));
        }
        d
    };
    [chest, head, snout, ear_l, ear_r, tail, tip, legs].into_iter().fold(body, closest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::SceneField;

    fn all_scenes() -> Vec<SdfScene> {
        vec![
            SdfScene::new("lego", lego, 50.0, 0.03),
            SdfScene::new("mic", mic, 50.0, 0.03),
            SdfScene::new("ship", ship, 50.0, 0.03),
            SdfScene::new("chair", chair, 50.0, 0.03),
            SdfScene::new("ficus", ficus, 50.0, 0.03),
            SdfScene::new("hotdog", hotdog, 50.0, 0.03),
            SdfScene::new("palace", palace, 50.0, 0.03),
            SdfScene::new("fountain", fountain, 50.0, 0.03),
            SdfScene::new("family", family, 50.0, 0.03),
            SdfScene::new("fox", fox, 50.0, 0.03),
        ]
    }

    #[test]
    fn every_scene_has_content_and_background() {
        for s in all_scenes() {
            let occ = s.occupancy(1.0, 24);
            assert!(occ > 0.005, "{} is almost empty (occ={occ})", s.name());
            assert!(occ < 0.6, "{} has too little background (occ={occ})", s.name());
        }
    }

    #[test]
    fn density_zero_outside_bounds() {
        for s in all_scenes() {
            assert_eq!(s.density(Vec3::splat(1.5)), 0.0, "{}", s.name());
        }
    }

    #[test]
    fn albedo_channels_in_unit_range() {
        for s in all_scenes() {
            for i in 0..64 {
                let p = Vec3::new(
                    ((i * 7) % 16) as f32 / 8.0 - 1.0,
                    ((i * 5) % 16) as f32 / 8.0 - 1.0,
                    ((i * 3) % 16) as f32 / 8.0 - 1.0,
                );
                let a = s.albedo(p);
                assert!(a.r >= 0.0 && a.r <= 1.0);
                assert!(a.g >= 0.0 && a.g <= 1.0);
                assert!(a.b >= 0.0 && a.b <= 1.0);
            }
        }
    }

    #[test]
    fn scene_fields_are_deterministic() {
        for s in all_scenes() {
            let p = Vec3::new(0.1, -0.2, 0.3);
            assert_eq!(s.density(p), s.density(p));
            assert_eq!(s.albedo(p), s.albedo(p));
        }
    }

    #[test]
    fn scenes_are_distinct() {
        let scenes = all_scenes();
        // compare coarse density fingerprints pairwise
        let fingerprint = |s: &SdfScene| -> Vec<bool> {
            let mut v = Vec::new();
            for i in 0..6 {
                for j in 0..6 {
                    for k in 0..6 {
                        let p = Vec3::new(
                            i as f32 / 3.0 - 1.0,
                            j as f32 / 3.0 - 1.0,
                            k as f32 / 3.0 - 1.0,
                        );
                        v.push(s.density(p) > 1.0);
                    }
                }
            }
            v
        };
        let fps: Vec<_> = scenes.iter().map(fingerprint).collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(
                    fps[i],
                    fps[j],
                    "{} and {} look identical",
                    scenes[i].name(),
                    scenes[j].name()
                );
            }
        }
    }
}
