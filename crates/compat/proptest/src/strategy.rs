//! The [`Strategy`] trait and the combinators the workspace tests use.

use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Size argument accepted by [`crate::collection::vec`] and
/// [`crate::collection::hash_set`]: a fixed `usize` or a half-open /
/// inclusive range.
pub trait SizeRange {
    /// Lower (inclusive) and upper (exclusive) bounds on the size.
    fn pick_bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn pick_bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl SizeRange for Range<usize> {
    fn pick_bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick_bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// Strategy returned by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    bounds: (usize, usize),
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, bounds: (usize, usize)) -> Self {
        assert!(bounds.0 < bounds.1, "empty size range for collection::vec");
        VecStrategy { element, bounds }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.bounds.0..self.bounds.1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy returned by [`crate::collection::hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    bounds: (usize, usize),
}

impl<S: Strategy> HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    pub(crate) fn new(element: S, bounds: (usize, usize)) -> Self {
        assert!(bounds.0 < bounds.1, "empty size range for collection::hash_set");
        HashSetStrategy { element, bounds }
    }
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = rng.gen_range(self.bounds.0..self.bounds.1);
        let mut set = HashSet::with_capacity(target);
        // Bounded retries: a small element domain may not admit `target`
        // distinct values, in which case the set comes back smaller.
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 20 + 64 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Strategy returned by [`crate::array::uniform4`] / [`crate::array::uniform8`].
#[derive(Debug, Clone)]
pub struct UniformArray<S, const N: usize> {
    element: S,
    _marker: PhantomData<[(); N]>,
}

impl<S: Strategy + Clone, const N: usize> UniformArray<S, N> {
    pub(crate) fn new(element: S) -> Self {
        UniformArray { element, _marker: PhantomData }
    }
}

impl<S: Strategy + Clone, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}
