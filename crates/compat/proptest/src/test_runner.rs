//! Case generation and failure plumbing for the [`proptest!`](crate::proptest)
//! macro.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; the runner draws a fresh one.
    Reject(String),
    /// A `prop_assert!` failed; the runner panics with the inputs.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds a generator from the test name and case index, so every run of
    /// the suite sees the same cases.
    pub fn deterministic(test_name: &str, case_index: u64) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        seed ^= case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
