//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the ASDR property tests use: the [`proptest!`]
//! macro, `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//! `prop_assume!`, the [`strategy::Strategy`] trait with `prop_map`, range
//! and tuple strategies, [`collection::vec`], [`collection::hash_set`] and
//! [`array::uniform4`] / [`array::uniform8`].
//!
//! Each `#[test]` runs a fixed number of deterministic cases seeded from the
//! test name, and failures report the generated inputs. Unlike the real
//! proptest there is no shrinking and no persisted failure file.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies producing fixed-size arrays.
pub mod array {
    use crate::strategy::{Strategy, UniformArray};

    /// Strategy for `[S::Value; 4]` drawing each element from `strategy`.
    pub fn uniform4<S: Strategy + Clone>(strategy: S) -> UniformArray<S, 4> {
        UniformArray::new(strategy)
    }

    /// Strategy for `[S::Value; 8]` drawing each element from `strategy`.
    pub fn uniform8<S: Strategy + Clone>(strategy: S) -> UniformArray<S, 8> {
        UniformArray::new(strategy)
    }
}

/// Strategies producing collections.
pub mod collection {
    use crate::strategy::{HashSetStrategy, SizeRange, Strategy, VecStrategy};
    use std::hash::Hash;

    /// Strategy for a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        VecStrategy::new(element, size.pick_bounds())
    }

    /// Strategy for a `HashSet` with a target size drawn from `size`.
    ///
    /// Element generation retries on duplicates; if the element domain is
    /// too small to reach the target size the set is returned smaller (the
    /// real proptest rejects instead, which no test here relies on).
    pub fn hash_set<S>(element: S, size: impl SizeRange) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy::new(element, size.pick_bounds())
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property-based tests.
///
/// ```text
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            const CASES: u32 = 96;
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            let mut case_index: u64 = 0;
            while accepted < CASES {
                assert!(
                    rejected < CASES * 32,
                    "proptest: too many prop_assume! rejections in {}",
                    stringify!($name)
                );
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case_index);
                case_index += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => rejected += 1,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "proptest case #{} of {} failed: {}\ninputs: {:#?}",
                        case_index - 1,
                        stringify!($name),
                        msg,
                        ($(&$arg,)*)
                    ),
                }
            }
        }
    )*};
}

/// Fails the current case (recoverably) if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (without failing) if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
