//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset the ASDR benches use — [`black_box`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark is timed with a short calibration pass followed by
//! fixed-count measurement batches; the mean, min, and max per-iteration
//! wall-clock times are printed, and [`write_results_json`] persists them to
//! `target/bench-results.json` (override with `BENCH_RESULTS_PATH`) so
//! `scripts/bench_check.sh` can compare runs against a committed baseline.
//! There is no statistical analysis and no HTML report.

#![warn(missing_docs)]

pub use std::hint::black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(300);
/// Number of measurement batches reported.
const BATCHES: u32 = 10;

/// Entry point handed to benchmark functions, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Registers and immediately runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Registers and immediately runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Accepted for API compatibility; the shim ignores the sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores the measurement time.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Closes the group. No-op in the shim.
    pub fn finish(self) {}
}

/// Timing loop handle, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iters_per_batch: u64,
    batch_times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, preventing its result from being optimised away.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                black_box(routine());
            }
            self.batch_times.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    // Calibrate: find an iteration count whose batch lasts a measurable slice
    // of the target budget.
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        let mut b = Bencher { iters_per_batch: iters, batch_times: Vec::new() };
        // The routine runs BATCHES batches; use the calibration run directly
        // once it is long enough.
        f(&mut b);
        let elapsed = start.elapsed();
        if b.batch_times.is_empty() {
            println!("{name:<48} (no iterations recorded)");
            return;
        }
        if elapsed >= MEASURE_TARGET || iters >= 1 << 24 {
            report(name, iters, &b.batch_times);
            return;
        }
        let grow = (MEASURE_TARGET.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 128);
        iters = iters.saturating_mul(grow as u64);
    }
}

fn report(name: &str, iters: u64, batches: &[Duration]) {
    let per_iter: Vec<f64> = batches.iter().map(|d| d.as_nanos() as f64 / iters as f64).collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("{name:<48} time: [{} {} {}]", fmt_ns(min), fmt_ns(mean), fmt_ns(max));
    results().lock().unwrap().push(BenchResult {
        name: name.to_string(),
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
    });
}

/// One benchmark's summary, as written to the JSON dump.
#[derive(Debug, Clone)]
struct BenchResult {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

fn results() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());
    &RESULTS
}

/// Default location of the JSON dump, relative to the working directory.
pub const DEFAULT_RESULTS_PATH: &str = "target/bench-results.json";

/// Writes every benchmark recorded so far to the JSON results file
/// (`BENCH_RESULTS_PATH` or [`DEFAULT_RESULTS_PATH`]), merging with entries
/// already present — `cargo bench` runs one process per bench target, and
/// each appends its benches to the shared dump. The generated
/// [`criterion_main!`] calls this automatically.
///
/// Entries persist across invocations (a partial run updates only its own
/// benches), so regression gating must start from a clean dump: delete the
/// file, run the full suite, then run `scripts/bench_check.sh` — which
/// fails on baseline entries the dump is missing. `make bench-check` and
/// the nightly workflow encode exactly that sequence.
pub fn write_results_json() {
    // cargo runs bench binaries with the *package* dir as CWD; resolve the
    // default path against the workspace root (nearest ancestor holding
    // Cargo.lock) so every bench target appends to one shared dump
    let path = std::env::var("BENCH_RESULTS_PATH").unwrap_or_else(|_| {
        workspace_root()
            .map(|r| r.join(DEFAULT_RESULTS_PATH).to_string_lossy().into_owned())
            .unwrap_or_else(|| DEFAULT_RESULTS_PATH.to_string())
    });
    let fresh = results().lock().unwrap().clone();
    if fresh.is_empty() {
        return;
    }
    let existing =
        std::fs::read_to_string(&path).map(|s| parse_results_json(&s)).unwrap_or_default();
    let mut merged: Vec<BenchResult> =
        existing.into_iter().filter(|old| !fresh.iter().any(|new| new.name == old.name)).collect();
    merged.extend(fresh);
    merged.sort_by(|a, b| a.name.cmp(&b.name));
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let out = render_results_json(&merged);
    match std::fs::write(&path, out) {
        Ok(()) => println!("bench results written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// The nearest ancestor of the working directory containing `Cargo.lock`.
fn workspace_root() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Renders the dump: one entry per line, the exact format
/// [`parse_results_json`] reads back.
fn render_results_json(rows: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\":{:?},\"mean_ns\":{:.2},\"min_ns\":{:.2},\"max_ns\":{:.2}}}{comma}\n",
            r.name, r.mean_ns, r.min_ns, r.max_ns
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses the dump this shim writes (one entry per line). Only needs to
/// understand its own output format.
fn parse_results_json(s: &str) -> Vec<BenchResult> {
    let field = |line: &str, key: &str| -> Option<f64> {
        let idx = line.find(&format!("\"{key}\":"))?;
        let rest = &line[idx + key.len() + 3..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].trim().parse().ok()
    };
    s.lines()
        .filter_map(|line| {
            let line = line.trim();
            let start = line.find("\"name\":\"")? + 8;
            let end = start + line[start..].find('"')?;
            Some(BenchResult {
                name: line[start..end].to_string(),
                mean_ns: field(line, "mean_ns")?,
                min_ns: field(line, "min_ns")?,
                max_ns: field(line, "max_ns")?,
            })
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring criterion's macro of
/// the same name. After all groups finish, the per-bench means are appended
/// to the JSON results dump (see [`write_results_json`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_results_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_dump_round_trips_through_the_parser() {
        let rows = [
            BenchResult { name: "grp/alpha".into(), mean_ns: 123.45, min_ns: 100.0, max_ns: 150.5 },
            BenchResult { name: "beta".into(), mean_ns: 9.87, min_ns: 9.0, max_ns: 11.0 },
        ];
        let parsed = parse_results_json(&render_results_json(&rows));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "grp/alpha");
        assert!((parsed[0].mean_ns - 123.45).abs() < 1e-9);
        assert!((parsed[1].max_ns - 11.0).abs() < 1e-9);
    }

    #[test]
    fn parser_ignores_garbage_lines() {
        let parsed = parse_results_json("{\n  \"benches\": [\n  not json at all\n  ]\n}\n");
        assert!(parsed.is_empty());
    }
}
