//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset the ASDR benches use — [`black_box`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark is timed with a short calibration pass followed by
//! fixed-count measurement batches; the mean, min, and max per-iteration
//! wall-clock times are printed. There is no statistical analysis, no
//! comparison with saved baselines, and no HTML report.

#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(300);
/// Number of measurement batches reported.
const BATCHES: u32 = 10;

/// Entry point handed to benchmark functions, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Registers and immediately runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Registers and immediately runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Accepted for API compatibility; the shim ignores the sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores the measurement time.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Closes the group. No-op in the shim.
    pub fn finish(self) {}
}

/// Timing loop handle, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iters_per_batch: u64,
    batch_times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, preventing its result from being optimised away.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                black_box(routine());
            }
            self.batch_times.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    // Calibrate: find an iteration count whose batch lasts a measurable slice
    // of the target budget.
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        let mut b = Bencher { iters_per_batch: iters, batch_times: Vec::new() };
        // The routine runs BATCHES batches; use the calibration run directly
        // once it is long enough.
        f(&mut b);
        let elapsed = start.elapsed();
        if b.batch_times.is_empty() {
            println!("{name:<48} (no iterations recorded)");
            return;
        }
        if elapsed >= MEASURE_TARGET || iters >= 1 << 24 {
            report(name, iters, &b.batch_times);
            return;
        }
        let grow = (MEASURE_TARGET.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 128);
        iters = iters.saturating_mul(grow as u64);
    }
}

fn report(name: &str, iters: u64, batches: &[Duration]) {
    let per_iter: Vec<f64> = batches.iter().map(|d| d.as_nanos() as f64 / iters as f64).collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("{name:<48} time: [{} {} {}]", fmt_ns(min), fmt_ns(mean), fmt_ns(max));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring criterion's macro of
/// the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
