//! Offline stand-in for the `rand` crate, covering the 0.8-era subset the
//! ASDR workspace uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The generator is SplitMix64 — deterministic and statistically adequate
//! for tests and procedural initialisation, but **not** cryptographic, and
//! its value streams do not match the real `rand` crate.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly from an `RngCore` (the shim's
/// equivalent of sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// Types over which a uniform range can be sampled.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = (lo as f64 + unit * (hi as f64 - lo as f64)) as $t;
                // the f64->$t rounding at the top of the range can land
                // exactly on `hi`; keep the half-open contract
                if v < hi {
                    v
                } else {
                    hi.next_down()
                }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_range_inclusive_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                if lo >= hi {
                    return lo;
                }
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_range_inclusive_float!(f32, f64);

macro_rules! impl_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = StdRng::seed_from_u64(7).gen();
        let b: u64 = StdRng::seed_from_u64(7).gen();
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let i = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..4096 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.05 && hi > 0.95);
    }
}
