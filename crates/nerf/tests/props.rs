//! Property-based tests of the neural-rendering substrates.

use asdr_math::Vec3;
use asdr_nerf::embedding::EmbeddingSet;
use asdr_nerf::encoder::HashEncoder;
use asdr_nerf::grid::GridConfig;
use asdr_nerf::hash::{dense_index, spatial_hash};
use asdr_nerf::mlp::{Activation, Dense, Mlp};
use proptest::prelude::*;

fn tiny_encoder_with(fill: u64) -> HashEncoder {
    let cfg = GridConfig::tiny();
    let mut set = EmbeddingSet::new(&cfg);
    let mut state = fill.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    for l in 0..cfg.levels {
        for v in set.table_mut(l).params_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = ((state & 0xffff) as f32 / 32768.0) - 1.0;
        }
    }
    HashEncoder::new(cfg, set)
}

proptest! {
    #[test]
    fn spatial_hash_stays_in_table(x in 0u32..100_000, y in 0u32..100_000, z in 0u32..100_000) {
        for shift in [8u32, 12, 19] {
            let t = 1u32 << shift;
            prop_assert!(spatial_hash(x, y, z, t) < t);
        }
    }

    #[test]
    fn dense_index_is_injective_on_random_pairs(
        a in (0u32..16, 0u32..16, 0u32..16),
        b in (0u32..16, 0u32..16, 0u32..16),
    ) {
        let (i, j) = (dense_index(a.0, a.1, a.2, 16), dense_index(b.0, b.1, b.2, 16));
        prop_assert_eq!(i == j, a == b);
    }

    #[test]
    fn encoder_output_is_finite_everywhere(
        x in -0.5f32..1.5, y in -0.5f32..1.5, z in -0.5f32..1.5, seed in 0u64..32,
    ) {
        let enc = tiny_encoder_with(seed);
        let mut out = vec![0.0; enc.encoded_dim()];
        enc.encode(Vec3::new(x, y, z), &mut out);
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn encoder_is_locally_continuous(
        x in 0.1f32..0.9, y in 0.1f32..0.9, z in 0.1f32..0.9, seed in 0u64..16,
    ) {
        let enc = tiny_encoder_with(seed);
        let eps = 5e-5;
        let mut a = vec![0.0; enc.encoded_dim()];
        let mut b = vec![0.0; enc.encoded_dim()];
        enc.encode(Vec3::new(x, y, z), &mut a);
        enc.encode(Vec3::new(x + eps, y, z), &mut b);
        // feature change bounded by a Lipschitz constant of the grid
        // (finest tiny level has 64 cells, features in [-1,1]: |Δ| ≤ 64·eps·2 per level pair)
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 64.0 * eps * 4.0 + 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn encoder_trace_shape_is_invariant(
        x in 0.0f32..1.0, y in 0.0f32..1.0, z in 0.0f32..1.0,
    ) {
        let enc = tiny_encoder_with(1);
        let mut out = vec![0.0; enc.encoded_dim()];
        let mut trace = Vec::new();
        enc.encode_traced(Vec3::new(x, y, z), &mut out, &mut trace);
        prop_assert_eq!(trace.len(), 8 * enc.config().levels);
        // all rows within the tables
        for a in &trace {
            let table = enc.tables().table(a.level as usize);
            prop_assert!(a.row < table.entries());
        }
    }

    #[test]
    fn linear_mlp_is_additive(
        x1 in proptest::collection::vec(-1.0f32..1.0, 4),
        x2 in proptest::collection::vec(-1.0f32..1.0, 4),
        w in proptest::collection::vec(-1.0f32..1.0, 12),
    ) {
        // with Activation::None the MLP is a linear map: f(x1+x2) = f(x1)+f(x2)
        let mut layer = Dense::zeros(4, 3, Activation::None);
        layer.weights_mut().copy_from_slice(&w);
        let mlp = Mlp::new(vec![layer]);
        let sum: Vec<f32> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let y12 = mlp.forward(&sum);
        let y1 = mlp.forward(&x1);
        let y2 = mlp.forward(&x2);
        for i in 0..3 {
            prop_assert!((y12[i] - (y1[i] + y2[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn relu_mlp_output_is_subadditive_bound(
        x in proptest::collection::vec(-1.0f32..1.0, 4),
        w in proptest::collection::vec(-1.0f32..1.0, 8),
    ) {
        // ReLU outputs are within [0, Σ|w|·|x|]
        let mut layer = Dense::zeros(4, 2, Activation::Relu);
        layer.weights_mut().copy_from_slice(&w);
        let mlp = Mlp::new(vec![layer]);
        let y = mlp.forward(&x);
        let bound: f32 = w.iter().map(|v| v.abs()).sum::<f32>() * x.iter().map(|v| v.abs()).fold(0.0, f32::max);
        for v in y {
            prop_assert!(v >= 0.0);
            prop_assert!(v <= bound + 1e-4);
        }
    }

    #[test]
    fn grid_resolution_is_monotone_for_random_configs(
        levels in 2usize..12, base in 4u32..32, growth in 1u32..6,
    ) {
        let cfg = GridConfig {
            levels,
            base_res: base,
            max_res: base * (1 + growth),
            table_size: 1 << 12,
            feat_dim: 2,
        };
        prop_assume!(cfg.validate().is_ok());
        let mut prev = 0;
        for l in 0..levels {
            let r = cfg.level_resolution(l);
            prop_assert!(r >= prev);
            prev = r;
        }
    }
}
