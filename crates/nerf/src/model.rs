//! The combined Instant-NGP model: encoder + density MLP + color MLP.
//!
//! Network shapes follow the paper / Instant-NGP reference:
//!
//! * density MLP: `encoded_dim → 64 → 16`, output `[σ_raw, geo-feature₁₅]`,
//! * color MLP: `16 (SH) + 15 (geo) = 31 → 64 → 64 → 3`.
//!
//! The density MLP runs once per sample point; the color MLP consumes the
//! 15-dim geometry feature together with the SH-encoded view direction.
//! ASDR's color–density decoupling (§4.3) skips the color MLP for most
//! points; the split exposed here (`query_density` / `query_color`) is what
//! makes that optimization expressible.

use crate::encoder::HashEncoder;
use crate::mlp::Mlp;
use crate::occupancy::OccupancyGrid;
use asdr_math::sh::{eval_sh4, SH_DEGREE4_COEFFS};
use asdr_math::{Aabb, Rgb, Vec3};

/// A queryable radiance field with a decoupled density/color interface.
///
/// The split mirrors the two-MLP structure the ASDR paper exploits:
/// [`RadianceModel::density_into`] runs the (cheap) density path and leaves a
/// geometry feature in the scratch; [`RadianceModel::color_into`] then
/// finishes the (expensive) color path for the *same* point. ASDR's
/// color–density decoupling calls the former for every sample and the latter
/// for only one sample per group.
pub trait RadianceModel {
    /// Reusable per-thread scratch for query state.
    type Scratch;

    /// Allocates scratch for the query methods.
    fn make_query_scratch(&self) -> Self::Scratch;

    /// World-space bounds of the modelled scene.
    fn model_bounds(&self) -> Aabb;

    /// Density query; leaves the geometry feature in `scratch`.
    fn density_into(&self, p_world: Vec3, scratch: &mut Self::Scratch) -> f32;

    /// Color query for the point of the last [`Self::density_into`] call.
    fn color_into(&self, view_dir: Vec3, scratch: &mut Self::Scratch) -> Rgb;

    /// Per-point FLOPs of `(encoding, density, color)` stages.
    fn stage_flops(&self) -> (u64, u64, u64);
}

/// Geometry-feature width handed from the density MLP to the color MLP.
pub const GEO_FEAT_DIM: usize = 15;
/// Density MLP output width (`1 + GEO_FEAT_DIM`).
pub const DENSITY_OUT_DIM: usize = 1 + GEO_FEAT_DIM;
/// Color MLP input width (`SH + GEO_FEAT_DIM`).
pub const COLOR_IN_DIM: usize = SH_DEGREE4_COEFFS + GEO_FEAT_DIM;
/// Hidden width of both MLPs (Instant-NGP uses 64).
pub const HIDDEN_DIM: usize = 64;

/// Reusable scratch buffers for model queries (avoids per-point allocation).
#[derive(Debug, Clone)]
pub struct Scratch {
    encoded: Vec<f32>,
    density_out: Vec<f32>,
    color_in: Vec<f32>,
    color_out: Vec<f32>,
    mlp: Vec<f32>,
}

/// A fitted Instant-NGP model over a world-space bounding box.
#[derive(Debug, Clone)]
pub struct NgpModel {
    encoder: HashEncoder,
    density_mlp: Mlp,
    color_mlp: Mlp,
    bounds: Aabb,
    occupancy: OccupancyGrid,
}

impl NgpModel {
    /// Assembles a model.
    ///
    /// # Panics
    ///
    /// Panics if the MLP shapes do not match the expected layout.
    pub fn new(
        encoder: HashEncoder,
        density_mlp: Mlp,
        color_mlp: Mlp,
        bounds: Aabb,
        occupancy: OccupancyGrid,
    ) -> Self {
        assert_eq!(density_mlp.in_dim(), encoder.encoded_dim(), "density MLP input mismatch");
        assert_eq!(density_mlp.out_dim(), DENSITY_OUT_DIM, "density MLP must emit 1+15");
        assert_eq!(color_mlp.in_dim(), COLOR_IN_DIM, "color MLP input mismatch");
        assert_eq!(color_mlp.out_dim(), 3, "color MLP must emit RGB");
        NgpModel { encoder, density_mlp, color_mlp, bounds, occupancy }
    }

    /// The occupancy grid masking empty space (see [`OccupancyGrid`]).
    pub fn occupancy(&self) -> &OccupancyGrid {
        &self.occupancy
    }

    /// Whether `p_world` lies in occupied space. Unoccupied samples always
    /// predict zero density (the encode + MLP work is still performed, so
    /// per-sample cost accounting stays uniform, matching the paper's fixed
    /// per-ray sample budget).
    pub fn is_occupied(&self, p_world: Vec3) -> bool {
        self.occupancy.occupied_world(p_world)
    }

    /// The hash encoder.
    pub fn encoder(&self) -> &HashEncoder {
        &self.encoder
    }

    /// Mutable access to the hash encoder (used by the SGD refinement pass).
    pub fn encoder_mut(&mut self) -> &mut HashEncoder {
        &mut self.encoder
    }

    /// The density MLP.
    pub fn density_mlp(&self) -> &Mlp {
        &self.density_mlp
    }

    /// The color MLP.
    pub fn color_mlp(&self) -> &Mlp {
        &self.color_mlp
    }

    /// World-space bounds of the modelled scene.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Allocates scratch buffers for the `_into` query variants.
    pub fn make_scratch(&self) -> Scratch {
        let mlp_len =
            self.density_mlp.make_scratch().len().max(self.color_mlp.make_scratch().len());
        Scratch {
            encoded: vec![0.0; self.encoder.encoded_dim()],
            density_out: vec![0.0; DENSITY_OUT_DIM],
            color_in: vec![0.0; COLOR_IN_DIM],
            color_out: vec![0.0; 3],
            mlp: vec![0.0; mlp_len],
        }
    }

    /// Density query: returns `σ ≥ 0` and the 15-dim geometry feature.
    /// Allocating convenience wrapper around [`Self::query_density_into`].
    pub fn query_density(&self, p_world: Vec3) -> (f32, Vec<f32>) {
        let mut s = self.make_scratch();
        let sigma = self.query_density_into(p_world, &mut s);
        (sigma, s.density_out[1..].to_vec())
    }

    /// Density query into caller scratch; the geometry feature is left in
    /// `scratch.density_out[1..]` for a subsequent
    /// [`Self::query_color_into`].
    pub fn query_density_into(&self, p_world: Vec3, scratch: &mut Scratch) -> f32 {
        let p01 = self.bounds.normalize(p_world);
        self.encoder.encode(p01, &mut scratch.encoded);
        self.density_mlp.forward_scratch(
            &scratch.encoded,
            &mut scratch.density_out,
            &mut scratch.mlp,
        );
        if !self.occupancy.occupied_world(p_world) {
            return 0.0;
        }
        scratch.density_out[0].max(0.0)
    }

    /// Color query from an explicit geometry feature.
    ///
    /// # Panics
    ///
    /// Panics if `geo_feat` is not 15-dimensional.
    pub fn query_color(&self, geo_feat: &[f32], view_dir: Vec3) -> Rgb {
        assert_eq!(geo_feat.len(), GEO_FEAT_DIM);
        let mut s = self.make_scratch();
        s.density_out[1..].copy_from_slice(geo_feat);
        self.query_color_into(view_dir, &mut s)
    }

    /// Color query using the geometry feature left in `scratch` by the last
    /// [`Self::query_density_into`] call.
    pub fn query_color_into(&self, view_dir: Vec3, scratch: &mut Scratch) -> Rgb {
        eval_sh4(view_dir, &mut scratch.color_in[..SH_DEGREE4_COEFFS]);
        scratch.color_in[SH_DEGREE4_COEFFS..].copy_from_slice(&scratch.density_out[1..]);
        self.color_mlp.forward_scratch(&scratch.color_in, &mut scratch.color_out, &mut scratch.mlp);
        Rgb::new(scratch.color_out[0], scratch.color_out[1], scratch.color_out[2]).clamp01()
    }

    /// Combined density + color query (full per-point evaluation).
    pub fn query_point(&self, p_world: Vec3, view_dir: Vec3, scratch: &mut Scratch) -> (f32, Rgb) {
        let sigma = self.query_density_into(p_world, scratch);
        let color = self.query_color_into(view_dir, scratch);
        (sigma, color)
    }

    /// Per-point FLOPs of the three stages `(encoding, density, color)` —
    /// the quantities behind the Fig. 5 breakdown.
    pub fn flops_per_point(&self) -> (u64, u64, u64) {
        (self.encoder.flops_per_point(), self.density_mlp.flops(), self.color_mlp.flops())
    }
}

impl RadianceModel for NgpModel {
    type Scratch = Scratch;

    fn make_query_scratch(&self) -> Scratch {
        self.make_scratch()
    }

    fn model_bounds(&self) -> Aabb {
        self.bounds
    }

    fn density_into(&self, p_world: Vec3, scratch: &mut Scratch) -> f32 {
        self.query_density_into(p_world, scratch)
    }

    fn color_into(&self, view_dir: Vec3, scratch: &mut Scratch) -> Rgb {
        self.query_color_into(view_dir, scratch)
    }

    fn stage_flops(&self) -> (u64, u64, u64) {
        self.flops_per_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::EmbeddingSet;
    use crate::grid::GridConfig;
    use crate::mlp::{Activation, Dense};

    fn dummy_model() -> NgpModel {
        let cfg = GridConfig::tiny();
        let enc = HashEncoder::new(cfg.clone(), EmbeddingSet::new(&cfg));
        let density = Mlp::new(vec![
            Dense::zeros(enc.encoded_dim(), HIDDEN_DIM, Activation::Relu),
            Dense::zeros(HIDDEN_DIM, DENSITY_OUT_DIM, Activation::None),
        ]);
        let color = Mlp::new(vec![
            Dense::zeros(COLOR_IN_DIM, HIDDEN_DIM, Activation::Relu),
            Dense::zeros(HIDDEN_DIM, HIDDEN_DIM, Activation::Relu),
            Dense::zeros(HIDDEN_DIM, 3, Activation::None),
        ]);
        NgpModel::new(
            enc,
            density,
            color,
            Aabb::centered(1.0),
            crate::occupancy::OccupancyGrid::solid(Aabb::centered(1.0)),
        )
    }

    #[test]
    fn zero_model_returns_zero_density_black_color() {
        let m = dummy_model();
        let mut s = m.make_scratch();
        let (sigma, c) = m.query_point(Vec3::ZERO, Vec3::Z, &mut s);
        assert_eq!(sigma, 0.0);
        assert_eq!(c, Rgb::BLACK);
    }

    #[test]
    fn scratch_and_alloc_paths_agree() {
        let mut m = dummy_model();
        // give the model some nonzero parameters
        for l in 0..m.encoder().config().levels {
            for (i, v) in
                m.encoder_mut().tables_mut().table_mut(l).params_mut().iter_mut().enumerate()
            {
                *v = ((i % 7) as f32 - 3.0) * 0.1;
            }
        }
        let w = m.density_mlp.clone();
        let mut layers = w.layers().to_vec();
        for (i, v) in layers[0].weights_mut().iter_mut().enumerate() {
            *v = ((i % 5) as f32 - 2.0) * 0.05;
        }
        for (i, v) in layers[1].weights_mut().iter_mut().enumerate() {
            *v = ((i % 3) as f32 - 1.0) * 0.05;
        }
        m.density_mlp = Mlp::new(layers);

        let p = Vec3::new(0.2, -0.3, 0.4);
        let (sig_a, feat_a) = m.query_density(p);
        let mut s = m.make_scratch();
        let sig_b = m.query_density_into(p, &mut s);
        assert_eq!(sig_a, sig_b);
        assert_eq!(&feat_a[..], &s.density_out[1..]);
    }

    #[test]
    fn density_is_clamped_nonnegative() {
        let mut m = dummy_model();
        // bias the sigma output negative
        let mut layers = m.density_mlp.layers().to_vec();
        layers[1].bias_mut()[0] = -5.0;
        m.density_mlp = Mlp::new(layers);
        let (sigma, _) = m.query_density(Vec3::ZERO);
        assert_eq!(sigma, 0.0);
    }

    #[test]
    fn color_is_clamped_to_unit_range() {
        let mut m = dummy_model();
        let mut layers = m.color_mlp.layers().to_vec();
        layers[2].bias_mut().copy_from_slice(&[5.0, -5.0, 0.5]);
        m.color_mlp = Mlp::new(layers);
        let c = m.query_color(&[0.0; GEO_FEAT_DIM], Vec3::Z);
        assert_eq!(c, Rgb::new(1.0, 0.0, 0.5));
    }

    #[test]
    fn flops_split_matches_shapes() {
        let m = dummy_model();
        let (enc, den, col) = m.flops_per_point();
        assert!(enc > 0 && den > 0 && col > 0);
        // color MLP is the heavyweight (paper Fig. 5)
        assert!(col > den);
        assert!(den > enc);
    }
}
