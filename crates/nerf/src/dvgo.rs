//! DirectVoxGO-style dense-grid substrate (§8.1, Table 5 of the paper).
//!
//! DirectVoxGO models the scene with *dense* multi-resolution 3D grids and
//! no hashing — the paper lists it as the third model family ASDR's
//! optimizations apply to ("multi-resolution 3D grids, interpolation +
//! MLP"). This implementation stores one dense grid of four channels
//! (σ', r, g, b) per resolution level, decoded by trilinear interpolation
//! with coarse-to-fine residuals, exactly like the NGP fit but without the
//! hash (so no aliasing artifacts and no irregular addressing).

use crate::fit::SIGMA_SCALE;
use crate::model::RadianceModel;
use crate::occupancy::OccupancyGrid;
use asdr_math::interp::{trilinear_weights, CORNER_OFFSETS};
use asdr_math::sh::{eval_sh4, SH_DEGREE4_COEFFS};
use asdr_math::{Aabb, Rgb, Vec3};
use asdr_scenes::SceneField;

/// Channels stored per grid vertex: scaled density plus diffuse RGB.
pub const DVGO_CHANNELS: usize = 4;

/// DirectVoxGO configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DvgoConfig {
    /// Per-axis grid resolutions, coarse to fine.
    pub resolutions: Vec<u32>,
}

impl DvgoConfig {
    /// Evaluation-scale configuration (coarse-to-fine pyramid).
    pub fn small() -> Self {
        DvgoConfig { resolutions: vec![16, 48, 128] }
    }

    /// Unit-test configuration.
    pub fn tiny() -> Self {
        DvgoConfig { resolutions: vec![8, 24] }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if empty or not strictly ascending.
    pub fn validate(&self) -> Result<(), String> {
        if self.resolutions.is_empty() {
            return Err("need at least one resolution".into());
        }
        let mut prev = 1;
        for &r in &self.resolutions {
            if r < 2 {
                return Err("resolutions must be >= 2".into());
            }
            if r <= prev {
                return Err("resolutions must be strictly ascending".into());
            }
            prev = r;
        }
        Ok(())
    }

    /// Total stored parameters.
    pub fn total_params(&self) -> usize {
        self.resolutions
            .iter()
            .map(|&r| {
                let v = (r + 1) as usize;
                v * v * v * DVGO_CHANNELS
            })
            .sum()
    }
}

/// One dense grid level.
#[derive(Debug, Clone, PartialEq)]
struct DenseLevel {
    res: u32,
    /// `[vertex][channel]`, row-major vertices.
    data: Vec<f32>,
}

impl DenseLevel {
    fn vres(&self) -> u32 {
        self.res + 1
    }

    #[inline]
    fn vertex(&self, x: u32, y: u32, z: u32) -> &[f32] {
        let v = self.vres() as usize;
        let i = (x as usize + v * (y as usize + v * z as usize)) * DVGO_CHANNELS;
        &self.data[i..i + DVGO_CHANNELS]
    }

    fn vertex_mut(&mut self, x: u32, y: u32, z: u32) -> &mut [f32] {
        let v = self.vres() as usize;
        let i = (x as usize + v * (y as usize + v * z as usize)) * DVGO_CHANNELS;
        &mut self.data[i..i + DVGO_CHANNELS]
    }

    /// Trilinear interpolation of all channels at normalized `p01`.
    fn sample(&self, p01: Vec3, out: &mut [f32; DVGO_CHANNELS]) {
        let scaled = p01.clamp(0.0, 1.0) * self.res as f32;
        let hi = (self.res - 1) as f32;
        let bx = scaled.x.floor().min(hi).max(0.0);
        let by = scaled.y.floor().min(hi).max(0.0);
        let bz = scaled.z.floor().min(hi).max(0.0);
        let w = trilinear_weights(
            (scaled.x - bx).clamp(0.0, 1.0),
            (scaled.y - by).clamp(0.0, 1.0),
            (scaled.z - bz).clamp(0.0, 1.0),
        );
        out.fill(0.0);
        let (bx, by, bz) = (bx as u32, by as u32, bz as u32);
        for (i, &(dx, dy, dz)) in CORNER_OFFSETS.iter().enumerate() {
            let vtx = self.vertex(bx + dx, by + dy, bz + dz);
            for c in 0..DVGO_CHANNELS {
                out[c] += w[i] * vtx[c];
            }
        }
    }
}

/// Query scratch for [`DvgoModel`].
#[derive(Debug, Clone)]
pub struct DvgoScratch {
    channels: [f32; DVGO_CHANNELS],
    sh: [f32; SH_DEGREE4_COEFFS],
}

/// A fitted DirectVoxGO-style model.
#[derive(Debug, Clone)]
pub struct DvgoModel {
    levels: Vec<DenseLevel>,
    spec_sh: [f32; SH_DEGREE4_COEFFS],
    bounds: Aabb,
    occupancy: OccupancyGrid,
}

impl DvgoModel {
    /// Fits the dense pyramid to `field` (coarse-to-fine residual fill, no
    /// SGD needed — the grids are collision-free).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn fit(field: &dyn SceneField, cfg: &DvgoConfig) -> Self {
        cfg.validate().expect("invalid DVGO config");
        let bounds = field.bounds();
        let mut levels: Vec<DenseLevel> = Vec::with_capacity(cfg.resolutions.len());
        for &res in &cfg.resolutions {
            let v = (res + 1) as usize;
            let mut level = DenseLevel { res, data: vec![0.0; v * v * v * DVGO_CHANNELS] };
            for z in 0..=res {
                for y in 0..=res {
                    for x in 0..=res {
                        let p01 = Vec3::new(
                            x as f32 / res as f32,
                            y as f32 / res as f32,
                            z as f32 / res as f32,
                        );
                        let pw = bounds.denormalize(p01);
                        // residual against the coarser levels
                        let mut prior = [0.0f32; DVGO_CHANNELS];
                        let mut acc = [0.0f32; DVGO_CHANNELS];
                        for l in &levels {
                            l.sample(p01, &mut acc);
                            for c in 0..DVGO_CHANNELS {
                                prior[c] += acc[c];
                            }
                        }
                        let d = field.diffuse(pw);
                        let target = [field.density(pw) / SIGMA_SCALE, d.r, d.g, d.b];
                        let dst = level.vertex_mut(x, y, z);
                        for c in 0..DVGO_CHANNELS {
                            dst[c] = target[c] - prior[c];
                        }
                    }
                }
            }
            levels.push(level);
        }
        DvgoModel {
            levels,
            spec_sh: crate::fit::fit_specular_sh(),
            bounds,
            occupancy: OccupancyGrid::build(field, OccupancyGrid::DEFAULT_RES),
        }
    }

    /// Total stored parameters.
    pub fn param_count(&self) -> usize {
        self.levels.iter().map(|l| l.data.len()).sum()
    }

    /// Table lookups per point query (8 vertices × levels; every vertex
    /// fetch returns all four channels).
    pub fn lookups_per_point(&self) -> u64 {
        8 * self.levels.len() as u64
    }

    /// Occupancy mask.
    pub fn occupancy(&self) -> &OccupancyGrid {
        &self.occupancy
    }
}

impl RadianceModel for DvgoModel {
    type Scratch = DvgoScratch;

    fn make_query_scratch(&self) -> DvgoScratch {
        DvgoScratch { channels: [0.0; DVGO_CHANNELS], sh: [0.0; SH_DEGREE4_COEFFS] }
    }

    fn model_bounds(&self) -> Aabb {
        self.bounds
    }

    fn density_into(&self, p_world: Vec3, scratch: &mut DvgoScratch) -> f32 {
        let p01 = self.bounds.normalize(p_world);
        let mut acc = [0.0f32; DVGO_CHANNELS];
        scratch.channels = [0.0; DVGO_CHANNELS];
        for l in &self.levels {
            l.sample(p01, &mut acc);
            for (ch, a) in scratch.channels.iter_mut().zip(&acc) {
                *ch += a;
            }
        }
        if !self.occupancy.occupied_world(p_world) {
            return 0.0;
        }
        (scratch.channels[0] * SIGMA_SCALE).max(0.0)
    }

    fn color_into(&self, view_dir: Vec3, scratch: &mut DvgoScratch) -> Rgb {
        eval_sh4(view_dir, &mut scratch.sh);
        let spec: f32 = scratch.sh.iter().zip(&self.spec_sh).map(|(y, c)| y * c).sum();
        Rgb::new(scratch.channels[1] + spec, scratch.channels[2] + spec, scratch.channels[3] + spec)
            .clamp01()
    }

    fn stage_flops(&self) -> (u64, u64, u64) {
        // encoding = trilinear blends, density = scale+clamp, color = SH dot
        let encode = self.levels.len() as u64 * (24 + 8 * DVGO_CHANNELS as u64 * 2);
        let density = 2;
        let color = 2 * SH_DEGREE4_COEFFS as u64 + 6;
        (encode, density, color)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdr_scenes::registry;

    #[test]
    fn config_validation() {
        assert!(DvgoConfig::tiny().validate().is_ok());
        assert!(DvgoConfig { resolutions: vec![] }.validate().is_err());
        assert!(DvgoConfig { resolutions: vec![16, 16] }.validate().is_err());
        assert!(DvgoConfig { resolutions: vec![1] }.validate().is_err());
    }

    #[test]
    fn fitted_dvgo_tracks_field() {
        let scene = registry::handle("Mic").build();
        let model = DvgoModel::fit(scene.as_ref(), &DvgoConfig::tiny());
        let mut s = model.make_query_scratch();
        let inside = Vec3::new(0.0, 0.45, 0.0);
        let sigma = model.density_into(inside, &mut s);
        assert!(sigma > 0.3 * scene.density(inside), "{sigma}");
        assert_eq!(model.density_into(Vec3::new(0.9, 0.9, 0.9), &mut s), 0.0);
    }

    #[test]
    fn dense_grid_has_no_hash_artifacts() {
        // unlike the hashed NGP, the dense fit reproduces vertex values
        // exactly: query a fine-grid vertex position
        let scene = registry::handle("Hotdog").build();
        let cfg = DvgoConfig::tiny();
        let model = DvgoModel::fit(scene.as_ref(), &cfg);
        let res = *cfg.resolutions.last().unwrap();
        let mut s = model.make_query_scratch();
        let mut max_err = 0.0f32;
        for i in 0..60 {
            let (x, y, z) = ((i * 7) % res, (i * 5) % res, (i * 3) % res);
            let p01 =
                Vec3::new(x as f32 / res as f32, y as f32 / res as f32, z as f32 / res as f32);
            let pw = model.model_bounds().denormalize(p01);
            if !model.occupancy().occupied_world(pw) {
                continue;
            }
            let sigma = model.density_into(pw, &mut s);
            max_err = max_err.max((sigma - scene.density(pw)).abs());
        }
        assert!(max_err < 0.5, "dense vertices must be exact: err {max_err}");
    }

    #[test]
    fn color_includes_diffuse_and_spec() {
        let scene = registry::handle("Lego").build();
        let model = DvgoModel::fit(scene.as_ref(), &DvgoConfig::tiny());
        let mut s = model.make_query_scratch();
        let p = Vec3::new(0.0, -0.18, -0.05); // lego body (yellow)
        let _ = model.density_into(p, &mut s);
        let c = model.color_into(Vec3::Z, &mut s);
        assert!(c.r > c.b, "body should be yellow-ish: {c}");
    }

    #[test]
    fn params_and_lookups() {
        let cfg = DvgoConfig::tiny();
        let scene = registry::handle("Mic").build();
        let model = DvgoModel::fit(scene.as_ref(), &cfg);
        assert_eq!(model.param_count(), cfg.total_params());
        assert_eq!(model.lookups_per_point(), 16);
    }
}
