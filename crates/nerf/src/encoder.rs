//! Multi-resolution hash encoding (§2.2, Fig. 2(b) of the paper).
//!
//! For a sample point the encoder locates the containing voxel at each
//! resolution level, looks up the embeddings of the voxel's eight vertices,
//! blends them trilinearly, and concatenates the per-level results. The
//! encoder can additionally emit the exact sequence of `(level, vertex,
//! table-row)` accesses it performed — that access trace is what drives the
//! ASDR architecture simulator (cache, crossbar conflicts, Fig. 4).

use crate::embedding::EmbeddingSet;
use crate::grid::GridConfig;
use asdr_math::interp::{trilinear_weights, CORNER_OFFSETS};
use asdr_math::Vec3;

/// One embedding-table access performed during encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexAccess {
    /// Resolution level (table index).
    pub level: u16,
    /// Vertex coordinates at that level.
    pub vertex: (u32, u32, u32),
    /// Table row the vertex mapped to (dense or hashed).
    pub row: u32,
}

/// The multi-resolution hash encoder: grid geometry + embedding storage.
#[derive(Debug, Clone, PartialEq)]
pub struct HashEncoder {
    cfg: GridConfig,
    tables: EmbeddingSet,
}

impl HashEncoder {
    /// Wraps an embedding set with its grid configuration.
    ///
    /// # Panics
    ///
    /// Panics if the set's level count disagrees with the config.
    pub fn new(cfg: GridConfig, tables: EmbeddingSet) -> Self {
        assert_eq!(cfg.levels, tables.levels(), "level count mismatch");
        HashEncoder { cfg, tables }
    }

    /// Grid configuration.
    pub fn config(&self) -> &GridConfig {
        &self.cfg
    }

    /// Embedding storage (shared with the fitting code).
    pub fn tables(&self) -> &EmbeddingSet {
        &self.tables
    }

    /// Mutable embedding storage.
    pub fn tables_mut(&mut self) -> &mut EmbeddingSet {
        &mut self.tables
    }

    /// Dimension of the encoded output (`levels × feat_dim`).
    pub fn encoded_dim(&self) -> usize {
        self.cfg.encoded_dim()
    }

    /// The voxel (cell) containing normalized point `p01` at `level`, as the
    /// integer coordinates of the cell's base vertex, plus the fractional
    /// position inside the cell.
    pub fn voxel_of(&self, p01: Vec3, level: usize) -> ((u32, u32, u32), Vec3) {
        let res = self.cfg.level_resolution(level);
        let scaled = p01.clamp(0.0, 1.0) * res as f32;
        let clamp_hi = (res - 1) as f32;
        let bx = scaled.x.floor().min(clamp_hi).max(0.0);
        let by = scaled.y.floor().min(clamp_hi).max(0.0);
        let bz = scaled.z.floor().min(clamp_hi).max(0.0);
        let frac = Vec3::new(
            (scaled.x - bx).clamp(0.0, 1.0),
            (scaled.y - by).clamp(0.0, 1.0),
            (scaled.z - bz).clamp(0.0, 1.0),
        );
        ((bx as u32, by as u32, bz as u32), frac)
    }

    /// The eight vertex accesses of `p01` at `level`, in
    /// [`CORNER_OFFSETS`] order.
    pub fn vertex_accesses(&self, p01: Vec3, level: usize) -> [VertexAccess; 8] {
        let ((bx, by, bz), _) = self.voxel_of(p01, level);
        let table = self.tables.table(level);
        std::array::from_fn(|i| {
            let (dx, dy, dz) = CORNER_OFFSETS[i];
            let v = (bx + dx, by + dy, bz + dz);
            VertexAccess { level: level as u16, vertex: v, row: table.row_of(v.0, v.1, v.2) }
        })
    }

    /// Encodes `p01 ∈ [0,1]^3` into `out` (length [`Self::encoded_dim`]).
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong length.
    pub fn encode(&self, p01: Vec3, out: &mut [f32]) {
        self.encode_impl(p01, out, None);
    }

    /// Like [`Self::encode`] but appends every table access to `trace`.
    pub fn encode_traced(&self, p01: Vec3, out: &mut [f32], trace: &mut Vec<VertexAccess>) {
        self.encode_impl(p01, out, Some(trace));
    }

    fn encode_impl(&self, p01: Vec3, out: &mut [f32], mut trace: Option<&mut Vec<VertexAccess>>) {
        assert_eq!(out.len(), self.encoded_dim(), "output buffer length mismatch");
        let f = self.cfg.feat_dim;
        for level in 0..self.cfg.levels {
            let ((bx, by, bz), frac) = self.voxel_of(p01, level);
            let w = trilinear_weights(frac.x, frac.y, frac.z);
            let table = self.tables.table(level);
            let dst = &mut out[level * f..(level + 1) * f];
            dst.fill(0.0);
            for (i, &(dx, dy, dz)) in CORNER_OFFSETS.iter().enumerate() {
                let v = (bx + dx, by + dy, bz + dz);
                let row = table.row_of(v.0, v.1, v.2);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(VertexAccess { level: level as u16, vertex: v, row });
                }
                let feat = table.row(row);
                for (d, &s) in dst.iter_mut().zip(feat) {
                    *d += w[i] * s;
                }
            }
        }
    }

    /// FLOPs of one point encoding: per level, 8 trilinear weights (≈24
    /// multiplies) plus 8 × F multiply-accumulates (2 FLOPs each).
    pub fn flops_per_point(&self) -> u64 {
        let per_level = 24 + 8 * self.cfg.feat_dim as u64 * 2;
        self.cfg.levels as u64 * per_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdr_math::rng::seeded;
    use rand::Rng;

    fn randomized_encoder() -> HashEncoder {
        let cfg = GridConfig::tiny();
        let mut set = EmbeddingSet::new(&cfg);
        let mut rng = seeded("encoder-test", 0);
        for l in 0..cfg.levels {
            for v in set.table_mut(l).params_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
        }
        HashEncoder::new(cfg, set)
    }

    #[test]
    fn encode_output_dim_and_determinism() {
        let enc = randomized_encoder();
        let mut a = vec![0.0; enc.encoded_dim()];
        let mut b = vec![0.0; enc.encoded_dim()];
        let p = Vec3::new(0.3, 0.6, 0.9);
        enc.encode(p, &mut a);
        enc.encode(p, &mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn encode_at_vertex_returns_vertex_feature() {
        let enc = randomized_encoder();
        // pick the exact grid vertex (2,3,1) of level 0 (res 8 ⇒ spacing 1/8)
        let p = Vec3::new(2.0 / 8.0, 3.0 / 8.0, 1.0 / 8.0);
        let mut out = vec![0.0; enc.encoded_dim()];
        enc.encode(p, &mut out);
        let expect = enc.tables().table(0).lookup(2, 3, 1);
        let f = enc.config().feat_dim;
        for (o, e) in out[..f].iter().zip(expect) {
            assert!((o - e).abs() < 1e-5, "vertex feature should pass through exactly");
        }
    }

    #[test]
    fn encode_is_continuous_across_cells() {
        let enc = randomized_encoder();
        // approach a cell boundary from both sides
        let eps = 1e-5;
        let pa = Vec3::new(0.25 - eps, 0.4, 0.4);
        let pb = Vec3::new(0.25 + eps, 0.4, 0.4);
        let mut a = vec![0.0; enc.encoded_dim()];
        let mut b = vec![0.0; enc.encoded_dim()];
        enc.encode(pa, &mut a);
        enc.encode(pb, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3, "feature jumps across cell boundary: {x} vs {y}");
        }
    }

    #[test]
    fn trace_has_8_accesses_per_level() {
        let enc = randomized_encoder();
        let mut out = vec![0.0; enc.encoded_dim()];
        let mut trace = Vec::new();
        enc.encode_traced(Vec3::new(0.51, 0.49, 0.52), &mut out, &mut trace);
        assert_eq!(trace.len(), 8 * enc.config().levels);
        for l in 0..enc.config().levels {
            let lvl: Vec<_> = trace.iter().filter(|a| a.level as usize == l).collect();
            assert_eq!(lvl.len(), 8);
            // eight distinct vertices
            let mut verts: Vec<_> = lvl.iter().map(|a| a.vertex).collect();
            verts.sort();
            verts.dedup();
            assert_eq!(verts.len(), 8);
        }
    }

    #[test]
    fn traced_and_untraced_agree() {
        let enc = randomized_encoder();
        let p = Vec3::new(0.12, 0.93, 0.41);
        let mut a = vec![0.0; enc.encoded_dim()];
        let mut b = vec![0.0; enc.encoded_dim()];
        enc.encode(p, &mut a);
        enc.encode_traced(p, &mut b, &mut Vec::new());
        assert_eq!(a, b);
    }

    #[test]
    fn boundary_points_are_clamped_safely() {
        let enc = randomized_encoder();
        let mut out = vec![0.0; enc.encoded_dim()];
        for p in [Vec3::ZERO, Vec3::ONE, Vec3::new(1.0, 0.0, 1.0), Vec3::new(-0.1, 0.5, 1.3)] {
            enc.encode(p, &mut out); // must not panic
            assert!(out.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn neighbouring_points_share_voxel_vertices() {
        // the premise of the register cache (§5.2.2): two nearby points hit
        // the same coarse-level rows.
        let enc = randomized_encoder();
        let a = enc.vertex_accesses(Vec3::new(0.40, 0.40, 0.40), 0);
        let b = enc.vertex_accesses(Vec3::new(0.42, 0.41, 0.40), 0);
        let rows_a: std::collections::HashSet<_> = a.iter().map(|v| v.row).collect();
        let shared = b.iter().filter(|v| rows_a.contains(&v.row)).count();
        assert!(shared >= 4, "coarse-level vertices should be heavily shared");
    }

    #[test]
    fn flops_positive_and_scale_with_levels() {
        let enc = randomized_encoder();
        let f = enc.flops_per_point();
        assert!(f > 0);
        assert_eq!(f % enc.config().levels as u64, 0);
    }
}
