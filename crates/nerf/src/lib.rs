//! Instant-NGP and TensoRF neural-rendering substrates.
//!
//! This crate reimplements, from scratch, the model side of the systems the
//! ASDR paper builds on:
//!
//! * [`hash`] — the spatial hash of Eq. (2),
//! * [`grid`] — the multi-resolution grid geometry (16 levels, growth
//!   factor, dense-vs-hashed levels),
//! * [`embedding`] — the per-level feature tables,
//! * [`encoder`] — multi-resolution hash encoding with trilinear
//!   interpolation, plus the vertex/address introspection the architecture
//!   simulator consumes,
//! * [`mlp`] — dense MLPs with FLOP accounting,
//! * [`model`] — the combined NGP model (density MLP + color MLP),
//! * [`fit`] — building a model from an analytic [`asdr_scenes::SceneField`]
//!   (the offline substitute for training; see DESIGN.md §1) and an SGD
//!   refinement pass,
//! * [`tensorf`] — a TensoRF (VM-decomposition) model for §6.8 of the paper,
//! * [`profile`] — workload profilers regenerating Figs. 4, 5, 8 and 15.
//!
//! # Example
//!
//! ```
//! use asdr_nerf::{fit, grid::GridConfig};
//! use asdr_scenes::registry;
//!
//! let scene = registry::handle("Mic").build();
//! let model = fit::fit_ngp(scene.as_ref(), &GridConfig::tiny());
//! let (sigma, _feat) = model.query_density(asdr_math::Vec3::new(0.0, 0.45, 0.0));
//! assert!(sigma > 1.0); // inside the mic head
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dvgo;
pub mod embedding;
pub mod encoder;
pub mod fit;
pub mod grid;
pub mod hash;
pub mod io;
pub mod mlp;
pub mod model;
pub mod occupancy;
pub mod profile;
pub mod tensorf;
pub mod train;

pub use encoder::HashEncoder;
pub use model::NgpModel;
