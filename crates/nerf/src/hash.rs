//! The Instant-NGP spatial hash (Eq. 2 of the paper).
//!
//! `index = (x·π1 ⊕ y·π2 ⊕ z·π3) mod T`, with the primes the original
//! implementation uses (`π1 = 1` is deliberate — the x axis enters
//! unmultiplied, which is what gives hash addresses their stride-1 streak
//! visible in Fig. 4 before it is destroyed by the other two axes).

/// Hash primes `(π1, π2, π3)` from the Instant-NGP reference code.
pub const PRIMES: (u32, u32, u32) = (1, 2_654_435_761, 805_459_861);

/// Spatial hash of integer vertex coordinates into a table of `table_size`
/// entries. `table_size` must be a power of two (as in Instant-NGP, where
/// `T = 2^19`), letting the modulo reduce to a mask.
///
/// ```
/// use asdr_nerf::hash::spatial_hash;
/// let a = spatial_hash(1, 2, 3, 1 << 14);
/// assert!(a < (1 << 14));
/// assert_eq!(a, spatial_hash(1, 2, 3, 1 << 14));
/// ```
///
/// # Panics
///
/// Panics in debug builds if `table_size` is not a power of two.
#[inline]
pub fn spatial_hash(x: u32, y: u32, z: u32, table_size: u32) -> u32 {
    debug_assert!(table_size.is_power_of_two(), "table size must be a power of two");
    let h = x.wrapping_mul(PRIMES.0) ^ y.wrapping_mul(PRIMES.1) ^ z.wrapping_mul(PRIMES.2);
    h & (table_size - 1)
}

/// Dense (collision-free) linear index for levels whose full grid fits in the
/// table: `x + y·res + z·res²` with `res` the number of vertices per axis.
///
/// # Panics
///
/// Panics in debug builds if any coordinate is out of range.
#[inline]
pub fn dense_index(x: u32, y: u32, z: u32, res: u32) -> u32 {
    debug_assert!(x < res && y < res && z < res, "vertex ({x},{y},{z}) outside res {res}");
    x + res * (y + res * z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let t = 1u32 << 12;
        for i in 0..200u32 {
            let h = spatial_hash(i, i * 3 + 1, i * 7 + 2, t);
            assert!(h < t);
            assert_eq!(h, spatial_hash(i, i * 3 + 1, i * 7 + 2, t));
        }
    }

    #[test]
    fn hash_spreads_consecutive_vertices() {
        // neighbouring vertices along y or z should scatter across the table;
        // that poor locality is the premise of the paper's Challenge 1.
        let t = 1u32 << 16;
        let mut seen = HashSet::new();
        for y in 0..64u32 {
            seen.insert(spatial_hash(10, y, 20, t));
        }
        assert!(seen.len() > 60, "y-neighbours should rarely collide");
        // and the addresses are not consecutive
        let a = spatial_hash(10, 5, 20, t);
        let b = spatial_hash(10, 6, 20, t);
        assert!((a as i64 - b as i64).abs() > 1, "hash should break locality");
    }

    #[test]
    fn x_axis_streak_property() {
        // π1 = 1 means consecutive x vertices map to consecutive slots
        // (mod T) when y and z are fixed — matches the reference code.
        let t = 1u32 << 16;
        let a = spatial_hash(100, 7, 9, t);
        let b = spatial_hash(101, 7, 9, t);
        assert_eq!(b, (a + 1) & (t - 1));
    }

    #[test]
    fn dense_index_is_bijective() {
        let res = 8;
        let mut seen = HashSet::new();
        for z in 0..res {
            for y in 0..res {
                for x in 0..res {
                    assert!(seen.insert(dense_index(x, y, z, res)));
                }
            }
        }
        assert_eq!(seen.len(), (res * res * res) as usize);
        assert_eq!(*seen.iter().max().unwrap(), res * res * res - 1);
    }

    #[test]
    fn collisions_exist_when_grid_exceeds_table() {
        // 64^3 vertices into a 2^12 table must collide (pigeonhole); the
        // paper relies on exactly this compression for high-res levels.
        let t = 1u32 << 12;
        let mut seen = HashSet::new();
        let mut collisions = 0;
        for z in 0..32u32 {
            for y in 0..32 {
                for x in 0..32 {
                    if !seen.insert(spatial_hash(x, y, z, t)) {
                        collisions += 1;
                    }
                }
            }
        }
        assert!(collisions > 0);
    }
}
