//! Occupancy grid — Instant-NGP's empty-space mask.
//!
//! The reference Instant-NGP maintains a multiscale occupancy bitfield so
//! that ray marching skips cells known to be empty. We keep a single-scale
//! grid and use it to *mask* predicted density: without it, hash aliasing
//! would smear residual energy from occupied vertices into empty space
//! ("ghost density"), which the original system never renders because those
//! cells are skipped.

use asdr_math::interp::CORNER_OFFSETS;
use asdr_math::{Aabb, Vec3};
use asdr_scenes::SceneField;

/// A boolean voxel grid over a bounding box.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyGrid {
    res: usize,
    bounds: Aabb,
    cells: Vec<bool>,
}

impl OccupancyGrid {
    /// Default grid resolution (cells per axis), matching Instant-NGP's 128
    /// scaled down to our single level.
    pub const DEFAULT_RES: usize = 64;

    /// Builds the grid by probing `field.density` at cell corners and
    /// dilating by one cell (so interpolation transition zones count as
    /// occupied).
    ///
    /// # Panics
    ///
    /// Panics if `res == 0`.
    pub fn build(field: &dyn SceneField, res: usize) -> Self {
        assert!(res > 0);
        let bounds = field.bounds();
        let v = res + 1;
        let mut probe = vec![false; v * v * v];
        for z in 0..v {
            for y in 0..v {
                for x in 0..v {
                    let u = Vec3::new(
                        x as f32 / res as f32,
                        y as f32 / res as f32,
                        z as f32 / res as f32,
                    );
                    probe[x + v * (y + v * z)] = field.density(bounds.denormalize(u)) > 0.0;
                }
            }
        }
        let mut raw = vec![false; res * res * res];
        for z in 0..res {
            for y in 0..res {
                for x in 0..res {
                    let mut occ = false;
                    for &(dx, dy, dz) in &CORNER_OFFSETS {
                        occ |= probe
                            [(x + dx as usize) + v * ((y + dy as usize) + v * (z + dz as usize))];
                    }
                    raw[x + res * (y + res * z)] = occ;
                }
            }
        }
        let mut cells = raw.clone();
        for z in 0..res {
            for y in 0..res {
                for x in 0..res {
                    if raw[x + res * (y + res * z)] {
                        for dz in -1i64..=1 {
                            for dy in -1i64..=1 {
                                for dx in -1i64..=1 {
                                    let (nx, ny, nz) =
                                        (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                                    if nx >= 0
                                        && ny >= 0
                                        && nz >= 0
                                        && (nx as usize) < res
                                        && (ny as usize) < res
                                        && (nz as usize) < res
                                    {
                                        cells[nx as usize
                                            + res * (ny as usize + res * nz as usize)] = true;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        OccupancyGrid { res, bounds, cells }
    }

    /// A grid that reports everything occupied (no masking).
    pub fn solid(bounds: Aabb) -> Self {
        OccupancyGrid { res: 1, bounds, cells: vec![true] }
    }

    /// Rebuilds a grid from raw cells (checkpoint loading).
    ///
    /// # Errors
    ///
    /// Returns `Err` if `cells.len() != res³` or `res == 0`.
    pub fn from_cells(res: usize, bounds: Aabb, cells: Vec<bool>) -> Result<Self, String> {
        if res == 0 {
            return Err("resolution must be positive".into());
        }
        if cells.len() != res * res * res {
            return Err(format!("expected {} cells, got {}", res * res * res, cells.len()));
        }
        Ok(OccupancyGrid { res, bounds, cells })
    }

    /// Cells per axis.
    pub fn res(&self) -> usize {
        self.res
    }

    /// Covered bounds.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Whether a normalized `[0,1]^3` point lies in an occupied cell.
    #[inline]
    pub fn occupied01(&self, p01: Vec3) -> bool {
        let r = self.res as f32;
        let cx = ((p01.x.clamp(0.0, 1.0) * r) as usize).min(self.res - 1);
        let cy = ((p01.y.clamp(0.0, 1.0) * r) as usize).min(self.res - 1);
        let cz = ((p01.z.clamp(0.0, 1.0) * r) as usize).min(self.res - 1);
        self.cells[cx + self.res * (cy + self.res * cz)]
    }

    /// Whether a world-space point lies in an occupied cell (points outside
    /// the bounds are unoccupied).
    #[inline]
    pub fn occupied_world(&self, p: Vec3) -> bool {
        if !self.bounds.contains(p) {
            return false;
        }
        self.occupied01(self.bounds.normalize(p))
    }

    /// Fraction of occupied cells.
    pub fn occupied_fraction(&self) -> f32 {
        self.cells.iter().filter(|&&c| c).count() as f32 / self.cells.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdr_scenes::registry;

    #[test]
    fn solid_grid_accepts_everything_inside() {
        let g = OccupancyGrid::solid(Aabb::centered(1.0));
        assert!(g.occupied_world(Vec3::ZERO));
        assert!(g.occupied_world(Vec3::splat(0.99)));
        assert!(!g.occupied_world(Vec3::splat(1.5)));
        assert_eq!(g.occupied_fraction(), 1.0);
    }

    #[test]
    fn scene_grid_matches_content() {
        let scene = registry::handle("Mic").build();
        let g = OccupancyGrid::build(scene.as_ref(), 32);
        // mic head region occupied
        assert!(g.occupied_world(Vec3::new(0.0, 0.45, 0.0)));
        // far empty corner unoccupied
        assert!(!g.occupied_world(Vec3::new(0.9, 0.9, -0.9)));
        let f = g.occupied_fraction();
        assert!(f > 0.01 && f < 0.8, "fraction {f}");
    }

    #[test]
    fn dilation_covers_surface_shell() {
        let scene = registry::handle("Lego").build();
        let g = OccupancyGrid::build(scene.as_ref(), 32);
        // a point just outside the density support must still be occupied
        // (the transition shell matters for interpolation)
        let p = Vec3::new(0.0, -0.72 + 0.08, 0.0); // just above the base plate
        assert!(g.occupied_world(p));
    }
}
