//! Workload profilers behind the paper's motivation figures.
//!
//! * [`trace_addresses`] — the raw embedding-address stream of consecutive
//!   sample points in rendering order (Fig. 4's scatter of poor locality),
//! * [`flops_breakdown`] — encoding / density-MLP / color-MLP FLOP shares
//!   (Fig. 5),
//! * [`color_similarity`] — distribution of cosine similarities between
//!   adjacent sample-point colors along rays (Fig. 8, the basis of
//!   color-wise locality),
//! * [`repetition_rates`] — inter-ray and intra-ray voxel repetition per
//!   resolution level (Fig. 15, the basis of the register cache).

use crate::model::{NgpModel, RadianceModel};
use asdr_math::{Camera, Vec3};

/// Flattened byte address of a `(level, row)` embedding access, laying the
/// 16 tables out back-to-back as the paper's Fig. 4 does.
pub fn global_address(model: &NgpModel, level: usize, row: u32) -> u64 {
    let cfg = model.encoder().config();
    let mut base = 0u64;
    for l in 0..level {
        base += cfg.level_entries(l) as u64;
    }
    (base + row as u64) * cfg.feat_dim as u64 * 4
}

/// Collects the embedding addresses touched by the first `n_points` sample
/// points in rendering order (row-major pixels, front-to-back samples,
/// all levels).
pub fn trace_addresses(
    model: &NgpModel,
    cam: &Camera,
    samples_per_ray: usize,
    n_points: usize,
) -> Vec<u64> {
    let mut out = Vec::with_capacity(n_points * 8);
    let mut encoded = vec![0.0; model.encoder().encoded_dim()];
    let mut trace = Vec::new();
    let mut points = 0usize;
    'outer: for py in 0..cam.height() {
        for px in 0..cam.width() {
            let ray = cam.ray_for_pixel(px, py);
            let Some(tr) = model.bounds().intersect(&ray) else { continue };
            for t in tr.midpoints(samples_per_ray) {
                let p01 = model.bounds().normalize(ray.at(t));
                trace.clear();
                model.encoder().encode_traced(p01, &mut encoded, &mut trace);
                for a in &trace {
                    out.push(global_address(model, a.level as usize, a.row));
                }
                points += 1;
                if points >= n_points {
                    break 'outer;
                }
            }
        }
    }
    out
}

/// Mean absolute address delta between consecutive accesses — a scalar
/// summary of the (lack of) spatial locality Fig. 4 visualizes.
pub fn mean_address_stride(addresses: &[u64]) -> f64 {
    if addresses.len() < 2 {
        return 0.0;
    }
    let total: f64 = addresses.windows(2).map(|w| (w[1] as f64 - w[0] as f64).abs()).sum();
    total / (addresses.len() - 1) as f64
}

/// Percentage FLOP shares `(encoding, density MLP, color MLP)` for one fully
/// evaluated sample point (Fig. 5; paper: 2.10 / 32.19 / 65.71).
pub fn flops_breakdown<M: RadianceModel>(model: &M) -> (f64, f64, f64) {
    let (e, d, c) = model.stage_flops();
    let total = (e + d + c) as f64;
    (e as f64 / total * 100.0, d as f64 / total * 100.0, c as f64 / total * 100.0)
}

/// Summary of adjacent-point color similarity along rays (Fig. 8).
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityStats {
    /// All pairwise cosine similarities gathered.
    pub count: usize,
    /// Fraction of similarities ≥ 0.9.
    pub frac_high: f64,
    /// 5th-percentile similarity (the paper reports "95% of similarities ≥
    /// x", which is this value).
    pub p05: f32,
    /// 20-bucket histogram over `[0, 1]`.
    pub histogram: [u64; 20],
}

/// Measures cosine similarity between colors of adjacent sample points along
/// every `stride`-th ray. Only points with non-negligible density are
/// compared (transparent points never contribute to the pixel).
pub fn color_similarity(
    model: &NgpModel,
    cam: &Camera,
    samples_per_ray: usize,
    stride: u32,
) -> SimilarityStats {
    let mut sims: Vec<f32> = Vec::new();
    let mut scratch = model.make_scratch();
    for py in (0..cam.height()).step_by(stride.max(1) as usize) {
        for px in (0..cam.width()).step_by(stride.max(1) as usize) {
            let ray = cam.ray_for_pixel(px, py);
            let Some(tr) = model.bounds().intersect(&ray) else { continue };
            let mut prev: Option<Vec3> = None;
            for t in tr.midpoints(samples_per_ray) {
                let p = ray.at(t);
                let (sigma, color) = model.query_point(p, ray.dir, &mut scratch);
                if sigma < 0.5 {
                    prev = None;
                    continue;
                }
                let c = color.to_vec3();
                if let Some(pc) = prev {
                    sims.push(pc.cosine_similarity(c));
                }
                prev = Some(c);
            }
        }
    }
    summarize_similarities(&sims)
}

fn summarize_similarities(sims: &[f32]) -> SimilarityStats {
    let mut histogram = [0u64; 20];
    for &s in sims {
        let b = ((s.clamp(0.0, 1.0)) * 20.0) as usize;
        histogram[b.min(19)] += 1;
    }
    let mut sorted: Vec<f32> = sims.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p05 = if sorted.is_empty() { 0.0 } else { sorted[sorted.len() / 20] };
    let high = sims.iter().filter(|&&s| s >= 0.9).count();
    SimilarityStats {
        count: sims.len(),
        frac_high: if sims.is_empty() { 0.0 } else { high as f64 / sims.len() as f64 },
        p05,
        histogram,
    }
}

/// Per-level locality profile (Fig. 15).
#[derive(Debug, Clone, PartialEq)]
pub struct RepetitionProfile {
    /// Fig. 15(a): per level, the average fraction of a ray's sample points
    /// whose voxel also appears among the neighbouring ray's voxels.
    pub inter_ray: Vec<f64>,
    /// Fig. 15(b): per level, the largest number of sample points of a
    /// single ray falling into one voxel (averaged over rays).
    pub intra_ray: Vec<f64>,
}

/// Profiles voxel repetition between horizontally neighbouring rays and
/// within single rays, over every `stride`-th pixel.
pub fn repetition_rates(
    model: &NgpModel,
    cam: &Camera,
    samples_per_ray: usize,
    stride: u32,
) -> RepetitionProfile {
    let cfg = model.encoder().config().clone();
    let levels = cfg.levels;
    let mut inter_acc = vec![0.0f64; levels];
    let mut inter_n = 0usize;
    let mut intra_acc = vec![0.0f64; levels];
    let mut intra_n = 0usize;

    let voxels_of_ray = |px: u32, py: u32| -> Option<Vec<Vec<(u32, u32, u32)>>> {
        let ray = cam.ray_for_pixel(px, py);
        let tr = model.bounds().intersect(&ray)?;
        let mut per_level = vec![Vec::with_capacity(samples_per_ray); levels];
        for t in tr.midpoints(samples_per_ray) {
            let p01 = model.bounds().normalize(ray.at(t));
            for (l, lv) in per_level.iter_mut().enumerate() {
                let (voxel, _) = model.encoder().voxel_of(p01, l);
                lv.push(voxel);
            }
        }
        Some(per_level)
    };

    for py in (0..cam.height()).step_by(stride.max(1) as usize) {
        for px in (0..cam.width().saturating_sub(1)).step_by(stride.max(1) as usize) {
            let (Some(a), Some(b)) = (voxels_of_ray(px, py), voxels_of_ray(px + 1, py)) else {
                continue;
            };
            for l in 0..levels {
                let set_b: std::collections::HashSet<_> = b[l].iter().collect();
                let shared = a[l].iter().filter(|v| set_b.contains(v)).count();
                inter_acc[l] += shared as f64 / a[l].len().max(1) as f64;
            }
            inter_n += 1;
            // intra-ray: max run of identical voxels per level for ray a
            for l in 0..levels {
                let mut counts: std::collections::HashMap<(u32, u32, u32), u32> =
                    std::collections::HashMap::new();
                for v in &a[l] {
                    *counts.entry(*v).or_default() += 1;
                }
                let max = counts.values().copied().max().unwrap_or(0);
                intra_acc[l] += max as f64;
            }
            intra_n += 1;
        }
    }
    RepetitionProfile {
        inter_ray: inter_acc.iter().map(|v| v / inter_n.max(1) as f64).collect(),
        intra_ray: intra_acc.iter().map(|v| v / intra_n.max(1) as f64).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::fit_ngp;
    use crate::grid::GridConfig;
    use asdr_scenes::registry;

    fn test_model(name: &str) -> NgpModel {
        fit_ngp(registry::handle(name).build().as_ref(), &GridConfig::tiny())
    }

    #[test]
    fn trace_is_nonempty_and_irregular() {
        let model = test_model("Lego");
        let cam = registry::handle("Lego").camera(16, 16);
        let trace = trace_addresses(&model, &cam, 32, 200);
        assert!(trace.len() >= 200 * 8);
        // Fig. 4's point: the hash stream has huge strides compared to the
        // feature row size
        let stride = mean_address_stride(&trace);
        assert!(stride > 1000.0, "hash addresses should be scattered, stride={stride}");
    }

    #[test]
    fn flops_breakdown_sums_to_100_and_color_dominates() {
        let model = test_model("Mic");
        let (e, d, c) = flops_breakdown(&model);
        assert!((e + d + c - 100.0).abs() < 1e-9);
        assert!(c > d && d > e, "expected color > density > encoding: {e:.1}/{d:.1}/{c:.1}");
        assert!(c > 50.0, "color MLP should dominate: {c:.1}%");
    }

    #[test]
    fn color_similarity_is_high() {
        // Fig. 8: adjacent in-object samples have near-identical colors
        let model = test_model("Hotdog");
        let cam = registry::handle("Hotdog").camera(24, 24);
        let stats = color_similarity(&model, &cam, 48, 2);
        assert!(stats.count > 50, "too few pairs: {}", stats.count);
        assert!(stats.frac_high > 0.8, "high-similarity fraction {}", stats.frac_high);
        assert!(stats.p05 > 0.5, "p05 {}", stats.p05);
    }

    #[test]
    fn repetition_decreases_with_resolution() {
        // Fig. 15: coarse levels share almost all voxels between
        // neighbouring rays; the finest level shares fewer.
        // neighbouring-pixel locality needs a realistic pixel pitch: use a
        // fine camera but probe only every 16th pixel
        let model = test_model("Chair");
        let cam = registry::handle("Chair").camera(96, 96);
        let prof = repetition_rates(&model, &cam, 48, 16);
        let l = prof.inter_ray.len();
        assert!(prof.inter_ray[0] > prof.inter_ray[l - 1]);
        assert!(prof.inter_ray[0] > 0.85, "coarse inter-ray repetition {}", prof.inter_ray[0]);
        // intra-ray: many samples share the coarsest voxel
        assert!(prof.intra_ray[0] > prof.intra_ray[l - 1]);
        assert!(prof.intra_ray[0] > 4.0);
    }

    #[test]
    fn histogram_counts_match_total() {
        let stats = summarize_similarities(&[0.05, 0.5, 0.95, 0.99, 1.0]);
        let total: u64 = stats.histogram.iter().sum();
        assert_eq!(total, 5);
        assert_eq!(stats.count, 5);
    }
}
