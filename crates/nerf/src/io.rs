//! Model checkpoint serialization.
//!
//! Fitting a model at evaluation scale takes seconds to minutes; checkpoints
//! let downstream users fit once and reload instantly. The format is a
//! simple little-endian binary container (magic + version + sections), with
//! no external dependencies.
//!
//! Version 2 embeds the scene's registry name as a length-prefixed string
//! right after the version word, so a checkpoint of any registered scene —
//! including custom ones added via `asdr_scenes::registry::register` —
//! round-trips with enough information to find its scene again. Version 1
//! files (no name) still load, with [`Checkpoint::scene`] empty.

use crate::embedding::EmbeddingSet;
use crate::encoder::HashEncoder;
use crate::grid::GridConfig;
use crate::mlp::{Activation, Dense, Mlp};
use crate::model::NgpModel;
use crate::occupancy::OccupancyGrid;
use asdr_math::{Aabb, Vec3};
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic: `ASDRNGP\0`.
pub const MAGIC: [u8; 8] = *b"ASDRNGP\0";
/// Current format version.
pub const VERSION: u32 = 2;
/// Oldest version the reader still accepts.
pub const MIN_VERSION: u32 = 1;
/// Longest scene name (bytes) a checkpoint may carry; the reader treats
/// longer length fields as corruption and the writer refuses to emit them.
pub const MAX_SCENE_NAME: usize = 256;

/// A loaded checkpoint: the model plus the scene name the file was saved
/// under (empty for v1 files, which predate the name field).
#[derive(Debug)]
pub struct Checkpoint {
    /// The reconstructed model.
    pub model: NgpModel,
    /// Registry name of the scene the model was fitted to, if recorded.
    pub scene: Option<String>,
}

/// Errors from checkpoint loading.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not an ASDR checkpoint.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Structurally invalid content.
    Corrupt(&'static str),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::BadMagic => f.write_str("not an ASDR checkpoint (bad magic)"),
            LoadError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            LoadError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn w_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_f32<W: Write>(w: &mut W, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_f32s<W: Write>(w: &mut W, vs: &[f32]) -> io::Result<()> {
    w_u32(w, vs.len() as u32)?;
    for v in vs {
        w_f32(w, *v)?;
    }
    Ok(())
}

fn r_u32<R: Read>(r: &mut R) -> Result<u32, LoadError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn r_f32<R: Read>(r: &mut R) -> Result<f32, LoadError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn r_f32s<R: Read>(r: &mut R, cap: usize) -> Result<Vec<f32>, LoadError> {
    let n = r_u32(r)? as usize;
    if n > cap {
        return Err(LoadError::Corrupt("oversized float array"));
    }
    let mut out = vec![0.0f32; n];
    let mut buf = vec![0u8; n * 4];
    r.read_exact(&mut buf)?;
    for (i, chunk) in buf.chunks_exact(4).enumerate() {
        out[i] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    Ok(out)
}

fn write_mlp<W: Write>(w: &mut W, mlp: &Mlp) -> io::Result<()> {
    w_u32(w, mlp.layers().len() as u32)?;
    for layer in mlp.layers() {
        w_u32(w, layer.in_dim() as u32)?;
        w_u32(w, layer.out_dim() as u32)?;
        w_u32(w, matches!(layer.activation(), Activation::Relu) as u32)?;
        w_f32s(w, layer.weights())?;
        w_f32s(w, layer.bias())?;
    }
    Ok(())
}

fn read_mlp<R: Read>(r: &mut R) -> Result<Mlp, LoadError> {
    let n_layers = r_u32(r)? as usize;
    if n_layers == 0 || n_layers > 16 {
        return Err(LoadError::Corrupt("implausible layer count"));
    }
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let in_dim = r_u32(r)? as usize;
        let out_dim = r_u32(r)? as usize;
        if in_dim == 0 || out_dim == 0 || in_dim > 4096 || out_dim > 4096 {
            return Err(LoadError::Corrupt("implausible layer shape"));
        }
        let act = if r_u32(r)? != 0 { Activation::Relu } else { Activation::None };
        let weights = r_f32s(r, in_dim * out_dim)?;
        let bias = r_f32s(r, out_dim)?;
        if weights.len() != in_dim * out_dim || bias.len() != out_dim {
            return Err(LoadError::Corrupt("layer payload size mismatch"));
        }
        let mut layer = Dense::zeros(in_dim, out_dim, act);
        layer.weights_mut().copy_from_slice(&weights);
        layer.bias_mut().copy_from_slice(&bias);
        layers.push(layer);
    }
    Ok(Mlp::new(layers))
}

/// Writes a model checkpoint tagged with its scene's registry name.
///
/// # Errors
///
/// Returns any underlying I/O error, or `InvalidInput` if `scene` exceeds
/// [`MAX_SCENE_NAME`] bytes (the reader rejects longer names, so writing
/// one would produce an unloadable file).
pub fn save_model<W: Write>(model: &NgpModel, scene: &str, w: &mut W) -> io::Result<()> {
    if scene.len() > MAX_SCENE_NAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("scene name exceeds {MAX_SCENE_NAME} bytes"),
        ));
    }
    save_model_versioned(model, scene, VERSION, w)
}

/// Version-parameterized writer; `version` 1 omits the scene name (kept so
/// the v1 read path stays testable).
fn save_model_versioned<W: Write>(
    model: &NgpModel,
    scene: &str,
    version: u32,
    w: &mut W,
) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w_u32(w, version)?;
    if version >= 2 {
        let name = scene.as_bytes();
        w_u32(w, name.len() as u32)?;
        w.write_all(name)?;
    }
    // grid config
    let cfg = model.encoder().config();
    w_u32(w, cfg.levels as u32)?;
    w_u32(w, cfg.base_res)?;
    w_u32(w, cfg.max_res)?;
    w_u32(w, cfg.table_size)?;
    w_u32(w, cfg.feat_dim as u32)?;
    // embeddings
    for l in 0..cfg.levels {
        w_f32s(w, model.encoder().tables().table(l).params())?;
    }
    // MLPs
    write_mlp(w, model.density_mlp())?;
    write_mlp(w, model.color_mlp())?;
    // bounds
    let b = model.bounds();
    for v in [b.min, b.max] {
        w_f32(w, v.x)?;
        w_f32(w, v.y)?;
        w_f32(w, v.z)?;
    }
    // occupancy (re-derived on load would need the field; store the bits)
    let occ = model.occupancy();
    w_u32(w, occ.res() as u32)?;
    let cells: Vec<u8> = occupancy_bits(occ);
    w_u32(w, cells.len() as u32)?;
    w.write_all(&cells)?;
    Ok(())
}

fn occupancy_bits(occ: &OccupancyGrid) -> Vec<u8> {
    let res = occ.res();
    let n = res * res * res;
    let mut out = vec![0u8; n.div_ceil(8)];
    for i in 0..n {
        let z = i / (res * res);
        let y = (i / res) % res;
        let x = i % res;
        let u = Vec3::new(
            (x as f32 + 0.5) / res as f32,
            (y as f32 + 0.5) / res as f32,
            (z as f32 + 0.5) / res as f32,
        );
        if occ.occupied01(u) {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Reads a model checkpoint (v1 or v2).
///
/// # Errors
///
/// Returns [`LoadError`] for I/O failures or malformed files.
pub fn load_model<R: Read>(r: &mut R) -> Result<Checkpoint, LoadError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let version = r_u32(r)?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(LoadError::BadVersion(version));
    }
    let scene = if version >= 2 {
        let n = r_u32(r)? as usize;
        if n > MAX_SCENE_NAME {
            return Err(LoadError::Corrupt("oversized scene name"));
        }
        let mut buf = vec![0u8; n];
        r.read_exact(&mut buf)?;
        let name =
            String::from_utf8(buf).map_err(|_| LoadError::Corrupt("scene name is not UTF-8"))?;
        if name.is_empty() {
            None
        } else {
            Some(name)
        }
    } else {
        None
    };
    let cfg = GridConfig {
        levels: r_u32(r)? as usize,
        base_res: r_u32(r)?,
        max_res: r_u32(r)?,
        table_size: r_u32(r)?,
        feat_dim: r_u32(r)? as usize,
    };
    cfg.validate().map_err(|_| LoadError::Corrupt("invalid grid config"))?;
    let mut set = EmbeddingSet::new(&cfg);
    for l in 0..cfg.levels {
        let params = r_f32s(r, set.table(l).params().len())?;
        if params.len() != set.table(l).params().len() {
            return Err(LoadError::Corrupt("embedding size mismatch"));
        }
        set.table_mut(l).params_mut().copy_from_slice(&params);
    }
    let density = read_mlp(r)?;
    let color = read_mlp(r)?;
    let mut v = [0.0f32; 6];
    for x in &mut v {
        *x = r_f32(r)?;
    }
    let bounds = Aabb::new(Vec3::new(v[0], v[1], v[2]), Vec3::new(v[3], v[4], v[5]));
    let res = r_u32(r)? as usize;
    if res == 0 || res > 1024 {
        return Err(LoadError::Corrupt("implausible occupancy resolution"));
    }
    let n_bytes = r_u32(r)? as usize;
    if n_bytes != (res * res * res).div_ceil(8) {
        return Err(LoadError::Corrupt("occupancy payload size mismatch"));
    }
    let mut bits = vec![0u8; n_bytes];
    r.read_exact(&mut bits)?;
    let cells: Vec<bool> =
        (0..res * res * res).map(|i| bits[i / 8] & (1 << (i % 8)) != 0).collect();
    let occupancy = OccupancyGrid::from_cells(res, bounds, cells)
        .map_err(|_| LoadError::Corrupt("occupancy rebuild failed"))?;
    let encoder = HashEncoder::new(cfg, set);
    Ok(Checkpoint { model: NgpModel::new(encoder, density, color, bounds, occupancy), scene })
}

/// Saves a model to a file path, tagged with its scene's registry name.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_model_file<P: AsRef<Path>>(model: &NgpModel, scene: &str, path: P) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    save_model(model, scene, &mut w)
}

/// Loads a checkpoint from a file path.
///
/// # Errors
///
/// Returns [`LoadError`] for I/O failures or malformed files.
pub fn load_model_file<P: AsRef<Path>>(path: P) -> Result<Checkpoint, LoadError> {
    let f = std::fs::File::open(path)?;
    let mut r = io::BufReader::new(f);
    load_model(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::fit_ngp;
    use asdr_math::Rgb;
    use asdr_scenes::registry;

    fn fitted(scene: &str) -> NgpModel {
        fit_ngp(registry::handle(scene).build().as_ref(), &GridConfig::tiny())
    }

    fn roundtrip(model: &NgpModel, scene: &str) -> Checkpoint {
        let mut buf = Vec::new();
        save_model(model, scene, &mut buf).unwrap();
        load_model(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn checkpoint_roundtrip_preserves_queries() {
        let model = fitted("Mic");
        let ckpt = roundtrip(&model, "Mic");
        assert_eq!(ckpt.scene.as_deref(), Some("Mic"));
        let loaded = ckpt.model;
        let mut s1 = model.make_scratch();
        let mut s2 = loaded.make_scratch();
        for i in 0..50 {
            let p = Vec3::new(
                (i as f32 * 0.137).sin() * 0.8,
                (i as f32 * 0.311).cos() * 0.8,
                (i as f32 * 0.071).sin() * 0.8,
            );
            let dir = Vec3::new(0.3, -0.5, 0.8).normalized();
            let (sig_a, col_a) = model.query_point(p, dir, &mut s1);
            let (sig_b, col_b): (f32, Rgb) = loaded.query_point(p, dir, &mut s2);
            assert_eq!(sig_a, sig_b, "density differs at {p}");
            assert_eq!(col_a, col_b, "color differs at {p}");
        }
    }

    #[test]
    fn file_roundtrip_works() {
        let model = fitted("Chair");
        let dir = std::env::temp_dir().join("asdr_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chair.asdr");
        save_model_file(&model, "Chair", &path).unwrap();
        let ckpt = load_model_file(&path).unwrap();
        assert_eq!(ckpt.scene.as_deref(), Some("Chair"));
        assert_eq!(ckpt.model.encoder().config(), model.encoder().config());
        assert_eq!(ckpt.model.bounds(), model.bounds());
    }

    #[test]
    fn custom_scene_names_round_trip() {
        // a registered custom scene's name survives the checkpoint — the
        // point of the v2 header
        let model = fitted("Mic");
        let ckpt = roundtrip(&model, "my-custom-scene");
        assert_eq!(ckpt.scene.as_deref(), Some("my-custom-scene"));
    }

    #[test]
    fn v1_files_still_load_without_a_scene_name() {
        let model = fitted("Mic");
        let mut buf = Vec::new();
        save_model_versioned(&model, "Mic", 1, &mut buf).unwrap();
        let ckpt = load_model(&mut buf.as_slice()).unwrap();
        assert_eq!(ckpt.scene, None, "v1 files carry no scene name");
        let mut s1 = model.make_scratch();
        let mut s2 = ckpt.model.make_scratch();
        let p = Vec3::new(0.0, 0.45, 0.0);
        assert_eq!(model.query_density_into(p, &mut s1), ckpt.model.query_density_into(p, &mut s2));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_model(&mut &b"NOTANGP\0restoffile"[..]).unwrap_err();
        assert!(matches!(err, LoadError::BadMagic), "{err}");
    }

    #[test]
    fn truncated_file_is_rejected() {
        let model = fitted("Mic");
        let mut buf = Vec::new();
        save_model(&model, "Mic", &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = load_model(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::Io(_) | LoadError::Corrupt(_)), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let model = fitted("Mic");
        let mut buf = Vec::new();
        save_model(&model, "Mic", &mut buf).unwrap();
        buf[8] = 99; // clobber version
        let err = load_model(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::BadVersion(99)), "{err}");
    }

    #[test]
    fn oversized_scene_name_is_rejected() {
        let model = fitted("Mic");
        let mut buf = Vec::new();
        save_model(&model, "Mic", &mut buf).unwrap();
        // clobber the name length to something absurd
        buf[12..16].copy_from_slice(&(10_000u32).to_le_bytes());
        let err = load_model(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::Corrupt(_)), "{err}");
        // and the writer refuses to produce such a file in the first place
        let err = save_model(&model, &"x".repeat(MAX_SCENE_NAME + 1), &mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
