//! Per-level embedding tables.
//!
//! Each resolution level owns one table of `entries × feat_dim` learned
//! feature scalars. Dense levels index vertices bijectively; hashed levels
//! go through [`crate::hash::spatial_hash`] and therefore alias distinct
//! vertices onto shared rows — the source of the high-frequency artifacts a
//! trained Instant-NGP exhibits, reproduced here mechanically.

use crate::grid::GridConfig;
use crate::hash::{dense_index, spatial_hash};

/// How a level maps vertex coordinates to table rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// Bijective `x + y·V + z·V²` (collision-free).
    Dense,
    /// Spatial hash (Eq. 2), possibly aliasing.
    Hashed,
}

/// One level's embedding table.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    level: usize,
    vertex_res: u32,
    mode: IndexMode,
    feat_dim: usize,
    entries: u32,
    data: Vec<f32>,
}

impl EmbeddingTable {
    /// Creates the zero-initialized table for `level` of `cfg`.
    pub fn new(cfg: &GridConfig, level: usize) -> Self {
        let mode = if cfg.is_dense(level) { IndexMode::Dense } else { IndexMode::Hashed };
        let entries = cfg.level_entries(level);
        EmbeddingTable {
            level,
            vertex_res: cfg.level_vertex_res(level),
            mode,
            feat_dim: cfg.feat_dim,
            entries,
            data: vec![0.0; entries as usize * cfg.feat_dim],
        }
    }

    /// Level this table serves.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Indexing mode (dense or hashed).
    pub fn mode(&self) -> IndexMode {
        self.mode
    }

    /// Number of rows.
    pub fn entries(&self) -> u32 {
        self.entries
    }

    /// Features per row.
    pub fn feat_dim(&self) -> usize {
        self.feat_dim
    }

    /// Vertices per axis at this level.
    pub fn vertex_res(&self) -> u32 {
        self.vertex_res
    }

    /// Table row index for vertex `(x, y, z)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a dense coordinate is out of range.
    #[inline]
    pub fn row_of(&self, x: u32, y: u32, z: u32) -> u32 {
        match self.mode {
            IndexMode::Dense => dense_index(x, y, z, self.vertex_res),
            IndexMode::Hashed => spatial_hash(x, y, z, self.entries),
        }
    }

    /// Feature slice of table row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= entries`.
    #[inline]
    pub fn row(&self, row: u32) -> &[f32] {
        let i = row as usize * self.feat_dim;
        &self.data[i..i + self.feat_dim]
    }

    /// Mutable feature slice of table row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= entries`.
    #[inline]
    pub fn row_mut(&mut self, row: u32) -> &mut [f32] {
        let i = row as usize * self.feat_dim;
        &mut self.data[i..i + self.feat_dim]
    }

    /// Feature slice of vertex `(x, y, z)` (lookup through the index mode).
    #[inline]
    pub fn lookup(&self, x: u32, y: u32, z: u32) -> &[f32] {
        self.row(self.row_of(x, y, z))
    }

    /// Raw parameter slice (all rows).
    pub fn params(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw parameter slice.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Iterates all vertex coordinates of this level (dense levels only;
    /// hashed levels would enumerate the full fine grid).
    pub fn dense_vertices(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        let v = self.vertex_res;
        debug_assert_eq!(self.mode, IndexMode::Dense);
        (0..v).flat_map(move |z| (0..v).flat_map(move |y| (0..v).map(move |x| (x, y, z))))
    }
}

/// The full multi-level embedding set.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingSet {
    tables: Vec<EmbeddingTable>,
}

impl EmbeddingSet {
    /// Allocates zeroed tables for every level of `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GridConfig::validate`].
    pub fn new(cfg: &GridConfig) -> Self {
        cfg.validate().expect("invalid grid config");
        EmbeddingSet { tables: (0..cfg.levels).map(|l| EmbeddingTable::new(cfg, l)).collect() }
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.tables.len()
    }

    /// Table of `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn table(&self, level: usize) -> &EmbeddingTable {
        &self.tables[level]
    }

    /// Mutable table of `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn table_mut(&mut self, level: usize) -> &mut EmbeddingTable {
        &mut self.tables[level]
    }

    /// Iterator over all tables.
    pub fn iter(&self) -> impl Iterator<Item = &EmbeddingTable> {
        self.tables.iter()
    }

    /// Total stored parameters.
    pub fn total_params(&self) -> usize {
        self.tables.iter().map(|t| t.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_table_roundtrip() {
        let cfg = GridConfig::tiny();
        let mut t = EmbeddingTable::new(&cfg, 0);
        assert_eq!(t.mode(), IndexMode::Dense);
        let r = t.row_of(1, 2, 3);
        t.row_mut(r).copy_from_slice(&[0.5, -0.25]);
        assert_eq!(t.lookup(1, 2, 3), &[0.5, -0.25]);
        // a different vertex is untouched
        assert_eq!(t.lookup(0, 0, 0), &[0.0, 0.0]);
    }

    #[test]
    fn hashed_table_aliases_but_is_consistent() {
        let cfg = GridConfig::tiny();
        let last = cfg.levels - 1;
        assert!(!cfg.is_dense(last), "tiny config must hash its finest level");
        let t = EmbeddingTable::new(&cfg, last);
        assert_eq!(t.mode(), IndexMode::Hashed);
        assert_eq!(t.entries(), cfg.table_size);
        // same vertex, same row, always
        assert_eq!(t.row_of(10, 20, 30), t.row_of(10, 20, 30));
    }

    #[test]
    fn set_has_expected_shape() {
        let cfg = GridConfig::tiny();
        let set = EmbeddingSet::new(&cfg);
        assert_eq!(set.levels(), cfg.levels);
        assert_eq!(set.total_params(), cfg.total_params());
        for (l, t) in set.iter().enumerate() {
            assert_eq!(t.level(), l);
            assert_eq!(t.feat_dim(), cfg.feat_dim);
        }
    }

    #[test]
    fn dense_vertices_enumerates_all() {
        let cfg = GridConfig::tiny();
        let t = EmbeddingTable::new(&cfg, 0);
        let n = t.dense_vertices().count();
        let v = cfg.level_vertex_res(0) as usize;
        assert_eq!(n, v * v * v);
    }

    #[test]
    #[should_panic]
    fn row_out_of_range_panics() {
        let cfg = GridConfig::tiny();
        let t = EmbeddingTable::new(&cfg, 0);
        let _ = t.row(t.entries());
    }
}
