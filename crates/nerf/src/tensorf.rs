//! TensoRF substrate: vector-matrix (VM) tensor decomposition.
//!
//! TensoRF (Chen et al., ECCV'22) factorizes the radiance volume into three
//! plane ⊗ line products per rank component:
//!
//! `q(x,y,z) = Σ_r  M_XY,r(x,y)·v_Z,r(z) + M_XZ,r(x,z)·v_Y,r(y) +
//!             M_YZ,r(y,z)·v_X,r(x)`
//!
//! The paper evaluates ASDR on TensoRF in §6.8 (Fig. 25, Table 4) to show
//! the optimizations generalize beyond hash grids. Unlike the NGP fit, this
//! model is trained by plain SGD against the analytic field — the factors
//! have no closed-form fill — which also demonstrates the repo's end-to-end
//! trainability.

use crate::fit::{fit_specular_sh, SIGMA_SCALE};
use crate::model::RadianceModel;
use crate::occupancy::OccupancyGrid;
use asdr_math::interp::bilinear;
use asdr_math::rng::seeded;
use asdr_math::sh::{eval_sh4, SH_DEGREE4_COEFFS};
use asdr_math::{Aabb, Rgb, Vec3};
use asdr_scenes::SceneField;
use rand::Rng;

/// TensoRF fitting hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TensoRfConfig {
    /// Grid resolution per axis for planes and lines.
    pub grid_res: usize,
    /// Rank (number of VM components) per quantity.
    pub rank: usize,
    /// SGD steps.
    pub steps: usize,
    /// SGD learning rate.
    pub lr: f32,
}

impl TensoRfConfig {
    /// Evaluation-scale configuration.
    pub fn small() -> Self {
        TensoRfConfig { grid_res: 64, rank: 8, steps: 60_000, lr: 0.6 }
    }

    /// Unit-test configuration.
    pub fn tiny() -> Self {
        TensoRfConfig { grid_res: 24, rank: 4, steps: 12_000, lr: 0.6 }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if any field is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.grid_res < 2 {
            return Err("grid_res must be >= 2".into());
        }
        if self.rank == 0 {
            return Err("rank must be >= 1".into());
        }
        if self.lr <= 0.0 {
            return Err("lr must be positive".into());
        }
        Ok(())
    }
}

/// One scalar quantity factored as `Σ_r Σ_axis plane·line`.
#[derive(Debug, Clone, PartialEq)]
pub struct VmFactor {
    res: usize,
    rank: usize,
    /// `planes[axis][r * res*res + v*res + u]`, axes = XY, XZ, YZ.
    planes: [Vec<f32>; 3],
    /// `lines[axis][r * res + i]`, axes = Z, Y, X (paired with planes).
    lines: [Vec<f32>; 3],
}

impl VmFactor {
    /// Zero-plane / small-positive-line initialization (so SGD gradients
    /// flow into the planes first).
    pub fn init(res: usize, rank: usize, rng: &mut impl Rng) -> Self {
        let planes = std::array::from_fn(|_| vec![0.0; rank * res * res]);
        let lines =
            std::array::from_fn(|_| (0..rank * res).map(|_| rng.gen_range(0.05..0.25)).collect());
        VmFactor { res, rank, planes, lines }
    }

    /// `(u, v, w)` coordinates of a normalized point for `axis`:
    /// plane coordinates first, then the line coordinate.
    #[inline]
    fn axis_coords(p01: Vec3, axis: usize) -> (f32, f32, f32) {
        match axis {
            0 => (p01.x, p01.y, p01.z), // XY plane, Z line
            1 => (p01.x, p01.z, p01.y), // XZ plane, Y line
            _ => (p01.y, p01.z, p01.x), // YZ plane, X line
        }
    }

    #[inline]
    fn grid_pos(&self, c: f32) -> (usize, usize, f32) {
        let g = c.clamp(0.0, 1.0) * (self.res - 1) as f32;
        let i0 = (g as usize).min(self.res - 2);
        (i0, i0 + 1, g - i0 as f32)
    }

    /// Evaluates the factor at a normalized point.
    pub fn eval(&self, p01: Vec3) -> f32 {
        let mut acc = 0.0f32;
        for axis in 0..3 {
            let (u, v, w) = Self::axis_coords(p01, axis);
            let (u0, u1, fu) = self.grid_pos(u);
            let (v0, v1, fv) = self.grid_pos(v);
            let (w0, w1, fw) = self.grid_pos(w);
            let plane = &self.planes[axis];
            let line = &self.lines[axis];
            let rr = self.res * self.res;
            for r in 0..self.rank {
                let base = r * rr;
                let pv = bilinear(
                    plane[base + v0 * self.res + u0],
                    plane[base + v0 * self.res + u1],
                    plane[base + v1 * self.res + u0],
                    plane[base + v1 * self.res + u1],
                    fu,
                    fv,
                );
                let lv = line[r * self.res + w0] * (1.0 - fw) + line[r * self.res + w1] * fw;
                acc += pv * lv;
            }
        }
        acc
    }

    /// One SGD step toward `target` at `p01` with learning rate `lr`.
    /// Returns the pre-update prediction.
    pub fn sgd_step(&mut self, p01: Vec3, target: f32, lr: f32) -> f32 {
        let pred = self.eval(p01);
        let grad = 2.0 * (pred - target);
        if grad == 0.0 {
            return pred;
        }
        let rr = self.res * self.res;
        for axis in 0..3 {
            let (u, v, w) = Self::axis_coords(p01, axis);
            let (u0, u1, fu) = self.grid_pos(u);
            let (v0, v1, fv) = self.grid_pos(v);
            let (w0, w1, fw) = self.grid_pos(w);
            for r in 0..self.rank {
                let base = r * rr;
                // current values (pre-update) for the product rule
                let corners = [
                    (v0 * self.res + u0, (1.0 - fu) * (1.0 - fv)),
                    (v0 * self.res + u1, fu * (1.0 - fv)),
                    (v1 * self.res + u0, (1.0 - fu) * fv),
                    (v1 * self.res + u1, fu * fv),
                ];
                let lv = self.lines[axis][r * self.res + w0] * (1.0 - fw)
                    + self.lines[axis][r * self.res + w1] * fw;
                let pv =
                    corners.iter().map(|&(i, wgt)| self.planes[axis][base + i] * wgt).sum::<f32>();
                // ∂q/∂plane_corner = corner_weight · line_value
                for &(i, wgt) in &corners {
                    self.planes[axis][base + i] -= lr * grad * wgt * lv;
                }
                // ∂q/∂line_end = plane_value · end_weight
                self.lines[axis][r * self.res + w0] -= lr * grad * pv * (1.0 - fw);
                self.lines[axis][r * self.res + w1] -= lr * grad * pv * fw;
            }
        }
        pred
    }

    /// Total stored parameters.
    pub fn param_count(&self) -> usize {
        self.planes.iter().map(Vec::len).sum::<usize>()
            + self.lines.iter().map(Vec::len).sum::<usize>()
    }
}

/// Query scratch for [`TensoRfModel`] (holds the diffuse color between the
/// density and color queries plus the SH buffer).
#[derive(Debug, Clone)]
pub struct TensoRfScratch {
    diffuse: [f32; 3],
    sh: [f32; SH_DEGREE4_COEFFS],
}

/// A fitted TensoRF model.
#[derive(Debug, Clone)]
pub struct TensoRfModel {
    sigma: VmFactor,
    color: [VmFactor; 3],
    spec_sh: [f32; SH_DEGREE4_COEFFS],
    bounds: Aabb,
    occupancy: OccupancyGrid,
    cfg: TensoRfConfig,
}

impl TensoRfModel {
    /// Fits a TensoRF model to `field` by SGD.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn fit(field: &dyn SceneField, cfg: &TensoRfConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid TensoRF config");
        let mut rng = seeded("tensorf-fit", seed);
        let bounds = field.bounds();
        let occupancy = OccupancyGrid::build(field, OccupancyGrid::DEFAULT_RES);
        let mut sigma = VmFactor::init(cfg.grid_res, cfg.rank, &mut rng);
        let mut color: [VmFactor; 3] =
            std::array::from_fn(|_| VmFactor::init(cfg.grid_res, cfg.rank, &mut rng));

        // pre-collect occupied cell centers for biased sampling
        let mut occupied_pts = Vec::new();
        let probe = 32;
        for z in 0..probe {
            for y in 0..probe {
                for x in 0..probe {
                    let u = Vec3::new(
                        (x as f32 + 0.5) / probe as f32,
                        (y as f32 + 0.5) / probe as f32,
                        (z as f32 + 0.5) / probe as f32,
                    );
                    if occupancy.occupied01(u) {
                        occupied_pts.push(u);
                    }
                }
            }
        }
        assert!(!occupied_pts.is_empty(), "scene is empty");

        for step in 0..cfg.steps {
            // 70% of samples near content, 30% uniform (empty-space zeros)
            let p01 = if step % 10 < 7 {
                let c = occupied_pts[rng.gen_range(0..occupied_pts.len())];
                let jitter = Vec3::new(
                    rng.gen_range(-0.02..0.02),
                    rng.gen_range(-0.02..0.02),
                    rng.gen_range(-0.02..0.02),
                );
                (c + jitter).clamp(0.0, 1.0)
            } else {
                Vec3::new(rng.gen(), rng.gen(), rng.gen())
            };
            let pw = bounds.denormalize(p01);
            let lr = cfg.lr * (1.0 - 0.9 * step as f32 / cfg.steps as f32);
            sigma.sgd_step(p01, field.density(pw) / SIGMA_SCALE, lr);
            let d = field.diffuse(pw);
            color[0].sgd_step(p01, d.r, lr);
            color[1].sgd_step(p01, d.g, lr);
            color[2].sgd_step(p01, d.b, lr);
        }

        TensoRfModel {
            sigma,
            color,
            spec_sh: fit_specular_sh(),
            bounds,
            occupancy,
            cfg: cfg.clone(),
        }
    }

    /// Fitting configuration.
    pub fn config(&self) -> &TensoRfConfig {
        &self.cfg
    }

    /// Occupancy mask.
    pub fn occupancy(&self) -> &OccupancyGrid {
        &self.occupancy
    }

    /// Total stored parameters across all factors.
    pub fn param_count(&self) -> usize {
        self.sigma.param_count() + self.color.iter().map(VmFactor::param_count).sum::<usize>()
    }

    /// Table lookups per point query (planes fetch 4 entries, lines 2, per
    /// axis, per quantity) — consumed by the architecture mapping for
    /// Fig. 25.
    pub fn lookups_per_point(&self) -> u64 {
        // 4 quantities × 3 axes × (4 + 2)
        4 * 3 * 6
    }
}

impl RadianceModel for TensoRfModel {
    type Scratch = TensoRfScratch;

    fn make_query_scratch(&self) -> TensoRfScratch {
        TensoRfScratch { diffuse: [0.0; 3], sh: [0.0; SH_DEGREE4_COEFFS] }
    }

    fn model_bounds(&self) -> Aabb {
        self.bounds
    }

    fn density_into(&self, p_world: Vec3, scratch: &mut TensoRfScratch) -> f32 {
        let p01 = self.bounds.normalize(p_world);
        for c in 0..3 {
            scratch.diffuse[c] = self.color[c].eval(p01);
        }
        if !self.occupancy.occupied_world(p_world) {
            return 0.0;
        }
        (self.sigma.eval(p01) * SIGMA_SCALE).max(0.0)
    }

    fn color_into(&self, view_dir: Vec3, scratch: &mut TensoRfScratch) -> Rgb {
        eval_sh4(view_dir, &mut scratch.sh);
        let spec: f32 = scratch.sh.iter().zip(&self.spec_sh).map(|(y, c)| y * c).sum();
        Rgb::new(scratch.diffuse[0] + spec, scratch.diffuse[1] + spec, scratch.diffuse[2] + spec)
            .clamp01()
    }

    fn stage_flops(&self) -> (u64, u64, u64) {
        // encoding ≈ plane/line interpolation MACs; density = σ decode;
        // color = 3 channels + SH dot product
        let per_quantity = 3 * self.cfg.rank as u64 * (8 + 3 + 2);
        let encode = 4 * per_quantity;
        let density = 2 * self.cfg.rank as u64 * 3;
        let color = 3 * per_quantity + 2 * SH_DEGREE4_COEFFS as u64 * 3;
        (encode, density, color)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdr_scenes::registry;

    #[test]
    fn vm_factor_fits_separable_function() {
        // f(x,y,z) = x·y·z is rank-1 in the XY⊗Z term
        let mut rng = seeded("vm-test", 0);
        let mut f = VmFactor::init(16, 2, &mut rng);
        let mut rng2 = seeded("vm-test-data", 0);
        for step in 0..20_000 {
            let p = Vec3::new(rng2.gen(), rng2.gen(), rng2.gen());
            let lr = 0.5 * (1.0 - 0.9 * step as f32 / 20_000.0);
            f.sgd_step(p, p.x * p.y * p.z, lr);
        }
        let mut err = 0.0f32;
        for i in 0..100 {
            let t = i as f32 / 100.0;
            let p = Vec3::new(t, (t * 7.0).fract(), (t * 3.0).fract());
            err = err.max((f.eval(p) - p.x * p.y * p.z).abs());
        }
        assert!(err < 0.15, "VM fit error too large: {err}");
    }

    #[test]
    fn sgd_step_reduces_pointwise_error() {
        let mut rng = seeded("vm-step", 0);
        let mut f = VmFactor::init(8, 2, &mut rng);
        let p = Vec3::new(0.3, 0.6, 0.2);
        let before = (f.eval(p) - 1.0).abs();
        for _ in 0..50 {
            f.sgd_step(p, 1.0, 0.1);
        }
        let after = (f.eval(p) - 1.0).abs();
        assert!(after < before, "{before} -> {after}");
        assert!(after < 0.05);
    }

    #[test]
    fn fitted_tensorf_tracks_field() {
        let scene = registry::handle("Hotdog").build();
        let model = TensoRfModel::fit(scene.as_ref(), &TensoRfConfig::tiny(), 0);
        let mut s = model.make_query_scratch();
        // inside the sausage
        let inside = Vec3::new(0.0, -0.34, 0.0);
        let sig = model.density_into(inside, &mut s);
        assert!(sig > 5.0, "inside density {sig}");
        // far corner
        let sig_out = model.density_into(Vec3::new(0.9, 0.9, 0.9), &mut s);
        assert_eq!(sig_out, 0.0, "occupancy must mask empty space");
    }

    #[test]
    fn color_includes_specular() {
        let scene = registry::handle("Chair").build();
        let model = TensoRfModel::fit(scene.as_ref(), &TensoRfConfig::tiny(), 0);
        let mut s = model.make_query_scratch();
        let p = Vec3::new(0.0, -0.1, 0.0);
        let _ = model.density_into(p, &mut s);
        let toward_light = Vec3::new(-0.5, -0.8, -0.3).normalized();
        let away = Vec3::Y;
        let c1 = model.color_into(toward_light, &mut s);
        let c2 = model.color_into(away, &mut s);
        assert!(c1.luminance() > c2.luminance(), "specular should brighten {c1} vs {c2}");
    }

    #[test]
    fn flops_and_params_positive() {
        let scene = registry::handle("Mic").build();
        let model = TensoRfModel::fit(scene.as_ref(), &TensoRfConfig::tiny(), 0);
        let (e, d, c) = model.stage_flops();
        assert!(e > 0 && d > 0 && c > 0);
        assert!(model.param_count() > 0);
        assert_eq!(model.lookups_per_point(), 72);
    }

    #[test]
    fn config_validation() {
        assert!(TensoRfConfig::tiny().validate().is_ok());
        assert!(TensoRfConfig { grid_res: 1, ..TensoRfConfig::tiny() }.validate().is_err());
        assert!(TensoRfConfig { rank: 0, ..TensoRfConfig::tiny() }.validate().is_err());
        assert!(TensoRfConfig { lr: 0.0, ..TensoRfConfig::tiny() }.validate().is_err());
    }
}
