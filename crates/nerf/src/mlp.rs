//! Dense multilayer perceptrons with FLOP accounting.
//!
//! The MLPs are executed as plain row-major matrix-vector products — the same
//! arithmetic the CIM crossbars of the architecture model perform — and
//! report their exact MAC counts so the FLOPs-breakdown experiment (Fig. 5)
//! and the roofline GPU models measure the real workload.

use std::fmt;

/// Activation applied after a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// `max(0, x)`.
    Relu,
}

impl Activation {
    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Relu => x.max(0.0),
        }
    }
}

/// One dense layer `y = act(W x + b)`, weights row-major `[out][in]`.
#[derive(Clone, PartialEq)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    act: Activation,
}

impl fmt::Debug for Dense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dense")
            .field("in_dim", &self.in_dim)
            .field("out_dim", &self.out_dim)
            .field("act", &self.act)
            .finish()
    }
}

impl Dense {
    /// Creates a zero-initialized layer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(in_dim: usize, out_dim: usize, act: Activation) -> Self {
        assert!(in_dim > 0 && out_dim > 0);
        Dense {
            in_dim,
            out_dim,
            weights: vec![0.0; in_dim * out_dim],
            bias: vec![0.0; out_dim],
            act,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Activation function.
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Row-major weight matrix `[out][in]`.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Mutable weights.
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Sets weight `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize, v: f32) {
        assert!(row < self.out_dim && col < self.in_dim);
        self.weights[row * self.in_dim + col] = v;
    }

    /// Forward pass into `out`.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths mismatch.
    pub fn forward(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.in_dim, "input length mismatch");
        assert_eq!(out.len(), self.out_dim, "output length mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.weights[r * self.in_dim..(r + 1) * self.in_dim];
            let mut acc = self.bias[r];
            for (w, v) in row.iter().zip(x) {
                acc += w * v;
            }
            *o = self.act.apply(acc);
        }
    }

    /// Multiply-accumulate count of one forward pass.
    pub fn macs(&self) -> u64 {
        (self.in_dim * self.out_dim) as u64
    }
}

/// A stack of dense layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
    scratch_len: usize,
}

impl Mlp {
    /// Builds an MLP from layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive dimensions disagree.
    pub fn new(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "MLP needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(pair[0].out_dim, pair[1].in_dim, "layer dimension mismatch");
        }
        let scratch_len = layers.iter().map(|l| l.out_dim.max(l.in_dim)).max().unwrap();
        Mlp { layers, scratch_len }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim
    }

    /// The layers.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable layers.
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Allocates a scratch buffer sized for [`Self::forward_scratch`].
    pub fn make_scratch(&self) -> Vec<f32> {
        vec![0.0; self.scratch_len * 2]
    }

    /// Forward pass using caller-provided scratch (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `x`, `out` or `scratch` have wrong lengths.
    pub fn forward_scratch(&self, x: &[f32], out: &mut [f32], scratch: &mut [f32]) {
        assert_eq!(out.len(), self.out_dim(), "output length mismatch");
        assert!(scratch.len() >= self.scratch_len * 2, "scratch too small");
        let (a, b) = scratch.split_at_mut(self.scratch_len);
        let n = self.layers.len();
        if n == 1 {
            self.layers[0].forward(x, out);
            return;
        }
        // first layer: x -> a
        self.layers[0].forward(x, &mut a[..self.layers[0].out_dim]);
        let mut cur_in_a = true;
        for (i, layer) in self.layers.iter().enumerate().skip(1) {
            let last = i == n - 1;
            let (src, dst): (&[f32], &mut [f32]) = if cur_in_a {
                (&a[..layer.in_dim], if last { &mut out[..] } else { &mut b[..layer.out_dim] })
            } else {
                (&b[..layer.in_dim], if last { &mut out[..] } else { &mut a[..layer.out_dim] })
            };
            layer.forward(src, dst);
            cur_in_a = !cur_in_a;
        }
    }

    /// Forward pass with internal allocation (convenience).
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.out_dim()];
        let mut scratch = self.make_scratch();
        self.forward_scratch(x, &mut out, &mut scratch);
        out
    }

    /// Total multiply-accumulates of one forward pass.
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(Dense::macs).sum()
    }

    /// Total FLOPs of one forward pass (2 per MAC).
    pub fn flops(&self) -> u64 {
        self.macs() * 2
    }

    /// Total parameter count (weights + biases).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.weights.len() + l.bias.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_layer(dim: usize) -> Dense {
        let mut l = Dense::zeros(dim, dim, Activation::None);
        for i in 0..dim {
            l.set(i, i, 1.0);
        }
        l
    }

    #[test]
    fn single_layer_linear_map() {
        let mut l = Dense::zeros(2, 2, Activation::None);
        l.set(0, 0, 2.0);
        l.set(0, 1, 1.0);
        l.set(1, 0, -1.0);
        l.bias_mut()[1] = 0.5;
        let mut out = [0.0; 2];
        l.forward(&[3.0, 4.0], &mut out);
        assert_eq!(out, [10.0, -2.5]);
    }

    #[test]
    fn relu_clamps_negative() {
        let mut l = Dense::zeros(1, 2, Activation::Relu);
        l.set(0, 0, 1.0);
        l.set(1, 0, -1.0);
        let mut out = [0.0; 2];
        l.forward(&[2.0], &mut out);
        assert_eq!(out, [2.0, 0.0]);
    }

    #[test]
    fn deep_identity_preserves_input() {
        let mlp = Mlp::new(vec![identity_layer(3), identity_layer(3), identity_layer(3)]);
        let y = mlp.forward(&[1.0, -2.0, 0.5]);
        assert_eq!(y, vec![1.0, -2.0, 0.5]);
    }

    #[test]
    fn forward_scratch_matches_forward() {
        // a 4 -> 5 -> 3 -> 2 network with pseudo-random weights
        let mut l1 = Dense::zeros(4, 5, Activation::Relu);
        let mut l2 = Dense::zeros(5, 3, Activation::Relu);
        let mut l3 = Dense::zeros(3, 2, Activation::None);
        let mut v = 0.1f32;
        for l in [&mut l1, &mut l2, &mut l3] {
            for w in l.weights_mut() {
                *w = v;
                v = (v * 1.7 + 0.13) % 1.0 - 0.5;
            }
        }
        let mlp = Mlp::new(vec![l1, l2, l3]);
        let x = [0.3, -0.7, 1.2, 0.05];
        let y1 = mlp.forward(&x);
        let mut y2 = vec![0.0; 2];
        let mut scratch = mlp.make_scratch();
        mlp.forward_scratch(&x, &mut y2, &mut scratch);
        assert_eq!(y1, y2);
    }

    #[test]
    fn mac_and_param_counts() {
        let mlp = Mlp::new(vec![
            Dense::zeros(32, 64, Activation::Relu),
            Dense::zeros(64, 16, Activation::None),
        ]);
        assert_eq!(mlp.macs(), 32 * 64 + 64 * 16);
        assert_eq!(mlp.flops(), 2 * (32 * 64 + 64 * 16));
        assert_eq!(mlp.param_count(), 32 * 64 + 64 + 64 * 16 + 16);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let _ = Mlp::new(vec![
            Dense::zeros(4, 8, Activation::Relu),
            Dense::zeros(9, 2, Activation::None),
        ]);
    }

    #[test]
    fn color_vs_density_flops_ratio_matches_paper() {
        // §3 Challenge 2: density MLP ≈ 8%… color ≈ 92% of MLP FLOPs in
        // vanilla NeRF; for Instant-NGP's small MLPs (Fig. 5) the ratio is
        // roughly 2:1. Our shapes reproduce the Instant-NGP split.
        let density = Mlp::new(vec![
            Dense::zeros(32, 64, Activation::Relu),
            Dense::zeros(64, 16, Activation::None),
        ]);
        let color = Mlp::new(vec![
            Dense::zeros(32, 64, Activation::Relu),
            Dense::zeros(64, 64, Activation::Relu),
            Dense::zeros(64, 3, Activation::None),
        ]);
        let ratio = color.flops() as f64 / density.flops() as f64;
        assert!(ratio > 1.8 && ratio < 2.5, "color:density = {ratio}");
    }
}
