//! Volumetric training: fitting the hash grid from 2D images.
//!
//! The experiment harness uses the closed-form field fit ([`crate::fit`]);
//! this module provides what a real deployment needs — gradient descent on
//! the photometric loss through the volume-rendering integral, i.e. actual
//! NeRF training. The decoder MLPs stay fixed (they implement the linear
//! decode); gradients flow into the embedding tables through
//!
//! `C = Σ_i T_i α_i c_i`, `α_i = 1 − exp(−σ_i δ_i)`,
//! `T_i = Π_{j<i} (1 − α_j)`
//!
//! with `∂C/∂c_i = T_i α_i` and
//! `∂C/∂α_i = T_i c_i − (Σ_{j>i} T_j α_j c_j) / (1 − α_i)`,
//! then through the linear decode and the trilinear interpolation weights
//! into the individual table rows — the exact backward pass of the original
//! Instant-NGP, specialized to frozen MLPs.

use crate::fit::{decode_plans_for, SIGMA_SCALE};
use crate::model::NgpModel;
use asdr_math::interp::{trilinear_weights, CORNER_OFFSETS};
use asdr_math::rng::seeded;
use asdr_math::{Camera, Image, Vec3};
use asdr_scenes::field::specular_lobe;
use rand::Rng;

/// Volumetric-training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Optimization iterations.
    pub iters: usize,
    /// Rays sampled per iteration.
    pub rays_per_iter: usize,
    /// Samples per ray.
    pub samples: usize,
    /// Learning rate on the embedding entries.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl TrainConfig {
    /// Unit-test scale.
    pub fn tiny() -> Self {
        TrainConfig { iters: 300, rays_per_iter: 64, samples: 32, lr: 1.5, seed: 0 }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if any field is zero or non-positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.iters == 0 || self.rays_per_iter == 0 || self.samples == 0 {
            return Err("iters, rays_per_iter, samples must be >= 1".into());
        }
        if self.lr <= 0.0 {
            return Err("lr must be positive".into());
        }
        Ok(())
    }
}

/// Before/after photometric loss of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Mean squared pixel error before training.
    pub initial_loss: f64,
    /// Mean squared pixel error after training.
    pub final_loss: f64,
}

/// One cached sample along a training ray.
#[derive(Debug, Clone, Copy)]
struct TrainSample {
    p01: Vec3,
    sigma: f32,
    alpha: f32,
    trans: f32,
    color: [f32; 3],
    delta: f32,
    occupied: bool,
}

/// Decodes the four linear quantities (σ', r, g, b) at `p01` straight from
/// the tables (bypassing the MLP, which implements the same function).
fn decode_quantities(
    model: &NgpModel,
    plans: &[Vec<(usize, usize, f32)>; 4],
    p01: Vec3,
) -> [f32; 4] {
    let cfg = model.encoder().config();
    let tables = model.encoder().tables();
    let mut out = [0.0f32; 4];
    for (qi, lanes) in plans.iter().enumerate() {
        for &(level, slot, w) in lanes {
            let res = cfg.level_resolution(level);
            let scaled = p01.clamp(0.0, 1.0) * res as f32;
            let hi = (res - 1) as f32;
            let bx = scaled.x.floor().min(hi).max(0.0);
            let by = scaled.y.floor().min(hi).max(0.0);
            let bz = scaled.z.floor().min(hi).max(0.0);
            let tw = trilinear_weights(
                (scaled.x - bx).clamp(0.0, 1.0),
                (scaled.y - by).clamp(0.0, 1.0),
                (scaled.z - bz).clamp(0.0, 1.0),
            );
            let (bx, by, bz) = (bx as u32, by as u32, bz as u32);
            let table = tables.table(level);
            for (i, &(dx, dy, dz)) in CORNER_OFFSETS.iter().enumerate() {
                out[qi] += w * tw[i] * table.lookup(bx + dx, by + dy, bz + dz)[slot];
            }
        }
    }
    out
}

/// Scatters a gradient on quantity `qi` at `p01` back into the tables.
fn scatter_gradient(
    model: &mut NgpModel,
    plans: &[Vec<(usize, usize, f32)>; 4],
    p01: Vec3,
    qi: usize,
    grad: f32,
    lr: f32,
) {
    if grad == 0.0 {
        return;
    }
    let cfg = model.encoder().config().clone();
    for &(level, slot, w) in &plans[qi] {
        let res = cfg.level_resolution(level);
        let scaled = p01.clamp(0.0, 1.0) * res as f32;
        let hi = (res - 1) as f32;
        let bx = scaled.x.floor().min(hi).max(0.0);
        let by = scaled.y.floor().min(hi).max(0.0);
        let bz = scaled.z.floor().min(hi).max(0.0);
        let tw = trilinear_weights(
            (scaled.x - bx).clamp(0.0, 1.0),
            (scaled.y - by).clamp(0.0, 1.0),
            (scaled.z - bz).clamp(0.0, 1.0),
        );
        let (bx, by, bz) = (bx as u32, by as u32, bz as u32);
        let table = model.encoder_mut().tables_mut().table_mut(level);
        for (i, &(dx, dy, dz)) in CORNER_OFFSETS.iter().enumerate() {
            let row = table.row_of(bx + dx, by + dy, bz + dz);
            table.row_mut(row)[slot] -= lr * grad * w * tw[i];
        }
    }
}

/// Trains the embedding tables of `model` against posed RGB images by
/// stochastic gradient descent on the squared photometric error.
///
/// Returns the loss before and after (measured on a fixed probe ray set).
///
/// # Panics
///
/// Panics if `cfg` is invalid, `views` is empty, or a view's camera and
/// image disagree on resolution.
pub fn train_volumetric(
    model: &mut NgpModel,
    views: &[(Camera, Image)],
    cfg: &TrainConfig,
) -> TrainReport {
    cfg.validate().expect("invalid train config");
    assert!(!views.is_empty(), "need at least one training view");
    for (cam, img) in views {
        assert_eq!(cam.width(), img.width(), "camera/image width mismatch");
        assert_eq!(cam.height(), img.height(), "camera/image height mismatch");
    }
    let plans = decode_plans_for(model.encoder().config());
    let mut rng = seeded("train-volumetric", cfg.seed);

    // fixed probe rays for the before/after loss
    let probe: Vec<(usize, u32, u32)> = (0..256)
        .map(|_| {
            let v = rng.gen_range(0..views.len());
            let (cam, _) = &views[v];
            (v, rng.gen_range(0..cam.width()), rng.gen_range(0..cam.height()))
        })
        .collect();

    let eval_loss = |model: &NgpModel, plans: &[Vec<(usize, usize, f32)>; 4]| -> f64 {
        let mut acc = 0.0f64;
        for &(v, px, py) in &probe {
            let (cam, img) = &views[v];
            let (pred, _) = forward_ray(model, plans, cam, px, py, cfg.samples);
            let want = img.get(px, py);
            acc += ((pred[0] - want.r) as f64).powi(2)
                + ((pred[1] - want.g) as f64).powi(2)
                + ((pred[2] - want.b) as f64).powi(2);
        }
        acc / probe.len() as f64
    };
    let initial_loss = eval_loss(model, &plans);

    for _ in 0..cfg.iters {
        for _ in 0..cfg.rays_per_iter {
            let v = rng.gen_range(0..views.len());
            let (cam, img) = &views[v];
            let px = rng.gen_range(0..cam.width());
            let py = rng.gen_range(0..cam.height());
            let (pred, samples) = forward_ray(model, &plans, cam, px, py, cfg.samples);
            if samples.is_empty() {
                continue;
            }
            let want = img.get(px, py);
            let dl_dc =
                [2.0 * (pred[0] - want.r), 2.0 * (pred[1] - want.g), 2.0 * (pred[2] - want.b)];

            // suffix sums Σ_{j>i} T_j α_j c_j for the transmittance term
            let n = samples.len();
            let mut suffix = vec![[0.0f32; 3]; n + 1];
            for i in (0..n).rev() {
                let s = &samples[i];
                let wgt = s.trans * s.alpha;
                let next = suffix[i + 1];
                for (c, out) in suffix[i].iter_mut().enumerate() {
                    *out = next[c] + wgt * s.color[c];
                }
            }

            let lr = cfg.lr / cfg.rays_per_iter as f32;
            for (i, s) in samples.iter().enumerate() {
                if !s.occupied {
                    continue;
                }
                let weight = s.trans * s.alpha;
                // color gradients (diffuse channels; the view-dependent term
                // is a constant offset)
                for (c, &d) in dl_dc.iter().enumerate() {
                    let g = d * weight;
                    scatter_gradient(model, &plans, s.p01, 1 + c, g, lr);
                }
                // density gradient through α_i and the later transmittances
                if s.sigma > 0.0 || dl_dc.iter().any(|&g| g != 0.0) {
                    let dalpha_dsigma = s.delta * (1.0 - s.alpha); // δ·exp(−σδ)
                    let mut dl_dalpha = 0.0f32;
                    for c in 0..3 {
                        let dc_dalpha =
                            s.trans * s.color[c] - suffix[i + 1][c] / (1.0 - s.alpha).max(1e-4);
                        dl_dalpha += dl_dc[c] * dc_dalpha;
                    }
                    // σ = σ' · SIGMA_SCALE with ReLU; in the clipped region
                    // only positive-pushing gradients pass (subgradient)
                    let g_sigma = dl_dalpha * dalpha_dsigma * SIGMA_SCALE;
                    if s.sigma > 0.0 || g_sigma < 0.0 {
                        scatter_gradient(model, &plans, s.p01, 0, g_sigma, lr);
                    }
                }
            }
        }
    }

    TrainReport { initial_loss, final_loss: eval_loss(model, &plans) }
}

/// Forward pass of one ray via the linear decode; returns the composited
/// RGB and the per-sample cache for the backward pass.
fn forward_ray(
    model: &NgpModel,
    plans: &[Vec<(usize, usize, f32)>; 4],
    cam: &Camera,
    px: u32,
    py: u32,
    samples: usize,
) -> ([f32; 3], Vec<TrainSample>) {
    let ray = cam.ray_for_pixel(px, py);
    let Some(tr) = model.bounds().intersect(&ray) else {
        return ([0.0; 3], Vec::new());
    };
    if tr.is_empty() {
        return ([0.0; 3], Vec::new());
    }
    let spec = specular_lobe(ray.dir);
    let dt = tr.span() / samples as f32;
    let mut out = Vec::with_capacity(samples);
    let mut trans = 1.0f32;
    let mut rgb = [0.0f32; 3];
    for t in tr.midpoints(samples) {
        let pw = ray.at(t);
        let p01 = model.bounds().normalize(pw);
        let occupied = model.is_occupied(pw);
        let q = decode_quantities(model, plans, p01);
        let sigma = if occupied { (q[0] * SIGMA_SCALE).max(0.0) } else { 0.0 };
        let alpha = 1.0 - (-sigma * dt).exp();
        let color = [q[1] + spec, q[2] + spec, q[3] + spec];
        for c in 0..3 {
            rgb[c] += trans * alpha * color[c];
        }
        out.push(TrainSample { p01, sigma, alpha, trans, color, delta: dt, occupied });
        trans *= 1.0 - alpha;
        if trans < 1e-4 {
            break;
        }
    }
    (rgb, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::fit_ngp;
    use crate::grid::GridConfig;
    use asdr_math::rng::seeded as seeded_rng;
    use asdr_scenes::gt::render_ground_truth;
    use asdr_scenes::registry;

    fn training_views(name: &str, n: usize, res: u32) -> Vec<(Camera, Image)> {
        let scene = registry::handle(name).build();
        (0..n)
            .map(|i| {
                let az = i as f32 * 360.0 / n as f32;
                let cam = Camera::orbit(Vec3::ZERO, 3.2, az, 20.0, 42.0, res, res);
                let img = render_ground_truth(scene.as_ref(), &cam, 96);
                (cam, img)
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss_from_perturbed_start() {
        let scene = registry::handle("Mic").build();
        let mut model = fit_ngp(scene.as_ref(), &GridConfig::tiny());
        // perturb the fitted tables to create something to recover
        let mut rng = seeded_rng("train-perturb", 0);
        for l in 0..model.encoder().config().levels {
            for v in model.encoder_mut().tables_mut().table_mut(l).params_mut() {
                *v += rng.gen_range(-0.08..0.08);
            }
        }
        let views = training_views("Mic", 3, 24);
        let report = train_volumetric(&mut model, &views, &TrainConfig::tiny());
        assert!(
            report.final_loss < report.initial_loss * 0.8,
            "training should recover: {report:?}"
        );
    }

    #[test]
    fn training_improves_held_out_view() {
        use asdr_math::metrics::psnr;
        let scene = registry::handle("Hotdog").build();
        let mut model = fit_ngp(scene.as_ref(), &GridConfig::tiny());
        let mut rng = seeded_rng("train-perturb2", 1);
        for l in 0..model.encoder().config().levels {
            for v in model.encoder_mut().tables_mut().table_mut(l).params_mut() {
                *v += rng.gen_range(-0.06..0.06);
            }
        }
        let views = training_views("Hotdog", 4, 24);
        // held-out view
        let held_cam = registry::handle("Hotdog").camera(24, 24);
        let held_gt = render_ground_truth(scene.as_ref(), &held_cam, 96);
        let before = render_with_decode(&model, &held_cam);
        let report = train_volumetric(&mut model, &views, &TrainConfig::tiny());
        let after = render_with_decode(&model, &held_cam);
        assert!(report.final_loss < report.initial_loss);
        let p_before = psnr(&before, &held_gt);
        let p_after = psnr(&after, &held_gt);
        assert!(
            p_after > p_before - 0.2,
            "held-out quality should not regress: {p_before:.2} -> {p_after:.2}"
        );
    }

    /// Renders a small frame through the same linear decode as training.
    fn render_with_decode(model: &NgpModel, cam: &Camera) -> Image {
        let plans = decode_plans_for(model.encoder().config());
        let mut img = Image::new(cam.width(), cam.height());
        for py in 0..cam.height() {
            for px in 0..cam.width() {
                let (rgb, _) = forward_ray(model, &plans, cam, px, py, 48);
                img.set(px, py, asdr_math::Rgb::new(rgb[0], rgb[1], rgb[2]).clamp01());
            }
        }
        img
    }

    #[test]
    fn config_validation() {
        assert!(TrainConfig::tiny().validate().is_ok());
        assert!(TrainConfig { iters: 0, ..TrainConfig::tiny() }.validate().is_err());
        assert!(TrainConfig { lr: 0.0, ..TrainConfig::tiny() }.validate().is_err());
    }
}
