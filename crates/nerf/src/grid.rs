//! Multi-resolution grid geometry.
//!
//! Instant-NGP encodes a point with `L` levels whose per-axis resolutions
//! grow geometrically from `base_res` to `max_res`. Levels whose full dense
//! grid fits in the table are stored densely (collision-free); finer levels
//! are compressed through the spatial hash. The split between the two is
//! what the ASDR hybrid address generator exploits (§5.2.1).

/// Configuration of the multi-resolution hash encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct GridConfig {
    /// Number of resolution levels `L` (paper: 16).
    pub levels: usize,
    /// Coarsest per-axis grid resolution (paper: 16).
    pub base_res: u32,
    /// Finest per-axis grid resolution (paper: 512 for the synthetic scenes).
    pub max_res: u32,
    /// Hash-table length `T` per level, a power of two (paper: 2^19).
    pub table_size: u32,
    /// Features per table entry `F` (paper: 2).
    pub feat_dim: usize,
}

impl GridConfig {
    /// The paper's configuration: 16 levels, 16→512, `T = 2^19`, `F = 2`.
    pub fn paper() -> Self {
        GridConfig { levels: 16, base_res: 16, max_res: 512, table_size: 1 << 19, feat_dim: 2 }
    }

    /// A reduced configuration for fast experiments (used by the default
    /// benchmark harness): 16 levels, 16→256, `T = 2^15`.
    pub fn small() -> Self {
        GridConfig { levels: 16, base_res: 16, max_res: 256, table_size: 1 << 15, feat_dim: 2 }
    }

    /// A tiny configuration for unit tests: 8 levels, 8→64, `T = 2^12`.
    pub fn tiny() -> Self {
        GridConfig { levels: 8, base_res: 8, max_res: 64, table_size: 1 << 12, feat_dim: 2 }
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    ///
    /// # Errors
    ///
    /// Returns `Err` if any field is degenerate (zero levels, non-power-of-
    /// two table, resolutions out of order, …).
    pub fn validate(&self) -> Result<(), String> {
        if self.levels == 0 {
            return Err("levels must be >= 1".into());
        }
        if self.base_res < 2 {
            return Err("base_res must be >= 2".into());
        }
        if self.max_res < self.base_res {
            return Err(format!("max_res {} < base_res {}", self.max_res, self.base_res));
        }
        if !self.table_size.is_power_of_two() {
            return Err(format!("table_size {} is not a power of two", self.table_size));
        }
        if self.feat_dim == 0 {
            return Err("feat_dim must be >= 1".into());
        }
        Ok(())
    }

    /// Per-axis growth factor `b = exp(ln(max/base)/(L−1))` (Instant-NGP
    /// Eq. 3). Equals 1 when there is a single level.
    pub fn growth_factor(&self) -> f64 {
        if self.levels <= 1 {
            return 1.0;
        }
        ((self.max_res as f64 / self.base_res as f64).ln() / (self.levels as f64 - 1.0)).exp()
    }

    /// Grid resolution (number of cells per axis) of `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels`.
    pub fn level_resolution(&self, level: usize) -> u32 {
        assert!(level < self.levels, "level {level} out of range");
        let b = self.growth_factor();
        let r = (self.base_res as f64) * b.powi(level as i32);
        (r.round() as u32).max(self.base_res).min(self.max_res)
    }

    /// Number of vertices per axis of `level` (resolution + 1).
    pub fn level_vertex_res(&self, level: usize) -> u32 {
        self.level_resolution(level) + 1
    }

    /// Whether `level` is stored densely (its full vertex grid fits in the
    /// table) or hashed.
    pub fn is_dense(&self, level: usize) -> bool {
        let v = self.level_vertex_res(level) as u64;
        v * v * v <= self.table_size as u64
    }

    /// Number of table entries `level` actually occupies: the dense vertex
    /// count for dense levels, the full table for hashed ones.
    pub fn level_entries(&self, level: usize) -> u32 {
        if self.is_dense(level) {
            let v = self.level_vertex_res(level);
            v * v * v
        } else {
            self.table_size
        }
    }

    /// Raw storage utilization of `level` under naive all-hash mapping:
    /// occupied entries over table length (the quantity plotted in
    /// Fig. 13(a)).
    pub fn level_utilization(&self, level: usize) -> f64 {
        self.level_entries(level) as f64 / self.table_size as f64
    }

    /// Dimension of the concatenated encoded feature (`L × F`).
    pub fn encoded_dim(&self) -> usize {
        self.levels * self.feat_dim
    }

    /// Total number of stored feature scalars across all levels.
    pub fn total_params(&self) -> usize {
        (0..self.levels).map(|l| self.level_entries(l) as usize * self.feat_dim).sum()
    }

    /// Total embedding-table bytes assuming `f32` entries (the paper quotes
    /// ≈60 MB for 16 × 2^19 × F=2 at half precision; we store f32).
    pub fn total_bytes(&self) -> usize {
        self.total_params() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        let c = GridConfig::paper();
        c.validate().unwrap();
        assert_eq!(c.levels, 16);
        assert_eq!(c.table_size, 1 << 19);
        assert_eq!(c.encoded_dim(), 32);
    }

    #[test]
    fn resolutions_grow_monotonically() {
        for cfg in [GridConfig::paper(), GridConfig::small(), GridConfig::tiny()] {
            let mut prev = 0;
            for l in 0..cfg.levels {
                let r = cfg.level_resolution(l);
                assert!(r >= prev, "level {l} resolution {r} < previous {prev}");
                prev = r;
            }
            assert_eq!(cfg.level_resolution(0), cfg.base_res);
            assert_eq!(cfg.level_resolution(cfg.levels - 1), cfg.max_res);
        }
    }

    #[test]
    fn coarse_levels_are_dense_fine_levels_hashed() {
        let c = GridConfig::paper();
        assert!(c.is_dense(0), "16^3+1 vertices must fit in 2^19");
        assert!(!c.is_dense(c.levels - 1), "513^3 cannot fit in 2^19");
        // the split is monotone: once hashed, stays hashed
        let mut was_hashed = false;
        for l in 0..c.levels {
            let hashed = !c.is_dense(l);
            assert!(!was_hashed || hashed, "density split must be monotone");
            was_hashed = hashed;
        }
    }

    #[test]
    fn utilization_matches_fig13_premise() {
        // Fig. 13(a): storing everything hashed wastes ~38% on average
        // because dense levels occupy a small slice of the table.
        let c = GridConfig::paper();
        let avg: f64 = (0..c.levels).map(|l| c.level_utilization(l)).sum::<f64>() / c.levels as f64;
        assert!(avg > 0.4 && avg < 0.8, "average utilization {avg} out of plausible band");
        assert!(c.level_utilization(0) < 0.01, "coarsest level wastes nearly the whole table");
        assert!((c.level_utilization(c.levels - 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn total_size_is_tens_of_mb_for_paper_config() {
        let c = GridConfig::paper();
        let mb = c.total_bytes() as f64 / (1024.0 * 1024.0);
        // paper says ~60 MB at fp16 ⇒ ~2× that in f32, minus dense savings
        assert!(mb > 20.0 && mb < 130.0, "unexpected table footprint {mb} MB");
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = GridConfig::tiny();
        c.table_size = 1000; // not a power of two
        assert!(c.validate().is_err());
        let mut c = GridConfig::tiny();
        c.levels = 0;
        assert!(c.validate().is_err());
        let mut c = GridConfig::tiny();
        c.max_res = 4; // below base
        assert!(c.validate().is_err());
    }

    #[test]
    fn growth_factor_bounds() {
        let c = GridConfig::paper();
        let b = c.growth_factor();
        assert!(b > 1.0 && b < 2.0, "paper growth factor ≈ 1.26, got {b}");
        let single = GridConfig { levels: 1, ..GridConfig::tiny() };
        assert_eq!(single.growth_factor(), 1.0);
    }
}
