//! Fitting an NGP model to an analytic scene field.
//!
//! This is the offline substitute for gradient training (DESIGN.md §1). The
//! embedding pyramid is filled coarse-to-fine with *residuals*:
//!
//! * dense (collision-free) levels each store what the coarser levels of
//!   their quantity could not represent;
//! * hashed levels store the residual against the full dense reconstruction,
//!   with colliding vertices **averaged** — exactly the graceful degradation
//!   a trained Instant-NGP exhibits where the hash aliases, and the genuine
//!   source of this model's quality gap versus ground truth;
//! * the decoder MLPs are *constructed* (not trained): a ReLU
//!   positive/negative split makes the hidden layers information-preserving,
//!   and the output layers implement the linear decode. All matrices are
//!   full-size and dense, so every experiment executes the real MVM workload.
//!
//! The view-dependent specular term is projected onto the degree-4 SH basis
//! by least squares ([`fit_specular_sh`]), and an optional SGD refinement
//! pass ([`refine_sgd`]) polishes the embeddings against the field.

use crate::embedding::EmbeddingSet;
use crate::encoder::HashEncoder;
use crate::grid::GridConfig;
use crate::mlp::{Activation, Dense, Mlp};
use crate::model::{NgpModel, COLOR_IN_DIM, DENSITY_OUT_DIM, HIDDEN_DIM};
use crate::occupancy::OccupancyGrid;
use asdr_math::interp::{trilinear_weights, CORNER_OFFSETS};
use asdr_math::rng::seeded;
use asdr_math::sh::{sh4, SH_DEGREE4_COEFFS};
use asdr_math::Vec3;
use asdr_scenes::field::specular_lobe;
use asdr_scenes::SceneField;
use rand::Rng;

/// Scale dividing stored density so features stay O(1).
pub const SIGMA_SCALE: f32 = 50.0;

/// The four scalar quantities the embedding pyramid stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Quantity {
    Sigma,
    DiffR,
    DiffG,
    DiffB,
}

impl Quantity {
    /// `(level parity, feature slot)` that carries this quantity.
    fn placement(self) -> (usize, usize) {
        match self {
            Quantity::Sigma => (0, 0),
            Quantity::DiffR => (0, 1),
            Quantity::DiffG => (1, 0),
            Quantity::DiffB => (1, 1),
        }
    }

    fn eval(self, field: &dyn SceneField, p: Vec3) -> f32 {
        match self {
            Quantity::Sigma => field.density(p) / SIGMA_SCALE,
            Quantity::DiffR => field.diffuse(p).r,
            Quantity::DiffG => field.diffuse(p).g,
            Quantity::DiffB => field.diffuse(p).b,
        }
    }

    const ALL: [Quantity; 4] = [Quantity::Sigma, Quantity::DiffR, Quantity::DiffG, Quantity::DiffB];
}

/// Per-quantity decode plan: which `(level, slot)` lanes carry it and with
/// what weight.
#[derive(Debug, Clone, Default)]
struct DecodePlan {
    /// `(level, slot, weight)` triples.
    lanes: Vec<(usize, usize, f32)>,
}

fn decode_plans(cfg: &GridConfig) -> [DecodePlan; 4] {
    let mut plans: [DecodePlan; 4] = Default::default();
    for (qi, q) in Quantity::ALL.iter().enumerate() {
        let (parity, slot) = q.placement();
        let levels: Vec<usize> = (0..cfg.levels).filter(|l| l % 2 == parity).collect();
        let hashed: Vec<usize> = levels.iter().copied().filter(|&l| !cfg.is_dense(l)).collect();
        let k = hashed.len().max(1) as f32;
        for l in levels {
            let w = if cfg.is_dense(l) { 1.0 } else { 1.0 / k };
            plans[qi].lanes.push((l, slot, w));
        }
    }
    plans
}

/// Trilinear reconstruction of one quantity at normalized point `p01` using
/// only the given `(level, slot, weight)` lanes.
fn recon_at(
    enc_cfg: &GridConfig,
    tables: &EmbeddingSet,
    lanes: &[(usize, usize, f32)],
    p01: Vec3,
) -> f32 {
    let mut acc = 0.0f32;
    for &(level, slot, w) in lanes {
        let table = tables.table(level);
        let res = enc_cfg.level_resolution(level);
        let scaled = p01.clamp(0.0, 1.0) * res as f32;
        let hi = (res - 1) as f32;
        let bx = scaled.x.floor().min(hi).max(0.0);
        let by = scaled.y.floor().min(hi).max(0.0);
        let bz = scaled.z.floor().min(hi).max(0.0);
        let tw = trilinear_weights(
            (scaled.x - bx).clamp(0.0, 1.0),
            (scaled.y - by).clamp(0.0, 1.0),
            (scaled.z - bz).clamp(0.0, 1.0),
        );
        let (bx, by, bz) = (bx as u32, by as u32, bz as u32);
        let mut v = 0.0;
        for (i, &(dx, dy, dz)) in CORNER_OFFSETS.iter().enumerate() {
            v += tw[i] * table.lookup(bx + dx, by + dy, bz + dz)[slot];
        }
        acc += w * v;
    }
    acc
}

/// Coarse occupancy mask marking cells that contain (or neighbour) any
/// non-zero density — the fill only visits fine vertices inside the mask.
#[derive(Debug)]
struct OccupancyMask {
    res: usize,
    cells: Vec<bool>,
}

impl OccupancyMask {
    fn build(field: &dyn SceneField, res: usize) -> Self {
        let b = field.bounds();
        let v = res + 1;
        // density probes at mask vertices
        let mut probe = vec![false; v * v * v];
        for z in 0..v {
            for y in 0..v {
                for x in 0..v {
                    let u = Vec3::new(
                        x as f32 / res as f32,
                        y as f32 / res as f32,
                        z as f32 / res as f32,
                    );
                    probe[x + v * (y + v * z)] = field.density(b.denormalize(u)) > 0.0;
                }
            }
        }
        let mut cells = vec![false; res * res * res];
        for z in 0..res {
            for y in 0..res {
                for x in 0..res {
                    let mut occ = false;
                    for &(dx, dy, dz) in &CORNER_OFFSETS {
                        let i = (x + dx as usize) + v * ((y + dy as usize) + v * (z + dz as usize));
                        occ |= probe[i];
                    }
                    cells[x + res * (y + res * z)] = occ;
                }
            }
        }
        // dilate by one cell so interpolation transition zones are covered
        let mut dilated = cells.clone();
        for z in 0..res {
            for y in 0..res {
                for x in 0..res {
                    if cells[x + res * (y + res * z)] {
                        for dz in -1i64..=1 {
                            for dy in -1i64..=1 {
                                for dx in -1i64..=1 {
                                    let (nx, ny, nz) =
                                        (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                                    if nx >= 0
                                        && ny >= 0
                                        && nz >= 0
                                        && (nx as usize) < res
                                        && (ny as usize) < res
                                        && (nz as usize) < res
                                    {
                                        dilated[nx as usize
                                            + res * (ny as usize + res * nz as usize)] = true;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        OccupancyMask { res, cells: dilated }
    }

    /// Whether the normalized point lies in an occupied cell.
    #[inline]
    fn occupied(&self, p01: Vec3) -> bool {
        let r = self.res as f32;
        let cx = ((p01.x * r) as usize).min(self.res - 1);
        let cy = ((p01.y * r) as usize).min(self.res - 1);
        let cz = ((p01.z * r) as usize).min(self.res - 1);
        self.cells[cx + self.res * (cy + self.res * cz)]
    }

    fn occupied_fraction(&self) -> f32 {
        self.cells.iter().filter(|&&c| c).count() as f32 / self.cells.len() as f32
    }
}

/// Fits the embedding pyramid of `cfg` to `field`.
///
/// Returned tables decode through [`decode_plans`]-weighted sums; use
/// [`fit_ngp`] for the assembled model.
fn fill_embeddings(field: &dyn SceneField, cfg: &GridConfig) -> EmbeddingSet {
    let mut set = EmbeddingSet::new(cfg);
    let bounds = field.bounds();
    let mask = OccupancyMask::build(field, 48);

    // chains of already-filled dense lanes per quantity (for residuals)
    let mut dense_filled: [Vec<(usize, usize, f32)>; 4] = Default::default();

    for level in 0..cfg.levels {
        let parity = level % 2;
        // the two quantities stored at this level, by slot
        let quantities: [Quantity; 2] = if parity == 0 {
            [Quantity::Sigma, Quantity::DiffR]
        } else {
            [Quantity::DiffG, Quantity::DiffB]
        };
        let vres = cfg.level_vertex_res(level);
        let res = cfg.level_resolution(level) as f32;
        let dense = cfg.is_dense(level);

        if dense {
            for z in 0..vres {
                for y in 0..vres {
                    for x in 0..vres {
                        let p01 = Vec3::new(x as f32 / res, y as f32 / res, z as f32 / res);
                        if !mask.occupied(p01.clamp(0.0, 0.999)) {
                            continue;
                        }
                        let pw = bounds.denormalize(p01);
                        for (slot, q) in quantities.iter().enumerate() {
                            let qi = Quantity::ALL.iter().position(|x| x == q).unwrap();
                            let target = q.eval(field, pw);
                            let prior = recon_at(cfg, &set, &dense_filled[qi], p01);
                            let row = set.table(level).row_of(x, y, z);
                            set.table_mut(level).row_mut(row)[slot] = target - prior;
                        }
                    }
                }
            }
            for q in quantities {
                let qi = Quantity::ALL.iter().position(|x| *x == q).unwrap();
                let (_, slot) = q.placement();
                dense_filled[qi].push((level, slot, 1.0));
            }
        } else {
            // hashed level: accumulate residual means over masked vertices
            let entries = set.table(level).entries() as usize;
            let mut acc = vec![[0.0f64; 2]; entries];
            let mut cnt = vec![0u32; entries];
            for z in 0..vres {
                for y in 0..vres {
                    for x in 0..vres {
                        let p01 = Vec3::new(x as f32 / res, y as f32 / res, z as f32 / res);
                        if !mask.occupied(p01.clamp(0.0, 0.999)) {
                            continue;
                        }
                        let pw = bounds.denormalize(p01);
                        let row = set.table(level).row_of(x, y, z) as usize;
                        for (slot, q) in quantities.iter().enumerate() {
                            let qi = Quantity::ALL.iter().position(|x| x == q).unwrap();
                            let target = q.eval(field, pw);
                            let prior = recon_at(cfg, &set, &dense_filled[qi], p01);
                            acc[row][slot] += (target - prior) as f64;
                        }
                        cnt[row] += 1;
                    }
                }
            }
            let table = set.table_mut(level);
            for (row, c) in cnt.iter().enumerate() {
                if *c > 0 {
                    let dst = table.row_mut(row as u32);
                    dst[0] = (acc[row][0] / *c as f64) as f32;
                    dst[1] = (acc[row][1] / *c as f64) as f32;
                }
            }
        }
    }
    debug_assert!(mask.occupied_fraction() > 0.0, "scene has no occupied cells");
    set
}

/// The linear decode plan of the fitted pyramid: for each of the four
/// quantities (σ', diffuse r, g, b), the `(level, feature slot, weight)`
/// lanes that carry it. Exposed for the volumetric trainer, which
/// backpropagates through this decode.
pub fn decode_plans_for(cfg: &GridConfig) -> [Vec<(usize, usize, f32)>; 4] {
    let plans = decode_plans(cfg);
    std::array::from_fn(|i| plans[i].lanes.clone())
}

/// Least-squares projection of the global specular lobe onto the degree-4 SH
/// basis (800 Fibonacci-sphere directions).
pub fn fit_specular_sh() -> [f32; SH_DEGREE4_COEFFS] {
    let n = 800;
    let dirs: Vec<Vec3> = (0..n)
        .map(|i| {
            // Fibonacci sphere
            let k = i as f32 + 0.5;
            let phi = std::f32::consts::PI * (1.0 + 5.0f32.sqrt()) * k;
            let cos_theta = 1.0 - 2.0 * k / n as f32;
            let sin_theta = (1.0 - cos_theta * cos_theta).sqrt();
            Vec3::new(sin_theta * phi.cos(), cos_theta, sin_theta * phi.sin())
        })
        .collect();
    let mut ata = [[0.0f64; SH_DEGREE4_COEFFS]; SH_DEGREE4_COEFFS];
    let mut atb = [0.0f64; SH_DEGREE4_COEFFS];
    for d in &dirs {
        let y = sh4(*d);
        let f = specular_lobe(*d) as f64;
        for j in 0..SH_DEGREE4_COEFFS {
            atb[j] += y[j] as f64 * f;
            for k in 0..SH_DEGREE4_COEFFS {
                ata[j][k] += y[j] as f64 * y[k] as f64;
            }
        }
    }
    // ridge for numerical safety
    for (j, row) in ata.iter_mut().enumerate() {
        row[j] += 1e-9;
    }
    let sol = solve_gauss(&mut ata, &mut atb);
    std::array::from_fn(|i| sol[i] as f32)
}

/// Gaussian elimination with partial pivoting for the small SH system.
fn solve_gauss<const N: usize>(a: &mut [[f64; N]; N], b: &mut [f64; N]) -> [f64; N] {
    for col in 0..N {
        // pivot
        let mut piv = col;
        for r in col + 1..N {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        assert!(d.abs() > 1e-15, "singular SH normal matrix");
        for r in col + 1..N {
            let f = a[r][col] / d;
            let pivot_row = a[col];
            for (av, pv) in a[r][col..].iter_mut().zip(&pivot_row[col..]) {
                *av -= f * pv;
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = [0.0; N];
    for col in (0..N).rev() {
        let mut acc = b[col];
        for c in col + 1..N {
            acc -= a[col][c] * x[c];
        }
        x[col] = acc / a[col][col];
    }
    x
}

/// Builds the constructed density MLP implementing the linear decode of the
/// embedding pyramid (see module docs).
fn build_density_mlp(cfg: &GridConfig) -> Mlp {
    let e = cfg.encoded_dim();
    assert!(2 * e <= HIDDEN_DIM, "encoded dim {e} too wide for the pos/neg split");
    let mut l1 = Dense::zeros(e, HIDDEN_DIM, Activation::Relu);
    for i in 0..e {
        l1.set(i, i, 1.0);
        l1.set(e + i, i, -1.0);
    }
    let mut l2 = Dense::zeros(HIDDEN_DIM, DENSITY_OUT_DIM, Activation::None);
    let plans = decode_plans(cfg);
    // output rows: 0 = σ_raw, 1..4 = diffuse rgb, 4.. = tiny residual lanes
    let f = cfg.feat_dim;
    let row_scale = [SIGMA_SCALE, 1.0, 1.0, 1.0];
    for (qi, plan) in plans.iter().enumerate() {
        for &(level, slot, w) in &plan.lanes {
            let lane = level * f + slot;
            l2.set(qi, lane, w * row_scale[qi]);
            l2.set(qi, e + lane, -w * row_scale[qi]);
        }
    }
    // σ sits at row 0; diffuse rgb at rows 1..4 already (qi order matches)
    // residual rows keep the matrices dense without perturbing the decode
    let mut rng = seeded("density-residual", 0);
    for r in 4..DENSITY_OUT_DIM {
        for c in 0..HIDDEN_DIM {
            l2.set(r, c, rng.gen_range(-1e-3..1e-3));
        }
    }
    Mlp::new(vec![l1, l2])
}

/// Builds the constructed color MLP: `rgb = diffuse + SH·spec` with two
/// information-preserving hidden layers.
fn build_color_mlp(spec_sh: &[f32; SH_DEGREE4_COEFFS]) -> Mlp {
    let y_dim = COLOR_IN_DIM; // 31
    assert!(2 * y_dim <= HIDDEN_DIM + 2, "color input too wide");
    let split = y_dim.min(HIDDEN_DIM / 2); // 31 pos lanes, 31 neg lanes
    let mut l1 = Dense::zeros(y_dim, HIDDEN_DIM, Activation::Relu);
    for i in 0..split {
        l1.set(i, i, 1.0);
        l1.set(split + i, i, -1.0);
    }
    // second hidden layer reconstructs the pos/neg split of y
    let mut l2 = Dense::zeros(HIDDEN_DIM, HIDDEN_DIM, Activation::Relu);
    for i in 0..split {
        l2.set(i, i, 1.0);
        l2.set(i, split + i, -1.0);
        l2.set(split + i, i, -1.0);
        l2.set(split + i, split + i, 1.0);
    }
    let mut l3 = Dense::zeros(HIDDEN_DIM, 3, Activation::None);
    for c in 0..3 {
        // diffuse channel: y[SH + c]
        let idx = SH_DEGREE4_COEFFS + c;
        l3.set(c, idx, 1.0);
        l3.set(c, split + idx, -1.0);
        // specular: Σ_j spec_j · y[j]
        for (j, &s) in spec_sh.iter().enumerate() {
            l3.set(c, j, s);
            l3.set(c, split + j, -s);
        }
    }
    // tiny residual taps keep all rows dense
    let mut rng = seeded("color-residual", 0);
    for c in 0..3 {
        for lane in 2 * split..HIDDEN_DIM {
            l3.set(c, lane, rng.gen_range(-1e-4..1e-4));
        }
    }
    Mlp::new(vec![l1, l2, l3])
}

/// Fits a complete NGP model to `field` under `cfg`.
///
/// # Panics
///
/// Panics if `cfg` is invalid or too wide for the constructed decoder
/// (`levels × feat_dim` must not exceed 32).
pub fn fit_ngp(field: &dyn SceneField, cfg: &GridConfig) -> NgpModel {
    cfg.validate().expect("invalid grid config");
    let tables = fill_embeddings(field, cfg);
    let encoder = HashEncoder::new(cfg.clone(), tables);
    let density = build_density_mlp(cfg);
    let color = build_color_mlp(&fit_specular_sh());
    let occupancy = OccupancyGrid::build(field, OccupancyGrid::DEFAULT_RES);
    NgpModel::new(encoder, density, color, field.bounds(), occupancy)
}

/// One SGD refinement pass over the embeddings: samples random points in
/// occupied space and descends the squared error of the *linear decode*
/// against the field. Returns the mean squared error before and after.
///
/// This exists to demonstrate that the pipeline is trainable end-to-end; the
/// experiment harness uses the constructed fit directly.
pub fn refine_sgd(
    model: &mut NgpModel,
    field: &dyn SceneField,
    steps: usize,
    lr: f32,
    seed: u64,
) -> (f64, f64) {
    let cfg = model.encoder().config().clone();
    let plans = decode_plans(&cfg);
    let bounds = field.bounds();
    let mut rng = seeded("refine-sgd", seed);
    let eval_err = |model: &NgpModel, pts: &[Vec3]| -> f64 {
        let mut s = model.make_scratch();
        let mut acc = 0.0;
        for &p in pts {
            let sigma = model.query_density_into(p, &mut s);
            let d = (sigma - field.density(p)) as f64 / SIGMA_SCALE as f64;
            acc += d * d;
        }
        acc / pts.len() as f64
    };
    let probe: Vec<Vec3> = (0..256)
        .map(|_| bounds.denormalize(Vec3::new(rng.gen::<f32>(), rng.gen(), rng.gen())))
        .collect();
    let before = eval_err(model, &probe);

    for _ in 0..steps {
        let p01 = Vec3::new(rng.gen::<f32>(), rng.gen(), rng.gen());
        let pw = bounds.denormalize(p01);
        for (qi, q) in Quantity::ALL.iter().enumerate() {
            let target = q.eval(field, pw);
            let pred = recon_at(&cfg, model.encoder().tables(), &plans[qi].lanes, p01);
            let grad = 2.0 * (pred - target);
            if grad == 0.0 {
                continue;
            }
            for &(level, slot, w) in &plans[qi].lanes {
                let res = cfg.level_resolution(level);
                let scaled = p01.clamp(0.0, 1.0) * res as f32;
                let hi = (res - 1) as f32;
                let bx = scaled.x.floor().min(hi).max(0.0);
                let by = scaled.y.floor().min(hi).max(0.0);
                let bz = scaled.z.floor().min(hi).max(0.0);
                let tw = trilinear_weights(
                    (scaled.x - bx).clamp(0.0, 1.0),
                    (scaled.y - by).clamp(0.0, 1.0),
                    (scaled.z - bz).clamp(0.0, 1.0),
                );
                let (bx, by, bz) = (bx as u32, by as u32, bz as u32);
                let table = model.encoder_mut().tables_mut().table_mut(level);
                for (i, &(dx, dy, dz)) in CORNER_OFFSETS.iter().enumerate() {
                    let row = table.row_of(bx + dx, by + dy, bz + dz);
                    table.row_mut(row)[slot] -= lr * grad * w * tw[i];
                }
            }
        }
    }
    let after = eval_err(model, &probe);
    (before, after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdr_math::Rgb;
    use asdr_scenes::registry;

    fn tiny_model(name: &str) -> (Box<dyn SceneField>, NgpModel) {
        let scene = registry::handle(name).build();
        let model = fit_ngp(scene.as_ref(), &GridConfig::tiny());
        (scene, model)
    }

    #[test]
    fn fitted_density_tracks_field() {
        let (scene, model) = tiny_model("Mic");
        let mut s = model.make_scratch();
        // deep inside the mic head
        let inside = Vec3::new(0.0, 0.45, 0.0);
        let sig_in = model.query_density_into(inside, &mut s);
        assert!(
            sig_in > 0.3 * scene.density(inside),
            "inside: {sig_in} vs {}",
            scene.density(inside)
        );
        // far empty corner
        let outside = Vec3::new(0.9, 0.9, 0.9);
        let sig_out = model.query_density_into(outside, &mut s);
        assert!(sig_out < 2.0, "outside: {sig_out}");
    }

    #[test]
    fn fitted_color_tracks_diffuse_plus_spec() {
        let (scene, model) = tiny_model("Lego");
        let mut s = model.make_scratch();
        // a surface point on the lego body
        let p = Vec3::new(0.0, 0.04, -0.05);
        let dir = Vec3::new(0.2, -0.5, 0.8).normalized();
        let _sigma = model.query_density_into(p, &mut s);
        let c = model.query_color_into(dir, &mut s);
        let want = scene.color(p, dir);
        assert!(c.max_channel_abs_diff(want) < 0.3, "model color {c} too far from field {want}");
    }

    #[test]
    fn specular_sh_fit_is_accurate() {
        let coef = fit_specular_sh();
        // evaluate fit error over fresh directions
        let mut max_err = 0.0f32;
        for i in 0..200 {
            let t = i as f32 / 200.0;
            let d = Vec3::new((t * 9.0).sin(), (t * 7.0).cos(), (t * 5.0).sin() + 0.2).normalized();
            let approx: f32 = sh4(d).iter().zip(&coef).map(|(y, c)| y * c).sum();
            max_err = max_err.max((approx - specular_lobe(d)).abs());
        }
        assert!(max_err < 0.06, "SH residual too large: {max_err}");
    }

    #[test]
    fn constructed_mlps_have_expected_shapes() {
        let cfg = GridConfig::tiny();
        let d = build_density_mlp(&cfg);
        assert_eq!(d.in_dim(), cfg.encoded_dim());
        assert_eq!(d.out_dim(), DENSITY_OUT_DIM);
        let c = build_color_mlp(&fit_specular_sh());
        assert_eq!(c.in_dim(), COLOR_IN_DIM);
        assert_eq!(c.out_dim(), 3);
        assert_eq!(c.layers().len(), 3);
    }

    #[test]
    fn gauss_solver_solves_identity_and_diagonal() {
        let mut a = [[0.0f64; 3]; 3];
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = (i + 1) as f64;
        }
        let mut b = [2.0, 6.0, 12.0];
        let x = solve_gauss(&mut a, &mut b);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn refine_sgd_does_not_increase_error() {
        let scene = registry::handle("Chair").build();
        let mut model = fit_ngp(scene.as_ref(), &GridConfig::tiny());
        let (before, after) = refine_sgd(&mut model, scene.as_ref(), 500, 0.05, 1);
        assert!(after <= before * 1.05, "SGD made things worse: {before} -> {after}");
    }

    #[test]
    fn model_render_smoke() {
        // end-to-end sanity: fitted model produces a non-empty image close
        // to the ground truth in the mean.
        let (scene, model) = tiny_model("Hotdog");
        let cam = registry::handle("Hotdog").camera(16, 16);
        let mut s = model.make_scratch();
        let mut mean_model = Rgb::BLACK;
        let mut mean_gt = Rgb::BLACK;
        let mut n = 0.0f32;
        for py in 0..16 {
            for px in 0..16 {
                let ray = cam.ray_for_pixel(px, py);
                let Some(tr) = model.bounds().intersect(&ray) else { continue };
                let dt = tr.span() / 64.0;
                let (mut t_model, mut t_gt) = (1.0f32, 1.0f32);
                let (mut c_model, mut c_gt) = (Rgb::BLACK, Rgb::BLACK);
                for t in tr.midpoints(64) {
                    let p = ray.at(t);
                    let (sig, col) = model.query_point(p, ray.dir, &mut s);
                    let a = 1.0 - (-sig * dt).exp();
                    c_model += col * (t_model * a);
                    t_model *= 1.0 - a;
                    let gs = scene.density(p);
                    let ga = 1.0 - (-gs * dt).exp();
                    c_gt += scene.color(p, ray.dir) * (t_gt * ga);
                    t_gt *= 1.0 - ga;
                }
                mean_model += c_model;
                mean_gt += c_gt;
                n += 1.0;
            }
        }
        let m = mean_model * (1.0 / n);
        let g = mean_gt * (1.0 / n);
        assert!(m.luminance() > 0.01, "model render is empty");
        assert!(
            (m.luminance() - g.luminance()).abs() < 0.15,
            "mean luminance mismatch: model {} vs gt {}",
            m.luminance(),
            g.luminance()
        );
    }
}
