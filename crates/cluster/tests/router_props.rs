//! Router properties: every scene name routes to exactly one live home
//! shard, routing is deterministic, and removing a shard remaps **only**
//! that shard's scenes — the consistent-hashing contract that lets a
//! cluster lose or gain a shard without re-fitting the world.

use asdr_cluster::HashRing;
use proptest::collection::vec;
use proptest::prelude::*;

/// Scene names with shared prefixes (the adversarial case for a weakly
/// mixed ring hash).
fn names() -> impl Strategy<Value = Vec<String>> {
    vec((0u64..100_000).prop_map(|n| format!("scene-{n}")), 1..64)
}

proptest! {
    #[test]
    fn every_scene_has_exactly_one_live_home(shards in 1usize..8, names in names()) {
        let ring = HashRing::new(shards);
        prop_assert_eq!(ring.len(), shards);
        for name in &names {
            let home = ring.home(name);
            prop_assert!(home < shards, "home {} out of range for {} shards", home, shards);
            // deterministic: the same name lands on the same shard, always
            prop_assert_eq!(ring.home(name), home);
        }
    }

    #[test]
    fn removing_a_shard_remaps_only_its_scenes(
        shards in 2usize..8,
        removed_seed in 0usize..8,
        names in names(),
    ) {
        let removed = removed_seed % shards;
        let ring = HashRing::new(shards);
        let reduced = ring.without(removed);
        prop_assert_eq!(reduced.len(), shards - 1);
        for name in &names {
            let before = ring.home(name);
            let after = reduced.home(name);
            if before == removed {
                // must leave the dead shard
                prop_assert!(after != removed, "{}: still routed to the dead shard", name);
            } else {
                // must not move: its home shard survived
                prop_assert!(after == before, "{}: remapped needlessly", name);
            }
        }
    }

    #[test]
    fn rings_are_stable_across_instances(shards in 1usize..8, names in names()) {
        // two independently built rings agree — routing must survive
        // process restarts (no randomized hasher anywhere)
        let a = HashRing::new(shards);
        let b = HashRing::new(shards);
        for name in &names {
            prop_assert_eq!(a.home(name), b.home(name));
        }
    }
}
