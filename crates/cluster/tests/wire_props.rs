//! Property tests for the fleet wire codec: arbitrary messages of every
//! kind round-trip exactly (down to pixel bit patterns), every proper
//! prefix of a frame or payload is a named error, and byte corruption
//! anywhere in a stream degrades to a named error — never a panic.
//!
//! Mirrors `crates/serve/tests/trace_props.rs` for the trace codec.

use asdr_cluster::wire::{self, Message, WireRequest, WireResult, WireStats};
use asdr_math::Image;
use asdr_obs::TraceId;
use asdr_scenes::registry::OrbitCamera;
use asdr_serve::{Priority, ServeStats, StoreStats};
use proptest::{array, collection, prelude::*};

const SCENES: [&str; 4] = ["Mic", "Lego", "Pulse", "Palace"];

/// (scene, resolution, frames, azimuth, priority, deadline_us, camera?,
/// trace seed — even seeds give the unset id, which must encode as the
/// pre-trace wire shape; odd seeds spread over the full 64-bit space)
type ReqTuple = (usize, u64, u64, f32, u8, u64, u8, u64);

/// (kind, id, counter, flag, request fields) — everything one arbitrary
/// message is built from. `Result` and `Stats` payloads derive their
/// fields from the same numbers so the whole message is generated.
type MsgTuple = (u8, u64, u64, u8, ReqTuple);

fn build_request(
    (scene, resolution, frames, az, prio, deadline, cam, trace_seed): ReqTuple,
) -> WireRequest {
    let trace = match trace_seed % 2 {
        0 => 0,
        _ => trace_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    };
    WireRequest {
        trace: TraceId::from_u64(trace),
        scene: SCENES[scene].to_string(),
        resolution: resolution as u32,
        frames,
        azimuth_step_deg: az,
        priority: match prio {
            0 => Priority::Low,
            1 => Priority::Normal,
            _ => Priority::High,
        },
        deadline_us: (deadline > 0).then_some(deadline),
        camera: (cam > 0)
            .then_some(OrbitCamera { azimuth_deg: az * 3.0, ..OrbitCamera::default() }),
    }
}

/// A deterministic image whose channels sweep float bit patterns
/// (negatives, subnormals, huge magnitudes) — NaN excluded only because
/// `PartialEq` can't witness it; the codec itself is bit-transparent.
fn build_image(w: u32, h: u32, seed: u32) -> Image {
    let mut img = Image::new(w, h);
    for (i, px) in img.pixels_mut().iter_mut().enumerate() {
        let channel = |salt: u32| {
            let bits =
                seed.wrapping_mul(0x9e37_79b9).wrapping_add((i as u32) << 8).wrapping_add(salt);
            let v = f32::from_bits(bits);
            if v.is_nan() {
                f32::from_bits(bits & 0x803f_ffff) // clear NaN exponent, keep sign+mantissa
            } else {
                v
            }
        };
        px.r = channel(1);
        px.g = channel(2);
        px.b = channel(3);
    }
    img
}

fn build_stats(seed: u64) -> WireStats {
    let n = |k: u64| seed.wrapping_mul(k) % 100_000;
    let f = |k: u64| (seed.wrapping_mul(k) % 10_000) as f64 / 16.0;
    WireStats {
        workers: n(3),
        queue_len: n(5),
        serve: ServeStats {
            requests: n(7),
            frames: n(11),
            reused_frames: n(13),
            deadlined_requests: n(17),
            deadline_misses: n(19),
            probe_points: n(23),
            p50_latency_ms: f(29),
            p95_latency_ms: f(31),
            mean_queue_wait_ms: f(37),
            throughput_fps: f(41),
            probe_points_avoided_est: f(43),
            store: StoreStats {
                memory_hits: n(47),
                disk_hits: n(53),
                fits: n(59),
                evictions: n(61),
                disk_errors: n(67),
                single_flight_waits: n(71),
                lock_waits: n(73),
                lock_steals: n(79),
                resident: (n(83) % 64) as usize,
            },
        },
    }
}

fn build_message((kind, id, n, flag, req): MsgTuple) -> Message {
    let flag = flag > 0;
    let req = build_request(req);
    let why = format!("shard said: {n}");
    match kind {
        0 => Message::Hello { version: (id % 256) as u8 },
        1 => Message::HelloOk { shard: n },
        2 => Message::Submit { id, req },
        3 => Message::Submitted { id },
        4 => Message::Refused { id, retryable: flag, why },
        5 => Message::Result {
            id,
            result: WireResult {
                trace: req.trace,
                scene: req.scene,
                resolution: req.resolution,
                reused_frames: n % 8,
                queue_wait_us: n,
                latency_us: n.wrapping_mul(3),
                deadline_met: [None, Some(true), Some(false)][(n % 3) as usize],
                completed_seq: id,
                images: (0..n % 3)
                    .map(|i| build_image(1 + (n % 3) as u32, 1 + (id % 3) as u32, i as u32))
                    .collect(),
            },
        },
        6 => Message::Failed { id, why },
        7 => Message::Cancel { id },
        8 => Message::StatsPoll { id },
        9 => Message::Stats { id, stats: build_stats(n) },
        10 => Message::Health { id },
        11 => Message::HealthOk { id, queue_len: n, draining: flag },
        12 => Message::Prewarm { id, scene: req.scene },
        13 => Message::Warmed { id, ok: flag },
        14 => Message::Drain { id },
        _ => Message::Draining { id },
    }
}

fn arb_msg_tuple() -> impl Strategy<Value = MsgTuple> {
    (
        0u8..16,
        0u64..1_000_000_000,
        0u64..100_000,
        0u8..2,
        (
            0usize..SCENES.len(),
            1u64..=128,
            1u64..=16,
            -30.0f32..30.0,
            0u8..3,
            0u64..5_000_000,
            0u8..2,
            // half the seeds give no trace id, so both wire shapes
            // (pre-trace and trace-carrying) stay under the properties
            0u64..1_000_000_000,
        ),
    )
}

proptest! {
    #[test]
    fn every_message_kind_round_trips_and_streams(
        raw in collection::vec(arb_msg_tuple(), 1..10),
    ) {
        let msgs: Vec<Message> = raw.clone().into_iter().map(build_message).collect();
        // payload round trip, one message at a time
        for msg in &msgs {
            let bytes = msg.encode();
            let back = match Message::decode(&bytes) {
                Ok(m) => m,
                Err(e) => return Err(TestCaseError::Fail(format!("{msg:?}: {e}"))),
            };
            prop_assert_eq!(&back, msg);
            prop_assert_eq!(back.encode(), bytes); // re-encoding is byte-stable
        }
        // framed stream round trip, ending cleanly at EOF
        let mut buf = Vec::new();
        for msg in &msgs {
            wire::write_frame(&mut buf, msg).unwrap();
        }
        let mut cursor = &buf[..];
        let mut back = Vec::new();
        while let Some(msg) = wire::read_frame(&mut cursor).map_err(TestCaseError::Fail)? {
            back.push(msg);
        }
        prop_assert_eq!(back, msgs);
    }

    #[test]
    fn result_frames_survive_bit_exactly(
        dims in (1u32..=4, 1u32..=4),
        seeds in collection::vec(0u32..=0xffff_fffe, 1..4),
        id in 0u64..10_000,
    ) {
        let msg = Message::Result {
            id,
            result: WireResult {
                trace: TraceId::UNSET,
                scene: "Mic".into(),
                resolution: dims.0,
                reused_frames: 0,
                queue_wait_us: id,
                latency_us: id * 2,
                deadline_met: None,
                completed_seq: id,
                images: seeds.iter().map(|&s| build_image(dims.0, dims.1, s)).collect(),
            },
        };
        let bytes = msg.encode();
        let back = Message::decode(&bytes).map_err(TestCaseError::Fail)?;
        prop_assert_eq!(&back, &msg);
        let (Message::Result { result: a, .. }, Message::Result { result: b, .. }) = (&msg, &back)
        else {
            return Err(TestCaseError::Fail("decoded to a different kind".into()));
        };
        for (ia, ib) in a.images.iter().zip(&b.images) {
            for (pa, pb) in ia.pixels().iter().zip(ib.pixels()) {
                prop_assert_eq!(pa.r.to_bits(), pb.r.to_bits());
                prop_assert_eq!(pa.g.to_bits(), pb.g.to_bits());
                prop_assert_eq!(pa.b.to_bits(), pb.b.to_bits());
            }
        }
    }

    #[test]
    fn trace_ids_round_trip_both_wire_directions(
        trace in 1u64..=u64::MAX,
        req in arb_msg_tuple(),
    ) {
        // Submit direction
        let mut wire_req = build_request(req.4);
        wire_req.trace = TraceId::from_u64(trace);
        let msg = Message::Submit { id: req.1, req: wire_req };
        let Message::Submit { req: back, .. } = Message::decode(&msg.encode()).unwrap() else {
            return Err(TestCaseError::Fail("Submit decoded to a different kind".into()));
        };
        prop_assert_eq!(back.trace.as_u64(), trace);
        // Result direction
        let result = WireResult {
            trace: TraceId::from_u64(trace),
            scene: "Mic".into(),
            resolution: 2,
            reused_frames: 0,
            queue_wait_us: 1,
            latency_us: 2,
            deadline_met: Some(trace % 2 == 0),
            completed_seq: 3,
            images: vec![],
        };
        let msg = Message::Result { id: req.1, result };
        let Message::Result { result: back, .. } = Message::decode(&msg.encode()).unwrap() else {
            return Err(TestCaseError::Fail("Result decoded to a different kind".into()));
        };
        prop_assert_eq!(back.trace.as_u64(), trace);
        prop_assert_eq!(back.deadline_met, Some(trace % 2 == 0));
    }

    #[test]
    fn every_truncation_is_a_named_error(raw in arb_msg_tuple()) {
        let msg = build_message(raw);
        // every proper prefix of the bare payload
        let payload = msg.encode();
        for cut in 0..payload.len() {
            let e = match Message::decode(&payload[..cut]) {
                Ok(m) => return Err(TestCaseError::Fail(format!(
                    "a {cut}-byte prefix of a {}-byte payload decoded to {m:?}", payload.len()
                ))),
                Err(e) => e,
            };
            prop_assert!(e.starts_with("wire message: "), "cut {}: {}", cut, e);
        }
        // every proper prefix of the framed form (cut 0 is a clean EOF)
        let mut buf = Vec::new();
        wire::write_frame(&mut buf, &msg).unwrap();
        prop_assert_eq!(wire::read_frame(&mut &buf[..0]).map_err(TestCaseError::Fail)?, None);
        for cut in 1..buf.len() {
            let e = match wire::read_frame(&mut &buf[..cut]) {
                Ok(m) => return Err(TestCaseError::Fail(format!(
                    "a {cut}-byte prefix of a {}-byte frame read as {m:?}", buf.len()
                ))),
                Err(e) => e,
            };
            prop_assert!(
                e.starts_with("wire frame: ") || e.starts_with("wire message: "),
                "cut {}: {}", cut, e
            );
        }
    }

    #[test]
    fn corrupted_streams_never_panic(
        raw in collection::vec(arb_msg_tuple(), 1..4),
        flips in array::uniform4((0usize..100_000, 1u8..=255)),
    ) {
        let mut buf = Vec::new();
        for t in &raw {
            wire::write_frame(&mut buf, &build_message(*t)).unwrap();
        }
        for (pos, mask) in flips {
            let at = pos % buf.len();
            buf[at] ^= mask;
        }
        // The stream may still parse (a flipped id is a valid id) or fail;
        // the property is that failures are named and nothing panics.
        let mut cursor = &buf[..];
        loop {
            match wire::read_frame(&mut cursor) {
                Ok(None) => break,
                Ok(Some(_)) => {}
                Err(e) => {
                    prop_assert!(
                        e.starts_with("wire frame: ") || e.starts_with("wire message: "),
                        "unnamed error: {}", e
                    );
                    break;
                }
            }
        }
    }
}

#[test]
fn empty_and_garbage_inputs_error_cleanly() {
    assert!(Message::decode(&[]).unwrap_err().starts_with("wire message: "));
    assert!(Message::decode(&[250, 1, 2, 3]).unwrap_err().contains("unknown message tag"));
    assert_eq!(wire::read_frame(&mut &[][..]).unwrap(), None);
    assert!(wire::read_frame(&mut &b"\x7fgarbage"[..]).unwrap_err().starts_with("wire frame: "));
}
