//! The fleet's survival contract, end to end: kill −9 one `asdr-shardd`
//! process mid-workload and the run must still complete, every frame must
//! be byte-identical to a single-process render of the same requests, and
//! the failure must be visible in `ClusterStats` (an eviction, and a
//! failover for every request the dead shard was holding).
//!
//! The run is also the observability contract's proving ground: every
//! process writes an [`asdr_obs`] run bundle, and the merged report must
//! join at least one completed request's spans across two shardd
//! processes (the failover made visible by wire trace-id propagation —
//! the victim's write-through `spans.jsonl` survives the SIGKILL) and
//! attribute every deadline miss to a dominant phase.
//!
//! The shards warm from a directory pre-populated with cheap blank models
//! (the `cluster_sched.rs` idiom), so no process pays for a real fit —
//! the test exercises the fleet machinery, not the renderer.

use asdr_cluster::{FleetConfig, RemoteFleet, ShardAddr, ShardRouter};
use asdr_math::{Aabb, Image, Vec3};
use asdr_nerf::embedding::EmbeddingSet;
use asdr_nerf::grid::GridConfig;
use asdr_nerf::mlp::{Activation, Dense, Mlp};
use asdr_nerf::model::{COLOR_IN_DIM, DENSITY_OUT_DIM};
use asdr_nerf::occupancy::OccupancyGrid;
use asdr_nerf::{HashEncoder, NgpModel};
use asdr_scenes::registry;
use asdr_serve::{ModelStore, RenderProfile, RenderRequest};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SCENES: [&str; 3] = ["Mic", "Lego", "Pulse"];
const REQUESTS: usize = 9;
const RESOLUTION: u32 = 32;

fn blank_model(grid: &GridConfig) -> NgpModel {
    let encoder = HashEncoder::new(grid.clone(), EmbeddingSet::new(grid));
    let density =
        Mlp::new(vec![Dense::zeros(grid.encoded_dim(), DENSITY_OUT_DIM, Activation::None)]);
    let color = Mlp::new(vec![Dense::zeros(COLOR_IN_DIM, 3, Activation::None)]);
    let bounds = Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0));
    let occ = OccupancyGrid::from_cells(4, bounds, vec![true; 64]).expect("valid cells");
    NgpModel::new(encoder, density, color, bounds, occ)
}

/// A checkpoint directory where every scene is already fitted at the
/// `tiny` profile's grid, so shardds and the reference service all warm
/// from disk.
fn warm_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdr_fleet_kill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ModelStore::builder().dir(&dir).build();
    let grid = RenderProfile::tiny().grid;
    for scene in SCENES {
        store.get_or_fit_with(&registry::handle(scene), &grid, || blank_model(&grid));
    }
    dir
}

fn requests() -> Vec<RenderRequest> {
    (0..REQUESTS)
        .map(|i| {
            let req = RenderRequest::frame(registry::handle(SCENES[i % SCENES.len()]), RESOLUTION);
            if i % 3 == 0 {
                // an unmeetable deadline: the render still completes (and
                // must stay byte-identical), but the miss has to show up
                // attributed in the merged bundle report
                req.with_deadline(Duration::from_micros(1))
            } else {
                req
            }
        })
        .collect()
}

fn image_bits(images: &[Image]) -> Vec<u32> {
    images
        .iter()
        .flat_map(|img| img.pixels().iter().flat_map(|px| [px.r, px.g, px.b]))
        .map(f32::to_bits)
        .collect()
}

// The test waits on every child: the victim right after the kill, the
// survivors after their drain.
#[allow(clippy::zombie_processes)]
fn spawn_shardd(id: usize, sock: &Path, store: &Path, bundles: &Path) -> (Child, ShardAddr) {
    let child = Command::new(env!("CARGO_BIN_EXE_asdr-shardd"))
        .args([
            "--listen",
            &format!("unix:{}", sock.display()),
            "--scale",
            "tiny",
            "--workers",
            "1",
            "--queue",
            "16",
            "--shard-id",
            &id.to_string(),
            "--store-dir",
            &store.display().to_string(),
            "--bundle",
            &bundles.join(format!("shard{id}")).display().to_string(),
        ])
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn asdr-shardd");
    let addr = ShardAddr::parse(&format!("unix:{}", sock.display())).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if std::os::unix::net::UnixStream::connect(sock).is_ok() {
            return (child, addr);
        }
        assert!(Instant::now() < deadline, "shard {id} never came up");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn killing_a_shard_mid_workload_loses_no_requests_and_no_bytes() {
    let dir = warm_dir();

    // Reference: the same requests through one in-process service.
    let reference: Vec<Vec<u32>> = {
        let single =
            ShardRouter::builder(RenderProfile::tiny()).shards(1).store_dir(&dir).build().unwrap();
        let frames = requests()
            .into_iter()
            .map(|req| {
                let r = single.submit(req).unwrap().wait().expect("reference render");
                image_bits(&r.images)
            })
            .collect();
        single.shutdown();
        frames
    };

    // The fleet: three shardd processes on unix sockets over the same
    // warm checkpoint directory, every process writing a run bundle. The
    // client bundle is created after the reference run so the reference
    // stays un-instrumented.
    let bundles = dir.join("bundles");
    let client_bundle = asdr_obs::Bundle::create(&bundles.join("client"), "client", &[])
        .expect("create client bundle");
    client_bundle.activate();
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for id in 0..3 {
        let (child, addr) = spawn_shardd(id, &dir.join(format!("shard{id}.sock")), &dir, &bundles);
        children.push(child);
        addrs.push(addr);
    }
    let cfg = FleetConfig {
        health_interval: Duration::from_millis(100),
        health_timeout: Duration::from_millis(500),
        health_misses: 2,
        hedge_after: None, // failover alone must carry the kill
        ..FleetConfig::default()
    };
    let fleet = RemoteFleet::connect(addrs, RenderProfile::tiny(), cfg).unwrap();

    let tickets: Vec<_> =
        requests().into_iter().map(|req| fleet.submit(req).expect("fleet admits")).collect();

    // SIGKILL the shard holding the most queued work — no drain, no
    // goodbye. At most one of its requests can have completed by now
    // (single worker, ~hundreds of ms per render), so at least one must
    // fail over.
    let mut per_shard = [0usize; 3];
    for t in &tickets {
        per_shard[t.shard()] += 1;
    }
    let victim = (0..3).max_by_key(|&s| per_shard[s]).unwrap();
    assert!(per_shard[victim] >= 2, "ticket spread {per_shard:?} leaves nothing to fail over");
    // Let the victim admit (and so record spans for) its queued requests
    // before dying — a single worker holds them for hundreds of ms, so
    // this still kills mid-workload.
    std::thread::sleep(Duration::from_millis(100));
    children[victim].kill().expect("SIGKILL the victim shard");
    children[victim].wait().expect("reap the victim");

    // Every request still completes, and every frame is byte-identical
    // to the single-process reference.
    for (i, ticket) in tickets.iter().enumerate() {
        let result = ticket.wait().unwrap_or_else(|e| panic!("request {i} lost: {e}"));
        assert!(!result.images.is_empty(), "request {i} returned no frames");
        assert_eq!(
            image_bits(&result.images),
            reference[i],
            "request {i} ({}) came back with different bytes after the kill",
            result.scene
        );
    }

    // The failure is visible: the victim left the ring and its pending
    // requests were re-run elsewhere.
    let deadline = Instant::now() + Duration::from_secs(10);
    while fleet.live_shards() == 3 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(fleet.live_shards(), 2, "the killed shard never left the ring");
    let stats = fleet.shutdown();
    assert!(stats.fleet.evictions >= 1, "eviction not counted: {:?}", stats.fleet);
    assert!(stats.fleet.failovers >= 1, "failover not counted: {:?}", stats.fleet);
    assert!(stats.to_json().contains("\"evictions\""), "stats JSON hides the failure");

    // The survivors drain cleanly after shutdown's Drain.
    for (id, mut child) in children.into_iter().enumerate() {
        if id == victim {
            continue;
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match child.try_wait().expect("poll shardd") {
                Some(status) => {
                    assert!(status.success(), "shard {id} exited with {status}");
                    break;
                }
                None if Instant::now() >= deadline => {
                    child.kill().ok();
                    child.wait().ok();
                    panic!("shard {id} ignored the drain");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    // The merged bundle report: the failover must be visible as a
    // completed request whose spans joined across two shardd processes,
    // and every deadline miss must carry a dominant-phase attribution.
    client_bundle.finish(None);
    let (spans, skipped) = asdr_obs::report::load_bundles(&bundles).expect("load bundles");
    let report = asdr_obs::report::analyze(&spans, skipped);
    assert!(
        report.processes.iter().filter(|p| p.starts_with("shardd-")).count() >= 2,
        "spans from fewer than two shardd processes: {:?}",
        report.processes
    );
    let cross_shard = report.joins.iter().any(|j| {
        j.completed && j.processes.iter().filter(|p| p.starts_with("shardd-")).count() >= 2
    });
    assert!(
        cross_shard,
        "no completed request joined spans across two shardd processes: {:?}",
        report.joins
    );
    assert!(!report.misses.is_empty(), "the unmeetable deadlines produced no recorded misses");
    for m in &report.misses {
        assert_ne!(m.dominant_phase, "unattributed", "miss {:016x} has no dominant phase", m.trace);
        assert!(m.total_us > 0, "miss {:016x} measured no phase time", m.trace);
        assert!(m.share() > 0.0, "miss {:016x} has a zero dominant share", m.trace);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
