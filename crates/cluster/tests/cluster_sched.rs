//! Cluster scheduling contracts: cost-budget admission (home → spill →
//! reject), reservation release on completion, and the autoscaling control
//! loop growing under deadline misses and shrinking when traffic quiets.
//!
//! The shards here warm from a directory pre-populated with cheap blank
//! models, so no test pays for a real fit; admission tests run against a
//! **paused** cluster so routing decisions cannot race completions.

use asdr_cluster::{AutoscalerConfig, ClusterError, ShardRouter};
use asdr_math::{Aabb, Vec3};
use asdr_nerf::embedding::EmbeddingSet;
use asdr_nerf::grid::GridConfig;
use asdr_nerf::mlp::{Activation, Dense, Mlp};
use asdr_nerf::model::{COLOR_IN_DIM, DENSITY_OUT_DIM};
use asdr_nerf::occupancy::OccupancyGrid;
use asdr_nerf::{HashEncoder, NgpModel};
use asdr_scenes::registry;
use asdr_serve::{ModelStore, RenderProfile, RenderRequest};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn test_grid() -> GridConfig {
    GridConfig { levels: 2, base_res: 4, max_res: 8, table_size: 1 << 8, feat_dim: 2 }
}

fn test_profile() -> RenderProfile {
    RenderProfile { grid: test_grid(), base_ns: 16, default_resolution: 16 }
}

/// A cheap structurally-valid model (the scheduler does not care what the
/// model predicts).
fn blank_model(grid: &GridConfig) -> NgpModel {
    let encoder = HashEncoder::new(grid.clone(), EmbeddingSet::new(grid));
    let density =
        Mlp::new(vec![Dense::zeros(grid.encoded_dim(), DENSITY_OUT_DIM, Activation::None)]);
    let color = Mlp::new(vec![Dense::zeros(COLOR_IN_DIM, 3, Activation::None)]);
    let bounds = Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0));
    let occ = OccupancyGrid::from_cells(4, bounds, vec![true; 64]).expect("valid cells");
    NgpModel::new(encoder, density, color, bounds, occ)
}

/// A checkpoint directory where every named scene is already fitted, so
/// every shard warms from disk instead of fitting.
fn warm_dir(name: &str, scenes: &[&str]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdr_cluster_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ModelStore::builder().dir(&dir).build();
    let grid = test_grid();
    for scene in scenes {
        store.get_or_fit_with(&registry::handle(scene), &grid, || blank_model(&grid));
    }
    dir
}

#[test]
fn admission_goes_home_then_spills_then_rejects() {
    let dir = warm_dir("admission", &["Mic"]);
    let cluster = ShardRouter::builder(test_profile())
        .shards(2)
        .store_dir(&dir)
        .budget_ms(100.0)
        .paused()
        .build()
        .unwrap();
    // teach the cost model that a Mic frame is enormous, so one request
    // saturates a shard's budget deterministically
    cluster.cost_model().observe("Mic", 16, 1, 60_000.0);
    let mic = registry::handle("Mic");
    let home = cluster.ring().home("Mic");

    let first = cluster.submit(RenderRequest::frame(mic.clone(), 16)).unwrap();
    assert_eq!(first.shard(), home, "an idle home shard takes its own scene");
    assert!(first.predicted_ms() > 100.0, "admitted although over budget — idle shards must");

    let second = cluster.submit(RenderRequest::frame(mic.clone(), 16)).unwrap();
    assert_ne!(second.shard(), home, "a saturated home shard spills to the least-loaded");

    let third = cluster.submit(RenderRequest::frame(mic.clone(), 16));
    match third {
        Err(ClusterError::Overloaded { predicted_ms, budget_ms }) => {
            assert!(predicted_ms > budget_ms);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    let staged = cluster.stats();
    assert_eq!((staged.routed_home, staged.spilled, staged.rejected), (1, 1, 1));
    assert_eq!(staged.shards[home].outstanding_ms, 60_000.0);
    assert_eq!(staged.shards[1 - home].spilled_in, 1);

    cluster.start();
    assert!(first.wait().is_ok());
    assert!(second.wait().is_ok());
    let stats = cluster.shutdown();
    assert_eq!(stats.requests(), 2);
    for s in &stats.shards {
        assert_eq!(s.outstanding_ms, 0.0, "completions must release their reservations");
    }
    assert_eq!(stats.total_fits(), 0, "everything warmed from the shared checkpoint dir");
    assert!(stats.cost.observations >= 3, "completions feed the cost model");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn autoscaler_grows_under_misses_and_shrinks_when_quiet() {
    let dir = warm_dir("autoscale", &["Mic"]);
    let cluster = ShardRouter::builder(test_profile())
        .shards(1)
        .store_dir(&dir)
        .autoscale(AutoscalerConfig {
            workers_min: 1,
            workers_max: 3,
            interval: Duration::from_millis(40),
            cooldown_intervals: 1,
            ..AutoscalerConfig::default()
        })
        .build()
        .unwrap();
    assert_eq!(cluster.shard_workers(0), 1, "autoscaled shards start at workers_min");

    // hopeless deadlines: every request misses, the miss-rate window
    // saturates, and the controller must grow the pool
    let mic = registry::handle("Mic");
    let tickets: Vec<_> = (0..8)
        .map(|_| {
            cluster
                .submit(
                    RenderRequest::frame(mic.clone(), 16).with_deadline(Duration::from_micros(1)),
                )
                .unwrap()
        })
        .collect();
    for t in &tickets {
        assert_eq!(t.wait().unwrap().deadline_met, Some(false));
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while cluster.shard_workers(0) < 2 {
        assert!(Instant::now() < deadline, "autoscaler never grew: {:?}", cluster.stats());
        std::thread::sleep(Duration::from_millis(20));
    }

    // traffic stops: quiet windows must shrink the pool back to the floor
    let deadline = Instant::now() + Duration::from_secs(5);
    while cluster.shard_workers(0) > 1 {
        assert!(Instant::now() < deadline, "autoscaler never shrank: {:?}", cluster.stats());
        std::thread::sleep(Duration::from_millis(20));
    }

    let stats = cluster.shutdown();
    let grew = stats.scale_events.iter().any(|e| e.to > e.from && e.miss_rate > 0.9);
    let shrank = stats.scale_events.iter().any(|e| e.to < e.from && e.miss_rate == 0.0);
    assert!(grew, "no grow event recorded: {:?}", stats.scale_events);
    assert!(shrank, "no shrink event recorded: {:?}", stats.scale_events);
    assert_eq!(stats.miss_rate(), 1.0, "every deadlined request missed by construction");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_requests_release_their_budget_reservation() {
    use asdr_scenes::registry::SceneDef;
    if registry::get("cluster-panics").is_none() {
        registry::register(SceneDef::new("cluster-panics", || panic!("builder exploded"))).unwrap();
    }
    let cluster = ShardRouter::builder(test_profile())
        .shards(2)
        .in_memory_stores()
        .budget_ms(50_000.0)
        .build()
        .unwrap();
    let doomed =
        cluster.submit(RenderRequest::frame(registry::handle("cluster-panics"), 16)).unwrap();
    assert!(doomed.wait().is_err(), "the panicking fit fails the ticket");
    // the reservation must not leak, or the shard's budget wedges shut
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = cluster.stats();
        if stats.shards.iter().all(|s| s.outstanding_ms == 0.0) {
            break;
        }
        assert!(Instant::now() < deadline, "reservation leaked: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.shutdown();
}
