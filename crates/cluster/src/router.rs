//! The shard router: consistent hashing, cost-budget admission, spill-over,
//! and the autoscaling control loop, over N [`RenderService`] shards.
//!
//! Requests are routed by **scene name** through a consistent-hash ring
//! ([`HashRing`], 64 virtual nodes per shard), so one scene's traffic lands
//! on one home shard — its fit stays resident in that shard's store and its
//! requests batch onto shared engine sessions. Admission is by **predicted
//! cost**, not request count: the home shard takes the request while its
//! outstanding predicted milliseconds stay under the per-shard budget;
//! otherwise the request spills to the least-loaded shard, and only when
//! *every* shard is over budget does the cluster refuse
//! ([`ClusterError::Overloaded`]).
//!
//! Shards deliberately get **separate [`ModelStore`]s over one checkpoint
//! directory** — the same topology as N independent processes — so the
//! store's cross-process lock-file single-flight is exercised even
//! in-process, and a spilled request warms from the home shard's
//! checkpoint instead of refitting. Because rendering is deterministic and
//! plan reuse never crosses a request boundary, a request's frames are
//! **byte-identical whichever shard serves it** — the property
//! `tests/cluster_e2e.rs` pins against a single service.

use crate::autoscale::{AutoscalerConfig, ScaleEvent, ShardController};
use crate::cost::CostModel;
use crate::stats::{ClusterStats, ShardStats};
use asdr_serve::{
    Completion, ModelStore, RenderProfile, RenderRequest, RenderResult, RenderService,
    RenderTicket, ServeError,
};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Virtual nodes per shard on the ring: enough that shard loads stay
/// within a few tens of percent of even for realistic scene counts.
pub const VNODES: usize = 64;

/// The ring hash: FNV-1a 64-bit through a murmur-style finalizer. Stable
/// across processes and releases (routing must not depend on `std`'s
/// randomized hasher); the finalizer matters — raw FNV keeps
/// common-prefix strings ("shard-…", scene names) in a narrow band of the
/// ring, which empties whole shards.
pub fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A consistent-hash ring over shard ids (see the module docs).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// (ring position, shard id), sorted by position.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// A ring over shards `0..shards` (at least 1).
    pub fn new(shards: usize) -> Self {
        Self::from_ids(0..shards.max(1))
    }

    /// A ring over an explicit shard-id set.
    pub fn from_ids(ids: impl IntoIterator<Item = usize>) -> Self {
        let mut points = Vec::new();
        for id in ids {
            for v in 0..VNODES {
                points.push((ring_hash(format!("shard-{id}/vnode-{v}").as_bytes()), id));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    /// The home shard for a scene name: the first virtual node clockwise
    /// from the name's ring position.
    pub fn home(&self, scene: &str) -> usize {
        let h = ring_hash(scene.as_bytes());
        let i = self.points.partition_point(|&(p, _)| p < h);
        self.points[if i == self.points.len() { 0 } else { i }].1
    }

    /// The ring with one shard removed — only that shard's scenes remap
    /// (the consistent-hashing property `router_props.rs` pins).
    pub fn without(&self, shard: usize) -> HashRing {
        HashRing { points: self.points.iter().copied().filter(|&(_, id)| id != shard).collect() }
    }

    /// Shard ids present on the ring.
    pub fn len(&self) -> usize {
        let mut ids: Vec<usize> = self.points.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Whether the ring holds no shards.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Why the cluster refused or failed a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// Every shard's outstanding predicted cost exceeds its budget; retry
    /// after completions drain.
    Overloaded {
        /// Predicted cost of the refused request, milliseconds.
        predicted_ms: f64,
        /// The per-shard admission budget, milliseconds.
        budget_ms: f64,
    },
    /// The chosen shard's service refused or failed the request.
    Serve(ServeError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Overloaded { predicted_ms, budget_ms } => write!(
                f,
                "cluster overloaded: predicted {predicted_ms:.1} ms exceeds every shard's \
                 {budget_ms:.0} ms budget"
            ),
            ClusterError::Serve(e) => write!(f, "shard error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A submitted request's handle: the shard that took it plus its ticket.
#[derive(Debug, Clone)]
pub struct ClusterTicket {
    shard: usize,
    predicted_ms: f64,
    ticket: RenderTicket,
}

impl ClusterTicket {
    /// The shard serving this request.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// What the cost model predicted at admission, milliseconds.
    pub fn predicted_ms(&self) -> f64 {
        self.predicted_ms
    }

    /// Blocks until the request completes or fails (see
    /// [`RenderTicket::wait`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::RenderFailed`] if the request's fit or render
    /// panicked.
    pub fn wait(&self) -> Result<Arc<RenderResult>, ServeError> {
        self.ticket.wait()
    }

    /// The outcome, if already decided.
    pub fn try_result(&self) -> Option<Result<Arc<RenderResult>, ServeError>> {
        self.ticket.try_result()
    }
}

/// Predicted-cost bookkeeping for one shard's admitted-but-unfinished
/// requests. Reservations are made at submit and released by the shard
/// service's completion hook (successes *and* failures), keyed by
/// (scene, resolution, frames) FIFO so concurrent identical requests
/// release the prediction they reserved.
#[derive(Debug, Default)]
struct ShardLoad {
    outstanding_ms: f64,
    pending: HashMap<(String, u32, usize), VecDeque<f64>>,
    spilled_in: u64,
}

impl ShardLoad {
    fn reserve(&mut self, key: (String, u32, usize), predicted_ms: f64) {
        self.outstanding_ms += predicted_ms;
        self.pending.entry(key).or_default().push_back(predicted_ms);
    }

    fn release(&mut self, key: &(String, u32, usize)) {
        if let Some(q) = self.pending.get_mut(key) {
            if let Some(p) = q.pop_front() {
                self.outstanding_ms = (self.outstanding_ms - p).max(0.0);
            }
            if q.is_empty() {
                self.pending.remove(key);
            }
        }
        if self.pending.is_empty() {
            // snap float residue: an empty book must read exactly idle, or
            // the autoscaler's busy signal (and the budget) never clears
            self.outstanding_ms = 0.0;
        }
    }
}

/// One shard: a [`RenderService`] plus its admission bookkeeping.
struct Shard {
    service: RenderService,
    load: Arc<Mutex<ShardLoad>>,
}

/// Where each shard's [`ModelStore`] persists checkpoints.
#[derive(Debug, Clone)]
enum StoreSetting {
    /// Honor `ASDR_STORE_DIR` (the [`ModelStore`] default).
    FromEnv,
    /// In-memory stores only.
    Disabled,
    /// All shards share this checkpoint directory.
    Path(PathBuf),
}

/// Configures and builds a [`ShardRouter`].
pub struct ClusterBuilder {
    profile: RenderProfile,
    shards: usize,
    workers: usize,
    queue_capacity: usize,
    budget_ms: f64,
    store: StoreSetting,
    lock_stale_after: Option<Duration>,
    autoscale: Option<AutoscalerConfig>,
    paused: bool,
}

impl ClusterBuilder {
    /// Number of shards (clamped to >= 1).
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Fixed workers per shard (clamped to >= 1). With autoscaling on,
    /// shards instead start at [`AutoscalerConfig::workers_min`].
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Per-shard admission-queue capacity (the count-based backstop behind
    /// the cost budget; clamped to >= 1).
    #[must_use]
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Per-shard predicted-cost admission budget, milliseconds. An idle
    /// shard always admits one request regardless (a single request larger
    /// than the budget must still be servable).
    #[must_use]
    pub fn budget_ms(mut self, ms: f64) -> Self {
        self.budget_ms = if ms.is_finite() && ms > 0.0 { ms } else { f64::INFINITY };
        self
    }

    /// All shards persist checkpoints under `dir` (each shard gets its own
    /// [`ModelStore`] over it; the lock-file protocol deduplicates fits).
    #[must_use]
    pub fn store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store = StoreSetting::Path(dir.into());
        self
    }

    /// In-memory stores only, even when `ASDR_STORE_DIR` is set.
    #[must_use]
    pub fn in_memory_stores(mut self) -> Self {
        self.store = StoreSetting::Disabled;
        self
    }

    /// Overrides each store's stale-lock timeout (tests).
    #[must_use]
    pub fn lock_stale_after(mut self, age: Duration) -> Self {
        self.lock_stale_after = Some(age);
        self
    }

    /// Turns the autoscaling control loop on.
    #[must_use]
    pub fn autoscale(mut self, cfg: AutoscalerConfig) -> Self {
        self.autoscale = Some(cfg);
        self
    }

    /// Starts every shard's worker pool parked: submissions queue (and
    /// reserve budget) but nothing renders until [`ShardRouter::start`].
    /// Used to stage bursts and by the admission tests to make routing
    /// decisions observable without racing completions.
    #[must_use]
    pub fn paused(mut self) -> Self {
        self.paused = true;
        self
    }

    /// Builds the cluster and spawns its shard pools (and, when
    /// configured, the autoscaler control loop).
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint if the profile or
    /// the autoscaler configuration fails validation.
    pub fn build(self) -> Result<ShardRouter, String> {
        if let Some(cfg) = &self.autoscale {
            cfg.validate()?;
        }
        let initial_workers = match &self.autoscale {
            Some(cfg) => cfg.workers_min,
            None => self.workers,
        };
        let cost = Arc::new(CostModel::new(&self.profile));
        let pulse = Arc::new(CompletionPulse::default());
        let mut shards = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let load = Arc::new(Mutex::new(ShardLoad::default()));
            let hook = {
                let cost = cost.clone();
                let load = load.clone();
                let pulse = pulse.clone();
                Arc::new(move |c: &Completion<'_>| {
                    if let Some(r) = c.result {
                        let service_ms = r.latency.saturating_sub(r.queue_wait).as_secs_f64() * 1e3;
                        cost.observe(c.scene, c.resolution, c.frames, service_ms);
                    }
                    // failures release their reservation too, or the budget
                    // would leak shut
                    load.lock().unwrap().release(&(c.scene.to_string(), c.resolution, c.frames));
                    pulse.bump();
                })
            };
            let mut store = ModelStore::builder();
            match &self.store {
                StoreSetting::FromEnv => {}
                StoreSetting::Disabled => store = store.in_memory_only(),
                StoreSetting::Path(dir) => store = store.dir(dir),
            }
            if let Some(age) = self.lock_stale_after {
                store = store.lock_stale_after(age);
            }
            let mut service = RenderService::builder(self.profile.clone())
                .store(Arc::new(store.build()))
                .workers(initial_workers)
                .queue_capacity(self.queue_capacity)
                .on_complete(hook);
            if self.paused {
                service = service.paused();
            }
            shards.push(Shard { service: service.build()?, load });
        }
        let shards = Arc::new(shards);
        let events = Arc::new(Mutex::new(Vec::new()));
        let started = Instant::now();
        let scaler = self.autoscale.map(|cfg| {
            let stop = Arc::new(StopSignal::default());
            let thread = {
                let (shards, events, stop) = (shards.clone(), events.clone(), stop.clone());
                std::thread::Builder::new()
                    .name("asdr-autoscaler".into())
                    .spawn(move || scaler_loop(&shards, &cfg, &stop, &events, started))
                    .expect("spawn autoscaler")
            };
            ScalerHandle { stop, thread: Some(thread) }
        });
        // routing counters live in the process-global registry under a
        // unique `cluster.N.` scope (one per router instance)
        let scope = asdr_obs::Scope::instance("cluster");
        Ok(ShardRouter {
            ring: HashRing::new(self.shards),
            shards,
            cost,
            budget_ms: self.budget_ms,
            routed_home: scope.counter("routed_home"),
            spilled: scope.counter("spilled"),
            rejected: scope.counter("rejected"),
            events,
            scaler,
            pulse,
        })
    }
}

/// The autoscaler thread: sample every shard, difference the deadline
/// counters, apply verdicts (see [`crate::autoscale`]).
fn scaler_loop(
    shards: &[Shard],
    cfg: &AutoscalerConfig,
    stop: &StopSignal,
    events: &Mutex<Vec<ScaleEvent>>,
    started: Instant,
) {
    let mut controllers: Vec<ShardController> =
        shards.iter().map(|s| ShardController::new(s.service.workers())).collect();
    while !stop.wait_interval(cfg.interval) {
        for (i, shard) in shards.iter().enumerate() {
            let stats = shard.service.stats();
            // admitted-but-unfinished work (queued or rendering) makes an
            // empty window "busy", not "idle" — see ShardController::tick;
            // the same predicted-ms doubles as the controller's forecast
            let outstanding_ms = shard.load.lock().unwrap().outstanding_ms;
            let busy = outstanding_ms > 0.0 || shard.service.queue_len() > 0;
            if let Some(v) = controllers[i].tick(
                cfg,
                stats.deadlined_requests,
                stats.deadline_misses,
                busy,
                outstanding_ms,
            ) {
                let from = shard.service.set_workers(v.target);
                events.lock().unwrap().push(ScaleEvent {
                    at_ms: started.elapsed().as_millis() as u64,
                    shard: i,
                    from,
                    to: v.target,
                    miss_rate: v.miss_rate,
                    reason: v.reason,
                });
            }
        }
    }
}

/// Interruptible sleep for the control loop: shutdown must not wait out a
/// full sampling interval (a 60 s interval would stall every drop by a
/// minute).
#[derive(Default)]
struct StopSignal {
    stopped: Mutex<bool>,
    cond: Condvar,
}

impl StopSignal {
    /// Sleeps for `interval` or until stopped; returns whether stopped.
    fn wait_interval(&self, interval: Duration) -> bool {
        let deadline = Instant::now() + interval;
        let mut stopped = self.stopped.lock().unwrap();
        while !*stopped {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            stopped = self.cond.wait_timeout(stopped, left).unwrap().0;
        }
        true
    }

    fn stop(&self) {
        *self.stopped.lock().unwrap() = true;
        self.cond.notify_all();
    }
}

struct ScalerHandle {
    stop: Arc<StopSignal>,
    thread: Option<JoinHandle<()>>,
}

impl ScalerHandle {
    fn stop(&mut self) {
        self.stop.stop();
        if let Some(t) = self.thread.take() {
            t.join().expect("autoscaler panicked");
        }
    }
}

/// The cluster handle (see the module docs for routing and admission
/// semantics). Dropping it drains every shard; [`ShardRouter::shutdown`]
/// does the same and returns the final statistics.
pub struct ShardRouter {
    ring: HashRing,
    shards: Arc<Vec<Shard>>,
    cost: Arc<CostModel>,
    budget_ms: f64,
    routed_home: Arc<asdr_obs::Counter>,
    spilled: Arc<asdr_obs::Counter>,
    rejected: Arc<asdr_obs::Counter>,
    events: Arc<Mutex<Vec<ScaleEvent>>>,
    scaler: Option<ScalerHandle>,
    pulse: Arc<CompletionPulse>,
}

/// A cluster-wide completion signal: every shard's completion hook bumps
/// the counter, and [`ShardRouter::wait_capacity`] parks on it — an
/// over-budget replay wakes the moment *any* shard finishes work instead
/// of sleeping out a poll interval (completions are the only events that
/// free queue slots or admission budget).
#[derive(Debug, Default)]
struct CompletionPulse {
    count: Mutex<u64>,
    cond: Condvar,
}

impl CompletionPulse {
    fn bump(&self) {
        *self.count.lock().unwrap() += 1;
        self.cond.notify_all();
    }

    /// Waits until the counter moves past `seen` or `timeout` passes.
    fn wait_change(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut count = self.count.lock().unwrap();
        let seen = *count;
        while *count == seen {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return;
            };
            count = self.cond.wait_timeout(count, left).unwrap().0;
        }
    }
}

impl fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.shards.len())
            .field("budget_ms", &self.budget_ms)
            .field("autoscale", &self.scaler.is_some())
            .finish_non_exhaustive()
    }
}

impl ShardRouter {
    /// Starts a builder over a render profile.
    pub fn builder(profile: RenderProfile) -> ClusterBuilder {
        ClusterBuilder {
            profile,
            shards: 2,
            workers: 1,
            queue_capacity: 64,
            budget_ms: f64::INFINITY,
            store: StoreSetting::FromEnv,
            lock_stale_after: None,
            autoscale: None,
            paused: false,
        }
    }

    /// Unparks every shard's worker pool (no-op when already running).
    pub fn start(&self) {
        for shard in self.shards.iter() {
            shard.service.start();
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing ring (for tooling and tests).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The shared cost model.
    pub fn cost_model(&self) -> &Arc<CostModel> {
        &self.cost
    }

    /// A shard's current worker target.
    pub fn shard_workers(&self, shard: usize) -> usize {
        self.shards[shard].service.workers()
    }

    /// Admits a request: home shard first, spill-over to the least-loaded
    /// shard when the home is full or over its cost budget.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Overloaded`] when every shard is over budget (or
    /// its queue backstop is full); [`ClusterError::Serve`] for
    /// validation failures from the shard service.
    pub fn submit(&self, req: RenderRequest) -> Result<ClusterTicket, ClusterError> {
        let predicted_ms = self.cost.predict(req.scene.name(), req.resolution, req.frames);
        let key = (req.scene.name().to_string(), req.resolution, req.frames);
        let home = self.ring.home(req.scene.name());
        // candidate order: home, then everyone else by outstanding cost.
        // Snapshot the loads before sorting — completion hooks mutate them
        // concurrently, and a comparator reading live state can violate
        // the total-order contract (a sort panic in the submit hot path)
        let mut others: Vec<(usize, f64)> = (0..self.shards.len())
            .filter(|&i| i != home)
            .map(|i| (i, self.shards[i].load.lock().unwrap().outstanding_ms))
            .collect();
        others.sort_by(|a, b| a.1.total_cmp(&b.1));
        let others = others.into_iter().map(|(i, _)| i);
        for (rank, shard_idx) in std::iter::once(home).chain(others).enumerate() {
            let shard = &self.shards[shard_idx];
            {
                let mut load = shard.load.lock().unwrap();
                // an idle shard always admits; otherwise the predicted cost
                // must fit the budget
                if load.outstanding_ms > 0.0 && load.outstanding_ms + predicted_ms > self.budget_ms
                {
                    continue;
                }
                load.reserve(key.clone(), predicted_ms);
            }
            match shard.service.submit(req.clone()) {
                Ok(ticket) => {
                    if rank == 0 {
                        self.routed_home.inc();
                    } else {
                        self.spilled.inc();
                        shard.load.lock().unwrap().spilled_in += 1;
                    }
                    return Ok(ClusterTicket { shard: shard_idx, predicted_ms, ticket });
                }
                Err(ServeError::QueueFull { .. }) => {
                    // the count backstop tripped: release and spill onward
                    shard.load.lock().unwrap().release(&key);
                }
                Err(e) => {
                    shard.load.lock().unwrap().release(&key);
                    return Err(ClusterError::Serve(e));
                }
            }
        }
        self.rejected.inc();
        Err(ClusterError::Overloaded { predicted_ms, budget_ms: self.budget_ms })
    }

    /// A statistics snapshot (completed requests only).
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let load = s.load.lock().unwrap();
                    ShardStats {
                        shard: i,
                        workers: s.service.workers(),
                        outstanding_ms: load.outstanding_ms,
                        spilled_in: load.spilled_in,
                        serve: s.service.stats(),
                    }
                })
                .collect(),
            routed_home: self.routed_home.get(),
            spilled: self.spilled.get(),
            rejected: self.rejected.get(),
            scale_events: self.events.lock().unwrap().clone(),
            cost: self.cost.stats(),
            fleet: crate::stats::FleetStats::default(),
        }
    }

    /// Stops the autoscaler, drains every shard, and returns the final
    /// statistics.
    pub fn shutdown(mut self) -> ClusterStats {
        if let Some(scaler) = &mut self.scaler {
            scaler.stop();
        }
        for shard in self.shards.iter() {
            shard.service.drain();
        }
        self.stats()
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        // the control loop must never outlive the shards it resizes
        if let Some(scaler) = &mut self.scaler {
            scaler.stop();
        }
        for shard in self.shards.iter() {
            shard.service.drain();
        }
    }
}

impl asdr_serve::ReplayTarget for ShardRouter {
    type Ticket = ClusterTicket;

    /// The cluster replays like a single service: an over-budget cluster
    /// is momentarily busy (the driver blocks the replay clock), every
    /// other error is fatal.
    fn try_submit(&self, req: RenderRequest) -> asdr_serve::SubmitOutcome<ClusterTicket> {
        match self.submit(req) {
            Ok(t) => asdr_serve::SubmitOutcome::Admitted(t),
            Err(ClusterError::Overloaded { .. }) => asdr_serve::SubmitOutcome::Busy,
            Err(e) => asdr_serve::SubmitOutcome::Fatal(e.to_string()),
        }
    }

    fn wait_capacity(&self, timeout: Duration) {
        self.pulse.wait_change(timeout);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_hash_is_stable_and_avalanches() {
        assert_eq!(ring_hash(b"Mic"), ring_hash(b"Mic"));
        assert_ne!(ring_hash(b"Mic"), ring_hash(b"Lego"));
        // the finalizer must spread common-prefix strings across the whole
        // u64 range (raw FNV fails this and empties shards)
        let top_byte =
            |s: &str| (ring_hash(s.as_bytes()) >> 56) as u8 >> 6 /* top 2 bits: 4 buckets */;
        let mut buckets = [0usize; 4];
        for i in 0..256 {
            buckets[top_byte(&format!("scene-{i}")) as usize] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 16), "prefix clustering: {buckets:?}");
    }

    #[test]
    fn ring_routes_every_name_to_a_live_shard() {
        let ring = HashRing::new(3);
        assert_eq!(ring.len(), 3);
        for name in ["Mic", "Lego", "Pulse", "Chair", "Palace", "weird scene/name"] {
            assert!(ring.home(name) < 3);
            // deterministic
            assert_eq!(ring.home(name), ring.home(name));
        }
    }

    #[test]
    fn ring_spreads_shards_reasonably() {
        let ring = HashRing::new(4);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[ring.home(&format!("scene-{i}"))] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(c > 100, "shard {shard} got {c}/1000 — ring badly unbalanced: {counts:?}");
        }
    }

    #[test]
    fn removing_a_shard_only_remaps_its_scenes() {
        let ring = HashRing::new(3);
        let reduced = ring.without(1);
        assert_eq!(reduced.len(), 2);
        for i in 0..500 {
            let name = format!("scene-{i}");
            let before = ring.home(&name);
            let after = reduced.home(&name);
            if before != 1 {
                assert_eq!(before, after, "{name} moved although its shard survived");
            } else {
                assert_ne!(after, 1, "{name} must leave the removed shard");
            }
        }
    }

    #[test]
    fn shard_load_reserve_release_round_trips() {
        let mut load = ShardLoad::default();
        let key = ("Mic".to_string(), 48u32, 2usize);
        load.reserve(key.clone(), 100.0);
        load.reserve(key.clone(), 60.0); // prediction drifted between submits
        assert_eq!(load.outstanding_ms, 160.0);
        load.release(&key);
        assert_eq!(load.outstanding_ms, 60.0, "FIFO: the first reservation releases first");
        load.release(&key);
        assert_eq!(load.outstanding_ms, 0.0);
        // releasing an unknown key must not underflow
        load.release(&("Lego".to_string(), 48, 1));
        assert_eq!(load.outstanding_ms, 0.0);
        assert!(load.pending.is_empty());
    }
}
