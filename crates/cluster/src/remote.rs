//! The remote fleet front-end: per-shard connection pools, health checks
//! with consecutive-miss eviction, request hedging, and ring re-warm.
//!
//! [`RemoteShard`] is the client of one `asdr-shardd` process — a small
//! pool of [`Stream`]s, each with a reader thread demultiplexing reply
//! frames into per-request slots by correlation id, so any number of
//! requests, health probes, and stats polls share a connection without
//! head-of-line blocking on the client side.
//!
//! [`RemoteFleet`] is the router: it consistent-hashes scenes over the
//! *live* shard set (the same [`HashRing`] the in-process router uses),
//! spills to other shards when the home refuses, and owns the three
//! failure-handling mechanisms the in-process cluster could never
//! exercise:
//!
//! * **failure detection** — a health thread probes every shard each
//!   interval; [`FleetConfig::health_misses`] consecutive misses evict
//!   the shard from the ring ([`HashRing::without`]), and a later
//!   successful probe rejoins it. Connection errors on the submit or
//!   wait path evict immediately — a refused connect is better evidence
//!   than a timer.
//! * **hedging** — when a request has waited longer than
//!   [`FleetConfig::hedge_after`], a duplicate is submitted to another
//!   live shard. First response wins; the loser's reply is cancelled
//!   shard-side and the race is counted in [`FleetStats`]. Requests are
//!   deterministic, so the winner's frames are byte-identical either way.
//! * **re-warm** — when the ring changes (eviction or rejoin), every
//!   scene this fleet has routed whose home moved gets a `Prewarm` sent
//!   to its new home, pulling the model from the shared checkpoint
//!   directory before traffic lands there.
//!
//! In-flight requests on a shard that dies are transparently resubmitted
//! (a failover, also counted), which is what makes the kill-−9
//! acceptance test pass: the run completes with zero wrong bytes and the
//! failure is visible only in the counters.

use crate::net::{ShardAddr, Stream};
use crate::router::HashRing;
use crate::stats::{ClusterStats, FleetStats, ShardStats};
use crate::wire::{self, Message, WireRequest, WireResult, WireStats};
use crate::CostModel;
use asdr_obs::{Counter, Scope, TraceId};
use asdr_serve::trace::replay::{ReplayTarget, SubmitOutcome};
use asdr_serve::{RenderProfile, RenderRequest};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a remote operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RemoteError {
    /// The shard refused the request (`retryable` = queue full / draining).
    Refused {
        /// Whether retrying (elsewhere or later) can succeed.
        retryable: bool,
        /// The shard-side message.
        why: String,
    },
    /// The shard rendered but failed (worker panic).
    Render(String),
    /// The connection died or could not be established.
    Connection(String),
    /// The peer broke the protocol.
    Protocol(String),
    /// No reply within the caller's deadline.
    Timeout,
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Refused { retryable, why } => {
                write!(f, "refused ({}): {why}", if *retryable { "retryable" } else { "final" })
            }
            RemoteError::Render(why) => write!(f, "{why}"),
            RemoteError::Connection(why) => write!(f, "connection: {why}"),
            RemoteError::Protocol(why) => write!(f, "protocol: {why}"),
            RemoteError::Timeout => f.write_str("timed out"),
        }
    }
}

/// One correlation id's reply stream (a submit sees `Submitted` then
/// `Result`; probes see a single reply).
#[derive(Debug, Default)]
struct SlotState {
    replies: VecDeque<Message>,
    dead: Option<String>,
}

#[derive(Debug, Default)]
struct Slot {
    state: Mutex<SlotState>,
    cond: Condvar,
}

impl Slot {
    /// The next reply for this id, waiting up to `timeout`.
    fn next(&self, timeout: Duration) -> Result<Message, RemoteError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(msg) = st.replies.pop_front() {
                return Ok(msg);
            }
            if let Some(why) = &st.dead {
                return Err(RemoteError::Connection(why.clone()));
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return Err(RemoteError::Timeout);
            };
            st = self.cond.wait_timeout(st, left).unwrap().0;
        }
    }
}

/// One pooled connection: a locked writer half plus a reader thread that
/// routes reply frames into slots by id.
#[derive(Debug)]
struct Conn {
    writer: Mutex<Stream>,
    read_half: Stream,
    pending: Mutex<HashMap<u64, Arc<Slot>>>,
    alive: AtomicBool,
}

impl Conn {
    fn open(addr: &ShardAddr) -> Result<Arc<Conn>, RemoteError> {
        let stream = addr.connect().map_err(|e| RemoteError::Connection(e.to_string()))?;
        let mut writer = stream.try_clone().map_err(|e| RemoteError::Connection(e.to_string()))?;
        // handshake synchronously, bounded, before the reader thread owns
        // the stream
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .map_err(|e| RemoteError::Connection(e.to_string()))?;
        wire::write_frame(&mut writer, &Message::Hello { version: wire::VERSION })
            .map_err(|e| RemoteError::Connection(e.to_string()))?;
        let mut read_half =
            stream.try_clone().map_err(|e| RemoteError::Connection(e.to_string()))?;
        match wire::read_frame(&mut read_half) {
            Ok(Some(Message::HelloOk { .. })) => {}
            Ok(Some(other)) => {
                return Err(RemoteError::Protocol(format!("expected HelloOk, got {other:?}")))
            }
            Ok(None) => return Err(RemoteError::Connection("closed during handshake".into())),
            Err(e) => return Err(RemoteError::Connection(e)),
        }
        stream.set_read_timeout(None).map_err(|e| RemoteError::Connection(e.to_string()))?;
        let conn = Arc::new(Conn {
            writer: Mutex::new(writer),
            read_half: stream,
            pending: Mutex::new(HashMap::new()),
            alive: AtomicBool::new(true),
        });
        let reader_conn = conn.clone();
        std::thread::spawn(move || reader_loop(&reader_conn, read_half));
        Ok(conn)
    }

    fn register(&self, id: u64) -> Arc<Slot> {
        let slot = Arc::new(Slot::default());
        self.pending.lock().unwrap().insert(id, slot.clone());
        slot
    }

    fn unregister(&self, id: u64) {
        self.pending.lock().unwrap().remove(&id);
    }

    fn send(&self, msg: &Message) -> Result<(), RemoteError> {
        let mut w = self.writer.lock().unwrap();
        wire::write_frame(&mut *w, msg).map_err(|e| {
            self.fail(&e.to_string());
            RemoteError::Connection(e.to_string())
        })
    }

    /// Marks the connection dead and wakes every pending waiter with the
    /// reason — the client-side signal a kill −9 produces.
    fn fail(&self, why: &str) {
        if self.alive.swap(false, Ordering::SeqCst) {
            self.read_half.shutdown();
        }
        let slots: Vec<Arc<Slot>> = self.pending.lock().unwrap().drain().map(|(_, s)| s).collect();
        for slot in slots {
            let mut st = slot.state.lock().unwrap();
            st.dead = Some(why.to_string());
            slot.cond.notify_all();
        }
    }
}

fn reader_loop(conn: &Conn, mut read_half: Stream) {
    loop {
        match wire::read_frame(&mut read_half) {
            Ok(Some(msg)) => {
                let Some(id) = msg.id() else { continue };
                let slot = conn.pending.lock().unwrap().get(&id).cloned();
                if let Some(slot) = slot {
                    let mut st = slot.state.lock().unwrap();
                    st.replies.push_back(msg);
                    slot.cond.notify_all();
                }
                // replies for unregistered ids (cancelled hedges) are dropped
            }
            Ok(None) => return conn.fail("shard closed the connection"),
            Err(e) => return conn.fail(&e),
        }
    }
}

/// A shard's health probe reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthInfo {
    /// Queue depth at probe time.
    pub queue_len: u64,
    /// Whether the shard is draining.
    pub draining: bool,
}

/// The client of one `asdr-shardd` process.
#[derive(Debug)]
pub struct RemoteShard {
    addr: ShardAddr,
    pool: Mutex<Vec<Option<Arc<Conn>>>>,
    next_conn: AtomicUsize,
    next_id: AtomicU64,
}

impl RemoteShard {
    /// A client over `addr` with a `connections` pool (>= 1), verifying
    /// reachability with one eager connection.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Connection`] when the shard is unreachable.
    pub fn connect(addr: ShardAddr, connections: usize) -> Result<RemoteShard, RemoteError> {
        let mut pool = vec![None; connections.max(1)];
        pool[0] = Some(Conn::open(&addr)?);
        Ok(RemoteShard {
            addr,
            pool: Mutex::new(pool),
            next_conn: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
        })
    }

    /// The shard's address.
    pub fn addr(&self) -> &ShardAddr {
        &self.addr
    }

    /// A live pooled connection (round-robin), re-dialing a dead or
    /// unopened pool slot — which is also how a restarted shard rejoins.
    fn conn(&self) -> Result<Arc<Conn>, RemoteError> {
        let mut pool = self.pool.lock().unwrap();
        let i = self.next_conn.fetch_add(1, Ordering::Relaxed) % pool.len();
        if let Some(conn) = &pool[i] {
            if conn.alive.load(Ordering::SeqCst) {
                return Ok(conn.clone());
            }
        }
        let fresh = Conn::open(&self.addr)?;
        pool[i] = Some(fresh.clone());
        Ok(fresh)
    }

    fn request(
        &self,
        build: impl FnOnce(u64) -> Message,
    ) -> Result<(Arc<Conn>, Arc<Slot>, u64), RemoteError> {
        let conn = self.conn()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = conn.register(id);
        if let Err(e) = conn.send(&build(id)) {
            conn.unregister(id);
            return Err(e);
        }
        Ok((conn, slot, id))
    }

    /// One-reply request/response helper.
    fn roundtrip(
        &self,
        timeout: Duration,
        build: impl FnOnce(u64) -> Message,
    ) -> Result<Message, RemoteError> {
        let (conn, slot, id) = self.request(build)?;
        let reply = slot.next(timeout);
        conn.unregister(id);
        reply
    }

    /// Submits a request, waiting up to `admit_timeout` for the admission
    /// decision.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Refused`] (retryable = queue full),
    /// [`RemoteError::Connection`]/[`RemoteError::Timeout`] when the shard
    /// is unreachable or silent.
    pub fn submit(
        &self,
        req: &RenderRequest,
        admit_timeout: Duration,
    ) -> Result<RemoteTicket, RemoteError> {
        let wire_req = WireRequest::from_request(req);
        let (conn, slot, id) = self.request(|id| Message::Submit { id, req: wire_req })?;
        match slot.next(admit_timeout) {
            Ok(Message::Submitted { .. }) => Ok(RemoteTicket { conn, slot, id }),
            Ok(Message::Refused { retryable, why, .. }) => {
                conn.unregister(id);
                Err(RemoteError::Refused { retryable, why })
            }
            Ok(other) => {
                conn.unregister(id);
                Err(RemoteError::Protocol(format!("expected Submitted, got {other:?}")))
            }
            Err(e) => {
                conn.unregister(id);
                Err(e)
            }
        }
    }

    /// Probes liveness.
    ///
    /// # Errors
    ///
    /// Connection, protocol, or timeout errors — each a health miss.
    pub fn health(&self, timeout: Duration) -> Result<HealthInfo, RemoteError> {
        match self.roundtrip(timeout, |id| Message::Health { id })? {
            Message::HealthOk { queue_len, draining, .. } => Ok(HealthInfo { queue_len, draining }),
            other => Err(RemoteError::Protocol(format!("expected HealthOk, got {other:?}"))),
        }
    }

    /// Polls the shard's statistics snapshot.
    ///
    /// # Errors
    ///
    /// Connection, protocol, or timeout errors.
    pub fn stats(&self, timeout: Duration) -> Result<WireStats, RemoteError> {
        match self.roundtrip(timeout, |id| Message::StatsPoll { id })? {
            Message::Stats { stats, .. } => Ok(stats),
            other => Err(RemoteError::Protocol(format!("expected Stats, got {other:?}"))),
        }
    }

    /// Pre-fetches `scene`'s model on the shard (ring re-warm), returning
    /// whether the shard knew the scene.
    ///
    /// # Errors
    ///
    /// Connection, protocol, or timeout errors.
    pub fn prewarm(&self, scene: &str, timeout: Duration) -> Result<bool, RemoteError> {
        let scene = scene.to_string();
        match self.roundtrip(timeout, |id| Message::Prewarm { id, scene })? {
            Message::Warmed { ok, .. } => Ok(ok),
            other => Err(RemoteError::Protocol(format!("expected Warmed, got {other:?}"))),
        }
    }

    /// Asks the shard to drain and exit (best effort).
    pub fn drain(&self, timeout: Duration) {
        let _ = self.roundtrip(timeout, |id| Message::Drain { id });
    }
}

/// A submitted remote request's completion handle.
#[derive(Debug, Clone)]
pub struct RemoteTicket {
    conn: Arc<Conn>,
    slot: Arc<Slot>,
    id: u64,
}

impl RemoteTicket {
    /// Waits up to `timeout` for the result.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Timeout`] with the request still in flight (wait
    /// again, or hedge); [`RemoteError::Render`] when the shard's worker
    /// failed; [`RemoteError::Connection`] when the shard died.
    pub fn wait_result(&self, timeout: Duration) -> Result<WireResult, RemoteError> {
        match self.slot.next(timeout) {
            Ok(Message::Result { result, .. }) => {
                self.conn.unregister(self.id);
                Ok(result)
            }
            Ok(Message::Failed { why, .. }) => {
                self.conn.unregister(self.id);
                Err(RemoteError::Render(why))
            }
            Ok(other) => {
                self.conn.unregister(self.id);
                Err(RemoteError::Protocol(format!("expected Result, got {other:?}")))
            }
            Err(e) => Err(e),
        }
    }

    /// Stops the shard from shipping this result (the hedge race's loser).
    pub fn cancel(&self) {
        self.conn.unregister(self.id);
        let _ = self.conn.send(&Message::Cancel { id: self.id });
    }
}

/// Tuning for the fleet front-end.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Pooled connections per shard.
    pub connections_per_shard: usize,
    /// Health-probe period.
    pub health_interval: Duration,
    /// Per-probe reply deadline.
    pub health_timeout: Duration,
    /// Consecutive misses before a shard is evicted from the ring.
    pub health_misses: u32,
    /// Hedge a request to a replica after this long without a result
    /// (`None` disables hedging).
    pub hedge_after: Option<Duration>,
    /// Admission-decision deadline per submit attempt.
    pub admit_timeout: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            connections_per_shard: 2,
            health_interval: Duration::from_millis(250),
            health_timeout: Duration::from_millis(1000),
            health_misses: 3,
            hedge_after: Some(Duration::from_millis(2000)),
            admit_timeout: Duration::from_secs(10),
        }
    }
}

/// Why the fleet refused a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// Every live shard is momentarily full; retry after a poll.
    Busy,
    /// The request can never be admitted (no live shards, or every shard
    /// refused it outright).
    Fatal(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Busy => f.write_str("every live shard is full"),
            FleetError::Fatal(why) => f.write_str(why),
        }
    }
}

struct Stop {
    stopped: Mutex<bool>,
    cond: Condvar,
}

impl Stop {
    fn wait_interval(&self, interval: Duration) -> bool {
        let deadline = Instant::now() + interval;
        let mut stopped = self.stopped.lock().unwrap();
        while !*stopped {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            stopped = self.cond.wait_timeout(stopped, left).unwrap().0;
        }
        true
    }

    fn stop(&self) {
        *self.stopped.lock().unwrap() = true;
        self.cond.notify_all();
    }
}

struct FleetShard {
    id: usize,
    shard: RemoteShard,
    live: AtomicBool,
    misses: AtomicU32,
    last_stats: Mutex<Option<WireStats>>,
}

/// Routing and failure counters, registry-backed under a unique
/// `fleet.N.` scope so two fleets in one process (tests) never share.
struct FleetCounters {
    routed_home: Arc<Counter>,
    spilled: Arc<Counter>,
    rejected: Arc<Counter>,
    evictions: Arc<Counter>,
    rejoins: Arc<Counter>,
    hedges: Arc<Counter>,
    hedge_wins: Arc<Counter>,
    hedge_cancels: Arc<Counter>,
    failovers: Arc<Counter>,
    rewarms: Arc<Counter>,
}

impl FleetCounters {
    fn new(scope: &Scope) -> FleetCounters {
        FleetCounters {
            routed_home: scope.counter("routed_home"),
            spilled: scope.counter("spilled"),
            rejected: scope.counter("rejected"),
            evictions: scope.counter("evictions"),
            rejoins: scope.counter("rejoins"),
            hedges: scope.counter("hedges"),
            hedge_wins: scope.counter("hedge_wins"),
            hedge_cancels: scope.counter("hedge_cancels"),
            failovers: scope.counter("failovers"),
            rewarms: scope.counter("rewarms"),
        }
    }
}

struct FleetInner {
    shards: Vec<FleetShard>,
    ring: Mutex<HashRing>,
    scene_homes: Mutex<HashMap<String, usize>>,
    cost: CostModel,
    counters: FleetCounters,
    cfg: FleetConfig,
    stop: Stop,
}

impl FleetInner {
    fn live_ids(&self) -> Vec<usize> {
        self.shards.iter().filter(|s| s.live.load(Ordering::SeqCst)).map(|s| s.id).collect()
    }

    /// Removes a failed shard from the ring and re-warms the scenes its
    /// departure remapped. Idempotent per up-state.
    fn evict(self: &Arc<Self>, id: usize, why: &str) {
        if !self.shards[id].live.swap(false, Ordering::SeqCst) {
            return;
        }
        self.counters.evictions.inc();
        eprintln!("fleet: evicting shard {id} ({}): {why}", self.shards[id].shard.addr());
        {
            let mut ring = self.ring.lock().unwrap();
            *ring = ring.without(id);
        }
        self.rewarm_remapped();
    }

    /// Returns a recovered shard to the ring.
    fn rejoin(self: &Arc<Self>, id: usize) {
        if self.shards[id].live.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shards[id].misses.store(0, Ordering::SeqCst);
        self.counters.rejoins.inc();
        eprintln!("fleet: shard {id} rejoined ({})", self.shards[id].shard.addr());
        {
            let mut ring = self.ring.lock().unwrap();
            *ring = HashRing::from_ids(self.live_ids());
        }
        self.rewarm_remapped();
    }

    /// Pre-fetches every routed scene whose home moved onto its new home
    /// before traffic lands there. Runs the probes off-thread; the ring
    /// is already updated, so racing traffic merely finds a warm (or
    /// warming — the store single-flights) model.
    fn rewarm_remapped(self: &Arc<Self>) {
        let ring = self.ring.lock().unwrap().clone();
        if ring.is_empty() {
            return;
        }
        let mut homes = self.scene_homes.lock().unwrap();
        for (scene, home) in homes.iter_mut() {
            let now = ring.home(scene);
            if now != *home {
                *home = now;
                self.counters.rewarms.inc();
                let inner = self.clone();
                let scene = scene.clone();
                std::thread::spawn(move || {
                    let _ = inner.shards[now].shard.prewarm(&scene, Duration::from_secs(30));
                });
            }
        }
    }

    /// Routes one request: home shard first, then every other live shard.
    fn route(self: &Arc<Self>, req: &RenderRequest) -> Result<(usize, RemoteTicket), FleetError> {
        let scene = req.scene.name().to_string();
        let home = {
            let ring = self.ring.lock().unwrap();
            if ring.is_empty() {
                return Err(FleetError::Fatal("no live shards".into()));
            }
            ring.home(&scene)
        };
        self.scene_homes.lock().unwrap().entry(scene).or_insert(home);
        let mut candidates = vec![home];
        candidates.extend(self.live_ids().into_iter().filter(|&id| id != home));
        let mut busy = false;
        let mut last_final = None;
        for id in candidates {
            if !self.shards[id].live.load(Ordering::SeqCst) {
                continue;
            }
            match self.shards[id].shard.submit(req, self.cfg.admit_timeout) {
                Ok(ticket) => {
                    if id == home {
                        self.counters.routed_home.inc();
                    } else {
                        self.counters.spilled.inc();
                    }
                    return Ok((id, ticket));
                }
                Err(RemoteError::Refused { retryable: true, .. }) => busy = true,
                Err(RemoteError::Refused { retryable: false, why }) => last_final = Some(why),
                Err(e @ (RemoteError::Connection(_) | RemoteError::Timeout)) => {
                    self.evict(id, &e.to_string());
                }
                Err(e) => last_final = Some(e.to_string()),
            }
        }
        if busy {
            self.counters.rejected.inc();
            return Err(FleetError::Busy);
        }
        Err(FleetError::Fatal(last_final.unwrap_or_else(|| "no live shards".into())))
    }
}

/// The remote fleet router (see the module docs).
pub struct RemoteFleet {
    inner: Arc<FleetInner>,
    health: Mutex<Option<JoinHandle<()>>>,
}

impl RemoteFleet {
    /// Connects to every shard in `addrs` and starts the health loop.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unreachable shard — starting a
    /// fleet with a dead member is a deployment error, not a failure to
    /// tolerate.
    pub fn connect(
        addrs: Vec<ShardAddr>,
        profile: RenderProfile,
        cfg: FleetConfig,
    ) -> Result<RemoteFleet, String> {
        if addrs.is_empty() {
            return Err("a fleet needs at least one shard address".into());
        }
        let mut shards = Vec::with_capacity(addrs.len());
        for (id, addr) in addrs.into_iter().enumerate() {
            let shard = RemoteShard::connect(addr.clone(), cfg.connections_per_shard)
                .map_err(|e| format!("shard {id} ({addr}): {e}"))?;
            shards.push(FleetShard {
                id,
                shard,
                live: AtomicBool::new(true),
                misses: AtomicU32::new(0),
                last_stats: Mutex::new(None),
            });
        }
        let ring = HashRing::from_ids(0..shards.len());
        let inner = Arc::new(FleetInner {
            shards,
            ring: Mutex::new(ring),
            scene_homes: Mutex::new(HashMap::new()),
            cost: CostModel::new(&profile),
            counters: FleetCounters::new(&Scope::instance("fleet")),
            cfg,
            stop: Stop { stopped: Mutex::new(false), cond: Condvar::new() },
        });
        let health_inner = inner.clone();
        let health = std::thread::Builder::new()
            .name("asdr-fleet-health".into())
            .spawn(move || health_loop(&health_inner))
            .expect("spawn health thread");
        Ok(RemoteFleet { inner, health: Mutex::new(Some(health)) })
    }

    /// Shards the fleet was configured with (live or not).
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Shards currently on the ring.
    pub fn live_shards(&self) -> usize {
        self.inner.live_ids().len()
    }

    /// Submits a request to its home shard (spilling to other live shards
    /// when refused), returning a ticket that owns hedging and failover.
    ///
    /// # Errors
    ///
    /// [`FleetError::Busy`] when every live shard is momentarily full;
    /// [`FleetError::Fatal`] when the request can never be admitted.
    pub fn submit(&self, mut req: RenderRequest) -> Result<FleetTicket, FleetError> {
        // the client is the trace root: the id travels in the Submit frame
        // and joins this process's spans with the serving daemon's
        if asdr_obs::enabled() && !req.trace.is_set() {
            req.trace = TraceId::fresh();
        }
        let (shard, ticket) = self.inner.route(&req)?;
        asdr_obs::event!(req.trace, "remote-submit", format!("shard={shard}"));
        let scene = req.scene.name().to_string();
        let predicted_ms = self.inner.cost.predict(&scene, req.resolution, req.frames);
        Ok(FleetTicket {
            inner: self.inner.clone(),
            req,
            scene,
            predicted_ms,
            state: Mutex::new(TicketState { primary: (shard, ticket), hedge: None }),
            hedged: AtomicBool::new(false),
            served_by: AtomicUsize::new(shard),
        })
    }

    /// A statistics snapshot: per-shard wire stats (last known for dead
    /// shards — the work they completed before dying), fleet routing and
    /// failure counters, and the cost model.
    pub fn stats(&self) -> ClusterStats {
        let inner = &self.inner;
        let mut shards = Vec::with_capacity(inner.shards.len());
        for s in &inner.shards {
            if s.live.load(Ordering::SeqCst) {
                if let Ok(fresh) = s.shard.stats(inner.cfg.health_timeout) {
                    *s.last_stats.lock().unwrap() = Some(fresh);
                }
            }
            let snap = s.last_stats.lock().unwrap().clone().unwrap_or_else(|| WireStats {
                workers: 0,
                queue_len: 0,
                serve: zero_serve_stats(),
            });
            shards.push(ShardStats {
                shard: s.id,
                workers: snap.workers as usize,
                outstanding_ms: 0.0,
                spilled_in: 0,
                serve: snap.serve,
            });
        }
        let c = &inner.counters;
        ClusterStats {
            shards,
            routed_home: c.routed_home.get(),
            spilled: c.spilled.get(),
            rejected: c.rejected.get(),
            scale_events: Vec::new(),
            cost: inner.cost.stats(),
            fleet: FleetStats {
                shards_lost: (inner.shards.len() - inner.live_ids().len()) as u64,
                evictions: c.evictions.get(),
                rejoins: c.rejoins.get(),
                hedges: c.hedges.get(),
                hedge_wins: c.hedge_wins.get(),
                hedge_cancels: c.hedge_cancels.get(),
                failovers: c.failovers.get(),
                rewarms: c.rewarms.get(),
            },
        }
    }

    /// Stops the health loop, snapshots final statistics, and drains
    /// every live shard (best effort).
    pub fn shutdown(&self) -> ClusterStats {
        self.stop_health();
        let stats = self.stats();
        for s in &self.inner.shards {
            if s.live.load(Ordering::SeqCst) {
                s.shard.drain(Duration::from_secs(5));
            }
        }
        stats
    }

    fn stop_health(&self) {
        self.inner.stop.stop();
        if let Some(h) = self.health.lock().unwrap().take() {
            h.join().expect("fleet health thread panicked");
        }
    }
}

impl Drop for RemoteFleet {
    fn drop(&mut self) {
        self.stop_health();
    }
}

fn zero_serve_stats() -> asdr_serve::ServeStats {
    asdr_serve::ServeStats {
        requests: 0,
        frames: 0,
        reused_frames: 0,
        deadlined_requests: 0,
        deadline_misses: 0,
        p50_latency_ms: 0.0,
        p95_latency_ms: 0.0,
        mean_queue_wait_ms: 0.0,
        throughput_fps: 0.0,
        probe_points: 0,
        probe_points_avoided_est: 0.0,
        store: asdr_serve::StoreStats::default(),
    }
}

fn health_loop(inner: &Arc<FleetInner>) {
    loop {
        if inner.stop.wait_interval(inner.cfg.health_interval) {
            return;
        }
        for s in &inner.shards {
            let probe = s.shard.health(inner.cfg.health_timeout);
            let live = s.live.load(Ordering::SeqCst);
            match probe {
                Ok(_) if live => {
                    s.misses.store(0, Ordering::SeqCst);
                }
                Ok(_) => inner.rejoin(s.id),
                Err(e) if live => {
                    let misses = s.misses.fetch_add(1, Ordering::SeqCst) + 1;
                    if misses >= inner.cfg.health_misses {
                        inner.evict(s.id, &format!("{misses} consecutive health misses ({e})"));
                    }
                }
                Err(_) => {}
            }
        }
    }
}

struct TicketState {
    primary: (usize, RemoteTicket),
    hedge: Option<(usize, RemoteTicket)>,
}

/// A fleet submission's completion handle. [`FleetTicket::wait`] owns the
/// tail-tolerance machinery: hedging after the latency watermark,
/// immediate eviction + resubmission when the serving shard dies, and
/// first-response-wins arbitration between primary and hedge.
pub struct FleetTicket {
    inner: Arc<FleetInner>,
    req: RenderRequest,
    scene: String,
    predicted_ms: f64,
    state: Mutex<TicketState>,
    hedged: AtomicBool,
    served_by: AtomicUsize,
}

/// How long each arbitration poll waits once a hedge is in flight.
const HEDGE_POLL: Duration = Duration::from_millis(25);

/// How long to sleep between failover resubmission attempts while every
/// live shard is full.
const FAILOVER_RETRY: Duration = Duration::from_millis(20);

impl FleetTicket {
    /// The shard that served (or is currently serving) the request.
    pub fn shard(&self) -> usize {
        self.served_by.load(Ordering::SeqCst)
    }

    /// The cost model's predicted service time at submit, milliseconds.
    pub fn predicted_ms(&self) -> f64 {
        self.predicted_ms
    }

    /// Blocks until some shard completes the request.
    ///
    /// # Errors
    ///
    /// Returns a message when the request failed shard-side (render
    /// panic) or no live shard remains to serve it.
    pub fn wait(&self) -> Result<WireResult, String> {
        let wait_t0 = Instant::now();
        loop {
            let (p_shard, p_ticket, hedge) = {
                let st = self.state.lock().unwrap();
                (st.primary.0, st.primary.1.clone(), st.hedge.clone())
            };
            if let Some((h_shard, h_ticket)) = hedge {
                match p_ticket.wait_result(HEDGE_POLL) {
                    Ok(result) => {
                        h_ticket.cancel();
                        self.inner.counters.hedge_cancels.inc();
                        return Ok(self.win(p_shard, result, wait_t0));
                    }
                    Err(RemoteError::Timeout) => {}
                    Err(RemoteError::Render(why)) => {
                        h_ticket.cancel();
                        return Err(why);
                    }
                    Err(e) => {
                        // primary died mid-request: the hedge is already the
                        // replacement — promote it
                        self.inner.evict(p_shard, &e.to_string());
                        self.inner.counters.failovers.inc();
                        asdr_obs::event!(
                            self.req.trace,
                            "failover",
                            format!("from={p_shard} to={h_shard} promoted_hedge=true")
                        );
                        let mut st = self.state.lock().unwrap();
                        st.primary = (h_shard, h_ticket.clone());
                        st.hedge = None;
                        continue;
                    }
                }
                match h_ticket.wait_result(HEDGE_POLL) {
                    Ok(result) => {
                        p_ticket.cancel();
                        self.inner.counters.hedge_wins.inc();
                        self.inner.counters.hedge_cancels.inc();
                        return Ok(self.win(h_shard, result, wait_t0));
                    }
                    Err(RemoteError::Timeout) => {}
                    Err(RemoteError::Render(_)) | Err(RemoteError::Protocol(_)) => {
                        self.state.lock().unwrap().hedge = None;
                    }
                    Err(e) => {
                        self.inner.evict(h_shard, &e.to_string());
                        self.state.lock().unwrap().hedge = None;
                    }
                }
                continue;
            }
            // no hedge yet: wait for the watermark (or in steady slices
            // once hedging is spent/disabled)
            let watermark = match self.inner.cfg.hedge_after {
                Some(after) if !self.hedged.load(Ordering::SeqCst) => after,
                _ => Duration::from_millis(500),
            };
            match p_ticket.wait_result(watermark) {
                Ok(result) => return Ok(self.win(p_shard, result, wait_t0)),
                Err(RemoteError::Render(why)) => return Err(why),
                Err(RemoteError::Timeout) => {
                    if self.inner.cfg.hedge_after.is_some()
                        && !self.hedged.swap(true, Ordering::SeqCst)
                    {
                        self.spawn_hedge(p_shard);
                    }
                }
                Err(e) => {
                    self.inner.evict(p_shard, &e.to_string());
                    self.resubmit()?;
                }
            }
        }
    }

    /// Submits the duplicate to the first other live shard that admits it.
    fn spawn_hedge(&self, primary_shard: usize) {
        for id in self.inner.live_ids() {
            if id == primary_shard {
                continue;
            }
            if let Ok(ticket) =
                self.inner.shards[id].shard.submit(&self.req, self.inner.cfg.admit_timeout)
            {
                self.inner.counters.hedges.inc();
                // the duplicate carries the same trace id, so the merged
                // report sees both shards' server-side spans for this request
                asdr_obs::event!(self.req.trace, "hedge", format!("shard={id}"));
                self.state.lock().unwrap().hedge = Some((id, ticket));
                return;
            }
        }
    }

    /// Replaces a dead primary by routing the request again (the hedge
    /// path handles the has-hedge case). Rendering is deterministic, so
    /// the replacement's frames are byte-identical to what the dead shard
    /// would have produced.
    fn resubmit(&self) -> Result<(), String> {
        loop {
            match self.inner.route(&self.req) {
                Ok((shard, ticket)) => {
                    self.inner.counters.failovers.inc();
                    asdr_obs::event!(self.req.trace, "failover", format!("to={shard}"));
                    self.served_by.store(shard, Ordering::SeqCst);
                    let mut st = self.state.lock().unwrap();
                    st.primary = (shard, ticket);
                    st.hedge = None;
                    return Ok(());
                }
                Err(FleetError::Busy) => std::thread::sleep(FAILOVER_RETRY),
                Err(FleetError::Fatal(why)) => {
                    return Err(format!("request lost its shard and cannot be replaced: {why}"))
                }
            }
        }
    }

    fn win(&self, shard: usize, result: WireResult, wait_t0: Instant) -> WireResult {
        self.served_by.store(shard, Ordering::SeqCst);
        asdr_obs::span!(
            self.req.trace,
            "remote-wait",
            wait_t0,
            Instant::now(),
            format!("shard={shard}")
        );
        let service_ms = (result.latency_us.saturating_sub(result.queue_wait_us)) as f64 / 1e3;
        self.inner.cost.observe(
            &self.scene,
            result.resolution,
            result.images.len().max(1),
            service_ms,
        );
        result
    }
}

impl ReplayTarget for RemoteFleet {
    type Ticket = FleetTicket;

    fn try_submit(&self, req: RenderRequest) -> SubmitOutcome<FleetTicket> {
        match self.submit(req) {
            Ok(t) => SubmitOutcome::Admitted(t),
            Err(FleetError::Busy) => SubmitOutcome::Busy,
            Err(FleetError::Fatal(why)) => SubmitOutcome::Fatal(why),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_with_context() {
        let e = RemoteError::Refused { retryable: true, why: "admission queue full".into() };
        assert!(e.to_string().contains("retryable"));
        assert_eq!(RemoteError::Timeout.to_string(), "timed out");
        assert_eq!(FleetError::Busy.to_string(), "every live shard is full");
        assert_eq!(FleetError::Fatal("x".into()).to_string(), "x");
    }

    #[test]
    fn connecting_to_a_dead_address_is_a_named_error() {
        let addr = ShardAddr::Unix(std::env::temp_dir().join("asdr-no-such-shard.sock"));
        let e = RemoteShard::connect(addr, 1).unwrap_err();
        assert!(matches!(e, RemoteError::Connection(_)), "{e}");
        let Err(e) = RemoteFleet::connect(
            vec![ShardAddr::Unix(std::env::temp_dir().join("asdr-no-such-shard.sock"))],
            RenderProfile::tiny(),
            FleetConfig::default(),
        ) else {
            panic!("connecting a fleet to a dead shard must fail");
        };
        assert!(e.starts_with("shard 0"), "{e}");
        assert!(RemoteFleet::connect(Vec::new(), RenderProfile::tiny(), FleetConfig::default())
            .is_err());
    }

    #[test]
    fn slots_deliver_in_order_and_fail_on_death() {
        let slot = Slot::default();
        {
            let mut st = slot.state.lock().unwrap();
            st.replies.push_back(Message::Submitted { id: 1 });
            st.replies.push_back(Message::Failed { id: 1, why: "x".into() });
        }
        assert_eq!(slot.next(Duration::from_millis(1)).unwrap(), Message::Submitted { id: 1 });
        assert!(matches!(slot.next(Duration::from_millis(1)).unwrap(), Message::Failed { .. }));
        assert_eq!(slot.next(Duration::from_millis(1)).unwrap_err(), RemoteError::Timeout);
        slot.state.lock().unwrap().dead = Some("gone".into());
        assert!(matches!(
            slot.next(Duration::from_millis(1)).unwrap_err(),
            RemoteError::Connection(_)
        ));
    }
}
