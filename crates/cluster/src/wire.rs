//! The fleet wire protocol — a hand-rolled length-prefixed binary codec
//! carrying render requests, tickets, stats polls, and health probes
//! between the router front-end and `asdr-shardd` daemons.
//!
//! Framing is a varint byte length followed by that many payload bytes;
//! the payload is a one-byte message tag plus tag-specific fields in the
//! style of the trace VERSION-1 codec (LEB128 varints, interned flag
//! bits, little-endian float bits — no serde in this environment). Every
//! request-shaped message carries a client-assigned correlation `id` and
//! every response echoes it, so one connection multiplexes any number of
//! in-flight operations and a reader thread can demultiplex replies by id
//! alone.
//!
//! Image payloads in [`Message::Result`] serialize each pixel channel as
//! its **exact** `f32` bit pattern, so a frame rendered on a shard is
//! byte-identical after the round trip — the property the kill-−9
//! acceptance test pins down.
//!
//! Decoding is total: any byte string either decodes or returns a named
//! error (`"wire frame: why"` / `"wire message: why"`); it never panics
//! and never allocates more than the input length, whatever the bytes.

use asdr_math::{Image, Vec3};
use asdr_obs::TraceId;
use asdr_scenes::registry::OrbitCamera;
use asdr_serve::service::{Priority, RenderRequest, RenderResult};
use asdr_serve::trace::format::{MAX_DEADLINE_MS, MAX_FRAMES, MAX_RESOLUTION};
use asdr_serve::{ServeStats, StoreStats};
use std::io::{Read, Write};

/// Wire protocol version, exchanged in [`Message::Hello`].
pub const VERSION: u8 = 1;

/// Largest frame payload a peer will read (a 4096-frame result of
/// 8192² f32 pixels doesn't fit anyway — this bounds a hostile length
/// prefix, not a legitimate message).
pub const MAX_FRAME_BYTES: u64 = 1 << 28;

/// Longest scene name / error string on the wire.
const MAX_STRING: u64 = 4096;

/// Deadline bound, microseconds (the trace codec's millisecond bound).
const MAX_DEADLINE_US: u64 = MAX_DEADLINE_MS * 1000;

/// Appends `v` LEB128-encoded (7 bits per byte, high bit = continue).
fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn push_string(out: &mut Vec<u8>, s: &str) {
    push_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn push_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err("unexpected end of message".into());
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 63 && byte > 1 {
                return Err("varint overflows u64".into());
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn bounded(&mut self, what: &str, max: u64) -> Result<u64, String> {
        let v = self.varint()?;
        if v > max {
            return Err(format!("{what} {v} out of range (max {max})"));
        }
        Ok(v)
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn finite_f32(&mut self, what: &str) -> Result<f32, String> {
        let v = self.f32()?;
        if !v.is_finite() {
            return Err(format!("{what} is not finite"));
        }
        Ok(v)
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        let len = self.bounded(what, MAX_STRING)? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what} is not UTF-8"))
    }

    fn boolean(&mut self, what: &str) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("{what} flag {b} is not 0/1")),
        }
    }
}

fn priority_code(p: Priority) -> u8 {
    match p {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    }
}

fn priority_from(code: u8) -> Result<Priority, String> {
    match code {
        0 => Ok(Priority::Low),
        1 => Ok(Priority::Normal),
        2 => Ok(Priority::High),
        c => Err(format!("unknown priority code {c}")),
    }
}

/// A render request as it travels to a shard: the scene by registry name,
/// scheduling metadata by value. Resolved back into a [`RenderRequest`]
/// on the shard with [`WireRequest::to_request`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Registry scene name.
    pub scene: String,
    /// Square frame resolution.
    pub resolution: u32,
    /// Frames in the request (>= 1).
    pub frames: u64,
    /// Per-frame azimuth advance, degrees.
    pub azimuth_step_deg: f32,
    /// Scheduling class.
    pub priority: Priority,
    /// Latency budget, microseconds from shard-side admission.
    pub deadline_us: Option<u64>,
    /// Viewpoint override (`None`: the scene's standard orbit).
    pub camera: Option<OrbitCamera>,
    /// Distributed trace id, joining client-side and shard-side spans
    /// ([`TraceId::UNSET`]: tracing off — encodes exactly as the
    /// pre-trace protocol did, so old and new peers interoperate).
    pub trace: TraceId,
}

impl WireRequest {
    /// Captures a resolved request for the wire.
    pub fn from_request(req: &RenderRequest) -> WireRequest {
        WireRequest {
            scene: req.scene.name().to_string(),
            resolution: req.resolution,
            frames: req.frames as u64,
            azimuth_step_deg: req.azimuth_step_deg,
            priority: req.priority,
            deadline_us: req.deadline.map(|d| (d.as_micros() as u64).min(MAX_DEADLINE_US)),
            camera: req.camera,
            trace: req.trace,
        }
    }

    /// Resolves the wire form against the shard's scene registry.
    ///
    /// # Errors
    ///
    /// Returns a message if the scene is not registered there.
    pub fn to_request(&self) -> Result<RenderRequest, String> {
        let scene = asdr_scenes::registry::get(&self.scene)
            .ok_or_else(|| format!("unknown scene {:?} on this shard", self.scene))?;
        let mut req = RenderRequest::sequence(scene, self.resolution, self.frames as usize);
        req.azimuth_step_deg = self.azimuth_step_deg;
        req.priority = self.priority;
        req.deadline = self.deadline_us.map(std::time::Duration::from_micros);
        req.camera = self.camera;
        req.trace = self.trace;
        Ok(req)
    }

    fn encode(&self, out: &mut Vec<u8>) {
        push_string(out, &self.scene);
        push_varint(out, u64::from(self.resolution));
        push_varint(out, self.frames);
        push_f32(out, self.azimuth_step_deg);
        let mut flags = priority_code(self.priority) << 2;
        flags |= u8::from(self.deadline_us.is_some());
        flags |= u8::from(self.camera.is_some()) << 1;
        flags |= u8::from(self.trace.is_set()) << 4;
        out.push(flags);
        if let Some(us) = self.deadline_us {
            push_varint(out, us);
        }
        if let Some(cam) = &self.camera {
            for v in [
                cam.azimuth_deg,
                cam.elevation_deg,
                cam.radius,
                cam.fov_deg,
                cam.center.x,
                cam.center.y,
                cam.center.z,
            ] {
                push_f32(out, v);
            }
        }
        if self.trace.is_set() {
            push_varint(out, self.trace.as_u64());
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireRequest, String> {
        let scene = r.string("scene name")?;
        if scene.is_empty() {
            return Err("scene name is empty".into());
        }
        let resolution = r.bounded("resolution", MAX_RESOLUTION)? as u32;
        if resolution == 0 {
            return Err("resolution 0 out of range (min 1)".into());
        }
        let frames = r.bounded("frames", MAX_FRAMES)?;
        if frames == 0 {
            return Err("frames 0 out of range (min 1)".into());
        }
        let azimuth_step_deg = r.finite_f32("azimuth step")?;
        let flags = r.u8()?;
        if flags & !0b11111 != 0 {
            return Err(format!("unknown request flag bits {flags:#x}"));
        }
        let priority = priority_from((flags >> 2) & 0b11)?;
        let deadline_us =
            if flags & 1 != 0 { Some(r.bounded("deadline_us", MAX_DEADLINE_US)?) } else { None };
        let camera = if flags & 2 != 0 {
            let mut v = [0f32; 7];
            for (i, slot) in v.iter_mut().enumerate() {
                *slot = r.finite_f32(&format!("camera field {i}"))?;
            }
            Some(OrbitCamera {
                azimuth_deg: v[0],
                elevation_deg: v[1],
                radius: v[2],
                fov_deg: v[3],
                center: Vec3::new(v[4], v[5], v[6]),
            })
        } else {
            None
        };
        let trace =
            if flags & 0b10000 != 0 { TraceId::from_u64(r.varint()?) } else { TraceId::UNSET };
        Ok(WireRequest {
            scene,
            resolution,
            frames,
            azimuth_step_deg,
            priority,
            deadline_us,
            camera,
            trace,
        })
    }
}

/// A completed request as it travels back: measurements plus the rendered
/// frames with exact pixel bits.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// Scene name.
    pub scene: String,
    /// Resolution rendered at.
    pub resolution: u32,
    /// Frames that reused the request's sample plan.
    pub reused_frames: u64,
    /// Shard-side queue wait, microseconds.
    pub queue_wait_us: u64,
    /// Shard-side admission-to-completion latency, microseconds.
    pub latency_us: u64,
    /// Whether the shard-side latency met the deadline (`None`: none set).
    pub deadline_met: Option<bool>,
    /// Shard-local completion sequence number.
    pub completed_seq: u64,
    /// The rendered frames, in order, bit-exact.
    pub images: Vec<Image>,
    /// The trace id echoed from the originating submit
    /// ([`TraceId::UNSET`]: the request carried none). Encoded by folding
    /// a trace-follows marker into the deadline byte (codes 3–5), so a
    /// trace-free result is byte-identical to the pre-trace protocol.
    pub trace: TraceId,
}

impl WireResult {
    /// Captures a shard-side result for the wire.
    pub fn from_result(r: &RenderResult) -> WireResult {
        WireResult {
            scene: r.scene.clone(),
            resolution: r.resolution,
            reused_frames: r.reused_frames as u64,
            queue_wait_us: r.queue_wait.as_micros() as u64,
            latency_us: r.latency.as_micros() as u64,
            deadline_met: r.deadline_met,
            completed_seq: r.completed_seq,
            images: r.images.clone(),
            trace: r.trace,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        push_string(out, &self.scene);
        push_varint(out, u64::from(self.resolution));
        push_varint(out, self.reused_frames);
        push_varint(out, self.queue_wait_us);
        push_varint(out, self.latency_us);
        let met_code = match self.deadline_met {
            None => 0,
            Some(true) => 1,
            Some(false) => 2,
        };
        // codes 3-5 mean "met code minus 3, and a trace id varint follows
        // after the images" — decoders predating traces reject them by
        // name instead of misreading the payload
        out.push(if self.trace.is_set() { met_code + 3 } else { met_code });
        push_varint(out, self.completed_seq);
        push_varint(out, self.images.len() as u64);
        for img in &self.images {
            push_varint(out, u64::from(img.width()));
            push_varint(out, u64::from(img.height()));
            for px in img.pixels() {
                push_f32(out, px.r);
                push_f32(out, px.g);
                push_f32(out, px.b);
            }
        }
        if self.trace.is_set() {
            push_varint(out, self.trace.as_u64());
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireResult, String> {
        let scene = r.string("scene name")?;
        let resolution = r.bounded("resolution", MAX_RESOLUTION)? as u32;
        let reused_frames = r.bounded("reused frames", MAX_FRAMES)?;
        let queue_wait_us = r.varint()?;
        let latency_us = r.varint()?;
        let code = r.u8()?;
        let (deadline_met, has_trace) = match code {
            0 => (None, false),
            1 => (Some(true), false),
            2 => (Some(false), false),
            3 => (None, true),
            4 => (Some(true), true),
            5 => (Some(false), true),
            c => return Err(format!("unknown deadline code {c}")),
        };
        let completed_seq = r.varint()?;
        let count = r.bounded("image count", MAX_FRAMES)? as usize;
        let mut images = Vec::with_capacity(count.min(64));
        for i in 0..count {
            let w = r.bounded("image width", MAX_RESOLUTION)? as u32;
            let h = r.bounded("image height", MAX_RESOLUTION)? as u32;
            if w == 0 || h == 0 {
                return Err(format!("image {i} has a zero dimension"));
            }
            // bounds-check before allocating pixel storage: the byte count
            // must actually be present in the payload
            let bytes = r.take(w as usize * h as usize * 12)?;
            let mut img = Image::new(w, h);
            for (px, chunk) in img.pixels_mut().iter_mut().zip(bytes.chunks_exact(12)) {
                px.r = f32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes"));
                px.g = f32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
                px.b = f32::from_le_bytes(chunk[8..12].try_into().expect("4 bytes"));
            }
            images.push(img);
        }
        let trace = if has_trace { TraceId::from_u64(r.varint()?) } else { TraceId::UNSET };
        Ok(WireResult {
            scene,
            resolution,
            reused_frames,
            queue_wait_us,
            latency_us,
            deadline_met,
            completed_seq,
            images,
            trace,
        })
    }
}

/// A shard's statistics snapshot on the wire: the full [`ServeStats`]
/// plus the live pool/queue state a router needs for placement.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStats {
    /// Worker-pool target size.
    pub workers: u64,
    /// Requests waiting in the admission queue right now.
    pub queue_len: u64,
    /// The service snapshot.
    pub serve: ServeStats,
}

impl WireStats {
    fn encode(&self, out: &mut Vec<u8>) {
        let s = &self.serve;
        for v in [
            self.workers,
            self.queue_len,
            s.requests,
            s.frames,
            s.reused_frames,
            s.deadlined_requests,
            s.deadline_misses,
            s.probe_points,
        ] {
            push_varint(out, v);
        }
        for v in [
            s.p50_latency_ms,
            s.p95_latency_ms,
            s.mean_queue_wait_ms,
            s.throughput_fps,
            s.probe_points_avoided_est,
        ] {
            push_f64(out, v);
        }
        let st = &s.store;
        for v in [
            st.memory_hits,
            st.disk_hits,
            st.fits,
            st.evictions,
            st.disk_errors,
            st.single_flight_waits,
            st.lock_waits,
            st.lock_steals,
            st.resident as u64,
        ] {
            push_varint(out, v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireStats, String> {
        let mut ints = [0u64; 8];
        for v in &mut ints {
            *v = r.varint()?;
        }
        let mut floats = [0f64; 5];
        for v in &mut floats {
            *v = r.f64()?;
        }
        let mut store_ints = [0u64; 9];
        for v in &mut store_ints {
            *v = r.varint()?;
        }
        Ok(WireStats {
            workers: ints[0],
            queue_len: ints[1],
            serve: ServeStats {
                requests: ints[2],
                frames: ints[3],
                reused_frames: ints[4],
                deadlined_requests: ints[5],
                deadline_misses: ints[6],
                probe_points: ints[7],
                p50_latency_ms: floats[0],
                p95_latency_ms: floats[1],
                mean_queue_wait_ms: floats[2],
                throughput_fps: floats[3],
                probe_points_avoided_est: floats[4],
                store: StoreStats {
                    memory_hits: store_ints[0],
                    disk_hits: store_ints[1],
                    fits: store_ints[2],
                    evictions: store_ints[3],
                    disk_errors: store_ints[4],
                    single_flight_waits: store_ints[5],
                    lock_waits: store_ints[6],
                    lock_steals: store_ints[7],
                    resident: store_ints[8] as usize,
                },
            },
        })
    }
}

/// Every message the fleet protocol speaks. Requests carry a
/// client-assigned correlation `id`; responses echo it.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// First frame on every connection, client → shard.
    Hello {
        /// The client's protocol version; the shard refuses a mismatch.
        version: u8,
    },
    /// The shard's handshake acknowledgement.
    HelloOk {
        /// The shard's self-reported id (for logs; the ring keys on the
        /// router's own numbering).
        shard: u64,
    },
    /// Admit one render request.
    Submit {
        /// Correlation id.
        id: u64,
        /// The request.
        req: WireRequest,
    },
    /// The request was admitted; a [`Message::Result`] (or
    /// [`Message::Failed`]) with the same id follows eventually.
    Submitted {
        /// Correlation id.
        id: u64,
    },
    /// The request was not admitted.
    Refused {
        /// Correlation id.
        id: u64,
        /// `true` for momentary overload (queue full — retry after a
        /// poll), `false` for never-admissible requests.
        retryable: bool,
        /// The shard-side error message.
        why: String,
    },
    /// A completed request's result.
    Result {
        /// Correlation id of the originating submit.
        id: u64,
        /// The measurements and bit-exact frames.
        result: WireResult,
    },
    /// A submitted request failed shard-side (render panic).
    Failed {
        /// Correlation id of the originating submit.
        id: u64,
        /// The shard-side error message.
        why: String,
    },
    /// Stop shipping the response for `id` (a hedge lost the race). The
    /// render may still complete shard-side; only the reply is dropped.
    Cancel {
        /// Correlation id of the submit to cancel.
        id: u64,
    },
    /// Request a statistics snapshot.
    StatsPoll {
        /// Correlation id.
        id: u64,
    },
    /// The statistics snapshot.
    Stats {
        /// Correlation id.
        id: u64,
        /// The snapshot.
        stats: WireStats,
    },
    /// Liveness probe.
    Health {
        /// Correlation id (doubles as the probe nonce).
        id: u64,
    },
    /// Liveness acknowledgement.
    HealthOk {
        /// Correlation id of the probe.
        id: u64,
        /// Queue depth at probe time.
        queue_len: u64,
        /// Whether the shard is draining (stops admitting soon).
        draining: bool,
    },
    /// Pre-fetch a scene's model from the checkpoint directory (ring
    /// re-warm before remapped traffic lands).
    Prewarm {
        /// Correlation id.
        id: u64,
        /// Registry scene name.
        scene: String,
    },
    /// The pre-fetch finished.
    Warmed {
        /// Correlation id of the prewarm.
        id: u64,
        /// Whether the model was loaded/fit (`false`: unknown scene).
        ok: bool,
    },
    /// Ask the shard to drain: finish in-flight work, then exit.
    Drain {
        /// Correlation id.
        id: u64,
    },
    /// The shard acknowledged the drain and stops accepting connections.
    Draining {
        /// Correlation id of the drain request.
        id: u64,
    },
}

impl Message {
    /// The correlation id, for reply demultiplexing (`None` for the
    /// handshake pair).
    pub fn id(&self) -> Option<u64> {
        match self {
            Message::Hello { .. } | Message::HelloOk { .. } => None,
            Message::Submit { id, .. }
            | Message::Submitted { id }
            | Message::Refused { id, .. }
            | Message::Result { id, .. }
            | Message::Failed { id, .. }
            | Message::Cancel { id }
            | Message::StatsPoll { id }
            | Message::Stats { id, .. }
            | Message::Health { id }
            | Message::HealthOk { id, .. }
            | Message::Prewarm { id, .. }
            | Message::Warmed { id, .. }
            | Message::Drain { id }
            | Message::Draining { id } => Some(*id),
        }
    }

    /// Serializes the message payload (tag + fields, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Hello { version } => {
                out.push(0);
                out.push(*version);
            }
            Message::HelloOk { shard } => {
                out.push(1);
                push_varint(&mut out, *shard);
            }
            Message::Submit { id, req } => {
                out.push(2);
                push_varint(&mut out, *id);
                req.encode(&mut out);
            }
            Message::Submitted { id } => {
                out.push(3);
                push_varint(&mut out, *id);
            }
            Message::Refused { id, retryable, why } => {
                out.push(4);
                push_varint(&mut out, *id);
                out.push(u8::from(*retryable));
                push_string(&mut out, why);
            }
            Message::Result { id, result } => {
                out.push(5);
                push_varint(&mut out, *id);
                result.encode(&mut out);
            }
            Message::Failed { id, why } => {
                out.push(6);
                push_varint(&mut out, *id);
                push_string(&mut out, why);
            }
            Message::Cancel { id } => {
                out.push(7);
                push_varint(&mut out, *id);
            }
            Message::StatsPoll { id } => {
                out.push(8);
                push_varint(&mut out, *id);
            }
            Message::Stats { id, stats } => {
                out.push(9);
                push_varint(&mut out, *id);
                stats.encode(&mut out);
            }
            Message::Health { id } => {
                out.push(10);
                push_varint(&mut out, *id);
            }
            Message::HealthOk { id, queue_len, draining } => {
                out.push(11);
                push_varint(&mut out, *id);
                push_varint(&mut out, *queue_len);
                out.push(u8::from(*draining));
            }
            Message::Prewarm { id, scene } => {
                out.push(12);
                push_varint(&mut out, *id);
                push_string(&mut out, scene);
            }
            Message::Warmed { id, ok } => {
                out.push(13);
                push_varint(&mut out, *id);
                out.push(u8::from(*ok));
            }
            Message::Drain { id } => {
                out.push(14);
                push_varint(&mut out, *id);
            }
            Message::Draining { id } => {
                out.push(15);
                push_varint(&mut out, *id);
            }
        }
        out
    }

    /// Decodes one message payload.
    ///
    /// # Errors
    ///
    /// Returns `"wire message: why"` for truncated, corrupt, or
    /// trailing-byte payloads — decoding never panics, whatever the bytes.
    pub fn decode(bytes: &[u8]) -> Result<Message, String> {
        let ctx = |e: String| format!("wire message: {e}");
        let mut r = Reader { bytes, pos: 0 };
        let tag = r.u8().map_err(ctx)?;
        let msg = (|| -> Result<Message, String> {
            Ok(match tag {
                0 => Message::Hello { version: r.u8()? },
                1 => Message::HelloOk { shard: r.varint()? },
                2 => {
                    let id = r.varint()?;
                    Message::Submit { id, req: WireRequest::decode(&mut r)? }
                }
                3 => Message::Submitted { id: r.varint()? },
                4 => {
                    let id = r.varint()?;
                    let retryable = r.boolean("retryable")?;
                    Message::Refused { id, retryable, why: r.string("refusal message")? }
                }
                5 => {
                    let id = r.varint()?;
                    Message::Result { id, result: WireResult::decode(&mut r)? }
                }
                6 => {
                    let id = r.varint()?;
                    Message::Failed { id, why: r.string("failure message")? }
                }
                7 => Message::Cancel { id: r.varint()? },
                8 => Message::StatsPoll { id: r.varint()? },
                9 => {
                    let id = r.varint()?;
                    Message::Stats { id, stats: WireStats::decode(&mut r)? }
                }
                10 => Message::Health { id: r.varint()? },
                11 => {
                    let id = r.varint()?;
                    let queue_len = r.varint()?;
                    Message::HealthOk { id, queue_len, draining: r.boolean("draining")? }
                }
                12 => {
                    let id = r.varint()?;
                    Message::Prewarm { id, scene: r.string("scene name")? }
                }
                13 => {
                    let id = r.varint()?;
                    Message::Warmed { id, ok: r.boolean("warmed")? }
                }
                14 => Message::Drain { id: r.varint()? },
                15 => Message::Draining { id: r.varint()? },
                t => return Err(format!("unknown message tag {t}")),
            })
        })()
        .map_err(ctx)?;
        if r.pos != bytes.len() {
            return Err(ctx(format!("{} trailing bytes after message", bytes.len() - r.pos)));
        }
        Ok(msg)
    }
}

/// Writes one framed message (varint length prefix + payload) and flushes.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let payload = msg.encode();
    let mut head = Vec::with_capacity(10);
    push_varint(&mut head, payload.len() as u64);
    w.write_all(&head)?;
    w.write_all(&payload)?;
    w.flush()
}

/// Reads one framed message. `Ok(None)` is a clean end-of-stream (EOF
/// exactly at a frame boundary); EOF mid-frame is an error.
///
/// # Errors
///
/// Returns `"wire frame: why"` for I/O errors, truncation, an oversized
/// length prefix, or an undecodable payload.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Message>, String> {
    let ctx = |e: String| format!("wire frame: {e}");
    // the length prefix is read byte-by-byte so a clean EOF before any
    // byte means "peer closed", not "corrupt frame"
    let mut len = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) if shift == 0 => return Ok(None),
            Ok(0) => return Err(ctx("unexpected end of stream in length prefix".into())),
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ctx(e.to_string())),
        }
        if shift >= 63 && byte[0] > 1 {
            return Err(ctx("length prefix overflows u64".into()));
        }
        len |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    if len > MAX_FRAME_BYTES {
        return Err(ctx(format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES} limit")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| ctx(e.to_string()))?;
    Message::decode(&payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdr_math::Rgb;

    fn sample_image(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h);
        for (i, px) in img.pixels_mut().iter_mut().enumerate() {
            *px = Rgb { r: i as f32 * 0.25, g: -1.5, b: f32::MIN_POSITIVE };
        }
        img
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello { version: VERSION },
            Message::HelloOk { shard: 2 },
            Message::Submit {
                id: 7,
                req: WireRequest {
                    scene: "Mic".into(),
                    resolution: 32,
                    frames: 3,
                    azimuth_step_deg: 1.5,
                    priority: Priority::High,
                    deadline_us: Some(250_000),
                    camera: Some(OrbitCamera::default()),
                    trace: TraceId::from_u64(0xdead_beef_cafe_f00d),
                },
            },
            Message::Submitted { id: 7 },
            Message::Refused { id: 8, retryable: true, why: "admission queue full".into() },
            Message::Result {
                id: 7,
                result: WireResult {
                    scene: "Mic".into(),
                    resolution: 2,
                    reused_frames: 2,
                    queue_wait_us: 120,
                    latency_us: 4800,
                    deadline_met: Some(true),
                    completed_seq: 41,
                    images: vec![sample_image(2, 2), sample_image(2, 2)],
                    trace: TraceId::from_u64(0xdead_beef_cafe_f00d),
                },
            },
            Message::Failed { id: 9, why: "render failed: boom".into() },
            Message::Cancel { id: 7 },
            Message::StatsPoll { id: 10 },
            Message::Stats {
                id: 10,
                stats: WireStats {
                    workers: 2,
                    queue_len: 1,
                    serve: ServeStats {
                        requests: 5,
                        frames: 9,
                        reused_frames: 4,
                        deadlined_requests: 3,
                        deadline_misses: 1,
                        p50_latency_ms: 10.5,
                        p95_latency_ms: 31.25,
                        mean_queue_wait_ms: 0.5,
                        throughput_fps: 12.0,
                        probe_points: 1000,
                        probe_points_avoided_est: 400.0,
                        store: StoreStats { fits: 2, disk_hits: 1, ..StoreStats::default() },
                    },
                },
            },
            Message::Health { id: 11 },
            Message::HealthOk { id: 11, queue_len: 0, draining: false },
            Message::Prewarm { id: 12, scene: "Lego".into() },
            Message::Warmed { id: 12, ok: true },
            Message::Drain { id: 13 },
            Message::Draining { id: 13 },
        ]
    }

    #[test]
    fn every_message_kind_round_trips() {
        for msg in sample_messages() {
            let back = Message::decode(&msg.encode()).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn result_pixels_keep_exact_bits() {
        let msg = Message::Result {
            id: 1,
            result: WireResult {
                scene: "Mic".into(),
                resolution: 1,
                reused_frames: 0,
                queue_wait_us: 0,
                latency_us: 1,
                deadline_met: None,
                completed_seq: 0,
                images: vec![sample_image(1, 1)],
                trace: TraceId::UNSET,
            },
        };
        let Message::Result { result, .. } = Message::decode(&msg.encode()).unwrap() else {
            panic!("decoded to a different kind");
        };
        let px = result.images[0].pixels()[0];
        assert_eq!(px.r.to_bits(), 0.0f32.to_bits());
        assert_eq!(px.g.to_bits(), (-1.5f32).to_bits());
        assert_eq!(px.b.to_bits(), f32::MIN_POSITIVE.to_bits());
    }

    #[test]
    fn framing_round_trips_a_stream_and_ends_cleanly() {
        let mut buf = Vec::new();
        for msg in sample_messages() {
            write_frame(&mut buf, &msg).unwrap();
        }
        let mut cursor = &buf[..];
        let mut back = Vec::new();
        while let Some(msg) = read_frame(&mut cursor).unwrap() {
            back.push(msg);
        }
        assert_eq!(back, sample_messages());
    }

    #[test]
    fn truncated_frames_and_payloads_are_named_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample_messages()[2]).unwrap();
        for cut in 1..buf.len() {
            let e = read_frame(&mut &buf[..cut]).map(|m| format!("{m:?}")).unwrap_err();
            assert!(
                e.starts_with("wire frame: ") || e.starts_with("wire message: "),
                "cut {cut}: {e}"
            );
        }
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        push_varint(&mut buf, MAX_FRAME_BYTES + 1);
        let e = read_frame(&mut &buf[..]).unwrap_err();
        assert!(e.contains("exceeds"), "{e}");
        let overflow = [0xffu8; 10];
        let e = read_frame(&mut &overflow[..]).unwrap_err();
        assert!(e.contains("overflows"), "{e}");
    }

    #[test]
    fn bad_payload_fields_are_named_errors() {
        // unknown tag
        assert!(Message::decode(&[200]).unwrap_err().contains("unknown message tag"));
        // trailing bytes
        let mut bytes = Message::Cancel { id: 1 }.encode();
        bytes.push(0);
        assert!(Message::decode(&bytes).unwrap_err().contains("trailing"));
        // zero frames
        let mut out = vec![2u8];
        push_varint(&mut out, 1);
        push_string(&mut out, "Mic");
        push_varint(&mut out, 32); // resolution
        push_varint(&mut out, 0); // frames
        push_f32(&mut out, 0.0);
        out.push(0);
        assert!(Message::decode(&out).unwrap_err().contains("frames 0"));
        // bad priority code
        let mut out = vec![2u8];
        push_varint(&mut out, 1);
        push_string(&mut out, "Mic");
        push_varint(&mut out, 32);
        push_varint(&mut out, 1);
        push_f32(&mut out, 0.0);
        out.push(0b1100); // priority code 3
        assert!(Message::decode(&out).unwrap_err().contains("priority"));
    }

    #[test]
    fn trace_free_messages_match_the_pre_trace_encoding() {
        // a request/result with no trace must encode byte-identically to
        // the protocol before trace ids existed: flag bit 4 clear,
        // deadline codes 0-2, no trailing varint — so old peers decode it
        let req = WireRequest {
            scene: "Mic".into(),
            resolution: 8,
            frames: 1,
            azimuth_step_deg: 0.0,
            priority: Priority::Normal,
            deadline_us: None,
            camera: None,
            trace: TraceId::UNSET,
        };
        let mut bytes = Vec::new();
        req.encode(&mut bytes);
        // scene(1+3) + resolution(1) + frames(1) + azimuth(4) + flags(1)
        assert_eq!(bytes.len(), 11);
        assert_eq!(bytes[10] & 0b10000, 0, "trace flag set on a trace-free request");
        let back = WireRequest::decode(&mut Reader { bytes: &bytes, pos: 0 }).unwrap();
        assert_eq!(back, req);

        let res = WireResult {
            scene: "Mic".into(),
            resolution: 1,
            reused_frames: 0,
            queue_wait_us: 0,
            latency_us: 1,
            deadline_met: Some(false),
            completed_seq: 0,
            images: Vec::new(),
            trace: TraceId::UNSET,
        };
        let mut bytes = Vec::new();
        res.encode(&mut bytes);
        assert_eq!(*bytes.last().unwrap(), 0, "expected empty image count last");
        assert_eq!(bytes[bytes.len() - 3], 2, "deadline byte should stay a bare code 2");
        let back = WireResult::decode(&mut Reader { bytes: &bytes, pos: 0 }).unwrap();
        assert_eq!(back, res);
    }

    #[test]
    fn trace_ids_survive_both_wire_directions() {
        let trace = TraceId::from_u64(0x0123_4567_89ab_cdef);
        let req = WireRequest {
            scene: "Mic".into(),
            resolution: 8,
            frames: 1,
            azimuth_step_deg: 0.0,
            priority: Priority::Normal,
            deadline_us: None,
            camera: None,
            trace,
        };
        let mut bytes = Vec::new();
        req.encode(&mut bytes);
        let back = WireRequest::decode(&mut Reader { bytes: &bytes, pos: 0 }).unwrap();
        assert_eq!(back.trace, trace);
        // and through request resolution on the shard side
        assert_eq!(back.to_request().unwrap().trace, trace);

        let res = WireResult {
            scene: "Mic".into(),
            resolution: 1,
            reused_frames: 0,
            queue_wait_us: 0,
            latency_us: 1,
            deadline_met: None,
            completed_seq: 0,
            images: vec![sample_image(1, 1)],
            trace,
        };
        let mut bytes = Vec::new();
        res.encode(&mut bytes);
        let back = WireResult::decode(&mut Reader { bytes: &bytes, pos: 0 }).unwrap();
        assert_eq!(back.trace, trace);
        assert_eq!(back.deadline_met, None);
    }

    #[test]
    fn requests_survive_the_wire_and_resolve_against_the_registry() {
        let req = RenderRequest::sequence(asdr_scenes::registry::handle("Mic"), 24, 2)
            .with_priority(Priority::Low)
            .with_deadline(std::time::Duration::from_millis(40))
            .with_camera(OrbitCamera { azimuth_deg: 99.0, ..OrbitCamera::default() });
        let wire = WireRequest::from_request(&req);
        let back = wire.to_request().unwrap();
        assert_eq!(back.scene.name(), "Mic");
        assert_eq!(back.resolution, 24);
        assert_eq!(back.frames, 2);
        assert_eq!(back.priority, Priority::Low);
        assert_eq!(back.deadline, Some(std::time::Duration::from_millis(40)));
        assert_eq!(back.camera.unwrap().azimuth_deg, 99.0);
        let missing = WireRequest { scene: "no-such-scene".into(), ..wire };
        assert!(missing.to_request().is_err());
    }
}
