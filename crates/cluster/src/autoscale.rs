//! The autoscaling control loop: worker counts chase deadline-miss rate.
//!
//! Each shard gets a [`ShardController`] fed one tick per sampling
//! interval with the shard's *cumulative* deadline counters; the
//! controller differences them into a per-window miss rate and decides:
//!
//! * predicted backlog above [`AutoscalerConfig::forecast_grow_ms`] per
//!   worker → one more worker **before** any deadline is missed (the
//!   predictive path: the cost model's outstanding-predicted-ms is a
//!   forecast of the queue the reactive path would only see as misses one
//!   or two windows later);
//! * rate above [`AutoscalerConfig::grow_above`] → one more worker (up to
//!   `workers_max`);
//! * rate below [`AutoscalerConfig::shrink_below`] with deadlined traffic
//!   in the window, or a **genuinely idle** window (no completions *and*
//!   no admitted work in flight), → one fewer (down to `workers_min`);
//! * anything between the watermarks — or an empty window while requests
//!   are still in flight, which carries no information — → hold.
//!
//! Flap resistance is two-fold: the watermark **gap** means a shard
//! hovering near one threshold cannot oscillate across both, and every
//! scale step starts a **cooldown** of
//! [`AutoscalerConfig::cooldown_intervals`] ticks during which the
//! controller only accumulates counters. The decision logic is a pure
//! function of the fed counters (no clocks, no threads), so the unit
//! tests below pin grow/shrink/hysteresis deterministically; the live
//! loop in [`crate::router`] merely feeds it real [`ServeStats`] and
//! applies the verdicts via `RenderService::set_workers`.
//!
//! [`ServeStats`]: asdr_serve::ServeStats

use std::time::Duration;

/// Bounds and cadence of the control loop.
#[derive(Debug, Clone)]
pub struct AutoscalerConfig {
    /// Lower worker bound per shard (also each shard's starting size).
    pub workers_min: usize,
    /// Upper worker bound per shard.
    pub workers_max: usize,
    /// Sampling period of the control loop.
    pub interval: Duration,
    /// Grow when the window miss rate exceeds this.
    pub grow_above: f64,
    /// Shrink when the window miss rate (with traffic) falls below this.
    pub shrink_below: f64,
    /// Ticks to hold after any scale step (hysteresis).
    pub cooldown_intervals: u32,
    /// Grow when the predicted outstanding work **per worker** exceeds
    /// this many milliseconds, even with zero misses so far (the
    /// predictive path). `f64::INFINITY` disables forecast growth.
    pub forecast_grow_ms: f64,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            workers_min: 1,
            workers_max: 4,
            interval: Duration::from_millis(200),
            grow_above: 0.10,
            shrink_below: 0.02,
            cooldown_intervals: 2,
            forecast_grow_ms: 250.0,
        }
    }
}

impl AutoscalerConfig {
    /// Checks the bounds and watermarks are coherent.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers_min == 0 {
            return Err("workers_min must be >= 1".into());
        }
        if self.workers_max < self.workers_min {
            return Err(format!(
                "workers_max ({}) must be >= workers_min ({})",
                self.workers_max, self.workers_min
            ));
        }
        if self.grow_above <= self.shrink_below {
            return Err(format!(
                "grow_above ({}) must exceed shrink_below ({}) — the gap is the hysteresis",
                self.grow_above, self.shrink_below
            ));
        }
        if self.interval.is_zero() {
            return Err("interval must be non-zero".into());
        }
        if self.forecast_grow_ms <= 0.0 || self.forecast_grow_ms.is_nan() {
            return Err("forecast_grow_ms must be positive (INFINITY disables forecasting)".into());
        }
        Ok(())
    }
}

/// Which signal drove a scaling step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleReason {
    /// Reactive: the window's deadline-miss rate crossed `grow_above`.
    Miss,
    /// Predictive: forecast backlog per worker crossed `forecast_grow_ms`
    /// before any miss materialized.
    Forecast,
    /// Quiet or idle traffic drifted the pool back down.
    Shrink,
}

impl ScaleReason {
    /// The stable lowercase spelling used in the JSON artifact.
    pub fn as_str(self) -> &'static str {
        match self {
            ScaleReason::Miss => "miss",
            ScaleReason::Forecast => "forecast",
            ScaleReason::Shrink => "shrink",
        }
    }
}

/// One scaling decision, as recorded in `ClusterStats`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleEvent {
    /// Milliseconds since the cluster started.
    pub at_ms: u64,
    /// Which shard scaled.
    pub shard: usize,
    /// Worker target before.
    pub from: usize,
    /// Worker target after.
    pub to: usize,
    /// The window miss rate that triggered the step.
    pub miss_rate: f64,
    /// Which signal drove the step.
    pub reason: ScaleReason,
}

/// What one tick decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// The new worker target.
    pub target: usize,
    /// The window miss rate behind the decision.
    pub miss_rate: f64,
    /// Which signal drove the decision.
    pub reason: ScaleReason,
}

/// Per-shard controller state between ticks (see the module docs).
#[derive(Debug)]
pub struct ShardController {
    workers: usize,
    cooldown: u32,
    seen_deadlined: u64,
    seen_misses: u64,
}

impl ShardController {
    /// A controller for a shard currently running `workers` workers.
    pub fn new(workers: usize) -> Self {
        ShardController { workers, cooldown: 0, seen_deadlined: 0, seen_misses: 0 }
    }

    /// The worker target this controller last decided.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Feeds one sampling tick with the shard's **cumulative** deadline
    /// counters, whether the shard still has admitted work in flight, and
    /// the cost model's predicted outstanding work (`forecast_ms`);
    /// returns a verdict when the controller scales. An empty window on a
    /// busy shard (renders running, nothing completed yet) carries no
    /// information and holds — without that, every long render would read
    /// as "idle" and flap the pool mid-burst. The forecast bypasses that
    /// hold: a deep predicted backlog *is* information, and acting on it
    /// grows the pool before the first deadline miss instead of one
    /// window after.
    pub fn tick(
        &mut self,
        cfg: &AutoscalerConfig,
        deadlined: u64,
        misses: u64,
        busy: bool,
        forecast_ms: f64,
    ) -> Option<Verdict> {
        let window_deadlined = deadlined.saturating_sub(self.seen_deadlined);
        let window_misses = misses.saturating_sub(self.seen_misses);
        self.seen_deadlined = deadlined;
        self.seen_misses = misses;
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        let rate = if window_deadlined == 0 {
            0.0
        } else {
            window_misses as f64 / window_deadlined as f64
        };
        // predictive path first: backlog per worker over the threshold
        // grows even in a window with zero completions and zero misses
        if forecast_ms > cfg.forecast_grow_ms * self.workers as f64
            && self.workers < cfg.workers_max
        {
            self.workers += 1;
            self.cooldown = cfg.cooldown_intervals;
            return Some(Verdict {
                target: self.workers,
                miss_rate: rate,
                reason: ScaleReason::Forecast,
            });
        }
        if window_deadlined == 0 && busy {
            return None;
        }
        // a genuinely idle window reads as rate 0: quiet shards drift back
        // to min
        let (target, reason) = if rate > cfg.grow_above && self.workers < cfg.workers_max {
            (self.workers + 1, ScaleReason::Miss)
        } else if rate < cfg.shrink_below && self.workers > cfg.workers_min {
            (self.workers - 1, ScaleReason::Shrink)
        } else {
            return None;
        };
        self.workers = target;
        self.cooldown = cfg.cooldown_intervals;
        Some(Verdict { target, miss_rate: rate, reason })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscalerConfig {
        AutoscalerConfig { workers_min: 1, workers_max: 4, ..AutoscalerConfig::default() }
    }

    #[test]
    fn config_validates_bounds_and_watermarks() {
        assert!(cfg().validate().is_ok());
        assert!(AutoscalerConfig { workers_min: 0, ..cfg() }.validate().is_err());
        assert!(AutoscalerConfig { workers_max: 0, workers_min: 1, ..cfg() }.validate().is_err());
        assert!(AutoscalerConfig { grow_above: 0.01, shrink_below: 0.05, ..cfg() }
            .validate()
            .is_err());
        assert!(AutoscalerConfig { interval: Duration::ZERO, ..cfg() }.validate().is_err());
        assert!(AutoscalerConfig { forecast_grow_ms: 0.0, ..cfg() }.validate().is_err());
        assert!(AutoscalerConfig { forecast_grow_ms: -1.0, ..cfg() }.validate().is_err());
        assert!(AutoscalerConfig { forecast_grow_ms: f64::INFINITY, ..cfg() }.validate().is_ok());
    }

    #[test]
    fn misses_grow_the_pool_up_to_the_bound() {
        let cfg = AutoscalerConfig { cooldown_intervals: 0, ..cfg() };
        let mut c = ShardController::new(1);
        // 50% window miss rate, fed as cumulative counters
        let v = c.tick(&cfg, 10, 5, true, 0.0).expect("must grow");
        assert_eq!((v.target, c.workers()), (2, 2));
        assert!((v.miss_rate - 0.5).abs() < 1e-12);
        assert_eq!(v.reason, ScaleReason::Miss);
        c.tick(&cfg, 20, 10, true, 0.0).expect("grows again");
        c.tick(&cfg, 30, 15, true, 0.0).expect("grows to the bound");
        assert_eq!(c.workers(), 4);
        assert!(c.tick(&cfg, 40, 20, true, 0.0).is_none(), "never exceeds workers_max");
    }

    #[test]
    fn quiet_traffic_shrinks_back_to_min() {
        let cfg = AutoscalerConfig { cooldown_intervals: 0, ..cfg() };
        let mut c = ShardController::new(3);
        // deadlined traffic, zero misses
        let v = c.tick(&cfg, 10, 0, true, 0.0).expect("shrink");
        assert_eq!((v.target, v.reason), (2, ScaleReason::Shrink));
        // a genuinely idle window shrinks too
        assert_eq!(c.tick(&cfg, 10, 0, false, 0.0).expect("shrink").target, 1);
        assert!(c.tick(&cfg, 10, 0, false, 0.0).is_none(), "never goes below workers_min");
    }

    #[test]
    fn busy_empty_windows_hold_instead_of_flapping() {
        // requests in flight, none completed this window: no information,
        // the pool must hold — otherwise every long render shrinks it
        let cfg = AutoscalerConfig { cooldown_intervals: 0, ..cfg() };
        let mut c = ShardController::new(2);
        c.tick(&cfg, 10, 5, true, 0.0).expect("the overloaded window grows");
        assert_eq!(c.workers(), 3);
        // same cumulative counters, still busy: empty windows, hold
        for _ in 0..10 {
            assert!(c.tick(&cfg, 10, 5, true, 0.0).is_none(), "busy empty window must hold");
        }
        assert_eq!(c.workers(), 3);
        // the moment the shard is genuinely idle, it shrinks
        assert_eq!(c.tick(&cfg, 10, 5, false, 0.0).expect("idle shrinks").target, 2);
    }

    #[test]
    fn cooldown_and_watermark_gap_stop_flapping() {
        let cfg = AutoscalerConfig { cooldown_intervals: 2, ..cfg() };
        let mut c = ShardController::new(1);
        assert!(c.tick(&cfg, 4, 4, true, 0.0).is_some(), "first overload grows");
        // two cooldown ticks ignore even a 100% miss window
        assert!(c.tick(&cfg, 8, 8, true, 0.0).is_none());
        assert!(c.tick(&cfg, 12, 12, true, 0.0).is_none());
        assert!(c.tick(&cfg, 16, 16, true, 0.0).is_some(), "cooldown over, grows again");
        assert_eq!(c.workers(), 3);
        // a rate inside the watermark gap holds forever (no oscillation)
        let mut c = ShardController::new(2);
        let cfg = AutoscalerConfig { cooldown_intervals: 0, ..cfg };
        for i in 1..=10u64 {
            // 5% misses: above shrink_below (2%), below grow_above (10%)
            assert!(c.tick(&cfg, 100 * i, 5 * i, true, 0.0).is_none(), "gap must hold");
        }
        assert_eq!(c.workers(), 2);
    }

    #[test]
    fn forecast_grows_before_the_first_miss() {
        // the predictive path: a deep predicted backlog grows the pool in
        // a window with zero deadlined requests and zero misses — the
        // reactive path (same counters, no forecast) would hold
        let cfg = AutoscalerConfig { cooldown_intervals: 0, forecast_grow_ms: 250.0, ..cfg() };
        let mut reactive = ShardController::new(1);
        assert!(
            reactive.tick(&cfg, 0, 0, true, 0.0).is_none(),
            "no misses and no forecast: the reactive path holds"
        );
        let mut predictive = ShardController::new(1);
        let v = predictive.tick(&cfg, 0, 0, true, 600.0).expect("forecast must grow");
        assert_eq!((v.target, v.reason, v.miss_rate), (2, ScaleReason::Forecast, 0.0));
        // the threshold is per worker: 2 workers now absorb that backlog
        assert!(predictive.tick(&cfg, 0, 0, true, 480.0).is_none(), "480 <= 250*2 holds");
        let v = predictive.tick(&cfg, 0, 0, true, 900.0).expect("900 > 250*2 grows");
        assert_eq!(v.target, 3);
    }

    #[test]
    fn forecast_growth_respects_cooldown_bound_and_disable() {
        let base = AutoscalerConfig { cooldown_intervals: 1, forecast_grow_ms: 100.0, ..cfg() };
        let mut c = ShardController::new(1);
        assert!(c.tick(&base, 0, 0, true, 1e6).is_some(), "first forecast grows");
        assert!(c.tick(&base, 0, 0, true, 1e6).is_none(), "cooldown holds the next tick");
        assert!(c.tick(&base, 0, 0, true, 1e6).is_some(), "then grows again");
        assert!(c.tick(&base, 0, 0, true, 1e6).is_none(), "cooldown");
        assert!(c.tick(&base, 0, 0, true, 1e6).is_some(), "grows to workers_max");
        assert_eq!(c.workers(), base.workers_max);
        assert!(c.tick(&base, 0, 0, true, 1e6).is_none(), "cooldown");
        assert!(c.tick(&base, 0, 0, true, 1e6).is_none(), "never exceeds workers_max");
        // INFINITY disables the predictive path outright
        let off = AutoscalerConfig { forecast_grow_ms: f64::INFINITY, ..base };
        let mut c = ShardController::new(1);
        assert!(c.tick(&off, 0, 0, true, 1e12).is_none(), "disabled forecast never grows");
    }

    #[test]
    fn counters_are_differenced_not_accumulated() {
        let cfg = AutoscalerConfig { cooldown_intervals: 0, ..cfg() };
        let mut c = ShardController::new(1);
        assert_eq!(c.tick(&cfg, 100, 100, true, 0.0).expect("overload grows").target, 2);
        // the same cumulative counters again on an idle shard: the old
        // misses must not leak in — a clean window reads rate 0 and shrinks
        let v = c.tick(&cfg, 100, 100, false, 0.0).expect("clean window shrinks");
        assert_eq!(v.target, 1);
        assert_eq!(v.miss_rate, 0.0);
    }
}
