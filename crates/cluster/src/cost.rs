//! The online render-cost model behind cost-based admission.
//!
//! Count-based admission (PR 4's bounded queue) treats a 16×16 single
//! frame and a 96×96 six-frame orbit as the same unit of work. The
//! [`CostModel`] instead predicts each request's service time in
//! milliseconds, keyed by **(scene name, resolution)**:
//!
//! * **Seeding.** An unseen key is predicted from its nominal probe-point
//!   count — `resolution² rays × base_ns samples` at a calibrated
//!   nanoseconds-per-sample constant — so admission has a sane relative
//!   ordering (bigger frames cost more) before any request completes.
//! * **Learning.** Every completion feeds the observed per-frame service
//!   time (latency minus queue wait) into an exponentially-weighted moving
//!   average for its key, so the model tracks the real machine, warm
//!   caches, and scene-specific sampling behavior.
//! * **Honesty.** Each observation first scores the *current* prediction
//!   against the actual; [`CostStats::mean_abs_pct_error`] reports the
//!   running mean absolute percentage error, the number `ClusterStats`
//!   surfaces as predicted-vs-actual.

use asdr_serve::RenderProfile;
use std::collections::HashMap;
use std::sync::Mutex;

/// EWMA smoothing factor: heavy enough to converge in a few observations,
/// light enough not to chase one noisy outlier.
const ALPHA: f64 = 0.3;

/// Seed calibration: nanoseconds per nominal probe sample (a full-budget
/// ray sample at tiny scale costs on the order of a microsecond in this
/// reproduction; adaptive sampling renders fewer, the EWMA corrects).
const SEED_NS_PER_SAMPLE: f64 = 1_500.0;

/// One key's running estimate.
#[derive(Debug, Clone, Copy)]
struct Ewma {
    per_frame_ms: f64,
    samples: u64,
}

#[derive(Debug, Default)]
struct CostInner {
    keys: HashMap<(String, u32), Ewma>,
    observations: u64,
    seeded_predictions: u64,
    abs_pct_err_sum: f64,
}

/// A point-in-time snapshot of model accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostStats {
    /// Distinct (scene, resolution) keys with at least one observation.
    pub tracked_keys: usize,
    /// Completed requests folded into the model.
    pub observations: u64,
    /// Predictions served from the probe-count seed (no observation yet).
    pub seeded_predictions: u64,
    /// Mean absolute percentage error of predictions at observation time
    /// (0 when nothing has been observed).
    pub mean_abs_pct_error: f64,
}

/// Learns per-(scene, resolution) render cost online; see the module docs.
#[derive(Debug)]
pub struct CostModel {
    base_ns: usize,
    inner: Mutex<CostInner>,
}

impl CostModel {
    /// A model seeded from `profile`'s sample budget.
    pub fn new(profile: &RenderProfile) -> Self {
        CostModel { base_ns: profile.base_ns, inner: Mutex::new(CostInner::default()) }
    }

    /// The probe-count seed: what a frame at `resolution` should cost
    /// before any observation exists.
    pub fn seed_ms(&self, resolution: u32) -> f64 {
        let nominal_samples = (resolution as f64).powi(2) * self.base_ns as f64;
        nominal_samples * SEED_NS_PER_SAMPLE / 1e6
    }

    /// Predicted service time for a `frames`-frame request, milliseconds.
    pub fn predict(&self, scene: &str, resolution: u32, frames: usize) -> f64 {
        let mut inner = self.inner.lock().unwrap();
        let per_frame = match inner.keys.get(&(scene.to_string(), resolution)) {
            Some(e) => e.per_frame_ms,
            None => {
                inner.seeded_predictions += 1;
                self.seed_ms(resolution)
            }
        };
        per_frame * frames.max(1) as f64
    }

    /// Folds one completed request into the model. `service_ms` is the
    /// request's latency minus its queue wait (what the render itself
    /// cost, which is what admission needs to predict).
    pub fn observe(&self, scene: &str, resolution: u32, frames: usize, service_ms: f64) {
        if !service_ms.is_finite() || service_ms < 0.0 {
            return;
        }
        let frames = frames.max(1) as f64;
        let actual_per_frame = service_ms / frames;
        let mut inner = self.inner.lock().unwrap();
        let key = (scene.to_string(), resolution);
        let predicted_per_frame = inner
            .keys
            .get(&key)
            .map(|e| e.per_frame_ms)
            .unwrap_or_else(|| self.seed_ms(resolution));
        if actual_per_frame > 0.0 {
            inner.abs_pct_err_sum +=
                (predicted_per_frame - actual_per_frame).abs() / actual_per_frame;
        }
        inner.observations += 1;
        inner
            .keys
            .entry(key)
            .and_modify(|e| {
                e.per_frame_ms = ALPHA * actual_per_frame + (1.0 - ALPHA) * e.per_frame_ms;
                e.samples += 1;
            })
            .or_insert(Ewma { per_frame_ms: actual_per_frame, samples: 1 });
    }

    /// A statistics snapshot.
    pub fn stats(&self) -> CostStats {
        let inner = self.inner.lock().unwrap();
        CostStats {
            tracked_keys: inner.keys.len(),
            observations: inner.observations,
            seeded_predictions: inner.seeded_predictions,
            mean_abs_pct_error: if inner.observations > 0 {
                inner.abs_pct_err_sum / inner.observations as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(&RenderProfile::tiny())
    }

    #[test]
    fn seeds_scale_with_resolution() {
        let m = model();
        assert!(m.seed_ms(96) > m.seed_ms(48), "bigger frames must seed more expensive");
        assert!((m.seed_ms(96) / m.seed_ms(48) - 4.0).abs() < 1e-9, "seed is quadratic in res");
        // an unseen key predicts from the seed, proportional to frames
        let one = m.predict("Mic", 48, 1);
        assert!((m.predict("Mic", 48, 3) / one - 3.0).abs() < 1e-9);
        assert_eq!(m.stats().seeded_predictions, 2);
        assert_eq!(m.stats().tracked_keys, 0);
    }

    #[test]
    fn observations_converge_and_score_error() {
        let m = model();
        // the real machine is much cheaper than the seed; the EWMA converges
        for _ in 0..24 {
            m.observe("Mic", 48, 2, 40.0); // 20 ms/frame
        }
        let pred = m.predict("Mic", 48, 1);
        assert!((pred - 20.0).abs() < 1.0, "EWMA must converge to ~20 ms/frame, got {pred}");
        let stats = m.stats();
        assert_eq!(stats.tracked_keys, 1);
        assert_eq!(stats.observations, 24);
        assert!(stats.mean_abs_pct_error > 0.0, "seed-vs-actual error must be recorded");
        // a second key does not inherit the first's estimate
        assert!(m.predict("Mic", 96, 1) > pred * 2.0);
    }

    #[test]
    fn error_shrinks_once_the_model_learns() {
        let m = model();
        m.observe("Lego", 32, 1, 10.0);
        let early = m.stats().mean_abs_pct_error;
        for _ in 0..40 {
            m.observe("Lego", 32, 1, 10.0);
        }
        assert!(
            m.stats().mean_abs_pct_error < early,
            "steady traffic must drive the mean error down"
        );
    }

    #[test]
    fn garbage_observations_are_ignored() {
        let m = model();
        m.observe("Mic", 48, 1, f64::NAN);
        m.observe("Mic", 48, 1, -5.0);
        assert_eq!(m.stats().observations, 0);
    }
}
