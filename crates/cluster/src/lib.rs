//! `asdr_cluster` — sharded multi-process serving over the PR-4
//! [`RenderService`](asdr_serve::RenderService) (ROADMAP "serving
//! scale-out": the step from one warm process to a fleet).
//!
//! One process, one scheduler, one worker pool is not "heavy traffic from
//! millions of users". This crate adds the cluster layer:
//!
//! * [`router::ShardRouter`] — consistent-hashes requests by scene name
//!   over N `RenderService` shards (64 virtual nodes each), with
//!   spill-over to the least-loaded shard when the home shard is full.
//!   Shards run separate [`ModelStore`](asdr_serve::ModelStore)s over one
//!   checkpoint directory, so the store's cross-process lock-file
//!   single-flight keeps fits deduplicated cluster-wide — and images stay
//!   byte-identical to a single service.
//! * [`cost::CostModel`] — learns per-(scene, resolution) render cost
//!   online from completed request latencies (seeded from probe-point
//!   counts) and replaces count-based admission with a predicted-cost
//!   budget per shard; `ClusterStats` reports predicted-vs-actual error.
//! * [`autoscale`] — a control loop that grows/shrinks each shard's
//!   worker pool between configured bounds from its rolling
//!   deadline-miss rate, with watermark-gap + cooldown hysteresis.
//! * [`stats::ClusterStats`] — per-shard throughput and latency
//!   percentiles, miss rate, scaling events, and fit-dedup counters, with
//!   the JSON artifact the `asdr-cluster` binary emits.
//!
//! ```no_run
//! use asdr_cluster::{AutoscalerConfig, ShardRouter};
//! use asdr_scenes::registry;
//! use asdr_serve::{RenderProfile, RenderRequest};
//!
//! let cluster = ShardRouter::builder(RenderProfile::tiny())
//!     .shards(3)
//!     .store_dir("/tmp/asdr-ckpts")
//!     .autoscale(AutoscalerConfig::default())
//!     .build()
//!     .unwrap();
//! let ticket = cluster.submit(RenderRequest::frame(registry::handle("Mic"), 48)).unwrap();
//! let result = ticket.wait().expect("request completed");
//! println!("shard {} rendered {} in {:?}", ticket.shard(), result.scene, result.latency);
//! println!("{}", cluster.shutdown().to_json());
//! ```

#![warn(missing_docs)]

pub mod autoscale;
pub mod cost;
pub mod net;
pub mod remote;
pub mod router;
pub mod stats;
pub mod wire;

pub use autoscale::{AutoscalerConfig, ScaleEvent, ScaleReason, ShardController};
pub use cost::{CostModel, CostStats};
pub use net::{Listener, ShardAddr, Stream};
pub use remote::{FleetConfig, FleetError, FleetTicket, RemoteFleet, RemoteShard, RemoteTicket};
pub use router::{ClusterBuilder, ClusterError, ClusterTicket, HashRing, ShardRouter};
pub use stats::{ClusterStats, FleetStats, ShardStats};
