//! `asdr-shardd` — one shard of the remote fleet: a single
//! [`RenderService`] + [`ModelStore`](asdr_serve::ModelStore) per
//! process, answering the fleet wire protocol (`asdr_cluster::wire`)
//! over a Unix or TCP socket.
//!
//! ```text
//! asdr-shardd --listen (unix:PATH | tcp:HOST:PORT)
//!             [--scale tiny|small|paper] [--workers N] [--queue N]
//!             [--store-dir DIR | --no-store] [--shard-id N]
//!             [--bundle DIR]
//! ```
//!
//! With `--bundle DIR` the daemon writes a diagnostic run bundle
//! (`asdr_obs::Bundle`): span capture is enabled and every request span
//! streams write-through into `DIR/spans.jsonl` — surviving even a
//! kill −9 — periodic stats samples land in `DIR/stats-timeline.jsonl`,
//! and the final `SHARDD_EXIT` snapshot is sealed into `DIR/stats.json`
//! (scripts read that file, not stderr).
//!
//! The daemon prints `SHARDD_READY <addr>` once it accepts connections
//! (with the assigned port for `tcp:HOST:0`), then serves until SIGTERM,
//! SIGINT, or a wire `Drain` message. Drain is graceful: the listener
//! closes, in-flight requests finish rendering, every pending `Result`
//! frame is shipped, and only then does the process exit — so a router
//! sees either a completed result or a closed connection, never a
//! half-written frame. A kill −9 is the *un*graceful path the fleet's
//! health checks and hedging exist to absorb.

use asdr_cluster::net::{Listener, ShardAddr, Stream};
use asdr_cluster::wire::{self, Message, WireResult, WireStats};
use asdr_serve::flags::{die, positive_usize, value};
use asdr_serve::{ModelStore, RenderProfile, RenderService, ServeError};
use std::collections::HashSet;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Set by SIGTERM/SIGINT or a wire `Drain`; the accept loop polls it.
static DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Installs the drain handler with the always-linked libc `signal(2)` —
/// no signal crate offline. BSD semantics imply `SA_RESTART`, which is
/// why the accept loop polls a nonblocking listener instead of parking
/// in `accept`.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

struct Args {
    listen: ShardAddr,
    profile: RenderProfile,
    scale_name: String,
    workers: usize,
    queue: usize,
    store_dir: Option<PathBuf>,
    no_store: bool,
    shard_id: u64,
    bundle: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: asdr-shardd --listen (unix:PATH | tcp:HOST:PORT)\n\
         \u{20}                  [--scale tiny|small|paper] [--workers N] [--queue N]\n\
         \u{20}                  [--store-dir DIR | --no-store] [--shard-id N]\n\
         \u{20}                  [--bundle DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut listen = None;
    let mut args = Args {
        listen: ShardAddr::Tcp(String::new()),
        profile: RenderProfile::tiny(),
        scale_name: "tiny".to_string(),
        workers: 1,
        queue: 64,
        store_dir: None,
        no_store: false,
        shard_id: 0,
        bundle: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--listen" => {
                listen = Some(ShardAddr::parse(&value(&argv, &mut i)).unwrap_or_else(|e| die(&e)));
            }
            "--scale" => {
                let name = value(&argv, &mut i);
                args.profile = RenderProfile::parse(&name)
                    .unwrap_or_else(|| die(&format!("unknown scale {name:?}")));
                args.scale_name = name;
            }
            "--workers" => args.workers = positive_usize("--workers", &value(&argv, &mut i)),
            "--queue" => args.queue = positive_usize("--queue", &value(&argv, &mut i)),
            "--store-dir" => args.store_dir = Some(PathBuf::from(value(&argv, &mut i))),
            "--no-store" => args.no_store = true,
            "--bundle" => args.bundle = Some(PathBuf::from(value(&argv, &mut i))),
            "--shard-id" => {
                let v = value(&argv, &mut i);
                args.shard_id = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--shard-id needs an integer, got {v:?}")));
            }
            "-h" | "--help" => usage(),
            other => die(&format!("unknown argument {other:?} (see --help)")),
        }
        i += 1;
    }
    match listen {
        Some(addr) => args.listen = addr,
        None => usage(),
    }
    if args.no_store && args.store_dir.is_some() {
        die("--no-store and --store-dir are mutually exclusive");
    }
    args
}

/// Counts in-flight response writers so drain can wait for the last
/// `Result` frame to ship before the process exits.
struct WaitGroup {
    count: Mutex<usize>,
    cond: Condvar,
}

impl WaitGroup {
    fn new() -> Arc<WaitGroup> {
        Arc::new(WaitGroup { count: Mutex::new(0), cond: Condvar::new() })
    }

    fn enter(self: &Arc<Self>) -> WaitGuard {
        *self.count.lock().unwrap() += 1;
        WaitGuard { wg: self.clone() }
    }

    fn wait_idle(&self, timeout: Duration) {
        let deadline = std::time::Instant::now() + timeout;
        let mut count = self.count.lock().unwrap();
        while *count > 0 {
            let Some(left) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return;
            };
            let (next, _) = self.cond.wait_timeout(count, left).unwrap();
            count = next;
        }
    }
}

struct WaitGuard {
    wg: Arc<WaitGroup>,
}

impl Drop for WaitGuard {
    fn drop(&mut self) {
        *self.wg.count.lock().unwrap() -= 1;
        self.wg.cond.notify_all();
    }
}

/// Sends one frame under the connection's writer lock, ignoring errors —
/// a vanished client is the fleet's problem, not the shard's.
fn send(writer: &Mutex<Stream>, msg: &Message) {
    let mut w = writer.lock().unwrap();
    let _ = wire::write_frame(&mut *w, msg);
}

/// Serves one connection until EOF, protocol error, or drain.
fn serve_connection(
    stream: Stream,
    service: &Arc<RenderService>,
    shard_id: u64,
    responders: &Arc<WaitGroup>,
) {
    let _ = stream.set_blocking();
    let Ok(write_half) = stream.try_clone() else { return };
    let writer = Arc::new(Mutex::new(write_half));
    let cancelled: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let mut reader = stream;
    loop {
        let msg = match wire::read_frame(&mut reader) {
            Ok(Some(msg)) => msg,
            Ok(None) => break,
            Err(e) => {
                eprintln!("shardd: dropping connection: {e}");
                break;
            }
        };
        match msg {
            Message::Hello { version } => {
                if version != wire::VERSION {
                    eprintln!(
                        "shardd: peer speaks wire version {version}, this shard speaks {}",
                        wire::VERSION
                    );
                    break;
                }
                send(&writer, &Message::HelloOk { shard: shard_id });
            }
            Message::Submit { id, req } => {
                let resolved = match req.to_request() {
                    Ok(r) => r,
                    Err(why) => {
                        send(&writer, &Message::Refused { id, retryable: false, why });
                        continue;
                    }
                };
                match service.submit(resolved) {
                    Ok(ticket) => {
                        send(&writer, &Message::Submitted { id });
                        let writer = writer.clone();
                        let cancelled = cancelled.clone();
                        let guard = responders.enter();
                        std::thread::spawn(move || {
                            let _guard = guard;
                            let reply = match ticket.wait() {
                                Ok(result) => {
                                    Message::Result { id, result: WireResult::from_result(&result) }
                                }
                                Err(e) => Message::Failed { id, why: e.to_string() },
                            };
                            if cancelled.lock().unwrap().remove(&id) {
                                return; // a hedge won elsewhere; drop the reply
                            }
                            send(&writer, &reply);
                        });
                    }
                    // a draining shard is transient to the fleet: it will
                    // close this socket shortly and be routed around
                    Err(e @ (ServeError::QueueFull { .. } | ServeError::ShuttingDown)) => {
                        send(
                            &writer,
                            &Message::Refused { id, retryable: true, why: e.to_string() },
                        );
                    }
                    Err(e) => {
                        send(
                            &writer,
                            &Message::Refused { id, retryable: false, why: e.to_string() },
                        );
                    }
                }
            }
            Message::Cancel { id } => {
                cancelled.lock().unwrap().insert(id);
            }
            Message::StatsPoll { id } => {
                let stats = WireStats {
                    workers: service.workers() as u64,
                    queue_len: service.queue_len() as u64,
                    serve: service.stats(),
                };
                send(&writer, &Message::Stats { id, stats });
            }
            Message::Health { id } => {
                send(
                    &writer,
                    &Message::HealthOk {
                        id,
                        queue_len: service.queue_len() as u64,
                        draining: DRAIN.load(Ordering::SeqCst),
                    },
                );
            }
            Message::Prewarm { id, scene } => {
                let writer = writer.clone();
                let service = service.clone();
                let guard = responders.enter();
                std::thread::spawn(move || {
                    let _guard = guard;
                    let ok = match asdr_scenes::registry::get(&scene) {
                        Some(handle) => {
                            // the fit/load itself is the warm-up; the store's
                            // cross-process lock keeps it deduplicated
                            let _model =
                                service.store().get_or_fit(&handle, &service.profile().grid);
                            true
                        }
                        None => false,
                    };
                    send(&writer, &Message::Warmed { id, ok });
                });
            }
            Message::Drain { id } => {
                send(&writer, &Message::Draining { id });
                DRAIN.store(true, Ordering::SeqCst);
            }
            // server-to-client kinds arriving here are a peer bug; skip them
            // rather than killing a connection carrying in-flight work
            other => {
                eprintln!("shardd: ignoring unexpected {other:?}");
            }
        }
    }
}

fn main() {
    let args = parse_args();
    install_signal_handlers();

    let bundle = args.bundle.as_ref().map(|dir| {
        let kind = format!("shardd-{}", args.shard_id);
        let store_setting = match (&args.store_dir, args.no_store) {
            (Some(d), _) => d.display().to_string(),
            (None, true) => "in-memory".to_string(),
            (None, false) => "env".to_string(),
        };
        let config = [
            ("listen", args.listen.to_string()),
            ("scale", args.scale_name.clone()),
            ("workers", args.workers.to_string()),
            ("queue", args.queue.to_string()),
            ("store", store_setting),
            ("shard_id", args.shard_id.to_string()),
        ];
        let b = asdr_obs::Bundle::create(dir, &kind, &config)
            .unwrap_or_else(|e| die(&format!("cannot create bundle {}: {e}", dir.display())));
        b.activate();
        b
    });

    let mut store = ModelStore::builder();
    if let Some(dir) = &args.store_dir {
        store = store.dir(dir);
    } else if args.no_store {
        store = store.in_memory_only();
    }
    let service = Arc::new(
        RenderService::builder(args.profile.clone())
            .store(Arc::new(store.build()))
            .workers(args.workers)
            .queue_capacity(args.queue)
            .build()
            .unwrap_or_else(|e| die(&e)),
    );

    let (listener, actual) = Listener::bind(&args.listen)
        .unwrap_or_else(|e| die(&format!("cannot bind {}: {e}", args.listen)));
    listener.set_nonblocking(true).unwrap_or_else(|e| die(&format!("cannot poll {}: {e}", actual)));
    println!("SHARDD_READY {actual}");
    let _ = std::io::stdout().flush();
    if let Some(b) = &bundle {
        b.stage("listening");
    }

    let responders = WaitGroup::new();
    let mut connections = Vec::new();
    let mut last_sample = std::time::Instant::now();
    while !DRAIN.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                let service = service.clone();
                let responders = responders.clone();
                let shard_id = args.shard_id;
                connections.push(std::thread::spawn(move || {
                    serve_connection(stream, &service, shard_id, &responders);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => die(&format!("accept on {actual}: {e}")),
        }
        if let Some(b) = &bundle {
            if last_sample.elapsed() >= Duration::from_secs(1) {
                last_sample = std::time::Instant::now();
                b.stats_sample("periodic", &service.stats().to_json());
            }
        }
    }

    // graceful drain: stop admitting, render out the queue, ship every
    // pending Result frame, then exit
    if let Some(b) = &bundle {
        b.stage("draining");
    }
    service.drain();
    responders.wait_idle(Duration::from_secs(30));
    if let ShardAddr::Unix(path) = &actual {
        let _ = std::fs::remove_file(path);
    }
    let exit_stats = service.stats().to_json();
    // the same snapshot lands in the bundle's stats.json (the scripts'
    // source of truth) and on stderr (human logs)
    if let Some(b) = &bundle {
        b.finish(Some(&exit_stats));
    }
    eprintln!("SHARDD_EXIT {exit_stats}");
}
