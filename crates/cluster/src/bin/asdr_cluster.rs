//! `asdr-cluster` — replays a JSON-lines workload file through a sharded
//! [`ShardRouter`] cluster and reports cluster statistics.
//!
//! ```text
//! asdr-cluster --workload FILE [--shards N] [--scale tiny|small|paper]
//!              [--workers N | --autoscale MIN:MAX] [--budget-ms X]
//!              [--store-dir DIR | --no-store] [--queue N]
//!              [--out STATS.json] [--dump-images DIR]
//! ```
//!
//! The workload format is `asdr-serve`'s (see `asdr_serve::workload`).
//! Entries are submitted at their `at_ms` arrival offsets; an overloaded
//! cluster blocks the replay clock rather than dropping work. The process
//! waits for every ticket, prints a per-request table (including which
//! shard served it), and writes the [`ClusterStats`] JSON to `--out` —
//! the artifact the nightly `cluster-smoke` job uploads and greps for
//! zero duplicate fits (`"total_fits"` equals the workload's distinct
//! scene count cold, zero warm).

use asdr_cluster::{AutoscalerConfig, ClusterError, ShardRouter};
use asdr_serve::{parse_workload, RenderProfile};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Args {
    workload: PathBuf,
    profile: RenderProfile,
    shards: usize,
    workers: usize,
    autoscale: Option<(usize, usize)>,
    budget_ms: Option<f64>,
    store_dir: Option<PathBuf>,
    no_store: bool,
    queue: usize,
    out: Option<PathBuf>,
    dump_images: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: asdr-cluster --workload FILE [--shards N] [--scale tiny|small|paper]\n\
         \u{20}                   [--workers N | --autoscale MIN:MAX] [--budget-ms X]\n\
         \u{20}                   [--store-dir DIR | --no-store] [--queue N]\n\
         \u{20}                   [--out STATS.json] [--dump-images DIR]"
    );
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: PathBuf::new(),
        profile: RenderProfile::tiny(),
        shards: 2,
        workers: 1,
        autoscale: None,
        budget_ms: None,
        store_dir: None,
        no_store: false,
        queue: 64,
        out: None,
        dump_images: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| die(&format!("{} needs a value", argv[*i - 1])))
    };
    let positive = |flag: &str, s: String| -> usize {
        s.parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| die(&format!("{flag} needs a positive number")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--workload" => args.workload = PathBuf::from(value(&mut i)),
            "--scale" => {
                let name = value(&mut i);
                args.profile = RenderProfile::parse(&name)
                    .unwrap_or_else(|| die(&format!("unknown scale {name:?}")));
            }
            "--shards" => args.shards = positive("--shards", value(&mut i)),
            "--workers" => args.workers = positive("--workers", value(&mut i)),
            "--autoscale" => {
                let spec = value(&mut i);
                let (min, max) = spec
                    .split_once(':')
                    .unwrap_or_else(|| die("--autoscale needs MIN:MAX (e.g. 1:4)"));
                args.autoscale = Some((
                    positive("--autoscale MIN", min.to_string()),
                    positive("--autoscale MAX", max.to_string()),
                ));
            }
            "--budget-ms" => {
                args.budget_ms = Some(
                    value(&mut i)
                        .parse::<f64>()
                        .ok()
                        .filter(|x| x.is_finite() && *x > 0.0)
                        .unwrap_or_else(|| die("--budget-ms needs a positive number")),
                );
            }
            "--store-dir" => args.store_dir = Some(PathBuf::from(value(&mut i))),
            "--no-store" => args.no_store = true,
            "--queue" => args.queue = positive("--queue", value(&mut i)),
            "--out" => args.out = Some(PathBuf::from(value(&mut i))),
            "--dump-images" => args.dump_images = Some(PathBuf::from(value(&mut i))),
            "-h" | "--help" => usage(),
            other => die(&format!("unknown argument {other:?} (see --help)")),
        }
        i += 1;
    }
    if args.workload.as_os_str().is_empty() {
        usage();
    }
    if args.no_store && args.store_dir.is_some() {
        die("--no-store and --store-dir are mutually exclusive");
    }
    args
}

fn main() {
    let args = parse_args();
    let text = std::fs::read_to_string(&args.workload)
        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", args.workload.display())));
    let entries =
        parse_workload(&text).unwrap_or_else(|e| die(&format!("{}: {e}", args.workload.display())));
    if entries.is_empty() {
        die("workload file holds no requests");
    }

    let mut builder =
        ShardRouter::builder(args.profile.clone()).shards(args.shards).queue_capacity(args.queue);
    if let Some(dir) = &args.store_dir {
        builder = builder.store_dir(dir);
    } else if args.no_store {
        builder = builder.in_memory_stores();
    }
    if let Some(ms) = args.budget_ms {
        builder = builder.budget_ms(ms);
    }
    builder = match args.autoscale {
        Some((min, max)) => builder.autoscale(AutoscalerConfig {
            workers_min: min,
            workers_max: max,
            ..AutoscalerConfig::default()
        }),
        None => builder.workers(args.workers),
    };
    let cluster = builder.build().unwrap_or_else(|e| die(&e));
    println!(
        "# asdr-cluster: {} requests over {} shards ({}), store {}",
        entries.len(),
        cluster.shards(),
        match args.autoscale {
            Some((min, max)) => format!("autoscale {min}:{max} workers/shard"),
            None => format!("{} workers/shard", args.workers),
        },
        args.store_dir.as_ref().map_or("in-memory".to_string(), |d| d.display().to_string()),
    );

    // replay at the recorded arrival offsets; an overloaded cluster blocks
    // the replay clock rather than dropping work
    let t0 = Instant::now();
    let mut tickets = Vec::with_capacity(entries.len());
    for (idx, entry) in entries.iter().enumerate() {
        let req = entry.to_request(&args.profile).unwrap_or_else(|e| {
            die(&format!("{} line {}: {e}", args.workload.display(), entry.line))
        });
        if let Some(wait) = Duration::from_millis(entry.at_ms).checked_sub(t0.elapsed()) {
            std::thread::sleep(wait);
        }
        let ticket = loop {
            match cluster.submit(req.clone()) {
                Ok(t) => break t,
                Err(ClusterError::Overloaded { .. }) => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => die(&format!("request {idx}: {e}")),
            }
        };
        tickets.push((idx, entry.scene.clone(), ticket));
    }

    println!("| req | scene | shard | frames | queue ms | latency ms | deadline |");
    println!("|---|---|---|---|---|---|---|");
    for (idx, scene, ticket) in &tickets {
        let r = ticket.wait().unwrap_or_else(|e| die(&format!("request {idx} ({scene}): {e}")));
        println!(
            "| {idx} | {scene} | {} | {} | {:.1} | {:.1} | {} |",
            ticket.shard(),
            r.images.len(),
            r.queue_wait.as_secs_f64() * 1e3,
            r.latency.as_secs_f64() * 1e3,
            match r.deadline_met {
                Some(true) => "met",
                Some(false) => "MISSED",
                None => "-",
            },
        );
        if let Some(dir) = &args.dump_images {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
            for (f, image) in r.images.iter().enumerate() {
                let path = dir.join(format!("req{idx:03}-f{f:02}.ppm"));
                image
                    .write_ppm(&path)
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
            }
        }
    }

    let stats = cluster.shutdown();
    println!(
        "\n{} requests, {} frames over {} shards ({} home, {} spilled, {} rejected)",
        stats.requests(),
        stats.frames(),
        stats.shards.len(),
        stats.routed_home,
        stats.spilled,
        stats.rejected,
    );
    for s in &stats.shards {
        println!(
            "shard {}: {} workers, {} req, {:.2} fps, p50 {:.1} ms / p95 {:.1} ms, {} fits, {} disk hits",
            s.shard,
            s.workers,
            s.serve.requests,
            s.serve.throughput_fps,
            s.serve.p50_latency_ms,
            s.serve.p95_latency_ms,
            s.serve.store.fits,
            s.serve.store.disk_hits,
        );
    }
    println!(
        "fits: {} total ({} lock waits, {} lock steals) — cost model {:.0}% mean abs error over {} observations",
        stats.total_fits(),
        stats.lock_waits(),
        stats.lock_steals(),
        stats.cost.mean_abs_pct_error * 100.0,
        stats.cost.observations,
    );
    if stats.deadlined_requests() > 0 {
        println!(
            "deadlines: {}/{} missed ({:.0}%)",
            stats.deadline_misses(),
            stats.deadlined_requests(),
            stats.miss_rate() * 100.0
        );
    }
    if !stats.scale_events.is_empty() {
        println!("scaling: {} events", stats.scale_events.len());
        for e in &stats.scale_events {
            println!(
                "  t+{} ms shard {}: {} -> {} workers (window miss rate {:.0}%)",
                e.at_ms,
                e.shard,
                e.from,
                e.to,
                e.miss_rate * 100.0
            );
        }
    }
    if let Some(out) = &args.out {
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(out, stats.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", out.display())));
        println!("stats written to {}", out.display());
    }
}
