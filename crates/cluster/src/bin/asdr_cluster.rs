//! `asdr-cluster` — replays a workload trace through a sharded
//! [`ShardRouter`] cluster and reports cluster statistics.
//!
//! ```text
//! asdr-cluster (--workload FILE | --trace FILE | --synthetic SPEC)
//!              [--shards N] [--scale tiny|small|paper]
//!              [--workers N | --autoscale MIN:MAX] [--budget-ms X]
//!              [--store-dir DIR | --no-store] [--queue N]
//!              [--speed X] [--record PATH]
//!              [--out STATS.json] [--dump-images DIR] [--bundle DIR]
//! ```
//!
//! With `--bundle DIR` the process writes its own diagnostic run bundle
//! to `DIR/cluster` (config snapshot, span capture, periodic stats
//! samples, final stats) and — under `--remote spawn:N` — hands each
//! spawned daemon `DIR/shard<i>` for its bundle, so one flag yields the
//! whole fleet's bundle tree for `asdr-trace report --bundles DIR`.
//!
//! The trace inputs are `asdr-serve`'s (see `asdr_serve::trace`); the
//! submit loop is the same shared [`ReplayDriver`](asdr_serve::ReplayDriver)
//! — an overloaded cluster blocks the replay clock rather than dropping
//! work, `--speed` warps arrival offsets, and `--record` captures every
//! admitted request as a binary trace. The process waits for every
//! ticket, prints a per-request table (including which shard served it)
//! plus a machine-readable `TRACE_RESULT` line, and writes the
//! [`ClusterStats`] JSON to `--out` — the artifact the nightly
//! `cluster-smoke` job uploads and greps for zero duplicate fits
//! (`"total_fits"` equals the workload's distinct scene count cold, zero
//! warm).

use asdr_cluster::remote::{FleetConfig, RemoteFleet};
use asdr_cluster::{AutoscalerConfig, ShardAddr, ShardRouter};
use asdr_serve::flags::{self, die, positive_usize, value, ReplayFlags};
use asdr_serve::RenderProfile;
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    replay: ReplayFlags,
    profile: RenderProfile,
    scale: String,
    shards: usize,
    workers: usize,
    autoscale: Option<(usize, usize)>,
    budget_ms: Option<f64>,
    store_dir: Option<PathBuf>,
    no_store: bool,
    queue: usize,
    remote: Option<String>,
    hedge_ms: Option<f64>,
    out: Option<PathBuf>,
    dump_images: Option<PathBuf>,
    bundle: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: asdr-cluster (--workload FILE | --trace FILE | --synthetic SPEC)\n\
         \u{20}                   [--shards N] [--scale tiny|small|paper]\n\
         \u{20}                   [--workers N | --autoscale MIN:MAX] [--budget-ms X]\n\
         \u{20}                   [--store-dir DIR | --no-store] [--queue N]\n\
         \u{20}                   [--remote (spawn:N | ADDR[,ADDR...])] [--hedge-ms X]\n\
         \u{20}                   [--speed X] [--record PATH]\n\
         \u{20}                   [--out STATS.json] [--dump-images DIR] [--bundle DIR]\n\
         \n\
         --remote runs the workload against asdr-shardd processes instead of\n\
         in-process shards: spawn:N launches N local daemons on Unix sockets;\n\
         a comma-separated list attaches to already-running shards\n\
         (unix:PATH or tcp:HOST:PORT)."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        replay: ReplayFlags::default(),
        profile: RenderProfile::tiny(),
        scale: "tiny".to_string(),
        shards: 2,
        workers: 1,
        autoscale: None,
        budget_ms: None,
        store_dir: None,
        no_store: false,
        queue: 64,
        remote: None,
        hedge_ms: None,
        out: None,
        dump_images: None,
        bundle: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        if !args.replay.accept(&argv, &mut i) {
            match argv[i].as_str() {
                "--scale" => {
                    let name = value(&argv, &mut i);
                    args.profile = RenderProfile::parse(&name)
                        .unwrap_or_else(|| die(&format!("unknown scale {name:?}")));
                    args.scale = name.to_ascii_lowercase();
                }
                "--shards" => args.shards = positive_usize("--shards", &value(&argv, &mut i)),
                "--workers" => args.workers = positive_usize("--workers", &value(&argv, &mut i)),
                "--autoscale" => {
                    let spec = value(&argv, &mut i);
                    let (min, max) = spec
                        .split_once(':')
                        .unwrap_or_else(|| die("--autoscale needs MIN:MAX (e.g. 1:4)"));
                    args.autoscale = Some((
                        positive_usize("--autoscale MIN", min),
                        positive_usize("--autoscale MAX", max),
                    ));
                }
                "--budget-ms" => {
                    args.budget_ms =
                        Some(flags::positive_f64("--budget-ms", &value(&argv, &mut i)));
                }
                "--store-dir" => args.store_dir = Some(PathBuf::from(value(&argv, &mut i))),
                "--no-store" => args.no_store = true,
                "--queue" => args.queue = positive_usize("--queue", &value(&argv, &mut i)),
                "--remote" => args.remote = Some(value(&argv, &mut i)),
                "--hedge-ms" => {
                    args.hedge_ms = Some(flags::positive_f64("--hedge-ms", &value(&argv, &mut i)));
                }
                "--out" => args.out = Some(PathBuf::from(value(&argv, &mut i))),
                "--dump-images" => args.dump_images = Some(PathBuf::from(value(&argv, &mut i))),
                "--bundle" => args.bundle = Some(PathBuf::from(value(&argv, &mut i))),
                "-h" | "--help" => usage(),
                other => die(&format!("unknown argument {other:?} (see --help)")),
            }
        }
        i += 1;
    }
    if args.replay.input.is_none() {
        usage();
    }
    if args.no_store && args.store_dir.is_some() {
        die("--no-store and --store-dir are mutually exclusive");
    }
    if args.remote.is_none() && args.hedge_ms.is_some() {
        die("--hedge-ms only applies to --remote fleets");
    }
    if args.remote.is_some() && (args.autoscale.is_some() || args.budget_ms.is_some()) {
        die("--autoscale/--budget-ms apply to in-process shards, not --remote fleets");
    }
    args
}

/// Launches `n` local `asdr-shardd` processes (the binary next to this
/// one) on Unix sockets in a fresh temp dir, waiting for each to accept.
fn spawn_shardds(n: usize, args: &Args) -> (Vec<std::process::Child>, Vec<ShardAddr>) {
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("asdr-shardd")))
        .unwrap_or_else(|| die("cannot locate asdr-shardd next to asdr-cluster"));
    let dir = std::env::temp_dir().join(format!("asdr-fleet-{}", std::process::id()));
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
    let mut children = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for i in 0..n {
        let sock = dir.join(format!("shard{i}.sock"));
        let addr = ShardAddr::Unix(sock.clone());
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--listen")
            .arg(format!("unix:{}", sock.display()))
            .arg("--scale")
            .arg(&args.scale)
            .arg("--workers")
            .arg(args.workers.to_string())
            .arg("--queue")
            .arg(args.queue.to_string())
            .arg("--shard-id")
            .arg(i.to_string())
            .stdout(std::process::Stdio::null());
        if let Some(bundle_root) = &args.bundle {
            // each daemon gets its own bundle dir under the shared root,
            // which is what the merged report walks
            cmd.arg("--bundle").arg(bundle_root.join(format!("shard{i}")));
        }
        if let Some(store) = &args.store_dir {
            cmd.arg("--store-dir").arg(store);
        } else if args.no_store {
            cmd.arg("--no-store");
        }
        let child =
            cmd.spawn().unwrap_or_else(|e| die(&format!("cannot spawn {}: {e}", exe.display())));
        children.push(child);
        addrs.push(addr);
    }
    // readiness: a successful connect means the daemon is accepting
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    for addr in &addrs {
        loop {
            match addr.connect() {
                Ok(_) => break,
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => {
                    // never leave half a fleet running behind a failed start
                    for child in &mut children {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    die(&format!("shard at {addr} never came up: {e}"));
                }
            }
        }
    }
    (children, addrs)
}

/// Replays the workload against a remote shardd fleet.
fn run_remote(
    args: &Args,
    bundle: Option<&std::sync::Arc<asdr_obs::Bundle>>,
    spec: &str,
    source: &mut dyn asdr_serve::TraceSource,
    input_name: &str,
) {
    let (mut children, addrs) = match spec.strip_prefix("spawn:") {
        Some(n) => spawn_shardds(positive_usize("--remote spawn", n), args),
        None => {
            let addrs: Vec<ShardAddr> = spec
                .split(',')
                .map(|s| ShardAddr::parse(s.trim()).unwrap_or_else(|e| die(&e)))
                .collect();
            (Vec::new(), addrs)
        }
    };
    let mut cfg = FleetConfig::default();
    if let Some(ms) = args.hedge_ms {
        cfg.hedge_after = Some(Duration::from_secs_f64(ms / 1e3));
    }
    let fleet =
        RemoteFleet::connect(addrs.clone(), args.profile.clone(), cfg).unwrap_or_else(|e| die(&e));
    println!(
        "# asdr-cluster: {} requests over {} remote shards ({}), store {}",
        source.len_hint().map_or_else(|| "streamed".to_string(), |n| n.to_string()),
        fleet.shards(),
        addrs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(", "),
        args.store_dir.as_ref().map_or("in-memory".to_string(), |d| d.display().to_string()),
    );

    let driver = args.replay.driver(args.profile.clone());
    if let Some(b) = bundle {
        b.stage("replaying");
    }
    let replay = driver.run(source, &fleet).unwrap_or_else(|e| die(&format!("{input_name}: {e}")));
    if replay.requests.is_empty() {
        die("trace holds no requests");
    }

    let mut measurements = flags::ReplayMeasurements::default();
    let mut last_sample = std::time::Instant::now();
    println!("| req | scene | shard | frames | queue ms | latency ms | deadline |");
    println!("|---|---|---|---|---|---|---|");
    for req in &replay.requests {
        let r = req
            .ticket
            .wait()
            .unwrap_or_else(|e| die(&format!("request {} ({}): {e}", req.index, req.scene)));
        println!(
            "| {} | {} | {} | {} | {:.1} | {:.1} | {} |",
            req.index,
            req.scene,
            req.ticket.shard(),
            r.images.len(),
            r.queue_wait_us as f64 / 1e3,
            r.latency_us as f64 / 1e3,
            match r.deadline_met {
                Some(true) => "met",
                Some(false) => "MISSED",
                None => "-",
            },
        );
        measurements.push(req.window, req.deadlined, r.deadline_met == Some(false), r.images.len());
        if let Some(dir) = &args.dump_images {
            flags::dump_frames(dir, req.index, &r.images);
        }
        if let Some(b) = bundle {
            if last_sample.elapsed() >= Duration::from_secs(1) {
                last_sample = std::time::Instant::now();
                b.stats_sample("replay", &fleet.stats().to_json());
            }
        }
    }
    let wall = replay.started.elapsed();

    if let Some(b) = bundle {
        b.stage("shutdown");
    }
    let stats = fleet.shutdown();
    println!(
        "\n{} requests, {} frames over {} remote shards ({} home, {} spilled)",
        stats.requests(),
        stats.frames(),
        stats.shards.len(),
        stats.routed_home,
        stats.spilled,
    );
    let fl = &stats.fleet;
    println!(
        "fleet: {} evictions, {} rejoins, {} hedges ({} won, {} cancelled), {} failovers, {} re-warms",
        fl.evictions, fl.rejoins, fl.hedges, fl.hedge_wins, fl.hedge_cancels, fl.failovers, fl.rewarms,
    );
    for s in &stats.shards {
        println!(
            "shard {}: {} workers, {} req, {:.2} fps, p50 {:.1} ms / p95 {:.1} ms, {} fits, {} disk hits",
            s.shard,
            s.workers,
            s.serve.requests,
            s.serve.throughput_fps,
            s.serve.p50_latency_ms,
            s.serve.p95_latency_ms,
            s.serve.store.fits,
            s.serve.store.disk_hits,
        );
    }
    println!(
        "{}",
        measurements.trace_result_line(wall, replay.plan.as_ref()).unwrap_or_else(|e| die(&e))
    );
    if let Some(out) = &args.out {
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(out, stats.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", out.display())));
        println!("stats written to {}", out.display());
    }
    if let Some(b) = bundle {
        b.finish(Some(&stats.to_json()));
    }
    // spawned daemons were asked to drain by fleet.shutdown(); give each a
    // moment to exit on its own before forcing the issue
    for child in &mut children {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
            }
        }
    }
}

fn main() {
    let args = parse_args();
    let bundle = args.bundle.as_ref().map(|root| {
        let config = [
            ("scale", args.scale.clone()),
            ("shards", args.shards.to_string()),
            ("workers", args.workers.to_string()),
            ("remote", args.remote.clone().unwrap_or_else(|| "in-process".to_string())),
        ];
        let b = asdr_obs::Bundle::create(&root.join("cluster"), "cluster", &config)
            .unwrap_or_else(|e| die(&format!("cannot create bundle {}: {e}", root.display())));
        b.activate();
        b
    });
    let input = args.replay.input.clone().expect("checked in parse_args");
    let mut source = input.open().unwrap_or_else(|e| die(&e));
    if source.len_hint() == Some(0) {
        die("workload file holds no requests");
    }
    if let Some(spec) = args.remote.clone() {
        run_remote(&args, bundle.as_ref(), &spec, source.as_mut(), &input.describe());
        return;
    }

    let mut builder =
        ShardRouter::builder(args.profile.clone()).shards(args.shards).queue_capacity(args.queue);
    if let Some(dir) = &args.store_dir {
        builder = builder.store_dir(dir);
    } else if args.no_store {
        builder = builder.in_memory_stores();
    }
    if let Some(ms) = args.budget_ms {
        builder = builder.budget_ms(ms);
    }
    builder = match args.autoscale {
        Some((min, max)) => builder.autoscale(AutoscalerConfig {
            workers_min: min,
            workers_max: max,
            ..AutoscalerConfig::default()
        }),
        None => builder.workers(args.workers),
    };
    let cluster = builder.build().unwrap_or_else(|e| die(&e));
    println!(
        "# asdr-cluster: {} requests over {} shards ({}), store {}",
        source.len_hint().map_or_else(|| "streamed".to_string(), |n| n.to_string()),
        cluster.shards(),
        match args.autoscale {
            Some((min, max)) => format!("autoscale {min}:{max} workers/shard"),
            None => format!("{} workers/shard", args.workers),
        },
        args.store_dir.as_ref().map_or("in-memory".to_string(), |d| d.display().to_string()),
    );

    let driver = args.replay.driver(args.profile.clone());
    if let Some(b) = &bundle {
        b.stage("replaying");
    }
    let replay = driver
        .run(source.as_mut(), &cluster)
        .unwrap_or_else(|e| die(&format!("{}: {e}", input.describe())));
    if replay.requests.is_empty() {
        die("trace holds no requests");
    }

    let mut measurements = flags::ReplayMeasurements::default();
    let mut last_sample = std::time::Instant::now();
    println!("| req | scene | shard | frames | queue ms | latency ms | deadline |");
    println!("|---|---|---|---|---|---|---|");
    for req in &replay.requests {
        let r = req
            .ticket
            .wait()
            .unwrap_or_else(|e| die(&format!("request {} ({}): {e}", req.index, req.scene)));
        println!(
            "| {} | {} | {} | {} | {:.1} | {:.1} | {} |",
            req.index,
            req.scene,
            req.ticket.shard(),
            r.images.len(),
            r.queue_wait.as_secs_f64() * 1e3,
            r.latency.as_secs_f64() * 1e3,
            match r.deadline_met {
                Some(true) => "met",
                Some(false) => "MISSED",
                None => "-",
            },
        );
        measurements.push(req.window, req.deadlined, r.deadline_met == Some(false), r.images.len());
        if let Some(dir) = &args.dump_images {
            flags::dump_frames(dir, req.index, &r.images);
        }
        if let Some(b) = &bundle {
            if last_sample.elapsed() >= Duration::from_secs(1) {
                last_sample = std::time::Instant::now();
                b.stats_sample("replay", &cluster.stats().to_json());
            }
        }
    }
    let wall = replay.started.elapsed();

    if let Some(b) = &bundle {
        b.stage("shutdown");
    }
    let stats = cluster.shutdown();
    println!(
        "\n{} requests, {} frames over {} shards ({} home, {} spilled, {} rejected)",
        stats.requests(),
        stats.frames(),
        stats.shards.len(),
        stats.routed_home,
        stats.spilled,
        stats.rejected,
    );
    for s in &stats.shards {
        println!(
            "shard {}: {} workers, {} req, {:.2} fps, p50 {:.1} ms / p95 {:.1} ms, {} fits, {} disk hits",
            s.shard,
            s.workers,
            s.serve.requests,
            s.serve.throughput_fps,
            s.serve.p50_latency_ms,
            s.serve.p95_latency_ms,
            s.serve.store.fits,
            s.serve.store.disk_hits,
        );
    }
    println!(
        "fits: {} total ({} lock waits, {} lock steals) — cost model {:.0}% mean abs error over {} observations",
        stats.total_fits(),
        stats.lock_waits(),
        stats.lock_steals(),
        stats.cost.mean_abs_pct_error * 100.0,
        stats.cost.observations,
    );
    if stats.deadlined_requests() > 0 {
        println!(
            "deadlines: {}/{} missed ({:.0}%)",
            stats.deadline_misses(),
            stats.deadlined_requests(),
            stats.miss_rate() * 100.0
        );
    }
    if !stats.scale_events.is_empty() {
        println!("scaling: {} events", stats.scale_events.len());
        for e in &stats.scale_events {
            println!(
                "  t+{} ms shard {}: {} -> {} workers ({}, window miss rate {:.0}%)",
                e.at_ms,
                e.shard,
                e.from,
                e.to,
                e.reason.as_str(),
                e.miss_rate * 100.0
            );
        }
    }
    println!(
        "{}",
        measurements.trace_result_line(wall, replay.plan.as_ref()).unwrap_or_else(|e| die(&e))
    );
    if let Some(out) = &args.out {
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(out, stats.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", out.display())));
        println!("stats written to {}", out.display());
    }
    if let Some(b) = &bundle {
        b.finish(Some(&stats.to_json()));
    }
}
