//! Fleet transport — shard addresses, connected streams, and listeners
//! over Unix domain sockets or TCP.
//!
//! The wire codec ([`crate::wire`]) is pure bytes; this module owns the
//! sockets it travels over. Both transports present one [`Stream`] type
//! (blocking reads/writes, cloneable for a reader/writer split) so the
//! daemon and the [`RemoteShard`](crate::remote::RemoteShard) client are
//! transport-agnostic.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a shard listens: `unix:PATH` or `tcp:HOST:PORT`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardAddr {
    /// A Unix domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port` endpoint.
    Tcp(String),
}

impl ShardAddr {
    /// Parses the `unix:PATH` / `tcp:HOST:PORT` spelling.
    ///
    /// # Errors
    ///
    /// Returns a message naming the expected forms.
    pub fn parse(s: &str) -> Result<ShardAddr, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: address needs a socket path".into());
            }
            return Ok(ShardAddr::Unix(PathBuf::from(path)));
        }
        if let Some(hostport) = s.strip_prefix("tcp:") {
            if !hostport.contains(':') {
                return Err(format!("tcp: address {hostport:?} needs HOST:PORT"));
            }
            return Ok(ShardAddr::Tcp(hostport.to_string()));
        }
        Err(format!("address {s:?} must be unix:PATH or tcp:HOST:PORT"))
    }

    /// Connects to the shard.
    ///
    /// # Errors
    ///
    /// Propagates the socket error (`ConnectionRefused` when the shard is
    /// down — the fleet's fast failure signal).
    pub fn connect(&self) -> io::Result<Stream> {
        match self {
            ShardAddr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            ShardAddr::Tcp(hostport) => TcpStream::connect(hostport.as_str()).map(Stream::Tcp),
        }
    }
}

impl fmt::Display for ShardAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            ShardAddr::Tcp(hostport) => write!(f, "tcp:{hostport}"),
        }
    }
}

/// One connected byte stream, either transport.
#[derive(Debug)]
pub enum Stream {
    /// Over a Unix domain socket.
    Unix(UnixStream),
    /// Over TCP.
    Tcp(TcpStream),
}

impl Stream {
    /// An independently usable handle to the same socket (reader/writer
    /// split).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Bounds blocking reads (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    /// Ensures blocking mode (accepted sockets differ by platform).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn set_blocking(&self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(false),
            Stream::Tcp(s) => s.set_nonblocking(false),
        }
    }

    /// Shuts both directions down, unblocking any reader.
    pub fn shutdown(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound accept socket, either transport.
#[derive(Debug)]
pub enum Listener {
    /// A Unix domain socket listener.
    Unix(UnixListener),
    /// A TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `addr`, returning the listener and the *actual* address
    /// (`tcp:HOST:0` resolves to the assigned port; a stale Unix socket
    /// file left by a killed daemon is removed first).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: &ShardAddr) -> io::Result<(Listener, ShardAddr)> {
        match addr {
            ShardAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok((Listener::Unix(UnixListener::bind(path)?), addr.clone()))
            }
            ShardAddr::Tcp(hostport) => {
                let listener = TcpListener::bind(hostport.as_str())?;
                let actual = ShardAddr::Tcp(listener.local_addr()?.to_string());
                Ok((Listener::Tcp(listener), actual))
            }
        }
    }

    /// Switches the accept loop to polling mode. Required for the
    /// daemon's drain path: a `signal(2)`-installed handler implies
    /// `SA_RESTART`, so a *blocking* accept would be transparently
    /// restarted after SIGTERM and the drain flag never observed.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when nonblocking and idle; otherwise the socket error.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_parse_and_print_round_trip() {
        for spec in ["unix:/tmp/shard0.sock", "tcp:127.0.0.1:7400"] {
            let addr = ShardAddr::parse(spec).unwrap();
            assert_eq!(addr.to_string(), spec);
        }
        assert!(ShardAddr::parse("unix:").is_err());
        assert!(ShardAddr::parse("tcp:nocolon").is_err());
        assert!(ShardAddr::parse("http://x").is_err());
    }

    #[test]
    fn tcp_port_zero_resolves_and_connects() {
        let (listener, actual) = Listener::bind(&ShardAddr::parse("tcp:127.0.0.1:0").unwrap())
            .expect("bind an ephemeral port");
        let ShardAddr::Tcp(hostport) = &actual else { panic!("tcp addr expected") };
        assert!(!hostport.ends_with(":0"), "{actual} must carry the assigned port");
        let _client = actual.connect().unwrap();
        let accepted = listener.accept().unwrap();
        accepted.shutdown();
    }

    #[test]
    fn unix_bind_replaces_a_stale_socket_file() {
        let dir = std::env::temp_dir().join(format!("asdr-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.sock");
        let addr = ShardAddr::Unix(path.clone());
        let (first, _) = Listener::bind(&addr).unwrap();
        drop(first); // socket file remains, as after a kill -9
        assert!(path.exists());
        let (second, _) = Listener::bind(&addr).expect("rebind over the stale file");
        let _client = addr.connect().unwrap();
        second.accept().unwrap().shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
