//! Cluster-wide statistics: per-shard serving snapshots, routing and
//! admission counters, cost-model accuracy, and the scaling-event log —
//! plus the hand-rolled JSON artifact the `asdr-cluster` binary writes
//! (no serde in this environment, same trade as the criterion shim).

use crate::autoscale::ScaleEvent;
use crate::cost::CostStats;
use asdr_obs::JsonWriter;
use asdr_serve::ServeStats;

/// One shard's slice of the cluster snapshot.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index (the consistent-hash ring id).
    pub shard: usize,
    /// Current worker-pool target.
    pub workers: usize,
    /// Predicted cost of the shard's admitted-but-unfinished requests,
    /// milliseconds (the quantity the admission budget bounds).
    pub outstanding_ms: f64,
    /// Requests this shard took as spill-over from a full home shard.
    pub spilled_in: u64,
    /// The shard service's own aggregate statistics.
    pub serve: ServeStats,
}

/// Remote-fleet failure-handling counters (all zero for the in-process
/// [`ShardRouter`](crate::ShardRouter), which cannot lose a shard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Shards currently off the ring (evicted and not yet rejoined).
    pub shards_lost: u64,
    /// Shards removed from the ring after consecutive health misses or a
    /// connection failure.
    pub evictions: u64,
    /// Evicted shards returned to the ring by a later successful probe.
    pub rejoins: u64,
    /// Requests duplicated to a replica after the hedge watermark.
    pub hedges: u64,
    /// Hedge races the replica won.
    pub hedge_wins: u64,
    /// Hedge races resolved by cancelling the loser.
    pub hedge_cancels: u64,
    /// In-flight requests resubmitted after their shard died.
    pub failovers: u64,
    /// Scene models pre-fetched on a new home after a ring change.
    pub rewarms: u64,
}

/// A point-in-time snapshot of the whole cluster; serialize with
/// [`ClusterStats::to_json`].
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Per-shard snapshots, indexed by ring id.
    pub shards: Vec<ShardStats>,
    /// Requests admitted to their consistent-hash home shard.
    pub routed_home: u64,
    /// Requests spilled to another shard (home full or over budget).
    pub spilled: u64,
    /// Requests refused outright (every shard over its cost budget).
    pub rejected: u64,
    /// Every autoscaler decision, in order.
    pub scale_events: Vec<ScaleEvent>,
    /// Cost-model accuracy (predicted vs. actual).
    pub cost: CostStats,
    /// Remote-fleet failure-handling counters.
    pub fleet: FleetStats,
}

impl ClusterStats {
    /// Requests completed across all shards.
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.requests).sum()
    }

    /// Frames rendered across all shards.
    pub fn frames(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.frames).sum()
    }

    /// Fresh fits across all shards — equals the distinct (scene, grid)
    /// count of the workload when cross-process/shard single-flight held
    /// (zero duplicate fits, the quantity the cluster smoke pins).
    pub fn total_fits(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.store.fits).sum()
    }

    /// Checkpoint loads across all shards.
    pub fn total_disk_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.store.disk_hits).sum()
    }

    /// Cold fits that waited on another process's (or shard's) lock file
    /// instead of duplicating work.
    pub fn lock_waits(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.store.lock_waits).sum()
    }

    /// Stale lock files broken.
    pub fn lock_steals(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.store.lock_steals).sum()
    }

    /// Deadlined requests across all shards.
    pub fn deadlined_requests(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.deadlined_requests).sum()
    }

    /// Deadline misses across all shards.
    pub fn deadline_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.deadline_misses).sum()
    }

    /// Cluster-wide deadline-miss rate (0 when nothing carried a deadline).
    pub fn miss_rate(&self) -> f64 {
        let deadlined = self.deadlined_requests();
        if deadlined == 0 {
            return 0.0;
        }
        self.deadline_misses() as f64 / deadlined as f64
    }

    /// Serializes the snapshot as the `asdr-cluster` JSON artifact,
    /// through the shared [`JsonWriter`] — the layout (and the float
    /// precisions) is pinned by `json_is_shape_stable` because
    /// `scripts/fleet_smoke.sh` greps these exact substrings.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj();
        w.gap("\n  ").key("shards").usize(self.shards.len());
        w.gap("\n  ").key("requests").u64(self.requests());
        w.key("frames").u64(self.frames());
        w.gap("\n  ").key("deadlined_requests").u64(self.deadlined_requests());
        w.key("deadline_misses").u64(self.deadline_misses());
        w.key("miss_rate").f64(self.miss_rate(), 4);
        w.gap("\n  ").key("routed_home").u64(self.routed_home);
        w.key("spilled").u64(self.spilled);
        w.key("rejected").u64(self.rejected);
        w.gap("\n  ").key("total_fits").u64(self.total_fits());
        w.key("total_disk_hits").u64(self.total_disk_hits());
        w.key("lock_waits").u64(self.lock_waits());
        w.key("lock_steals").u64(self.lock_steals());
        w.gap("\n  ").key("cost").obj();
        w.key("tracked_keys").usize(self.cost.tracked_keys);
        w.key("observations").u64(self.cost.observations);
        w.key("seeded_predictions").u64(self.cost.seeded_predictions);
        w.key("mean_abs_pct_error").f64(self.cost.mean_abs_pct_error, 4);
        w.close_obj();
        let fl = &self.fleet;
        w.gap("\n  ").key("fleet").obj();
        w.key("shards_lost").u64(fl.shards_lost);
        w.key("evictions").u64(fl.evictions);
        w.key("rejoins").u64(fl.rejoins);
        w.key("hedges").u64(fl.hedges);
        w.key("hedge_wins").u64(fl.hedge_wins);
        w.key("hedge_cancels").u64(fl.hedge_cancels);
        w.key("failovers").u64(fl.failovers);
        w.key("rewarms").u64(fl.rewarms);
        w.close_obj();
        w.gap("\n  ").key("scale_events").arr();
        for e in &self.scale_events {
            w.obj();
            w.key("at_ms").u64(e.at_ms);
            w.key("shard").usize(e.shard);
            w.key("from").usize(e.from);
            w.key("to").usize(e.to);
            w.key("miss_rate").f64(e.miss_rate, 4);
            w.key("reason").str_val(e.reason.as_str());
            w.close_obj();
        }
        w.close_arr();
        w.gap("\n  ").key("per_shard").arr();
        for s in &self.shards {
            let v = &s.serve;
            w.gap("\n    ").obj();
            w.key("shard").usize(s.shard);
            w.key("workers").usize(s.workers);
            w.key("outstanding_ms").f64(s.outstanding_ms, 1);
            w.key("spilled_in").u64(s.spilled_in);
            w.key("requests").u64(v.requests);
            w.key("frames").u64(v.frames);
            w.key("throughput_fps").f64(v.throughput_fps, 3);
            w.key("p50_latency_ms").f64(v.p50_latency_ms, 3);
            w.key("p95_latency_ms").f64(v.p95_latency_ms, 3);
            w.key("deadlined_requests").u64(v.deadlined_requests);
            w.key("deadline_misses").u64(v.deadline_misses);
            w.key("fits").u64(v.store.fits);
            w.key("disk_hits").u64(v.store.disk_hits);
            w.key("lock_waits").u64(v.store.lock_waits);
            w.close_obj();
        }
        w.raw("\n  ").close_arr();
        w.raw("\n").close_obj();
        w.raw("\n");
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdr_serve::StoreStats;

    fn serve_stats(requests: u64, deadlined: u64, misses: u64, fits: u64) -> ServeStats {
        ServeStats {
            requests,
            frames: requests * 2,
            reused_frames: requests,
            deadlined_requests: deadlined,
            deadline_misses: misses,
            p50_latency_ms: 10.0,
            p95_latency_ms: 25.0,
            mean_queue_wait_ms: 2.0,
            throughput_fps: 12.0,
            probe_points: 100,
            probe_points_avoided_est: 50.0,
            store: StoreStats { fits, ..StoreStats::default() },
        }
    }

    fn sample() -> ClusterStats {
        ClusterStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    workers: 2,
                    outstanding_ms: 12.5,
                    spilled_in: 1,
                    serve: serve_stats(4, 2, 1, 2),
                },
                ShardStats {
                    shard: 1,
                    workers: 1,
                    outstanding_ms: 0.0,
                    spilled_in: 0,
                    serve: serve_stats(2, 2, 0, 1),
                },
            ],
            routed_home: 5,
            spilled: 1,
            rejected: 0,
            scale_events: vec![ScaleEvent {
                at_ms: 40,
                shard: 0,
                from: 1,
                to: 2,
                miss_rate: 0.5,
                reason: crate::autoscale::ScaleReason::Miss,
            }],
            cost: CostStats {
                tracked_keys: 2,
                observations: 6,
                seeded_predictions: 3,
                mean_abs_pct_error: 0.25,
            },
            fleet: FleetStats { evictions: 1, hedges: 2, hedge_wins: 1, ..FleetStats::default() },
        }
    }

    #[test]
    fn aggregates_sum_over_shards() {
        let s = sample();
        assert_eq!(s.requests(), 6);
        assert_eq!(s.frames(), 12);
        assert_eq!(s.total_fits(), 3);
        assert_eq!(s.deadlined_requests(), 4);
        assert_eq!(s.deadline_misses(), 1);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn json_is_shape_stable() {
        let json = sample().to_json();
        for key in [
            "\"shards\": 2",
            "\"total_fits\": 3",
            "\"miss_rate\": 0.2500",
            "\"routed_home\": 5",
            "\"scale_events\": [{\"at_ms\": 40",
            "\"per_shard\": [",
            "\"cost\": {\"tracked_keys\": 2",
            "\"mean_abs_pct_error\": 0.2500",
            "\"fleet\": {\"shards_lost\": 0, \"evictions\": 1",
            "\"hedge_wins\": 1",
            "\"reason\": \"miss\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
