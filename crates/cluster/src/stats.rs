//! Cluster-wide statistics: per-shard serving snapshots, routing and
//! admission counters, cost-model accuracy, and the scaling-event log —
//! plus the hand-rolled JSON artifact the `asdr-cluster` binary writes
//! (no serde in this environment, same trade as the criterion shim).

use crate::autoscale::ScaleEvent;
use crate::cost::CostStats;
use asdr_serve::ServeStats;

/// One shard's slice of the cluster snapshot.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index (the consistent-hash ring id).
    pub shard: usize,
    /// Current worker-pool target.
    pub workers: usize,
    /// Predicted cost of the shard's admitted-but-unfinished requests,
    /// milliseconds (the quantity the admission budget bounds).
    pub outstanding_ms: f64,
    /// Requests this shard took as spill-over from a full home shard.
    pub spilled_in: u64,
    /// The shard service's own aggregate statistics.
    pub serve: ServeStats,
}

/// Remote-fleet failure-handling counters (all zero for the in-process
/// [`ShardRouter`](crate::ShardRouter), which cannot lose a shard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Shards currently off the ring (evicted and not yet rejoined).
    pub shards_lost: u64,
    /// Shards removed from the ring after consecutive health misses or a
    /// connection failure.
    pub evictions: u64,
    /// Evicted shards returned to the ring by a later successful probe.
    pub rejoins: u64,
    /// Requests duplicated to a replica after the hedge watermark.
    pub hedges: u64,
    /// Hedge races the replica won.
    pub hedge_wins: u64,
    /// Hedge races resolved by cancelling the loser.
    pub hedge_cancels: u64,
    /// In-flight requests resubmitted after their shard died.
    pub failovers: u64,
    /// Scene models pre-fetched on a new home after a ring change.
    pub rewarms: u64,
}

/// A point-in-time snapshot of the whole cluster; serialize with
/// [`ClusterStats::to_json`].
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Per-shard snapshots, indexed by ring id.
    pub shards: Vec<ShardStats>,
    /// Requests admitted to their consistent-hash home shard.
    pub routed_home: u64,
    /// Requests spilled to another shard (home full or over budget).
    pub spilled: u64,
    /// Requests refused outright (every shard over its cost budget).
    pub rejected: u64,
    /// Every autoscaler decision, in order.
    pub scale_events: Vec<ScaleEvent>,
    /// Cost-model accuracy (predicted vs. actual).
    pub cost: CostStats,
    /// Remote-fleet failure-handling counters.
    pub fleet: FleetStats,
}

impl ClusterStats {
    /// Requests completed across all shards.
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.requests).sum()
    }

    /// Frames rendered across all shards.
    pub fn frames(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.frames).sum()
    }

    /// Fresh fits across all shards — equals the distinct (scene, grid)
    /// count of the workload when cross-process/shard single-flight held
    /// (zero duplicate fits, the quantity the cluster smoke pins).
    pub fn total_fits(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.store.fits).sum()
    }

    /// Checkpoint loads across all shards.
    pub fn total_disk_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.store.disk_hits).sum()
    }

    /// Cold fits that waited on another process's (or shard's) lock file
    /// instead of duplicating work.
    pub fn lock_waits(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.store.lock_waits).sum()
    }

    /// Stale lock files broken.
    pub fn lock_steals(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.store.lock_steals).sum()
    }

    /// Deadlined requests across all shards.
    pub fn deadlined_requests(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.deadlined_requests).sum()
    }

    /// Deadline misses across all shards.
    pub fn deadline_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.serve.deadline_misses).sum()
    }

    /// Cluster-wide deadline-miss rate (0 when nothing carried a deadline).
    pub fn miss_rate(&self) -> f64 {
        let deadlined = self.deadlined_requests();
        if deadlined == 0 {
            return 0.0;
        }
        self.deadline_misses() as f64 / deadlined as f64
    }

    /// Serializes the snapshot as the `asdr-cluster` JSON artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"shards\": {},\n", self.shards.len()));
        out.push_str(&format!(
            "  \"requests\": {}, \"frames\": {},\n",
            self.requests(),
            self.frames()
        ));
        out.push_str(&format!(
            "  \"deadlined_requests\": {}, \"deadline_misses\": {}, \"miss_rate\": {:.4},\n",
            self.deadlined_requests(),
            self.deadline_misses(),
            self.miss_rate()
        ));
        out.push_str(&format!(
            "  \"routed_home\": {}, \"spilled\": {}, \"rejected\": {},\n",
            self.routed_home, self.spilled, self.rejected
        ));
        out.push_str(&format!(
            "  \"total_fits\": {}, \"total_disk_hits\": {}, \"lock_waits\": {}, \"lock_steals\": {},\n",
            self.total_fits(),
            self.total_disk_hits(),
            self.lock_waits(),
            self.lock_steals()
        ));
        out.push_str(&format!(
            concat!(
                "  \"cost\": {{\"tracked_keys\": {}, \"observations\": {},",
                " \"seeded_predictions\": {}, \"mean_abs_pct_error\": {:.4}}},\n"
            ),
            self.cost.tracked_keys,
            self.cost.observations,
            self.cost.seeded_predictions,
            self.cost.mean_abs_pct_error
        ));
        let fl = &self.fleet;
        out.push_str(&format!(
            concat!(
                "  \"fleet\": {{\"shards_lost\": {}, \"evictions\": {}, \"rejoins\": {},",
                " \"hedges\": {}, \"hedge_wins\": {}, \"hedge_cancels\": {},",
                " \"failovers\": {}, \"rewarms\": {}}},\n"
            ),
            fl.shards_lost,
            fl.evictions,
            fl.rejoins,
            fl.hedges,
            fl.hedge_wins,
            fl.hedge_cancels,
            fl.failovers,
            fl.rewarms
        ));
        out.push_str("  \"scale_events\": [");
        for (i, e) in self.scale_events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                concat!(
                    "{{\"at_ms\": {}, \"shard\": {}, \"from\": {}, \"to\": {},",
                    " \"miss_rate\": {:.4}, \"reason\": \"{}\"}}"
                ),
                e.at_ms,
                e.shard,
                e.from,
                e.to,
                e.miss_rate,
                e.reason.as_str()
            ));
        }
        out.push_str("],\n");
        out.push_str("  \"per_shard\": [\n");
        for (i, s) in self.shards.iter().enumerate() {
            let v = &s.serve;
            out.push_str(&format!(
                concat!(
                    "    {{\"shard\": {}, \"workers\": {}, \"outstanding_ms\": {:.1},",
                    " \"spilled_in\": {}, \"requests\": {}, \"frames\": {},",
                    " \"throughput_fps\": {:.3}, \"p50_latency_ms\": {:.3},",
                    " \"p95_latency_ms\": {:.3}, \"deadlined_requests\": {},",
                    " \"deadline_misses\": {}, \"fits\": {}, \"disk_hits\": {},",
                    " \"lock_waits\": {}}}{}\n"
                ),
                s.shard,
                s.workers,
                s.outstanding_ms,
                s.spilled_in,
                v.requests,
                v.frames,
                v.throughput_fps,
                v.p50_latency_ms,
                v.p95_latency_ms,
                v.deadlined_requests,
                v.deadline_misses,
                v.store.fits,
                v.store.disk_hits,
                v.store.lock_waits,
                if i + 1 < self.shards.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdr_serve::StoreStats;

    fn serve_stats(requests: u64, deadlined: u64, misses: u64, fits: u64) -> ServeStats {
        ServeStats {
            requests,
            frames: requests * 2,
            reused_frames: requests,
            deadlined_requests: deadlined,
            deadline_misses: misses,
            p50_latency_ms: 10.0,
            p95_latency_ms: 25.0,
            mean_queue_wait_ms: 2.0,
            throughput_fps: 12.0,
            probe_points: 100,
            probe_points_avoided_est: 50.0,
            store: StoreStats { fits, ..StoreStats::default() },
        }
    }

    fn sample() -> ClusterStats {
        ClusterStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    workers: 2,
                    outstanding_ms: 12.5,
                    spilled_in: 1,
                    serve: serve_stats(4, 2, 1, 2),
                },
                ShardStats {
                    shard: 1,
                    workers: 1,
                    outstanding_ms: 0.0,
                    spilled_in: 0,
                    serve: serve_stats(2, 2, 0, 1),
                },
            ],
            routed_home: 5,
            spilled: 1,
            rejected: 0,
            scale_events: vec![ScaleEvent {
                at_ms: 40,
                shard: 0,
                from: 1,
                to: 2,
                miss_rate: 0.5,
                reason: crate::autoscale::ScaleReason::Miss,
            }],
            cost: CostStats {
                tracked_keys: 2,
                observations: 6,
                seeded_predictions: 3,
                mean_abs_pct_error: 0.25,
            },
            fleet: FleetStats { evictions: 1, hedges: 2, hedge_wins: 1, ..FleetStats::default() },
        }
    }

    #[test]
    fn aggregates_sum_over_shards() {
        let s = sample();
        assert_eq!(s.requests(), 6);
        assert_eq!(s.frames(), 12);
        assert_eq!(s.total_fits(), 3);
        assert_eq!(s.deadlined_requests(), 4);
        assert_eq!(s.deadline_misses(), 1);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn json_is_shape_stable() {
        let json = sample().to_json();
        for key in [
            "\"shards\": 2",
            "\"total_fits\": 3",
            "\"miss_rate\": 0.2500",
            "\"routed_home\": 5",
            "\"scale_events\": [{\"at_ms\": 40",
            "\"per_shard\": [",
            "\"cost\": {\"tracked_keys\": 2",
            "\"mean_abs_pct_error\": 0.2500",
            "\"fleet\": {\"shards_lost\": 0, \"evictions\": 1",
            "\"hedge_wins\": 1",
            "\"reason\": \"miss\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
