//! NeuRex-like accelerator simulator (ISCA'23 baseline of the paper).
//!
//! NeuRex accelerates Instant-NGP inference with a *subgrid-based* encoding:
//! the input coordinate grid is partitioned so only part of the hash table
//! needs to live in an on-chip grid buffer at a time, and a digital MAC
//! array executes the MLPs. It runs the **full fixed workload** — no
//! difficulty-aware sampling, no color decoupling — which is exactly the
//! gap ASDR attacks. Its restructured encoding costs a small quality loss
//! (the paper reports −0.38 PSNR), which we reproduce mechanically by
//! quantizing the grid features to the 8-bit storage its buffer uses.

use asdr_core::algo::RenderStats;
use asdr_nerf::NgpModel;

/// NeuRex instance scaled to the same area budget as the corresponding ASDR
/// instance (the paper's methodology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeurexVariant {
    /// Server-class instance (compared against ASDR-Server / RTX 3070).
    Server,
    /// Edge-class instance (compared against ASDR-Edge / Xavier NX).
    Edge,
}

impl NeurexVariant {
    /// Parallel grid-buffer banks serving encoding lookups.
    pub fn encoder_banks(self) -> u32 {
        match self {
            NeurexVariant::Server => 48,
            NeurexVariant::Edge => 16,
        }
    }

    /// Digital MACs retired per cycle by the MLP array.
    pub fn macs_per_cycle(self) -> u64 {
        match self {
            NeurexVariant::Server => 4096,
            NeurexVariant::Edge => 768,
        }
    }

    /// Grid-buffer miss rate (subgrid refills from DRAM).
    pub fn miss_rate(self) -> f64 {
        match self {
            NeurexVariant::Server => 0.02,
            NeurexVariant::Edge => 0.05,
        }
    }

    /// Average power in watts (area-matched to ASDR instances).
    pub fn power_w(self) -> f64 {
        match self {
            NeurexVariant::Server => 25.0,
            NeurexVariant::Edge => 5.0,
        }
    }
}

/// Clock frequency of the NeuRex model (same 1 GHz node as ASDR).
pub const NEUREX_CLOCK_HZ: f64 = 1.0e9;

/// DRAM refill penalty per grid-buffer miss, in cycles (amortized burst).
pub const MISS_PENALTY_CYCLES: f64 = 24.0;

/// Simulated NeuRex frame performance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeurexPerf {
    /// Encoding-stage time (s).
    pub encoding_s: f64,
    /// MLP-stage time (s).
    pub mlp_s: f64,
    /// Total frame time (s); stages are pipelined.
    pub total_s: f64,
    /// Frame energy (J).
    pub energy_j: f64,
}

impl NeurexPerf {
    /// Frames per second.
    pub fn fps(&self) -> f64 {
        1.0 / self.total_s.max(1e-12)
    }

    /// Frames per joule.
    pub fn frames_per_joule(&self) -> f64 {
        1.0 / self.energy_j.max(1e-18)
    }
}

/// Simulates one frame on NeuRex. `stats` must come from a *fixed-count,
/// full-color* render (NeuRex implements none of ASDR's algorithm
/// optimizations, though it does use early termination like the reference
/// CUDA code).
pub fn simulate_neurex(
    model: &NgpModel,
    stats: &RenderStats,
    variant: NeurexVariant,
) -> NeurexPerf {
    let cfg = model.encoder().config();
    let points = stats.total_encoded() as f64;
    // encoding: 8 lookups × levels per point over the banked grid buffer,
    // plus subgrid refills
    let accesses_per_point = (8 * cfg.levels) as f64;
    let enc_cycles = points * accesses_per_point / variant.encoder_banks() as f64
        + points * accesses_per_point * variant.miss_rate() * MISS_PENALTY_CYCLES
            / variant.encoder_banks() as f64;
    // MLP: dense digital MACs
    let macs_per_point = (model.density_mlp().macs() + model.color_mlp().macs()) as f64;
    let mlp_cycles = points * macs_per_point / variant.macs_per_cycle() as f64;
    let encoding_s = enc_cycles / NEUREX_CLOCK_HZ;
    let mlp_s = mlp_cycles / NEUREX_CLOCK_HZ;
    // encoding and MLP pipeline over points
    let total_s = encoding_s.max(mlp_s);
    NeurexPerf { encoding_s, mlp_s, total_s, energy_j: total_s * variant.power_w() }
}

/// Returns a copy of `model` with its grid features quantized to `bits`
/// (symmetric per-table scaling) — the quality model of NeuRex's 8-bit grid
/// buffer and, at lower widths, a general precision-ablation tool.
///
/// # Panics
///
/// Panics if `bits` is 0 or > 16.
pub fn quantize_model_features(model: &NgpModel, bits: u32) -> NgpModel {
    assert!((1..=16).contains(&bits), "bits out of range");
    let mut out = model.clone();
    let levels = out.encoder().config().levels;
    let q_levels = ((1u32 << (bits - 1)) - 1).max(1) as f32;
    for l in 0..levels {
        let table = out.encoder_mut().tables_mut().table_mut(l);
        let absmax = table.params().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-12);
        for v in table.params_mut() {
            *v = (*v / absmax * q_levels).round() / q_levels * absmax;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdr_core::algo::{render_reference, ExecPolicy, FrameEngine, RenderOptions, RenderOutput};
    use asdr_math::metrics::psnr;
    use asdr_nerf::fit::fit_ngp;
    use asdr_nerf::grid::GridConfig;
    use asdr_scenes::registry;

    fn setup() -> (NgpModel, asdr_math::Camera) {
        let m = fit_ngp(registry::handle("Lego").build().as_ref(), &GridConfig::tiny());
        let cam = registry::handle("Lego").camera(24, 24);
        (m, cam)
    }

    fn render(model: &NgpModel, cam: &asdr_math::Camera, opts: &RenderOptions) -> RenderOutput {
        FrameEngine::new(opts.clone(), ExecPolicy::Sequential)
            .expect("options are valid")
            .render_frame(model, cam)
    }

    #[test]
    fn server_outpaces_edge() {
        let (model, cam) = setup();
        let out = render(&model, &cam, &RenderOptions::instant_ngp(32));
        let s = simulate_neurex(&model, &out.stats, NeurexVariant::Server);
        let e = simulate_neurex(&model, &out.stats, NeurexVariant::Edge);
        assert!(s.total_s < e.total_s);
        assert!(s.fps() > e.fps());
    }

    #[test]
    fn quantized_model_loses_a_little_quality() {
        let (model, cam) = setup();
        let reference = render_reference(&model, &cam, 48);
        let nq = quantize_model_features(&model, 8);
        let img8 = render_reference(&nq, &cam, 48);
        let p8 = psnr(&img8, &reference);
        assert!(p8 > 30.0, "8-bit grid should be near-lossless: {p8}");
        let n4 = quantize_model_features(&model, 4);
        let img4 = render_reference(&n4, &cam, 48);
        let p4 = psnr(&img4, &reference);
        assert!(p4 < p8, "4-bit must hurt more: {p4} vs {p8}");
    }

    #[test]
    fn stage_times_are_positive_and_pipelined() {
        let (model, cam) = setup();
        let out = render(&model, &cam, &RenderOptions::instant_ngp(32));
        let p = simulate_neurex(&model, &out.stats, NeurexVariant::Server);
        assert!(p.encoding_s > 0.0 && p.mlp_s > 0.0);
        assert!((p.total_s - p.encoding_s.max(p.mlp_s)).abs() < 1e-12);
        assert!(p.energy_j > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_bit_quantization_panics() {
        let (model, _) = setup();
        let _ = quantize_model_features(&model, 0);
    }
}
