//! Roofline GPU models: RTX 3070 and Jetson Xavier NX.
//!
//! The paper measures Instant-NGP's CUDA implementation on real devices; we
//! do not have the hardware, so each stage is modelled with a classic
//! roofline: `time = max(flops / (peak·util), bytes / (bw·gather_eff)) +
//! serial overhead`, with the operation/byte counts taken from the
//! functional renderer's [`RenderStats`]. Hash-table gathers are random
//! 4–8-byte accesses, so the encoding stage sees a small fraction of peak
//! DRAM bandwidth — that is the GPU's fundamental handicap the paper
//! exploits (Fig. 4) and the reason the speedup ratios transfer even though
//! absolute times are modelled (DESIGN.md §1).

use asdr_core::algo::RenderStats;
use asdr_nerf::model::RadianceModel;

/// A GPU device description.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Device name.
    pub name: &'static str,
    /// Peak FP16/FP32-mixed throughput in FLOP/s achievable by the MLP
    /// kernels.
    pub peak_flops: f64,
    /// Peak DRAM bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Fraction of peak compute the small-MLP kernels reach.
    pub mlp_utilization: f64,
    /// Fraction of peak bandwidth random hash gathers reach.
    pub gather_efficiency: f64,
    /// Board power in watts under load.
    pub power_w: f64,
    /// Fixed per-frame serial overhead in seconds (launch/sync/compaction).
    pub frame_overhead_s: f64,
}

impl GpuSpec {
    /// NVIDIA RTX 3070: 20.3 TFLOPS FP32, 448 GB/s GDDR6; ~130 W average
    /// draw under this memory-bound workload.
    pub fn rtx3070() -> Self {
        GpuSpec {
            name: "RTX 3070",
            peak_flops: 20.3e12,
            mem_bw: 448e9,
            mlp_utilization: 0.45,
            gather_efficiency: 0.11,
            power_w: 130.0,
            frame_overhead_s: 1.2e-3,
        }
    }

    /// NVIDIA Jetson Xavier NX: 384-core Volta, ~1.7 TFLOPS FP16,
    /// 51.2 GB/s LPDDR4x; ~12 W average draw.
    pub fn xavier_nx() -> Self {
        GpuSpec {
            name: "Xavier NX",
            peak_flops: 1.7e12,
            mem_bw: 51.2e9,
            mlp_utilization: 0.30,
            gather_efficiency: 0.10,
            power_w: 12.0,
            frame_overhead_s: 2.5e-3,
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a message if any rate or fraction is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.peak_flops <= 0.0 || self.mem_bw <= 0.0 || self.power_w <= 0.0 {
            return Err("rates must be positive".into());
        }
        for f in [self.mlp_utilization, self.gather_efficiency] {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("fraction {f} outside [0,1]"));
            }
        }
        Ok(())
    }
}

/// Per-stage GPU timing/energy for one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuPerf {
    /// Encoding (hash gather + interpolation) time in seconds.
    pub encoding_s: f64,
    /// MLP (density + color) time in seconds.
    pub mlp_s: f64,
    /// Volume rendering + bookkeeping time in seconds.
    pub render_s: f64,
    /// Total frame time (stages + serial overhead).
    pub total_s: f64,
    /// Frame energy in joules.
    pub energy_j: f64,
}

impl GpuPerf {
    /// Frames per second.
    pub fn fps(&self) -> f64 {
        1.0 / self.total_s.max(1e-12)
    }

    /// Frames per joule.
    pub fn frames_per_joule(&self) -> f64 {
        1.0 / self.energy_j.max(1e-18)
    }
}

/// Bytes fetched per encoded point: 8 vertices × `feat_dim` features ×
/// 2 bytes (fp16) per level.
fn encoding_bytes_per_point(levels: usize, feat_dim: usize) -> f64 {
    (levels * 8 * feat_dim * 2) as f64
}

/// Simulates one frame on `spec` given renderer statistics and the model's
/// per-point stage FLOPs.
pub fn simulate_gpu<M: RadianceModel>(
    spec: &GpuSpec,
    model: &M,
    stats: &RenderStats,
    levels: usize,
    feat_dim: usize,
) -> GpuPerf {
    spec.validate().expect("invalid GPU spec");
    let (enc_flops, den_flops, col_flops) = model.stage_flops();
    let density_execs = stats.total_density() as f64;
    let color_execs = stats.total_color() as f64;

    // encoding: bandwidth-bound gather + interpolation FLOPs
    let enc_bytes = density_execs * encoding_bytes_per_point(levels, feat_dim);
    let enc_compute = density_execs * enc_flops as f64 / (spec.peak_flops * spec.mlp_utilization);
    let enc_mem = enc_bytes / (spec.mem_bw * spec.gather_efficiency);
    let encoding_s = enc_compute.max(enc_mem);

    // MLP: compute-bound at kernel utilization
    let mlp_flops = density_execs * den_flops as f64 + color_execs * col_flops as f64;
    let mlp_s = mlp_flops / (spec.peak_flops * spec.mlp_utilization);

    // volume rendering: ~20 FLOPs per composited point, streaming-friendly
    let render_flops = density_execs * 20.0 + stats.interpolated_points as f64 * 6.0;
    let render_s = render_flops / (spec.peak_flops * spec.mlp_utilization);

    let total_s = encoding_s + mlp_s + render_s + spec.frame_overhead_s;
    GpuPerf { encoding_s, mlp_s, render_s, total_s, energy_j: total_s * spec.power_w }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdr_core::algo::{ExecPolicy, FrameEngine, RenderOptions, RenderOutput};
    use asdr_nerf::fit::fit_ngp;
    use asdr_nerf::grid::GridConfig;
    use asdr_nerf::NgpModel;
    use asdr_scenes::registry;

    fn setup() -> (NgpModel, asdr_math::Camera) {
        let m = fit_ngp(registry::handle("Lego").build().as_ref(), &GridConfig::tiny());
        let cam = registry::handle("Lego").camera(24, 24);
        (m, cam)
    }

    fn render(model: &NgpModel, cam: &asdr_math::Camera, opts: &RenderOptions) -> RenderOutput {
        FrameEngine::new(opts.clone(), ExecPolicy::TileStealing { tile_size: 12 })
            .expect("options are valid")
            .render_frame(model, cam)
    }

    #[test]
    fn specs_validate() {
        GpuSpec::rtx3070().validate().unwrap();
        GpuSpec::xavier_nx().validate().unwrap();
        let mut bad = GpuSpec::rtx3070();
        bad.gather_efficiency = 2.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn edge_gpu_is_much_slower() {
        let (model, cam) = setup();
        let out = render(&model, &cam, &RenderOptions::instant_ngp(32));
        let cfg = model.encoder().config();
        let desktop =
            simulate_gpu(&GpuSpec::rtx3070(), &model, &out.stats, cfg.levels, cfg.feat_dim);
        let edge =
            simulate_gpu(&GpuSpec::xavier_nx(), &model, &out.stats, cfg.levels, cfg.feat_dim);
        // at the tiny test scale the fixed frame overhead blunts the ratio
        assert!(edge.total_s > 2.5 * desktop.total_s, "{} vs {}", edge.total_s, desktop.total_s);
    }

    #[test]
    fn software_optimizations_speed_up_the_gpu() {
        // Fig. 24: AS and AS+RA accelerate the CUDA implementation
        let (model, cam) = setup();
        let cfg = model.encoder().config().clone();
        let spec = GpuSpec::rtx3070();
        let base = render(&model, &cam, &RenderOptions::instant_ngp(32));
        let mut as_only = RenderOptions::asdr_default(32);
        as_only.approx_group = 1;
        let as_out = render(&model, &cam, &as_only);
        let asra = render(&model, &cam, &RenderOptions::asdr_default(32));
        let t_base = simulate_gpu(&spec, &model, &base.stats, cfg.levels, cfg.feat_dim).total_s;
        let t_as = simulate_gpu(&spec, &model, &as_out.stats, cfg.levels, cfg.feat_dim).total_s;
        let t_asra = simulate_gpu(&spec, &model, &asra.stats, cfg.levels, cfg.feat_dim).total_s;
        assert!(t_as < t_base, "AS should help: {t_as} vs {t_base}");
        assert!(t_asra <= t_as, "RA should add on top: {t_asra} vs {t_as}");
    }

    #[test]
    fn energy_follows_time() {
        let (model, cam) = setup();
        let out = render(&model, &cam, &RenderOptions::instant_ngp(32));
        let cfg = model.encoder().config();
        let p = simulate_gpu(&GpuSpec::rtx3070(), &model, &out.stats, cfg.levels, cfg.feat_dim);
        assert!((p.energy_j - p.total_s * 130.0).abs() < 1e-9);
        assert!(p.fps() > 0.0);
    }

    #[test]
    fn encoding_is_memory_bound_on_gpus() {
        // the premise of Challenge 1: hash gathers strangle the GPU
        let (model, cam) = setup();
        let out = render(&model, &cam, &RenderOptions::instant_ngp(32));
        let cfg = model.encoder().config();
        let p = simulate_gpu(&GpuSpec::xavier_nx(), &model, &out.stats, cfg.levels, cfg.feat_dim);
        assert!(p.encoding_s > 0.2 * p.mlp_s, "encoding should be a visible cost");
    }
}
