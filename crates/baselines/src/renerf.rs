//! Re-NeRF-style baseline: compressed model + naive sample reduction.
//!
//! The paper's Fig. 16 includes "Re-NeRF (sw)", a software optimization that
//! reduces work without sensing per-pixel difficulty and loses ≈2.06 PSNR on
//! average. Re-NeRF-class techniques compress the *model* (weight/feature
//! pruning and quantization) and cut work uniformly; we model both
//! mechanisms: grid features quantized to [`RENERF_FEATURE_BITS`] plus a
//! uniform halving of the sample count for every ray (the "naive reduction"
//! of Fig. 9(b)).

use crate::neurex::quantize_model_features;
use asdr_core::algo::{ExecPolicy, FrameEngine, RenderOptions, RenderOutput};
use asdr_math::Camera;
use asdr_nerf::NgpModel;

/// Feature bit width of the compressed Re-NeRF model — calibrated so its
/// quality loss lands near the paper's −2.06 PSNR while ASDR stays
/// near-lossless (see EXPERIMENTS.md).
pub const RENERF_FEATURE_BITS: u32 = 4;

/// Renders the Re-NeRF baseline: quantized features and uniform
/// `base_ns / reduction` samples, full color MLP, no difficulty awareness.
///
/// # Panics
///
/// Panics if `reduction == 0` or it does not divide `base_ns`.
pub fn render_renerf(
    model: &NgpModel,
    cam: &Camera,
    base_ns: usize,
    reduction: usize,
) -> RenderOutput {
    assert!(reduction > 0, "reduction must be positive");
    assert_eq!(base_ns % reduction, 0, "reduction must divide base_ns");
    let compressed = quantize_model_features(model, RENERF_FEATURE_BITS);
    FrameEngine::new(RenderOptions::instant_ngp(base_ns / reduction), ExecPolicy::default())
        .expect("instant_ngp options are always valid")
        .render_frame(&compressed, cam)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdr_core::algo::render_reference;
    use asdr_math::metrics::psnr;
    use asdr_nerf::fit::fit_ngp;
    use asdr_nerf::grid::GridConfig;
    use asdr_scenes::registry;

    #[test]
    fn naive_reduction_hurts_more_than_asdr() {
        // the Fig. 9 comparison: at ~the same budget, ASDR's decoupling
        // preserves quality better than naive halving
        let scene = registry::handle("Lego").build();
        let model = fit_ngp(&scene, &GridConfig::tiny());
        let cam = registry::handle("Lego").camera(24, 24);
        let reference = render_reference(&model, &cam, 64);

        let renerf = render_renerf(&model, &cam, 64, 2);
        let p_naive = psnr(&renerf.image, &reference);

        let mut asdr_opts = RenderOptions::instant_ngp(64);
        asdr_opts.approx_group = 2; // same color-budget reduction
        let asdr =
            FrameEngine::new(asdr_opts, ExecPolicy::default()).unwrap().render_frame(&model, &cam);
        let p_asdr = psnr(&asdr.image, &reference);

        assert!(p_asdr > p_naive, "ASDR {p_asdr} should beat naive {p_naive}");
        // and it halves the workload as intended
        assert_eq!(renerf.stats.planned_points, 24 * 24 * 32);
    }

    #[test]
    #[should_panic]
    fn non_dividing_reduction_panics() {
        let scene = registry::handle("Mic").build();
        let model = fit_ngp(&scene, &GridConfig::tiny());
        let cam = registry::handle("Mic").camera(4, 4);
        let _ = render_renerf(&model, &cam, 64, 7);
    }
}
