//! Baseline platforms the ASDR paper compares against (§6.1).
//!
//! * [`gpu`] — roofline timing/energy models of the NVIDIA RTX 3070
//!   (consumer GPU) and Jetson Xavier NX (edge device), driven by the exact
//!   operation counts the functional renderer measures. Also provides the
//!   "software-only" mode of Fig. 24 (ASDR's algorithms on the GPU).
//! * [`neurex`] — a NeuRex-like accelerator simulator (subgrid-based
//!   encoding with an on-chip grid buffer and a digital MAC MLP engine), in
//!   server and edge variants, including its quality model (quantized
//!   encoding).
//! * [`renerf`] — the Re-NeRF-style baseline: naive sample reduction
//!   without difficulty awareness (the paper's Fig. 9(b) comparison and the
//!   Re-NeRF row of Fig. 16).
//!
//! The strawman CIM design (Fig. 20) lives in
//! [`asdr_core::arch::chip::ChipOptions::strawman`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gpu;
pub mod neurex;
pub mod renerf;

pub use gpu::{simulate_gpu, GpuPerf, GpuSpec};
pub use neurex::{simulate_neurex, NeurexPerf, NeurexVariant};
