//! Wall-clock benchmark of the frame engine's execution policies and of
//! sequence plan reuse.
//!
//! The frame benches render an adaptive-sampled frame, where per-row cost is
//! uneven: `StaticRows` leaves workers idle while the heaviest block
//! finishes, `TileStealing` rebalances — that delta is the point of the
//! bench. The sequence benches render a 4-frame Pulse animation with and
//! without carrying the sample plan across frames.

use asdr_core::algo::{ExecPolicy, FrameEngine, PlanPolicy, RenderOptions, SequenceFrame};
use asdr_nerf::fit::fit_ngp;
use asdr_nerf::grid::GridConfig;
use asdr_nerf::NgpModel;
use asdr_scenes::animated::PulseScene;
use asdr_scenes::registry;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_exec_policies(c: &mut Criterion) {
    let model = fit_ngp(registry::handle("Lego").build().as_ref(), &GridConfig::tiny());
    let cam = registry::handle("Lego").camera(32, 32);
    let opts = RenderOptions::asdr_default(48);

    let mut g = c.benchmark_group("engine_frame_32x32");
    g.sample_size(10);
    for (name, policy) in [
        ("static_rows", ExecPolicy::StaticRows),
        ("tile_stealing_8", ExecPolicy::TileStealing { tile_size: 8 }),
    ] {
        let engine = FrameEngine::new(opts.clone(), policy).expect("valid options");
        g.bench_function(name, |b| b.iter(|| black_box(engine.render_frame(&model, &cam))));
    }
    g.finish();
}

fn bench_plan_reuse(c: &mut Criterion) {
    let grid = GridConfig::tiny();
    let cam = registry::handle("Pulse").camera(24, 24);
    let models: Vec<NgpModel> =
        (0..4).map(|i| fit_ngp(&PulseScene::at_phase(0.30 + i as f32 * 0.02), &grid)).collect();
    let frames: Vec<_> = models.iter().map(|m| SequenceFrame::new(m, cam.clone())).collect();
    let engine = FrameEngine::new(
        RenderOptions::asdr_default(48),
        ExecPolicy::TileStealing { tile_size: 8 },
    )
    .expect("valid options");

    let mut g = c.benchmark_group("engine_sequence_4x24x24");
    g.sample_size(10);
    g.bench_function("per_frame_probe", |b| {
        b.iter(|| black_box(engine.render_sequence(&frames, &PlanPolicy::PerFrame).unwrap()))
    });
    g.bench_function("plan_reuse_4", |b| {
        b.iter(|| {
            black_box(
                engine.render_sequence(&frames, &PlanPolicy::Reuse { refresh_every: 4 }).unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_exec_policies, bench_plan_reuse);
criterion_main!(benches);
