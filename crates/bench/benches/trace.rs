//! Wall-clock benchmark of the trace subsystem: binary codec throughput
//! on a ~1000-request synthetic trace, and the k-medoids selection pass
//! of phase sampling.
//!
//! The generator runs once in setup; the benches measure the pure
//! encode/decode/sample paths a capture or a `asdr-trace sample`
//! invocation spends its time in.

use asdr_serve::trace::source::drain;
use asdr_serve::trace::{format, sample_trace, SyntheticSource, TimedRequest};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// ~1000 arrivals over 50 simulated seconds, mixed scenes and deadlines.
fn fixture() -> Vec<TimedRequest> {
    let spec = "poisson:rate=20,duration=50s,seed=13,resolution=32,deadline=300,zipf=1.1";
    drain(&mut SyntheticSource::from_spec(spec).expect("valid spec"))
}

fn bench_codec(c: &mut Criterion) {
    let entries = fixture();
    let bytes = format::encode(&entries, None);
    let mut g = c.benchmark_group("trace_codec_1k");
    g.bench_function("encode", |b| b.iter(|| black_box(format::encode(&entries, None))));
    g.bench_function("decode", |b| {
        b.iter(|| black_box(format::decode(&bytes).expect("round-trip decodes")))
    });
    g.finish();
}

fn bench_sample(c: &mut Criterion) {
    let entries = fixture();
    let mut g = c.benchmark_group("trace_sample_25w");
    g.sample_size(10);
    // 50s / 2s windows = 25 fingerprints through BUILD + PAM swaps
    g.bench_function("kmedoids_k4", |b| {
        b.iter(|| black_box(sample_trace(&entries, 2000, 4, 0).expect("non-empty trace")))
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_sample);
criterion_main!(benches);
