//! Wall-clock benchmark of the register-cache (LRU, all-to-all comparator
//! model).

use asdr_core::arch::RegCache;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_regcache(c: &mut Criterion) {
    // van der Corput stream: realistic mixed reuse distances
    let stream: Vec<u64> = (1u64..4097).map(|i| i.trailing_zeros() as u64 * 131 + i % 7).collect();

    for cap in [2usize, 8, 16] {
        c.bench_function(&format!("regcache_access_cap{cap}"), |b| {
            let mut cache = RegCache::new(cap);
            let mut i = 0;
            b.iter(|| {
                let hit = cache.access(black_box(stream[i % stream.len()]));
                i += 1;
                black_box(hit)
            })
        });
    }
}

criterion_group!(benches, bench_regcache);
criterion_main!(benches);
