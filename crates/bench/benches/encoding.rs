//! Wall-clock benchmark of the multi-resolution hash encoding kernel.

use asdr_math::Vec3;
use asdr_nerf::fit::fit_ngp;
use asdr_nerf::grid::GridConfig;
use asdr_scenes::registry;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_encoding(c: &mut Criterion) {
    let model = fit_ngp(registry::handle("Lego").build().as_ref(), &GridConfig::tiny());
    let enc = model.encoder();
    let mut out = vec![0.0f32; enc.encoded_dim()];
    let points: Vec<Vec3> = (0..256)
        .map(|i| {
            let t = i as f32 / 256.0;
            Vec3::new(t, (t * 7.3).fract(), (t * 3.1).fract())
        })
        .collect();

    c.bench_function("encode_point", |b| {
        let mut i = 0;
        b.iter(|| {
            enc.encode(black_box(points[i % points.len()]), &mut out);
            i += 1;
            black_box(&out);
        })
    });

    c.bench_function("encode_point_traced", |b| {
        let mut trace = Vec::with_capacity(enc.config().levels * 8);
        let mut i = 0;
        b.iter(|| {
            trace.clear();
            enc.encode_traced(black_box(points[i % points.len()]), &mut out, &mut trace);
            i += 1;
            black_box(trace.len());
        })
    });

    c.bench_function("vertex_accesses_level0", |b| {
        let mut i = 0;
        b.iter(|| {
            let a = enc.vertex_accesses(black_box(points[i % points.len()]), 0);
            i += 1;
            black_box(a);
        })
    });
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
