//! Wall-clock benchmark of the adaptive-sampling machinery (Eq. 3 probe and
//! plan interpolation).

use asdr_core::algo::adaptive::{choose_count, AdaptiveConfig, SamplePlan};
use asdr_core::algo::volrend::SamplePoint;
use asdr_math::Rgb;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_adaptive(c: &mut Criterion) {
    let base = 192;
    let cfg = AdaptiveConfig::paper(base);
    let pts: Vec<SamplePoint> = (0..base)
        .map(|i| SamplePoint {
            t: i as f32 * 0.01,
            sigma: if i % 7 == 0 { 30.0 } else { 0.5 },
            color: Rgb::splat((i % 11) as f32 / 11.0),
        })
        .collect();

    c.bench_function("choose_count_192", |b| {
        b.iter(|| black_box(choose_count(black_box(&pts), &cfg, base)))
    });

    let probes = vec![vec![12u32, 96, 48, 192, 24]; 5];
    c.bench_function("plan_from_probes_100x100", |b| {
        b.iter(|| black_box(SamplePlan::from_probes(100, 100, base, 25, black_box(&probes))))
    });
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
