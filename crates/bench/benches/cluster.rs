//! Wall-clock benchmarks of the cluster layer: routing-decision cost
//! (the pure overhead the router adds to every submit), cost-model
//! bookkeeping, the wire codec (the per-message tax every remote hop
//! pays), and a warm mixed-scene burst through a 2-shard cluster
//! (queue + router + budget admission + worker pools) to set against the
//! single-service `serve_burst` number.
//!
//! Fits happen once in setup; the benches measure steady-state serving.

use asdr_cluster::wire::{Message, WireRequest, WireResult};
use asdr_cluster::{CostModel, HashRing, ShardRouter};
use asdr_math::image::Image;
use asdr_nerf::grid::GridConfig;
use asdr_scenes::registry;
use asdr_serve::{ModelStore, Priority, RenderProfile, RenderRequest};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::path::PathBuf;

fn warm_profile() -> RenderProfile {
    RenderProfile { grid: GridConfig::tiny(), base_ns: 48, default_resolution: 24 }
}

fn bench_routing(c: &mut Criterion) {
    let ring = HashRing::new(4);
    let names = ["Mic", "Lego", "Pulse", "Palace", "Fountain", "Family"];
    let mut g = c.benchmark_group("cluster_route");
    g.bench_function("home_shard", |b| {
        b.iter(|| {
            for n in &names {
                black_box(ring.home(n));
            }
        })
    });
    g.finish();

    let cost = CostModel::new(&warm_profile());
    cost.observe("Mic", 24, 1, 55.0);
    let mut g = c.benchmark_group("cluster_cost");
    g.bench_function("predict_observe", |b| {
        b.iter(|| {
            black_box(cost.predict("Mic", 24, 2));
            cost.observe("Mic", 24, 1, 55.0);
        })
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let submit = Message::Submit {
        id: 7,
        req: WireRequest {
            // unset keeps the encoded bytes identical to the pre-trace
            // protocol, so the baseline entry stays comparable
            trace: asdr_obs::TraceId::UNSET,
            scene: "Mic".into(),
            resolution: 64,
            frames: 2,
            azimuth_step_deg: 1.5,
            priority: Priority::High,
            deadline_us: Some(250_000),
            camera: None,
        },
    };
    let mut img = Image::new(32, 32);
    for (i, px) in img.pixels_mut().iter_mut().enumerate() {
        px.r = i as f32 * 0.25;
        px.g = i as f32 * 0.5;
        px.b = i as f32;
    }
    let result = Message::Result {
        id: 7,
        result: WireResult {
            trace: asdr_obs::TraceId::UNSET,
            scene: "Mic".into(),
            resolution: 32,
            reused_frames: 1,
            queue_wait_us: 1_200,
            latency_us: 48_000,
            deadline_met: Some(true),
            completed_seq: 9,
            images: vec![img; 2],
        },
    };
    let result_bytes = result.encode();

    let mut g = c.benchmark_group("cluster_wire");
    g.bench_function("submit_roundtrip", |b| {
        b.iter(|| {
            let bytes = black_box(&submit).encode();
            black_box(Message::decode(&bytes).expect("own encoding decodes"));
        })
    });
    g.bench_function("result_32x32x2_decode", |b| {
        b.iter(|| black_box(Message::decode(black_box(&result_bytes)).expect("frames decode")))
    });
    g.finish();
}

fn bench_warm_burst(c: &mut Criterion) {
    let profile = warm_profile();
    let scenes = [registry::handle("Mic"), registry::handle("Lego")];
    let dir: PathBuf =
        std::env::temp_dir().join(format!("asdr_cluster_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = ModelStore::builder().dir(&dir).build();
        for s in &scenes {
            store.get_or_fit(s, &profile.grid); // pay the fits in setup
        }
    }
    let cluster = ShardRouter::builder(profile)
        .shards(2)
        .workers(1)
        .store_dir(&dir)
        .build()
        .expect("valid cluster configuration");
    let mut g = c.benchmark_group("cluster_burst_2shard_24x24");
    g.sample_size(10);
    g.bench_function("warm_6req", |b| {
        b.iter(|| {
            let tickets: Vec<_> = scenes
                .iter()
                .flat_map(|s| {
                    [
                        RenderRequest::frame(s.clone(), 24).with_priority(Priority::High),
                        RenderRequest::sequence(s.clone(), 24, 2),
                        RenderRequest::frame(s.clone(), 24).with_priority(Priority::Low),
                    ]
                })
                .map(|r| cluster.submit(r).expect("budget open"))
                .collect();
            for t in &tickets {
                black_box(t.wait().expect("request completed"));
            }
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_routing, bench_wire, bench_warm_burst);
criterion_main!(benches);
