//! Wall-clock benchmark of the volume-rendering (Eq. 1) kernels.

use asdr_core::algo::volrend::{
    composite, composite_early_term, composite_subsampled, SamplePoint,
};
use asdr_math::Rgb;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn ray_points(n: usize) -> Vec<SamplePoint> {
    (0..n)
        .map(|i| {
            let t = i as f32 * 0.02;
            // an opaque band in the middle of the ray
            let sigma = if (0.3..0.7).contains(&(t / (n as f32 * 0.02))) { 25.0 } else { 0.0 };
            SamplePoint { t, sigma, color: Rgb::new(0.6, 0.4, 0.2) }
        })
        .collect()
}

fn bench_volrend(c: &mut Criterion) {
    let pts = ray_points(192);
    c.bench_function("composite_192", |b| b.iter(|| black_box(composite(black_box(&pts)))));
    c.bench_function("composite_early_term_192", |b| {
        b.iter(|| black_box(composite_early_term(black_box(&pts))))
    });
    c.bench_function("composite_subsampled_192_stride4", |b| {
        b.iter(|| black_box(composite_subsampled(black_box(&pts), 4)))
    });
}

criterion_group!(benches, bench_volrend);
criterion_main!(benches);
