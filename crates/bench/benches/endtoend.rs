//! Wall-clock benchmark of full-frame rendering: fixed Instant-NGP sampling
//! vs the ASDR pipeline (adaptive + decoupled). The ASDR frame should be
//! measurably faster in pure software too (this is the Fig. 24 effect, here
//! measured rather than modelled).

use asdr_core::algo::{render, RenderOptions};
use asdr_nerf::fit::fit_ngp;
use asdr_nerf::grid::GridConfig;
use asdr_scenes::registry;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_endtoend(c: &mut Criterion) {
    let model = fit_ngp(registry::handle("Lego").build().as_ref(), &GridConfig::tiny());
    let cam = registry::handle("Lego").camera(32, 32);

    let mut g = c.benchmark_group("frame_32x32");
    g.sample_size(10);
    g.bench_function("instant_ngp_fixed48", |b| {
        b.iter(|| black_box(render(&model, &cam, &RenderOptions::instant_ngp(48))))
    });
    g.bench_function("asdr_adaptive_plus_decoupled", |b| {
        b.iter(|| black_box(render(&model, &cam, &RenderOptions::asdr_default(48))))
    });
    g.finish();
}

criterion_group!(benches, bench_endtoend);
criterion_main!(benches);
