//! Wall-clock benchmark of the density/color MLP forward passes.

use asdr_math::Vec3;
use asdr_nerf::fit::fit_ngp;
use asdr_nerf::grid::GridConfig;
use asdr_scenes::registry;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_mlp(c: &mut Criterion) {
    let model = fit_ngp(registry::handle("Mic").build().as_ref(), &GridConfig::tiny());
    let mut scratch = model.make_scratch();
    let p = Vec3::new(0.0, 0.45, 0.0);
    let dir = Vec3::new(0.3, -0.5, 0.8).normalized();

    c.bench_function("density_query", |b| {
        b.iter(|| black_box(model.query_density_into(black_box(p), &mut scratch)))
    });

    c.bench_function("density_plus_color_query", |b| {
        b.iter(|| black_box(model.query_point(black_box(p), black_box(dir), &mut scratch)))
    });

    let density = model.density_mlp();
    let x = vec![0.1f32; density.in_dim()];
    let mut y = vec![0.0f32; density.out_dim()];
    let mut s = density.make_scratch();
    c.bench_function("density_mlp_forward_raw", |b| {
        b.iter(|| {
            density.forward_scratch(black_box(&x), &mut y, &mut s);
            black_box(&y);
        })
    });
}

criterion_group!(benches, bench_mlp);
criterion_main!(benches);
