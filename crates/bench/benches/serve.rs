//! Wall-clock benchmark of the serving layer: the store's warm lookup path
//! and a warm mixed-scene burst through the full service (queue, scheduler,
//! worker pool, plan reuse).
//!
//! Fits happen once in setup; the benches measure steady-state serving, the
//! regime the store exists for.

use asdr_bench::experiments::serve_exp::REQUESTS_PER_SCENE;
use asdr_nerf::grid::GridConfig;
use asdr_scenes::registry;
use asdr_serve::{ModelStore, Priority, RenderProfile, RenderRequest, RenderService};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn warm_profile() -> RenderProfile {
    RenderProfile { grid: GridConfig::tiny(), base_ns: 48, default_resolution: 24 }
}

fn bench_store_lookup(c: &mut Criterion) {
    let store = ModelStore::builder().in_memory_only().build();
    let scene = registry::handle("Mic");
    let grid = GridConfig::tiny();
    store.get_or_fit(&scene, &grid); // pay the fit in setup
    let mut g = c.benchmark_group("serve_store");
    g.bench_function("memory_hit", |b| b.iter(|| black_box(store.get_or_fit(&scene, &grid))));
    g.finish();
}

fn bench_warm_burst(c: &mut Criterion) {
    let profile = warm_profile();
    let scenes = [registry::handle("Mic"), registry::handle("Lego")];
    let store = Arc::new(ModelStore::builder().in_memory_only().build());
    for s in &scenes {
        store.get_or_fit(s, &profile.grid); // pay the fits in setup
    }
    let service = RenderService::builder(profile)
        .store(store)
        .queue_capacity(scenes.len() * REQUESTS_PER_SCENE * 4)
        .build()
        .expect("valid serve profile");
    let mut g = c.benchmark_group("serve_burst_2scene_24x24");
    g.sample_size(10);
    g.bench_function("warm_6req", |b| {
        b.iter(|| {
            let tickets: Vec<_> = scenes
                .iter()
                .flat_map(|s| {
                    [
                        RenderRequest::frame(s.clone(), 24).with_priority(Priority::High),
                        RenderRequest::sequence(s.clone(), 24, 2),
                        RenderRequest::frame(s.clone(), 24).with_priority(Priority::Low),
                    ]
                })
                .map(|r| service.submit(r).expect("queue sized for the burst"))
                .collect();
            for t in &tickets {
                black_box(t.wait().expect("request completed"));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_store_lookup, bench_warm_burst);
criterion_main!(benches);
