//! Experiment harness regenerating every table and figure of the ASDR paper
//! (§6, Tables 1–4, Figures 4–27 where they carry data).
//!
//! Each experiment lives in [`experiments`] as a `run_*` function returning
//! a plain data struct plus a `print_*` function emitting the table the
//! paper reports. The `experiments` binary dispatches one subcommand per
//! table/figure; integration tests call the `run_*` functions directly at
//! [`Scale::Tiny`].
//!
//! ```no_run
//! use asdr_bench::{Harness, Scale};
//! use asdr_bench::experiments::quality;
//!
//! let mut h = Harness::new(Scale::Tiny);
//! let rows = quality::run_fig16(&mut h, &[asdr_scenes::SceneId::Mic]);
//! quality::print_fig16(&rows);
//! ```

#![warn(missing_docs)]

pub mod experiments;

use asdr_core::algo::adaptive::AdaptiveConfig;
use asdr_core::algo::RenderOptions;
use asdr_math::{Camera, Image};
use asdr_nerf::fit::fit_ngp;
use asdr_nerf::grid::GridConfig;
use asdr_nerf::tensorf::{TensoRfConfig, TensoRfModel};
use asdr_nerf::NgpModel;
use asdr_scenes::gt::render_ground_truth;
use asdr_scenes::registry::{build_sdf, standard_camera};
use asdr_scenes::SceneId;
use std::collections::HashMap;
use std::sync::Arc;

/// Experiment scale: `Tiny` for tests/smoke runs, `Small` for the default
/// evaluation (the published numbers in EXPERIMENTS.md), `Paper` for the
/// full-size grid (slow; hours).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 48×48 frames, 8-level grid — seconds per experiment.
    Tiny,
    /// 96×96 frames, 16-level grid — the default evaluation scale.
    Small,
    /// 192×192 frames, paper-size grid (T = 2^19, 512³ finest level).
    Paper,
}

impl Scale {
    /// Grid configuration for this scale.
    pub fn grid(self) -> GridConfig {
        match self {
            Scale::Tiny => GridConfig::tiny(),
            Scale::Small => GridConfig::small(),
            Scale::Paper => GridConfig::paper(),
        }
    }

    /// Frame resolution (square).
    pub fn resolution(self) -> u32 {
        match self {
            Scale::Tiny => 48,
            Scale::Small => 96,
            Scale::Paper => 192,
        }
    }

    /// Full per-ray sample count (the paper's 192, scaled).
    pub fn base_ns(self) -> usize {
        match self {
            Scale::Tiny => 48,
            Scale::Small => 96,
            Scale::Paper => 192,
        }
    }

    /// TensoRF fitting configuration.
    pub fn tensorf(self) -> TensoRfConfig {
        match self {
            Scale::Tiny => TensoRfConfig::tiny(),
            _ => TensoRfConfig::small(),
        }
    }

    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Caches fitted models and ground-truth renders across experiments within
/// one process.
#[derive(Debug)]
pub struct Harness {
    scale: Scale,
    models: HashMap<SceneId, Arc<NgpModel>>,
    tensorf_models: HashMap<SceneId, Arc<TensoRfModel>>,
    gts: HashMap<SceneId, Image>,
}

impl Harness {
    /// Creates an empty harness at the given scale.
    pub fn new(scale: Scale) -> Self {
        Harness {
            scale,
            models: HashMap::new(),
            tensorf_models: HashMap::new(),
            gts: HashMap::new(),
        }
    }

    /// The harness scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The standard evaluation camera for a scene at this scale.
    pub fn camera(&self, id: SceneId) -> Camera {
        let r = self.scale.resolution();
        standard_camera(id, r, r)
    }

    /// The fitted NGP model for a scene (fitted once, cached).
    pub fn model(&mut self, id: SceneId) -> Arc<NgpModel> {
        let scale = self.scale;
        self.models
            .entry(id)
            .or_insert_with(|| {
                let scene = build_sdf(id);
                Arc::new(fit_ngp(&scene, &scale.grid()))
            })
            .clone()
    }

    /// The fitted TensoRF model for a scene (fitted once, cached).
    pub fn tensorf_model(&mut self, id: SceneId) -> Arc<TensoRfModel> {
        let scale = self.scale;
        self.tensorf_models
            .entry(id)
            .or_insert_with(|| {
                let scene = build_sdf(id);
                Arc::new(TensoRfModel::fit(&scene, &scale.tensorf(), 0))
            })
            .clone()
    }

    /// The ASDR render options at this scale: adaptive sampling with a
    /// resolution-scaled probe pitch plus group-2 color decoupling.
    pub fn asdr_options(&self) -> RenderOptions {
        let base_ns = self.scale.base_ns();
        RenderOptions {
            base_ns,
            adaptive: Some(AdaptiveConfig::for_resolution(base_ns, self.scale.resolution())),
            approx_group: 2,
            early_termination: false,
        }
    }

    /// Adaptive sampling only (no color decoupling) at this scale.
    pub fn as_only_options(&self) -> RenderOptions {
        RenderOptions { approx_group: 1, ..self.asdr_options() }
    }

    /// The fixed-count Instant-NGP baseline options at this scale.
    pub fn ngp_options(&self) -> RenderOptions {
        RenderOptions::instant_ngp(self.scale.base_ns())
    }

    /// Analytic ground-truth render for a scene (cached).
    pub fn ground_truth(&mut self, id: SceneId) -> Image {
        let scale = self.scale;
        self.gts
            .entry(id)
            .or_insert_with(|| {
                let scene = build_sdf(id);
                let cam = {
                    let r = scale.resolution();
                    standard_camera(id, r, r)
                };
                render_ground_truth(&scene, &cam, scale.base_ns() * 3)
            })
            .clone()
    }
}

/// Formats a speedup/ratio column as the paper does (`12.86×`).
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Prints a Markdown-style table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a Markdown-style table header and separator.
pub fn print_header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}
