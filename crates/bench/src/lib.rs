//! Experiment harness regenerating every table and figure of the ASDR paper
//! (§6, Tables 1–4, Figures 4–27 where they carry data).
//!
//! Each experiment lives in [`experiments`] as a `run_*` function returning
//! a plain data struct plus a `print_*` function emitting the table the
//! paper reports. The `experiments` binary dispatches one subcommand per
//! table/figure; integration tests call the `run_*` functions directly at
//! [`Scale::Tiny`].
//!
//! ```no_run
//! use asdr_bench::{Harness, Scale};
//! use asdr_bench::experiments::quality;
//! use asdr_scenes::registry;
//!
//! let mut h = Harness::new(Scale::Tiny);
//! let rows = quality::run_fig16(&mut h, &[registry::handle("Mic")]);
//! quality::print_fig16(&rows);
//! ```

#![warn(missing_docs)]

pub mod experiments;

use asdr_core::algo::adaptive::AdaptiveConfig;
use asdr_core::algo::{ExecPolicy, FrameEngine, RenderOptions, RenderOutput};
use asdr_math::{Camera, Image};
use asdr_nerf::grid::GridConfig;
use asdr_nerf::model::RadianceModel;
use asdr_nerf::tensorf::{TensoRfConfig, TensoRfModel};
use asdr_nerf::NgpModel;
use asdr_scenes::gt::render_ground_truth;
use asdr_scenes::SceneHandle;
use asdr_serve::ModelStore;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Experiment scale: `Tiny` for tests/smoke runs, `Small` for the default
/// evaluation (the published numbers in EXPERIMENTS.md), `Paper` for the
/// full-size grid (slow; hours).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 48×48 frames, 8-level grid — seconds per experiment.
    Tiny,
    /// 96×96 frames, 16-level grid — the default evaluation scale.
    Small,
    /// 192×192 frames, paper-size grid (T = 2^19, 512³ finest level).
    Paper,
}

impl Scale {
    /// Grid configuration for this scale.
    pub fn grid(self) -> GridConfig {
        match self {
            Scale::Tiny => GridConfig::tiny(),
            Scale::Small => GridConfig::small(),
            Scale::Paper => GridConfig::paper(),
        }
    }

    /// Frame resolution (square).
    pub fn resolution(self) -> u32 {
        match self {
            Scale::Tiny => 48,
            Scale::Small => 96,
            Scale::Paper => 192,
        }
    }

    /// Full per-ray sample count (the paper's 192, scaled).
    pub fn base_ns(self) -> usize {
        match self {
            Scale::Tiny => 48,
            Scale::Small => 96,
            Scale::Paper => 192,
        }
    }

    /// TensoRF fitting configuration.
    pub fn tensorf(self) -> TensoRfConfig {
        match self {
            Scale::Tiny => TensoRfConfig::tiny(),
            _ => TensoRfConfig::small(),
        }
    }

    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Caches fitted models and ground-truth renders across experiments.
///
/// NGP fits go through a process-wide [`ModelStore`] shared by every
/// harness instance (single-flight, keyed by scene name + grid
/// fingerprint), so the many harnesses a test binary creates fit each
/// scene once per process — and, when `ASDR_STORE_DIR` is set, once per
/// *store directory*: fits persist as checkpoints and later processes
/// reload instead of refitting. TensoRF models and ground-truth renders
/// stay in per-harness maps keyed by scene name; every entry remembers the
/// exact `SceneDef` it was computed from ([`SceneHandle`] equality is
/// name-only), so a handle from an isolated registry that happens to reuse
/// a name refits instead of aliasing the cached result (the store applies
/// the same rule internally).
#[derive(Debug)]
pub struct Harness {
    scale: Scale,
    exec_policy: ExecPolicy,
    store: Arc<ModelStore>,
    tensorf_models: HashMap<&'static str, (SceneHandle, Arc<TensoRfModel>)>,
    gts: HashMap<&'static str, (SceneHandle, Image)>,
}

/// The process-wide fit store every [`Harness`] shares by default:
/// in-memory always, checkpoint-backed when `ASDR_STORE_DIR` is set.
pub fn global_store() -> Arc<ModelStore> {
    static STORE: OnceLock<Arc<ModelStore>> = OnceLock::new();
    STORE.get_or_init(|| Arc::new(ModelStore::builder().build())).clone()
}

/// Cache lookup honoring def identity: a same-name handle with a different
/// `SceneDef` recomputes and replaces the entry.
fn cached<T: Clone>(
    map: &mut HashMap<&'static str, (SceneHandle, T)>,
    scene: &SceneHandle,
    compute: impl FnOnce() -> T,
) -> T {
    match map.get(scene.name()) {
        Some((owner, value)) if owner.shares_def(scene) => value.clone(),
        _ => {
            let value = compute();
            map.insert(scene.name(), (scene.clone(), value.clone()));
            value
        }
    }
}

impl Harness {
    /// Default tile edge for the harness's work-stealing execution policy.
    pub const DEFAULT_TILE: u32 = 16;

    /// Creates an empty harness at the given scale. Frames render under
    /// [`ExecPolicy::TileStealing`] — adaptive sampling makes per-row cost
    /// uneven, and every policy is image- and stats-identical anyway.
    pub fn new(scale: Scale) -> Self {
        Harness::with_policy(scale, ExecPolicy::TileStealing { tile_size: Self::DEFAULT_TILE })
    }

    /// Creates an empty harness with an explicit execution policy, sharing
    /// the process-wide fit store.
    pub fn with_policy(scale: Scale, exec_policy: ExecPolicy) -> Self {
        Harness::with_store(scale, exec_policy, global_store())
    }

    /// Creates a harness over an explicit model store (isolated tests,
    /// services sharing their store with experiment code).
    pub fn with_store(scale: Scale, exec_policy: ExecPolicy, store: Arc<ModelStore>) -> Self {
        Harness { scale, exec_policy, store, tensorf_models: HashMap::new(), gts: HashMap::new() }
    }

    /// The fit store this harness resolves NGP models through.
    pub fn store(&self) -> &Arc<ModelStore> {
        &self.store
    }

    /// The harness scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The harness's Phase-II execution policy.
    pub fn exec_policy(&self) -> ExecPolicy {
        self.exec_policy
    }

    /// A frame engine over `opts` at the harness's execution policy.
    ///
    /// # Panics
    ///
    /// Panics if `opts` fail validation (harness option constructors always
    /// produce valid options).
    pub fn engine(&self, opts: RenderOptions) -> FrameEngine {
        FrameEngine::new(opts, self.exec_policy).expect("invalid render options")
    }

    /// Renders one frame through the harness's engine — the single render
    /// path every experiment goes through.
    pub fn render<M: RadianceModel + Sync>(
        &self,
        model: &M,
        cam: &Camera,
        opts: &RenderOptions,
    ) -> RenderOutput {
        self.engine(opts.clone()).render_frame(model, cam)
    }

    /// The standard evaluation camera for a scene at this scale.
    pub fn camera(&self, scene: &SceneHandle) -> Camera {
        let r = self.scale.resolution();
        scene.camera(r, r)
    }

    /// The fitted NGP model for a scene — resolved through the store:
    /// memory, then checkpoint (when persistence is on), then one fit.
    pub fn model(&mut self, scene: &SceneHandle) -> Arc<NgpModel> {
        self.store.get_or_fit(scene, &self.scale.grid())
    }

    /// The fitted TensoRF model for a scene (fitted once, cached).
    pub fn tensorf_model(&mut self, scene: &SceneHandle) -> Arc<TensoRfModel> {
        let scale = self.scale;
        cached(&mut self.tensorf_models, scene, || {
            Arc::new(TensoRfModel::fit(scene.build().as_ref(), &scale.tensorf(), 0))
        })
    }

    /// The ASDR render options at this scale: adaptive sampling with a
    /// resolution-scaled probe pitch plus group-2 color decoupling.
    pub fn asdr_options(&self) -> RenderOptions {
        let base_ns = self.scale.base_ns();
        RenderOptions {
            base_ns,
            adaptive: Some(AdaptiveConfig::for_resolution(base_ns, self.scale.resolution())),
            approx_group: 2,
            early_termination: false,
        }
    }

    /// Adaptive sampling only (no color decoupling) at this scale.
    pub fn as_only_options(&self) -> RenderOptions {
        RenderOptions { approx_group: 1, ..self.asdr_options() }
    }

    /// The fixed-count Instant-NGP baseline options at this scale.
    pub fn ngp_options(&self) -> RenderOptions {
        RenderOptions::instant_ngp(self.scale.base_ns())
    }

    /// Analytic ground-truth render for a scene (cached).
    pub fn ground_truth(&mut self, scene: &SceneHandle) -> Image {
        let scale = self.scale;
        cached(&mut self.gts, scene, || {
            let r = scale.resolution();
            let cam = scene.camera(r, r);
            render_ground_truth(scene.build().as_ref(), &cam, scale.base_ns() * 3)
        })
    }
}

/// Formats a speedup/ratio column as the paper does (`12.86×`).
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Prints a Markdown-style table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a Markdown-style table header and separator.
pub fn print_header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdr_scenes::procedural::SdfScene;
    use asdr_scenes::registry::SceneDef;
    use asdr_scenes::{registry, SceneRegistry};

    #[test]
    fn harness_cache_does_not_alias_same_name_different_def() {
        // an isolated store: publishing the impostor under "Mic" in the
        // process-global store would race parallel tests fitting Mic
        let isolated_store = Arc::new(ModelStore::builder().in_memory_only().build());
        let mut h = Harness::with_store(
            Scale::Tiny,
            ExecPolicy::TileStealing { tile_size: Harness::DEFAULT_TILE },
            isolated_store,
        );
        let global_mic = registry::handle("Mic");
        let cached_global = h.model(&global_mic);
        assert!(Arc::ptr_eq(&cached_global, &h.model(&global_mic)), "same handle must hit");

        // an isolated registry reusing the name with a different field
        let mut isolated = SceneRegistry::empty();
        let impostor = isolated
            .register(SceneDef::new("Mic", || {
                Box::new(SdfScene::new(
                    "impostor",
                    |p| (p.norm() - 0.2, asdr_math::Rgb::WHITE),
                    50.0,
                    0.03,
                ))
            }))
            .unwrap();
        let cached_impostor = h.model(&impostor);
        assert!(
            !Arc::ptr_eq(&cached_global, &cached_impostor),
            "same-name handle with a different def must refit, not alias"
        );
        assert!(Arc::ptr_eq(&cached_impostor, &h.model(&impostor)));
    }
}
