//! Table 5: comparison across NeRF model families (§8.1).
//!
//! The paper's Table 5 is a qualitative taxonomy (DirectVoxGO / TensoRF /
//! Instant-NGP: feature modeling and density/color computation). This
//! experiment extends it with measured numbers from our three substrates:
//! parameter counts, per-point lookups, rendering quality, and the speedup
//! ASDR's software optimizations deliver on each — demonstrating the
//! generalization claim quantitatively.

use crate::{fmt_x, print_header, print_row, Harness};
use asdr_core::algo::RenderOptions;
use asdr_math::metrics::psnr;
use asdr_math::{Camera, Image};
use asdr_nerf::dvgo::{DvgoConfig, DvgoModel};
use asdr_nerf::model::RadianceModel;
use asdr_scenes::SceneHandle;

/// One model family's measured row.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Model family name.
    pub family: &'static str,
    /// Feature-modeling description (the paper's taxonomy column).
    pub feature_modeling: &'static str,
    /// Stored parameters.
    pub params: usize,
    /// Embedding-table lookups per sample point.
    pub lookups_per_point: u64,
    /// PSNR vs ground truth at full sampling.
    pub psnr_full: f64,
    /// PSNR vs ground truth with ASDR optimizations.
    pub psnr_asdr: f64,
    /// Workload reduction of ASDR's algorithms (density-eval ratio).
    pub workload_reduction: f64,
}

fn measure<M: RadianceModel + Sync>(
    h: &Harness,
    model: &M,
    cam: &Camera,
    gt: &Image,
    full_opts: &RenderOptions,
    asdr_opts: &RenderOptions,
) -> (f64, f64, f64) {
    let full = h.render(model, cam, full_opts);
    let asdr = h.render(model, cam, asdr_opts);
    (
        psnr(&full.image, gt),
        psnr(&asdr.image, gt),
        full.stats.total_density() as f64 / asdr.stats.total_density() as f64,
    )
}

/// Runs Table 5 on one scene.
pub fn run_table5(h: &mut Harness, id: &SceneHandle) -> Vec<Table5Row> {
    let cam = h.camera(id);
    let gt = h.ground_truth(id);
    let full = h.ngp_options();
    let asdr = h.asdr_options();

    let ngp = h.model(id);
    let tensorf = h.tensorf_model(id);
    let dvgo_cfg = match h.scale() {
        crate::Scale::Tiny => DvgoConfig::tiny(),
        _ => DvgoConfig::small(),
    };
    let dvgo = DvgoModel::fit(id.build().as_ref(), &dvgo_cfg);

    let (p1, a1, w1) = measure(h, &*ngp, &cam, &gt, &full, &asdr);
    let (p2, a2, w2) = measure(h, &*tensorf, &cam, &gt, &full, &asdr);
    let (p3, a3, w3) = measure(h, &dvgo, &cam, &gt, &full, &asdr);

    vec![
        Table5Row {
            family: "DirectVoxGO",
            feature_modeling: "multi-resolution dense 3D grids",
            params: dvgo.param_count(),
            lookups_per_point: dvgo.lookups_per_point(),
            psnr_full: p3,
            psnr_asdr: a3,
            workload_reduction: w3,
        },
        Table5Row {
            family: "TensoRF",
            feature_modeling: "2D planes x 1D lines (VM decomposition)",
            params: tensorf.param_count(),
            lookups_per_point: tensorf.lookups_per_point(),
            psnr_full: p2,
            psnr_asdr: a2,
            workload_reduction: w2,
        },
        Table5Row {
            family: "Instant-NGP",
            feature_modeling: "multi-resolution 3D grids + hash",
            params: ngp.encoder().tables().total_params(),
            lookups_per_point: 8 * ngp.encoder().config().levels as u64,
            psnr_full: p1,
            psnr_asdr: a1,
            workload_reduction: w1,
        },
    ]
}

/// Prints Table 5.
pub fn print_table5(id: &SceneHandle, rows: &[Table5Row]) {
    println!("\nTable 5: NeRF model families under ASDR ({id})");
    print_header(&[
        "Model",
        "Feature modeling",
        "Params",
        "Lookups/pt",
        "PSNR full",
        "PSNR ASDR",
        "Workload cut",
    ]);
    for r in rows {
        print_row(&[
            r.family.to_string(),
            r.feature_modeling.to_string(),
            r.params.to_string(),
            r.lookups_per_point.to_string(),
            format!("{:.2}", r.psnr_full),
            format!("{:.2}", r.psnr_asdr),
            fmt_x(r.workload_reduction),
        ]);
    }
    println!("(ASDR's adaptive sampling + decoupling apply to all three families, §8.1)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn asdr_generalizes_across_model_families() {
        let mut h = Harness::new(Scale::Tiny);
        let rows = run_table5(&mut h, &asdr_scenes::registry::handle("Mic"));
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // ASDR cuts work on every family…
            assert!(r.workload_reduction > 1.2, "{}: no reduction ({:?})", r.family, r);
            // …with bounded quality loss
            assert!(
                r.psnr_full - r.psnr_asdr < 2.0,
                "{}: too much loss ({:.2} vs {:.2})",
                r.family,
                r.psnr_asdr,
                r.psnr_full
            );
            assert!(r.params > 0 && r.lookups_per_point > 0);
        }
    }
}
