//! Design-space exploration: Fig. 21 (adaptive-sampling threshold δ and
//! approximation group size n) and Fig. 22 (register-cache size).

use crate::{fmt_x, print_header, print_row, Harness};
use asdr_core::algo::adaptive::AdaptiveConfig;
use asdr_core::algo::RenderOptions;
use asdr_core::arch::chip::{encoding_profile, simulate_chip, ChipOptions};
use asdr_math::metrics::psnr;
use asdr_scenes::SceneHandle;

/// One δ design point (Fig. 21(a)).
#[derive(Debug, Clone)]
pub struct DeltaPoint {
    /// Threshold δ (`None` = adaptive sampling disabled).
    pub delta: Option<f32>,
    /// Speedup over the no-AS configuration (chip time ratio).
    pub speedup: f64,
    /// PSNR vs ground truth.
    pub psnr: f64,
    /// Mean planned samples per pixel.
    pub avg_samples: f64,
}

/// Runs the δ sweep on one scene.
pub fn run_fig21a(h: &mut Harness, id: &SceneHandle, deltas: &[f32]) -> Vec<DeltaPoint> {
    let base_ns = h.scale().base_ns();
    let model = h.model(id);
    let cam = h.camera(id);
    let gt = h.ground_truth(id);
    let chip = ChipOptions::edge();

    let render_with = |adaptive: Option<AdaptiveConfig>| {
        let opts = RenderOptions { base_ns, adaptive, approx_group: 1, early_termination: false };
        h.render(&*model, &cam, &opts)
    };
    let base = render_with(None);
    let base_time = simulate_chip(&model, &cam, &base, &chip).time_s;
    let mut points = vec![DeltaPoint {
        delta: None,
        speedup: 1.0,
        psnr: psnr(&base.image, &gt),
        avg_samples: base.plan.average(),
    }];
    let probe = AdaptiveConfig::for_resolution(base_ns, h.scale().resolution()).probe_stride;
    for &d in deltas {
        let cfg =
            AdaptiveConfig { delta: d, probe_stride: probe, ..AdaptiveConfig::paper(base_ns) };
        let out = render_with(Some(cfg));
        let t = simulate_chip(&model, &cam, &out, &chip).time_s;
        points.push(DeltaPoint {
            delta: Some(d),
            speedup: base_time / t,
            psnr: psnr(&out.image, &gt),
            avg_samples: out.plan.average(),
        });
    }
    points
}

/// Prints Fig. 21(a).
pub fn print_fig21a(id: &SceneHandle, points: &[DeltaPoint]) {
    println!("\nFig. 21(a): Adaptive-sampling threshold sweep ({id})");
    print_header(&["delta", "Speedup", "PSNR (dB)", "avg samples"]);
    for p in points {
        let name = match p.delta {
            None => "no AS".to_string(),
            Some(d) => {
                if d == 0.0 {
                    "0".to_string()
                } else {
                    format!("1/{:.0}", 1.0 / d)
                }
            }
        };
        print_row(&[
            name,
            fmt_x(p.speedup),
            format!("{:.2}", p.psnr),
            format!("{:.1}", p.avg_samples),
        ]);
    }
    println!("(paper: delta = 1/2048 gives 6.02x with < 0.3 PSNR loss)");
}

/// One group-size design point (Fig. 21(b)).
#[derive(Debug, Clone)]
pub struct GroupPoint {
    /// Group size n (1 = no approximation).
    pub n: usize,
    /// Energy saving over n = 1 (chip energy ratio).
    pub energy_saving: f64,
    /// PSNR vs ground truth.
    pub psnr: f64,
}

/// Runs the group-size sweep on one scene.
pub fn run_fig21b(h: &mut Harness, id: &SceneHandle, ns: &[usize]) -> Vec<GroupPoint> {
    let base_ns = h.scale().base_ns();
    let model = h.model(id);
    let cam = h.camera(id);
    let gt = h.ground_truth(id);
    let chip = ChipOptions::edge();
    let run_n = |n: usize| {
        let opts =
            RenderOptions { base_ns, adaptive: None, approx_group: n, early_termination: false };
        let out = h.render(&*model, &cam, &opts);
        let e = simulate_chip(&model, &cam, &out, &chip).total_energy_j;
        (e, psnr(&out.image, &gt))
    };
    let (e1, p1) = run_n(1);
    let mut points = vec![GroupPoint { n: 1, energy_saving: 1.0, psnr: p1 }];
    for &n in ns {
        if n == 1 {
            continue;
        }
        let (e, p) = run_n(n);
        points.push(GroupPoint { n, energy_saving: e1 / e, psnr: p });
    }
    points
}

/// Prints Fig. 21(b).
pub fn print_fig21b(id: &SceneHandle, points: &[GroupPoint]) {
    println!("\nFig. 21(b): Rendering-approximation group size sweep ({id})");
    print_header(&["n", "Energy saving", "PSNR (dB)"]);
    for p in points {
        print_row(&[p.n.to_string(), fmt_x(p.energy_saving), format!("{:.2}", p.psnr)]);
    }
    println!("(paper: n = 4 saves ~2.7x energy with < 0.3 PSNR loss)");
}

/// One cache-size design point (Fig. 22).
#[derive(Debug, Clone)]
pub struct CachePoint {
    /// Entries per table (0 = no cache).
    pub entries: usize,
    /// Encoding-stage speedup over no cache.
    pub speedup: f64,
    /// Measured hit rate.
    pub hit_rate: f64,
}

/// Runs the cache sweep on one scene.
pub fn run_fig22(h: &mut Harness, id: &SceneHandle, sizes: &[usize]) -> Vec<CachePoint> {
    let model = h.model(id);
    let cam = h.camera(id);
    let out = h.render(&*model, &cam, &h.asdr_options());
    let profile_for = |entries: usize| {
        let opts = ChipOptions { cache_entries_per_table: Some(entries), ..ChipOptions::edge() };
        encoding_profile(&model, &cam, &out, &opts)
    };
    let base = profile_for(0);
    sizes
        .iter()
        .map(|&entries| {
            let p = profile_for(entries);
            CachePoint {
                entries,
                speedup: base.cycles_per_point() / p.cycles_per_point(),
                hit_rate: p.hit_rate(),
            }
        })
        .collect()
}

/// Prints Fig. 22.
pub fn print_fig22(id: &SceneHandle, points: &[CachePoint]) {
    println!("\nFig. 22: Register-cache size sweep ({id}, encoding-stage speedup)");
    print_header(&["Entries/table", "Speedup vs no cache", "Hit rate"]);
    for p in points {
        print_row(&[
            if p.entries == 0 { "No cache".into() } else { p.entries.to_string() },
            fmt_x(p.speedup),
            format!("{:.1}%", p.hit_rate * 100.0),
        ]);
    }
    println!("(paper: 8 entries/table give 2.49x over no cache)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn delta_sweep_trades_quality_for_speed() {
        let mut h = Harness::new(Scale::Tiny);
        let pts = run_fig21a(
            &mut h,
            &asdr_scenes::registry::handle("Mic"),
            &[0.0, 1.0 / 2048.0, 1.0 / 256.0],
        );
        assert_eq!(pts.len(), 4);
        // speedup grows with looser thresholds
        assert!(pts[3].speedup >= pts[1].speedup * 0.95);
        assert!(pts[1].speedup > 1.0, "even delta=0 helps: {:?}", pts[1]);
        // sample counts shrink monotonically with delta
        assert!(pts[3].avg_samples <= pts[1].avg_samples);
    }

    #[test]
    fn group_sweep_saves_energy_with_bounded_loss() {
        let mut h = Harness::new(Scale::Tiny);
        let pts = run_fig21b(&mut h, &asdr_scenes::registry::handle("Chair"), &[2, 3, 4]);
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(w[1].energy_saving >= w[0].energy_saving * 0.98, "{pts:?}");
        }
        // n=4 quality loss bounded
        assert!(pts[0].psnr - pts[3].psnr < 3.0, "{pts:?}");
    }

    #[test]
    fn cache_sweep_saturates() {
        let mut h = Harness::new(Scale::Tiny);
        let pts = run_fig22(&mut h, &asdr_scenes::registry::handle("Lego"), &[0, 2, 4, 8, 16]);
        assert_eq!(pts[0].speedup, 1.0);
        assert!(pts[3].speedup > pts[1].speedup * 0.99, "more cache should not hurt: {pts:?}");
        assert!(pts[4].hit_rate >= pts[1].hit_rate);
        assert!(pts[3].speedup > 1.05, "8 entries must visibly help: {pts:?}");
    }
}
