//! The `sequence` experiment: temporal coherence through sample-plan reuse
//! (ROADMAP "Animation sequences"; the VR deployment of §1 implies frames
//! arrive as streams, not one-offs).
//!
//! For the animated `Pulse` scene the keyframes are geometry morphs — one
//! [`PulseScene::at_phase`] fit per frame under a fixed camera. For every
//! other scene the keyframes are a slow camera orbit around one fitted
//! model. Either way the sequence renders twice: once re-probing Phase I
//! per frame ([`PlanPolicy::PerFrame`]) and once carrying the plan forward
//! ([`PlanPolicy::Reuse`]), and the report quantifies what reuse saves
//! (probe points avoided) and what it costs (PSNR vs the re-probed frames).

use crate::{print_header, print_row, Harness};
use asdr_core::algo::{PlanPolicy, SequenceFrame, SequenceOutput};
use asdr_math::metrics::psnr;
use asdr_nerf::fit::fit_ngp;
use asdr_nerf::NgpModel;
use asdr_scenes::animated::PulseScene;
use asdr_scenes::SceneHandle;

/// Animation phase advanced per Pulse keyframe (slow morph — temporally
/// coherent, the regime plan reuse targets).
const PULSE_PHASE_STEP: f32 = 0.02;
/// Camera azimuth degrees advanced per keyframe for static scenes.
const ORBIT_STEP_DEG: f32 = 1.5;

/// The measured comparison between per-frame probing and plan reuse.
#[derive(Debug, Clone)]
pub struct SequenceReport {
    /// Scene name.
    pub scene: String,
    /// Frames rendered.
    pub frames: usize,
    /// Probe refresh period of the reuse run.
    pub refresh_every: usize,
    /// Whether keyframes morph geometry (Pulse) or orbit the camera.
    pub animated_geometry: bool,
    /// Aggregate probe points with per-frame re-probing.
    pub probe_points_per_frame: u64,
    /// Aggregate probe points with plan reuse.
    pub probe_points_reuse: u64,
    /// Frames that skipped Phase I entirely.
    pub reused_frames: usize,
    /// Per-frame plan reuse as the engine recorded it (a refresh boundary
    /// or resolution change re-probes regardless of the period).
    pub plan_reused: Vec<bool>,
    /// Per-frame PSNR of the reuse run against the re-probed run (dB).
    pub psnr_vs_per_frame: Vec<f64>,
    /// Wall-clock seconds of the per-frame run (probe + render).
    pub per_frame_wall_s: f64,
    /// Wall-clock seconds of the reuse run.
    pub reuse_wall_s: f64,
}

impl SequenceReport {
    /// Fraction of probe work the reuse run avoided.
    pub fn probe_savings(&self) -> f64 {
        1.0 - self.probe_points_reuse as f64 / self.probe_points_per_frame.max(1) as f64
    }

    /// Worst per-frame PSNR against the re-probed sequence.
    pub fn min_psnr(&self) -> f64 {
        self.psnr_vs_per_frame.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Renders `n_frames` keyframes of a scene under both plan policies and
/// measures what reuse saves.
///
/// # Panics
///
/// Panics if `n_frames == 0` or `refresh_every == 0`.
pub fn run_sequence(
    h: &mut Harness,
    id: &SceneHandle,
    n_frames: usize,
    refresh_every: usize,
) -> SequenceReport {
    assert!(n_frames > 0, "sequence needs at least one frame");
    let res = h.scale().resolution();
    let engine = h.engine(h.asdr_options());
    let animated_geometry = id.name() == "Pulse";

    // keyframes: per-phase fits for Pulse, a camera orbit otherwise
    let (per_frame, reuse) = if animated_geometry {
        let grid = h.scale().grid();
        let cam = id.camera(res, res);
        let models: Vec<NgpModel> = (0..n_frames)
            .map(|i| {
                let phase = PulseScene::REGISTERED_PHASE + i as f32 * PULSE_PHASE_STEP;
                fit_ngp(&PulseScene::at_phase(phase), &grid)
            })
            .collect();
        let frames: Vec<_> = models.iter().map(|m| SequenceFrame::new(m, cam.clone())).collect();
        render_both(&engine, &frames, refresh_every)
    } else {
        let model = h.model(id);
        let orbit = id.def().camera_orbit();
        let frames: Vec<_> = (0..n_frames)
            .map(|i| {
                let mut o = orbit;
                o.azimuth_deg += i as f32 * ORBIT_STEP_DEG;
                SequenceFrame::new(&*model, o.camera(res, res))
            })
            .collect();
        render_both(&engine, &frames, refresh_every)
    };
    report(id, refresh_every, animated_geometry, &per_frame, &reuse)
}

/// Renders the same frames under both plan policies.
fn render_both(
    engine: &asdr_core::algo::FrameEngine,
    frames: &[SequenceFrame<'_, NgpModel>],
    refresh_every: usize,
) -> (SequenceOutput, SequenceOutput) {
    let per_frame = engine
        .render_sequence(frames, &PlanPolicy::PerFrame)
        .expect("non-empty validated sequence");
    let reuse = engine
        .render_sequence(frames, &PlanPolicy::Reuse { refresh_every })
        .expect("non-empty validated sequence");
    (per_frame, reuse)
}

fn report(
    id: &SceneHandle,
    refresh_every: usize,
    animated_geometry: bool,
    per_frame: &SequenceOutput,
    reuse: &SequenceOutput,
) -> SequenceReport {
    let psnr_vs_per_frame =
        per_frame.frames.iter().zip(&reuse.frames).map(|(a, b)| psnr(&b.image, &a.image)).collect();
    SequenceReport {
        scene: id.name().to_string(),
        frames: per_frame.frames.len(),
        refresh_every,
        animated_geometry,
        probe_points_per_frame: per_frame.probe_points(),
        probe_points_reuse: reuse.probe_points(),
        reused_frames: reuse.reused_frames(),
        plan_reused: reuse.frames.iter().map(|f| f.plan_reused).collect(),
        psnr_vs_per_frame,
        per_frame_wall_s: per_frame.timings.total_s(),
        reuse_wall_s: reuse.timings.total_s(),
    }
}

/// Prints the sequence report.
pub fn print_sequence(r: &SequenceReport) {
    let kind = if r.animated_geometry { "geometry morph" } else { "camera orbit" };
    println!(
        "\nSequence: {} x{} frames ({kind}), plan refresh every {}",
        r.scene, r.frames, r.refresh_every
    );
    print_header(&["Frame", "Plan", "PSNR vs re-probe (dB)"]);
    for (i, p) in r.psnr_vs_per_frame.iter().enumerate() {
        let reused = r.plan_reused.get(i).copied().unwrap_or(false);
        print_row(&[
            i.to_string(),
            (if reused { "reused" } else { "probed" }).to_string(),
            if p.is_finite() { format!("{p:.2}") } else { "inf (identical)".to_string() },
        ]);
    }
    println!(
        "probe work: {} -> {} points ({:.0}% avoided over {} reused frames)",
        r.probe_points_per_frame,
        r.probe_points_reuse,
        r.probe_savings() * 100.0,
        r.reused_frames,
    );
    println!(
        "wall-clock: per-frame {:.3} s vs reuse {:.3} s (phase timings, this machine)",
        r.per_frame_wall_s, r.reuse_wall_s
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use asdr_scenes::registry;

    #[test]
    fn pulse_sequence_saves_probe_work_with_bounded_loss() {
        let mut h = Harness::new(Scale::Tiny);
        let r = run_sequence(&mut h, &registry::handle("Pulse"), 4, 4);
        assert!(r.animated_geometry);
        assert_eq!(r.reused_frames, 3);
        assert!(
            r.probe_points_reuse * 3 < r.probe_points_per_frame,
            "reuse must avoid most probe work: {} vs {}",
            r.probe_points_reuse,
            r.probe_points_per_frame
        );
        // slow morph: the carried plan stays valid
        assert!(r.min_psnr() > 25.0, "reuse diverged: {:?}", r.psnr_vs_per_frame);
        // frame 0 probes in both runs, so it is bit-identical
        assert!(r.psnr_vs_per_frame[0].is_infinite());
    }

    #[test]
    fn orbit_sequence_works_on_static_scenes() {
        let mut h = Harness::new(Scale::Tiny);
        let r = run_sequence(&mut h, &registry::handle("Mic"), 3, 3);
        assert!(!r.animated_geometry);
        assert_eq!(r.frames, 3);
        assert_eq!(r.reused_frames, 2);
        assert!(r.probe_savings() > 0.5);
        assert!(r.min_psnr() > 25.0, "orbit reuse diverged: {:?}", r.psnr_vs_per_frame);
    }
}
