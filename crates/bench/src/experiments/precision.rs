//! Precision ablation (extension beyond the paper's figures).
//!
//! The paper configures 8-bit grid features and 5-bit ADCs (§6.1) and
//! reports only the end quality. This experiment makes the underlying
//! trade-offs visible: rendering quality versus feature bit width, and
//! device-level MVM accuracy versus ADC resolution and ReRAM conductance
//! noise.

use crate::{print_header, print_row, Harness};
use asdr_baselines::neurex::quantize_model_features;
use asdr_cim::XbarGeometry;
use asdr_core::algo::render_reference;
use asdr_math::metrics::psnr;
use asdr_math::rng::seeded;
use asdr_scenes::SceneHandle;
use rand::Rng;

/// Quality at one feature bit width.
#[derive(Debug, Clone, Copy)]
pub struct FeatureBitsPoint {
    /// Grid feature bits.
    pub bits: u32,
    /// PSNR vs the full-precision render (dB).
    pub fidelity_db: f64,
}

/// Sweeps grid-feature precision on one scene.
pub fn run_feature_bits(h: &mut Harness, id: &SceneHandle, bits: &[u32]) -> Vec<FeatureBitsPoint> {
    let base_ns = h.scale().base_ns();
    let model = h.model(id);
    let cam = h.camera(id);
    let reference = render_reference(&*model, &cam, base_ns);
    bits.iter()
        .map(|&b| {
            let q = quantize_model_features(&model, b);
            let img = render_reference(&q, &cam, base_ns);
            FeatureBitsPoint { bits: b, fidelity_db: psnr(&img, &reference) }
        })
        .collect()
}

/// Device-level MVM accuracy at one ADC/noise setting.
#[derive(Debug, Clone, Copy)]
pub struct DevicePoint {
    /// ADC bits.
    pub adc_bits: u32,
    /// Conductance noise sigma (relative).
    pub noise_sigma: f64,
    /// Relative RMS error of the analog MVM vs exact.
    pub rel_rms_error: f64,
}

/// Measures analog-MVM error across ADC resolutions and noise levels on a
/// color-MLP-shaped workload (64×64 layers, 256 random vectors).
pub fn run_device_accuracy(adc_bits: &[u32], noises: &[f64]) -> Vec<DevicePoint> {
    let mut rng = seeded("precision-device", 0);
    let out_dim = 64;
    let in_dim = 64;
    let w: Vec<f32> = (0..out_dim * in_dim).map(|_| rng.gen_range(-0.5..0.5)).collect();
    let inputs: Vec<Vec<f32>> =
        (0..64).map(|_| (0..in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
    let mut out = Vec::new();
    for &adc in adc_bits {
        for &sigma in noises {
            let g = XbarGeometry { adc_bits: adc, ..XbarGeometry::paper() };
            let mut num = 0.0f64;
            let mut den = 0.0f64;
            for (i, x) in inputs.iter().enumerate() {
                let exact = g.mvm_exact(&w, x, out_dim);
                let analog = g.mvm_quantized_noisy(&w, x, out_dim, sigma, i as u64);
                for (e, a) in exact.iter().zip(&analog) {
                    num += ((e - a) as f64).powi(2);
                    den += (*e as f64).powi(2);
                }
            }
            out.push(DevicePoint {
                adc_bits: adc,
                noise_sigma: sigma,
                rel_rms_error: (num / den.max(1e-12)).sqrt(),
            });
        }
    }
    out
}

/// Prints both sweeps.
pub fn print_precision(id: &SceneHandle, feat: &[FeatureBitsPoint], dev: &[DevicePoint]) {
    println!("\nPrecision ablation (extension): grid-feature bits ({id})");
    print_header(&["feature bits", "PSNR vs fp32 render"]);
    for p in feat {
        print_row(&[p.bits.to_string(), format!("{:.2} dB", p.fidelity_db)]);
    }
    println!("\nPrecision ablation (extension): analog MVM accuracy (64x64 layer)");
    print_header(&["ADC bits", "noise sigma", "relative RMS error"]);
    for p in dev {
        print_row(&[
            p.adc_bits.to_string(),
            format!("{:.2}", p.noise_sigma),
            format!("{:.4}", p.rel_rms_error),
        ]);
    }
    println!("(the paper's 8-bit features / 5-bit ADC sit at the knee of both curves)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn feature_bits_sweep_is_monotone() {
        let mut h = Harness::new(Scale::Tiny);
        let pts = run_feature_bits(&mut h, &asdr_scenes::registry::handle("Mic"), &[4, 6, 8]);
        assert_eq!(pts.len(), 3);
        assert!(pts[2].fidelity_db > pts[0].fidelity_db, "{pts:?}");
        assert!(pts[2].fidelity_db > 30.0, "8-bit must be near-lossless: {pts:?}");
    }

    #[test]
    fn device_accuracy_improves_with_adc_bits_and_degrades_with_noise() {
        let pts = run_device_accuracy(&[4, 6, 8], &[0.0, 0.1]);
        let err = |adc: u32, sigma: f64| {
            pts.iter().find(|p| p.adc_bits == adc && p.noise_sigma == sigma).unwrap().rel_rms_error
        };
        assert!(err(8, 0.0) < err(4, 0.0));
        assert!(err(6, 0.1) > err(6, 0.0));
    }
}
