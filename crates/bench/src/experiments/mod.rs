//! One module per experiment family; see EXPERIMENTS.md for the index.

pub mod ablation;
pub mod cluster_exp;
pub mod dse;
pub mod gpu_sw;
pub mod hwconfig;
pub mod models_cmp;
pub mod motivation;
pub mod performance;
pub mod precision;
pub mod quality;
pub mod sequence;
pub mod serve_exp;
pub mod tables;
pub mod tensorf_exp;
pub mod trace_exp;
pub mod visuals;
