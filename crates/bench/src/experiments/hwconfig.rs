//! Hardware-configuration study: Figs. 26–27 — ASDR with a systolic array
//! (SA), SRAM CIM macros, or native ReRAM (§6.9).

use crate::{fmt_x, print_header, print_row, Harness};
use asdr_baselines::gpu::{simulate_gpu, GpuSpec};
use asdr_baselines::neurex::{simulate_neurex, NeurexVariant};
use asdr_cim::device::MemTech;
use asdr_core::algo::RenderOptions;
use asdr_core::arch::chip::{simulate_chip, ChipOptions};
use asdr_scenes::SceneHandle;

/// One scene's results across hardware configurations (speedup and energy
/// efficiency normalized to the setting's GPU).
#[derive(Debug, Clone)]
pub struct HwConfigRow {
    /// Scene.
    pub id: SceneHandle,
    /// NeuRex reference.
    pub neurex_speedup: f64,
    /// ASDR(SA): SRAM encoding + systolic MLP.
    pub sa_speedup: f64,
    /// ASDR(SRAM): SRAM CIM macros.
    pub sram_speedup: f64,
    /// ASDR(ReRAM): native.
    pub reram_speedup: f64,
    /// Energy-efficiency ratios in the same order (NeuRex, SA, SRAM, ReRAM).
    pub energy_eff: [f64; 4],
}

/// Runs Figs. 26–27 for one setting (`server = true` → RTX 3070 + server
/// configs).
pub fn run_hwconfig(h: &mut Harness, scenes: &[SceneHandle], server: bool) -> Vec<HwConfigRow> {
    let base_ns = h.scale().base_ns();
    let asdr_opts = h.asdr_options();
    scenes
        .iter()
        .map(|id| {
            let model = h.model(id);
            let cam = h.camera(id);
            let cfg = model.encoder().config().clone();
            let fixed = h.render(&*model, &cam, &RenderOptions::instant_ngp(base_ns));
            let asdr = h.render(&*model, &cam, &asdr_opts);
            let gpu_spec = if server { GpuSpec::rtx3070() } else { GpuSpec::xavier_nx() };
            let gpu = simulate_gpu(&gpu_spec, &*model, &fixed.stats, cfg.levels, cfg.feat_dim);
            let neurex = simulate_neurex(
                &model,
                &fixed.stats,
                if server { NeurexVariant::Server } else { NeurexVariant::Edge },
            );
            let chip = |tech: MemTech| {
                let base = if server { ChipOptions::server() } else { ChipOptions::edge() };
                simulate_chip(&model, &cam, &asdr, &ChipOptions { tech, ..base })
            };
            let sa = chip(MemTech::SramDigital);
            let sram = chip(MemTech::SramCim);
            let reram = chip(MemTech::Reram);
            HwConfigRow {
                id: id.clone(),
                neurex_speedup: gpu.total_s / neurex.total_s,
                sa_speedup: gpu.total_s / sa.time_s,
                sram_speedup: gpu.total_s / sram.time_s,
                reram_speedup: gpu.total_s / reram.time_s,
                energy_eff: [
                    gpu.energy_j / neurex.energy_j,
                    gpu.energy_j / sa.total_energy_j,
                    gpu.energy_j / sram.total_energy_j,
                    gpu.energy_j / reram.total_energy_j,
                ],
            }
        })
        .collect()
}

/// Prints Fig. 26 (speedup).
pub fn print_fig26(rows: &[HwConfigRow], server: bool) {
    let setting = if server { "Server (RTX 3070 = 1x)" } else { "Edge (Xavier NX = 1x)" };
    println!("\nFig. 26: Speedup across hardware configurations — {setting}");
    print_header(&["Scene", "NeuRex", "ASDR(SA)", "ASDR(SRAM)", "ASDR(ReRAM)"]);
    let mut acc = [0.0f64; 4];
    for r in rows {
        acc[0] += r.neurex_speedup;
        acc[1] += r.sa_speedup;
        acc[2] += r.sram_speedup;
        acc[3] += r.reram_speedup;
        print_row(&[
            r.id.to_string(),
            fmt_x(r.neurex_speedup),
            fmt_x(r.sa_speedup),
            fmt_x(r.sram_speedup),
            fmt_x(r.reram_speedup),
        ]);
    }
    let n = rows.len() as f64;
    print_row(&[
        "Average".into(),
        fmt_x(acc[0] / n),
        fmt_x(acc[1] / n),
        fmt_x(acc[2] / n),
        fmt_x(acc[3] / n),
    ]);
    println!("(paper server averages: NeuRex 2.89x, SA 8.90x, SRAM 9.53x, ReRAM 11.84x)");
}

/// Prints Fig. 27 (energy efficiency).
pub fn print_fig27(rows: &[HwConfigRow], server: bool) {
    let setting = if server { "Server (RTX 3070 = 1x)" } else { "Edge (Xavier NX = 1x)" };
    println!("\nFig. 27: Energy efficiency across hardware configurations — {setting}");
    print_header(&["Scene", "NeuRex", "ASDR(SA)", "ASDR(SRAM)", "ASDR(ReRAM)"]);
    let mut acc = [0.0f64; 4];
    for r in rows {
        for (a, v) in acc.iter_mut().zip(r.energy_eff) {
            *a += v;
        }
        print_row(&[
            r.id.to_string(),
            fmt_x(r.energy_eff[0]),
            fmt_x(r.energy_eff[1]),
            fmt_x(r.energy_eff[2]),
            fmt_x(r.energy_eff[3]),
        ]);
    }
    let n = rows.len() as f64;
    print_row(&[
        "Average".into(),
        fmt_x(acc[0] / n),
        fmt_x(acc[1] / n),
        fmt_x(acc[2] / n),
        fmt_x(acc[3] / n),
    ]);
    println!("(paper server averages: NeuRex 12.70x, SA 18.22x, SRAM 27.45x, ReRAM 36.06x)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn tech_variants_order_correctly() {
        let mut h = Harness::new(Scale::Tiny);
        let rows = run_hwconfig(&mut h, &["Palace"].map(asdr_scenes::registry::handle), true);
        let r = &rows[0];
        // Fig. 26 ordering among ASDR variants: ReRAM ≥ SRAM ≥ SA
        assert!(r.reram_speedup >= r.sram_speedup * 0.99, "{r:?}");
        assert!(r.sram_speedup >= r.sa_speedup * 0.99, "{r:?}");
        // at the tiny test grid (8 levels) NeuRex fetches half the paper's
        // lookups, flattering it; at evaluation scale SA overtakes it (see
        // EXPERIMENTS.md). Here we only require the same order of magnitude.
        assert!(r.sa_speedup > 0.5 * r.neurex_speedup, "{r:?}");
        // Fig. 27 ordering on energy
        assert!(r.energy_eff[3] >= r.energy_eff[2] * 0.99, "{r:?}");
        assert!(r.energy_eff[2] >= r.energy_eff[1] * 0.99, "{r:?}");
    }
}
