//! The `cluster` experiment: sharded serving under deadline pressure —
//! fixed minimum workers vs. the autoscaling control loop (ROADMAP
//! "serving scale-out"; the SG2042/SG2044 characterizations in PAPERS.md
//! make the same argument — single-node schedulers only tell half the
//! story, throughput claims need a multi-worker, contention-aware
//! harness).
//!
//! Both runs replay the identical workload through a 2-shard
//! [`ShardRouter`] warmed from one checkpoint directory: per wave, every
//! scene submits a burst of deadlined frames, with the deadline calibrated
//! to 2.5× a measured warm single-frame latency — so a 1-worker shard
//! serving a whole burst serially *must* miss its tail. The fixed run
//! pins every shard at `workers_min`; the autoscaled run lets the control
//! loop react between waves. The report compares deadline-miss rates,
//! tail latency, and wall-clock, plus the cost model's
//! predicted-vs-actual error and the scaling-event log. (The wall-clock
//! benefit of extra workers needs real cores; on a 1-CPU container the
//! rates converge and the slow-tier test — not this report — is what
//! asserts the reduction.)

use crate::{fmt_x, print_header, print_row, Harness};
use asdr_cluster::{AutoscalerConfig, ShardRouter};
use asdr_scenes::SceneHandle;
use asdr_serve::{ModelStore, RenderProfile, RenderRequest};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Deadlined requests per scene per wave. Three serial completions at
/// ~1×, 2×, 3× the single-frame latency against a 2.5× deadline means a
/// 1-worker shard misses its burst tail even when every scene gets a
/// shard to itself.
pub const REQUESTS_PER_SCENE: usize = 3;
/// Burst waves per run (the autoscaler reacts between waves).
pub const WAVES: usize = 2;
/// Deadline as a multiple of the measured warm single-frame latency.
const DEADLINE_FACTOR: f64 = 2.5;

/// One run's measured outcome.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Deadlined requests submitted.
    pub deadlined: u64,
    /// Requests that finished late.
    pub misses: u64,
    /// p95 burst latency, milliseconds.
    pub p95_ms: f64,
    /// Wall-clock of the measured waves, milliseconds.
    pub wall_ms: f64,
    /// Scaling events recorded (0 for the fixed run).
    pub scale_events: usize,
    /// Peak worker target reached on any shard.
    pub peak_workers: usize,
    /// Requests spilled off their home shard.
    pub spilled: u64,
    /// Fresh fits (0 once the shared directory is warm).
    pub fits: u64,
}

impl ClusterRun {
    /// Deadline-miss rate of the run.
    pub fn miss_rate(&self) -> f64 {
        if self.deadlined == 0 {
            return 0.0;
        }
        self.misses as f64 / self.deadlined as f64
    }
}

/// The fixed-vs-autoscaled comparison.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Scene names in the mix.
    pub scenes: Vec<String>,
    /// Calibrated per-request deadline, milliseconds.
    pub deadline_ms: f64,
    /// Every shard pinned at the minimum worker count.
    pub fixed: ClusterRun,
    /// The control loop free to scale between bounds.
    pub autoscaled: ClusterRun,
    /// Cost-model mean absolute percentage error (autoscaled run).
    pub cost_error: f64,
}

/// One wave of deadlined per-scene bursts.
fn wave(scenes: &[SceneHandle], resolution: u32, deadline: Duration) -> Vec<RenderRequest> {
    scenes
        .iter()
        .flat_map(|s| {
            (0..REQUESTS_PER_SCENE)
                .map(|_| RenderRequest::frame(s.clone(), resolution).with_deadline(deadline))
                .collect::<Vec<_>>()
        })
        .collect()
}

fn replay(cluster: &ShardRouter, scenes: &[SceneHandle], resolution: u32, deadline: Duration) {
    for _ in 0..WAVES {
        let tickets: Vec<_> = wave(scenes, resolution, deadline)
            .into_iter()
            .map(|r| cluster.submit(r).expect("budget sized for the burst"))
            .collect();
        for t in &tickets {
            t.wait().expect("cluster worker healthy");
        }
    }
}

/// Runs the comparison; see the module docs.
///
/// # Panics
///
/// Panics if `scenes` is empty.
pub fn run_cluster(h: &mut Harness, scenes: &[SceneHandle]) -> ClusterReport {
    assert!(!scenes.is_empty(), "cluster experiment needs at least one scene");
    let profile = RenderProfile {
        grid: h.scale().grid(),
        base_ns: h.scale().base_ns(),
        default_resolution: h.scale().resolution(),
    };
    let resolution = profile.default_resolution;
    let dir = fresh_dir();

    // warm the shared checkpoint directory once, so neither run's miss
    // rate is polluted by cold fits
    {
        let store = ModelStore::builder().dir(&dir).build();
        for s in scenes {
            store.get_or_fit(s, &profile.grid);
        }
    }

    // calibrate the deadline against a measured warm single-frame latency
    let single_ms = {
        let calib =
            ShardRouter::builder(profile.clone()).shards(1).store_dir(&dir).build().unwrap();
        let t0 = Instant::now();
        calib
            .submit(RenderRequest::frame(scenes[0].clone(), resolution))
            .unwrap()
            .wait()
            .expect("calibration render");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        calib.shutdown();
        ms
    };
    let deadline_ms = (single_ms * DEADLINE_FACTOR).max(1.0);
    let deadline = Duration::from_secs_f64(deadline_ms / 1e3);

    let scaler = AutoscalerConfig {
        workers_min: 1,
        workers_max: 4,
        interval: Duration::from_millis(50),
        cooldown_intervals: 1,
        ..AutoscalerConfig::default()
    };
    let mut cost_error = 0.0;
    let mut run = |autoscale: bool| -> ClusterRun {
        let mut builder = ShardRouter::builder(profile.clone()).shards(2).store_dir(&dir);
        builder = if autoscale {
            builder.autoscale(scaler.clone())
        } else {
            builder.workers(scaler.workers_min)
        };
        let cluster = builder.build().expect("valid cluster configuration");
        let t0 = Instant::now();
        replay(&cluster, scenes, resolution, deadline);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let peak_workers = cluster
            .stats()
            .scale_events
            .iter()
            .map(|e| e.to)
            .chain([scaler.workers_min])
            .max()
            .expect("chain is non-empty");
        let stats = cluster.shutdown();
        if autoscale {
            cost_error = stats.cost.mean_abs_pct_error;
        }
        ClusterRun {
            deadlined: stats.deadlined_requests(),
            misses: stats.deadline_misses(),
            p95_ms: stats.shards.iter().map(|s| s.serve.p95_latency_ms).fold(0.0, f64::max),
            wall_ms,
            scale_events: stats.scale_events.len(),
            peak_workers,
            spilled: stats.spilled,
            fits: stats.total_fits(),
        }
    };
    let fixed = run(false);
    let autoscaled = run(true);
    let report = ClusterReport {
        scenes: scenes.iter().map(|s| s.name().to_string()).collect(),
        deadline_ms,
        fixed,
        autoscaled,
        cost_error,
    };
    let _ = std::fs::remove_dir_all(&dir);
    report
}

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdr_cluster_exp_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Prints the comparison report.
pub fn print_cluster(r: &ClusterReport) {
    println!(
        "\nCluster: {} scenes ({}), 2 shards, {} waves x {} deadlined requests, deadline {:.0} ms",
        r.scenes.len(),
        r.scenes.join(", "),
        WAVES,
        r.scenes.len() * REQUESTS_PER_SCENE,
        r.deadline_ms,
    );
    print_header(&["Configuration", "miss rate", "p95 ms", "wall ms", "peak workers", "events"]);
    for (label, run) in [("fixed min workers", &r.fixed), ("autoscaled 1:4", &r.autoscaled)] {
        print_row(&[
            label.into(),
            format!("{}/{} ({:.0}%)", run.misses, run.deadlined, run.miss_rate() * 100.0),
            format!("{:.1}", run.p95_ms),
            format!("{:.0}", run.wall_ms),
            format!("{}", run.peak_workers),
            format!("{}", run.scale_events),
        ]);
    }
    let (f, a) = (r.fixed.miss_rate(), r.autoscaled.miss_rate());
    if f > 0.0 {
        println!(
            "autoscaler miss-rate change: {:.0}% -> {:.0}% ({} vs fixed minimum)",
            f * 100.0,
            a * 100.0,
            if a < f { fmt_x(f / a.max(1e-9)) + " better" } else { "no better".into() },
        );
    }
    println!(
        "cost model: {:.0}% mean abs prediction error; {} spilled requests (fixed {}, scaled {})",
        r.cost_error * 100.0,
        r.fixed.spilled + r.autoscaled.spilled,
        r.fixed.spilled,
        r.autoscaled.spilled,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use asdr_scenes::registry;

    #[test]
    fn overloaded_fixed_run_misses_and_autoscaler_reacts() {
        let mut h = Harness::new(Scale::Tiny);
        let scenes = [registry::handle("Mic"), registry::handle("Lego")];
        let r = run_cluster(&mut h, &scenes);
        let per_run = (scenes.len() * REQUESTS_PER_SCENE * WAVES) as u64;
        assert_eq!(r.fixed.deadlined, per_run);
        assert_eq!(r.autoscaled.deadlined, per_run);
        assert!(r.fixed.misses > 0, "the calibrated deadline must overload 1-worker shards: {r:?}");
        assert_eq!(r.fixed.scale_events, 0, "the fixed run must never scale");
        assert!(r.autoscaled.scale_events > 0, "sustained misses must trigger scaling: {r:?}");
        assert!(r.autoscaled.peak_workers > 1, "the pool must actually grow: {r:?}");
        assert_eq!(r.fixed.fits + r.autoscaled.fits, 0, "both runs warm from checkpoints");
        print_cluster(&r); // shape-check the printer too
    }

    /// The scale-out claim itself: with real cores behind the workers, the
    /// autoscaled cluster misses fewer deadlines than the fixed minimum.
    /// Meaningless on a 1-CPU container (extra workers only interleave),
    /// hence slow-tier: the nightly multicore runner executes it.
    #[test]
    #[ignore = "needs multiple physical cores; run via --ignored (nightly)"]
    fn autoscaling_reduces_the_miss_rate_on_multicore() {
        if std::thread::available_parallelism().map_or(1, |n| n.get()) < 2 {
            eprintln!("skipping: single-core machine, extra workers can only interleave");
            return;
        }
        let mut h = Harness::new(Scale::Tiny);
        let scenes = [registry::handle("Mic"), registry::handle("Lego")];
        let r = run_cluster(&mut h, &scenes);
        assert!(
            r.autoscaled.miss_rate() < r.fixed.miss_rate(),
            "autoscaling must measurably reduce the miss rate: {r:?}"
        );
    }
}
