//! TensoRF generalization experiments: Fig. 25 (performance) and Table 4
//! (quality), §6.8 of the paper.
//!
//! TensoRF's plane/line factor tables are regular (no hashing), so the ASDR
//! architecture maps them onto Mem Xbars without the hybrid de-hash step;
//! the chip model here is analytic over the measured operation counts (18
//! lookups per quantity per point, 4 quantities), with the MLP stage replaced
//! by the small factor-decode datapath.

use crate::{fmt_x, print_header, print_row, Harness};
use asdr_baselines::gpu::{simulate_gpu, GpuPerf, GpuSpec};
use asdr_core::algo::{RenderOptions, RenderStats};
use asdr_math::metrics::{quality, QualityReport};
use asdr_scenes::SceneHandle;

/// Analytic ASDR-chip time for a TensoRF workload.
///
/// Lookups are regular (sequential plane rows), so conflicts are rare; we
/// charge one cycle per `lanes` lookups plus a 20% conflict margin. The
/// rank-sum decode is dot products, which map directly onto the CIM arrays
/// (the paper's point in §6.8: TensoRF needs only minimal mapping changes),
/// so decode throughput matches the MLP engine's MAC rate.
pub fn tensorf_chip_time_s(stats: &RenderStats, lanes: u32, decode_macs_per_point: f64) -> f64 {
    let points = stats.total_encoded() as f64;
    let lookups = points * 72.0; // 4 quantities × 3 axes × (4 plane + 2 line)
    let enc_cycles = lookups / lanes as f64 * 1.2;
    let cim_macs_per_cycle = 4096.0;
    let decode_cycles = points * decode_macs_per_point / cim_macs_per_cycle;
    (enc_cycles.max(decode_cycles)) / 1.0e9
}

/// Fig. 25 row.
#[derive(Debug, Clone)]
pub struct Fig25Row {
    /// Scene.
    pub id: SceneHandle,
    /// GPU baseline frame time.
    pub gpu: GpuPerf,
    /// ASDR software (adaptive sampling) on the GPU.
    pub asdr_gpu_speedup: f64,
    /// ASDR architecture speedup over the GPU.
    pub asdr_arch_speedup: f64,
}

/// Runs Fig. 25.
pub fn run_fig25(h: &mut Harness, scenes: &[SceneHandle]) -> Vec<Fig25Row> {
    let base_ns = h.scale().base_ns();
    let spec = GpuSpec::rtx3070();
    scenes
        .iter()
        .map(|id| {
            let model = h.tensorf_model(id);
            let cam = h.camera(id);
            let baseline = h.render(&*model, &cam, &RenderOptions::instant_ngp(base_ns));
            // the paper's TensoRF software optimization is AS-driven
            let asdr_sw = h.render(&*model, &cam, &h.as_only_options());
            // TensoRF has 3 plane levels per quantity; bytes per lookup ≈ 2
            let gpu = simulate_gpu(&spec, &*model, &baseline.stats, 12, 2);
            let gpu_sw = simulate_gpu(&spec, &*model, &asdr_sw.stats, 12, 2);
            let (e, d, c) = {
                use asdr_nerf::model::RadianceModel;
                model.stage_flops()
            };
            // MACs = FLOPs / 2
            let decode_macs = (e + d + c) as f64 / 2.0;
            let arch_t = tensorf_chip_time_s(&asdr_sw.stats, 64, decode_macs);
            Fig25Row {
                id: id.clone(),
                gpu,
                asdr_gpu_speedup: gpu.total_s / gpu_sw.total_s,
                asdr_arch_speedup: gpu.total_s / arch_t,
            }
        })
        .collect()
}

/// Prints Fig. 25.
pub fn print_fig25(rows: &[Fig25Row]) {
    println!("\nFig. 25: ASDR on TensoRF (RTX 3070 = 1x)");
    print_header(&["Scene", "ASDR (GPU impl)", "ASDR architecture"]);
    let mut acc = [0.0f64; 2];
    for r in rows {
        acc[0] += r.asdr_gpu_speedup;
        acc[1] += r.asdr_arch_speedup;
        print_row(&[r.id.to_string(), fmt_x(r.asdr_gpu_speedup), fmt_x(r.asdr_arch_speedup)]);
    }
    let n = rows.len() as f64;
    print_row(&["Average".into(), fmt_x(acc[0] / n), fmt_x(acc[1] / n)]);
    println!("(paper averages: GPU impl 1.27x, ASDR architecture 29.98x)");
}

/// Table 4 row: TensoRF quality with and without ASDR optimizations.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Scene.
    pub id: SceneHandle,
    /// TensoRF at full sampling vs ground truth.
    pub tensorf: QualityReport,
    /// ASDR-optimized TensoRF vs ground truth.
    pub asdr: QualityReport,
}

/// Runs Table 4.
pub fn run_table4(h: &mut Harness, scenes: &[SceneHandle]) -> Vec<Table4Row> {
    let base_ns = h.scale().base_ns();
    scenes
        .iter()
        .map(|id| {
            let model = h.tensorf_model(id);
            let cam = h.camera(id);
            let gt = h.ground_truth(id);
            let full = h.render(&*model, &cam, &RenderOptions::instant_ngp(base_ns)).image;
            let asdr = h.render(&*model, &cam, &h.asdr_options()).image;
            Table4Row { id: id.clone(), tensorf: quality(&full, &gt), asdr: quality(&asdr, &gt) }
        })
        .collect()
}

/// Prints Table 4.
pub fn print_table4(rows: &[Table4Row]) {
    println!("\nTable 4: TensoRF rendering quality (vs ground truth)");
    print_header(&[
        "Scene",
        "PSNR TensoRF",
        "PSNR ASDR",
        "SSIM TensoRF",
        "SSIM ASDR",
        "LPIPS TensoRF",
        "LPIPS ASDR",
    ]);
    let mut acc = [0.0f64; 6];
    for r in rows {
        acc[0] += r.tensorf.psnr;
        acc[1] += r.asdr.psnr;
        acc[2] += r.tensorf.ssim;
        acc[3] += r.asdr.ssim;
        acc[4] += r.tensorf.lpips;
        acc[5] += r.asdr.lpips;
        print_row(&[
            r.id.to_string(),
            format!("{:.2}", r.tensorf.psnr),
            format!("{:.2}", r.asdr.psnr),
            format!("{:.3}", r.tensorf.ssim),
            format!("{:.3}", r.asdr.ssim),
            format!("{:.3}", r.tensorf.lpips),
            format!("{:.3}", r.asdr.lpips),
        ]);
    }
    let n = rows.len() as f64;
    print_row(&[
        "Average".into(),
        format!("{:.2}", acc[0] / n),
        format!("{:.2}", acc[1] / n),
        format!("{:.3}", acc[2] / n),
        format!("{:.3}", acc[3] / n),
        format!("{:.3}", acc[4] / n),
        format!("{:.3}", acc[5] / n),
    ]);
    println!("(paper: ASDR loses 0.14 PSNR on average on TensoRF)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn tensorf_experiments_hold_shape() {
        let mut h = Harness::new(Scale::Tiny);
        let f25 = run_fig25(&mut h, &["Mic"].map(asdr_scenes::registry::handle));
        assert!(f25[0].asdr_gpu_speedup > 1.0, "{f25:?}");
        assert!(f25[0].asdr_arch_speedup > f25[0].asdr_gpu_speedup, "{f25:?}");

        let t4 = run_table4(&mut h, &["Mic"].map(asdr_scenes::registry::handle));
        let r = &t4[0];
        assert!(r.tensorf.psnr - r.asdr.psnr < 2.0, "ASDR must be near-lossless: {r:?}");
        assert!(r.tensorf.psnr > 15.0, "TensoRF fit too weak: {r:?}");
    }
}
