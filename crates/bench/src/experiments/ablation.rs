//! Ablations: Fig. 20 (SW/HW contribution analysis) and Fig. 23 (early
//! termination × adaptive sampling).

use crate::{fmt_x, print_header, print_row, Harness};
use asdr_baselines::gpu::{simulate_gpu, GpuSpec};
use asdr_core::algo::RenderOptions;
use asdr_core::arch::chip::{simulate_chip, ChipOptions};
use asdr_scenes::SceneHandle;

/// Fig. 20 row: speedups over the Xavier NX GPU for each design point.
#[derive(Debug, Clone)]
pub struct Fig20Row {
    /// Scene.
    pub id: SceneHandle,
    /// Strawman CIM (no SW or HW optimizations).
    pub strawman: f64,
    /// Software optimizations only (AS + RA on the strawman chip).
    pub sw: f64,
    /// Hardware optimizations only (hybrid mapping + cache, fixed workload).
    pub hw: f64,
    /// Full ASDR (SW + HW).
    pub full: f64,
}

/// Runs Fig. 20 on the paper's three scenes.
pub fn run_fig20(h: &mut Harness, scenes: &[SceneHandle]) -> Vec<Fig20Row> {
    let base_ns = h.scale().base_ns();
    let asdr_opts = h.asdr_options();
    scenes
        .iter()
        .map(|id| {
            let model = h.model(id);
            let cam = h.camera(id);
            let cfg = model.encoder().config().clone();
            let fixed = h.render(&*model, &cam, &RenderOptions::instant_ngp(base_ns));
            let asdr = h.render(&*model, &cam, &asdr_opts);
            let gpu = simulate_gpu(
                &GpuSpec::xavier_nx(),
                &*model,
                &fixed.stats,
                cfg.levels,
                cfg.feat_dim,
            );
            let edge = ChipOptions::edge();
            let straw_opts = ChipOptions::edge().strawman();
            let strawman = simulate_chip(&model, &cam, &fixed, &straw_opts);
            let sw = simulate_chip(&model, &cam, &asdr, &straw_opts);
            let hw = simulate_chip(&model, &cam, &fixed, &edge);
            let full = simulate_chip(&model, &cam, &asdr, &edge);
            Fig20Row {
                id: id.clone(),
                strawman: gpu.total_s / strawman.time_s,
                sw: gpu.total_s / sw.time_s,
                hw: gpu.total_s / hw.time_s,
                full: gpu.total_s / full.time_s,
            }
        })
        .collect()
}

/// Prints Fig. 20.
pub fn print_fig20(rows: &[Fig20Row]) {
    println!("\nFig. 20: Contribution analysis (speedup over Xavier NX, edge config)");
    print_header(&["Scene", "Strawman", "SW only", "HW only", "ASDR (SW+HW)"]);
    for r in rows {
        print_row(&[r.id.to_string(), fmt_x(r.strawman), fmt_x(r.sw), fmt_x(r.hw), fmt_x(r.full)]);
    }
    println!("(paper, Family: strawman 2.49x -> SW 12.86x / HW 10.60x -> full 44.31x)");
}

/// Fig. 23 row: early termination × adaptive sampling, normalized to the
/// strawman (neither optimization).
#[derive(Debug, Clone)]
pub struct Fig23Row {
    /// Scene.
    pub id: SceneHandle,
    /// ET only.
    pub et: f64,
    /// AS only.
    pub as_only: f64,
    /// ET + AS.
    pub et_as: f64,
}

/// Runs Fig. 23.
pub fn run_fig23(h: &mut Harness, scenes: &[SceneHandle]) -> Vec<Fig23Row> {
    let base_ns = h.scale().base_ns();
    let as_opts = h.as_only_options();
    scenes
        .iter()
        .map(|id| {
            let model = h.model(id);
            let cam = h.camera(id);
            let opts = ChipOptions::edge();
            let mk = |early: bool, adaptive: bool| {
                let mut ro = if adaptive {
                    as_opts.clone() // AS without RA, isolating it for this figure
                } else {
                    RenderOptions::instant_ngp(base_ns)
                };
                ro.early_termination = early;
                let out = h.render(&*model, &cam, &ro);
                simulate_chip(&model, &cam, &out, &opts).time_s
            };
            let strawman = mk(false, false);
            Fig23Row {
                id: id.clone(),
                et: strawman / mk(true, false),
                as_only: strawman / mk(false, true),
                et_as: strawman / mk(true, true),
            }
        })
        .collect()
}

/// Prints Fig. 23.
pub fn print_fig23(rows: &[Fig23Row]) {
    println!("\nFig. 23: Early termination x adaptive sampling (strawman = 1x)");
    print_header(&["Scene", "ET", "AS", "ET+AS"]);
    let mut acc = [0.0f64; 3];
    for r in rows {
        acc[0] += r.et;
        acc[1] += r.as_only;
        acc[2] += r.et_as;
        print_row(&[r.id.to_string(), fmt_x(r.et), fmt_x(r.as_only), fmt_x(r.et_as)]);
    }
    let n = rows.len() as f64;
    print_row(&["Average".into(), fmt_x(acc[0] / n), fmt_x(acc[1] / n), fmt_x(acc[2] / n)]);
    println!("(paper averages: ET 3.67x, AS 4.40x, ET+AS 11.07x)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn fig20_components_compose() {
        let mut h = Harness::new(Scale::Tiny);
        let rows = run_fig20(&mut h, &["Palace"].map(asdr_scenes::registry::handle));
        let r = &rows[0];
        assert!(r.strawman > 0.5, "strawman should at least approach the edge GPU: {r:?}");
        assert!(r.sw > r.strawman, "SW opts must help: {r:?}");
        assert!(r.hw > r.strawman, "HW opts must help: {r:?}");
        assert!(r.full > r.sw && r.full > r.hw, "combined must beat either alone: {r:?}");
    }

    #[test]
    fn fig23_combination_is_best() {
        let mut h = Harness::new(Scale::Tiny);
        let rows = run_fig23(&mut h, &["Hotdog"].map(asdr_scenes::registry::handle));
        let r = &rows[0];
        assert!(r.et > 1.0, "ET must help on an opaque scene: {r:?}");
        assert!(r.as_only > 1.0, "AS must help: {r:?}");
        assert!(r.et_as >= r.et.max(r.as_only) * 0.95, "combo should be best: {r:?}");
    }
}
