//! Rendering-quality experiments: Fig. 16 (PSNR comparison) and Table 3
//! (SSIM / LPIPS).
//!
//! Quality protocol (DESIGN.md): the analytic scene renderer is the ground
//! truth; "Instant-NGP" is the fitted model at the full fixed sample count;
//! Re-NeRF is a compressed model at naive half sampling; NeuRex is the full
//! count on quantized grid features; ASDR is adaptive sampling + group-2
//! color decoupling on the same model. The paper's headline is the *ordering and
//! deltas*: ASDR ≈ Instant-NGP (−0.07 avg), NeuRex ≈ −0.38, Re-NeRF ≈ −2.06.

use crate::Harness;
use crate::{print_header, print_row};
use asdr_baselines::neurex::quantize_model_features;

/// Effective feature precision of NeuRex's restructured subgrid encoding.
/// Calibrated so NeuRex's quality loss lands between ASDR's (near-lossless)
/// and Re-NeRF's (paper: −0.38 vs −0.07 and −2.06); the mechanism (feature
/// quantization) is the synthetic stand-in for its encoding restructuring
/// (DESIGN.md §1).
pub const NEUREX_EFFECTIVE_BITS: u32 = 5;
use asdr_baselines::renerf::render_renerf;
use asdr_core::algo::RenderOptions;
use asdr_math::metrics::{psnr, quality, QualityReport};
use asdr_scenes::SceneHandle;

/// Quality of the four systems on one scene.
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Scene.
    pub id: SceneHandle,
    /// Instant-NGP (fitted model, full sampling) vs ground truth.
    pub instant_ngp: QualityReport,
    /// Re-NeRF (naive half sampling).
    pub renerf: QualityReport,
    /// NeuRex (quantized grid).
    pub neurex: QualityReport,
    /// ASDR (adaptive + decoupled).
    pub asdr: QualityReport,
    /// Average samples per pixel ASDR planned (paper: e.g. 120 of 192).
    pub asdr_avg_samples: f64,
    /// Fidelity to the unoptimized Instant-NGP render (PSNR, dB): isolates
    /// the loss each optimization *introduces* from the model's own fit
    /// error, which bounds all absolute PSNRs in this reproduction.
    pub fidelity_renerf: f64,
    /// NeuRex fidelity vs the Instant-NGP render.
    pub fidelity_neurex: f64,
    /// ASDR fidelity vs the Instant-NGP render.
    pub fidelity_asdr: f64,
}

/// Runs Fig. 16 / Table 3 on the given scenes.
pub fn run_fig16(h: &mut Harness, scenes: &[SceneHandle]) -> Vec<QualityRow> {
    let base_ns = h.scale().base_ns();
    let asdr_opts = h.asdr_options();
    scenes
        .iter()
        .map(|id| {
            let model = h.model(id);
            let cam = h.camera(id);
            let gt = h.ground_truth(id);
            let ngp_img = h.render(&*model, &cam, &RenderOptions::instant_ngp(base_ns)).image;
            let renerf_img = render_renerf(&model, &cam, base_ns, 2).image;
            let neurex_model = quantize_model_features(&model, NEUREX_EFFECTIVE_BITS);
            let neurex_img =
                h.render(&neurex_model, &cam, &RenderOptions::instant_ngp(base_ns)).image;
            let asdr_out = h.render(&*model, &cam, &asdr_opts);
            QualityRow {
                id: id.clone(),
                instant_ngp: quality(&ngp_img, &gt),
                renerf: quality(&renerf_img, &gt),
                neurex: quality(&neurex_img, &gt),
                asdr: quality(&asdr_out.image, &gt),
                asdr_avg_samples: asdr_out.plan.average(),
                fidelity_renerf: psnr(&renerf_img, &ngp_img),
                fidelity_neurex: psnr(&neurex_img, &ngp_img),
                fidelity_asdr: psnr(&asdr_out.image, &ngp_img),
            }
        })
        .collect()
}

/// Prints Fig. 16 (PSNR columns plus the fidelity-vs-NGP contrast).
pub fn print_fig16(rows: &[QualityRow]) {
    println!("\nFig. 16: Rendering quality comparison (PSNR dB vs ground truth)");
    print_header(&[
        "Scene",
        "InstNGP",
        "Re-NeRF",
        "NeuRex",
        "ASDR",
        "dPSNR(ASDR-NGP)",
        "avg samples",
    ]);
    print_fig16_gt_rows(rows);
    println!("\nFidelity vs the Instant-NGP render (higher = less optimization loss):");
    print_header(&["Scene", "Re-NeRF", "NeuRex", "ASDR"]);
    for r in rows {
        print_row(&[
            r.id.to_string(),
            format!("{:.2}", r.fidelity_renerf),
            format!("{:.2}", r.fidelity_neurex),
            format!("{:.2}", r.fidelity_asdr),
        ]);
    }
    println!("(paper deltas vs Instant-NGP: ASDR -0.07, NeuRex -0.38, Re-NeRF -2.06)");
}

fn print_fig16_gt_rows(rows: &[QualityRow]) {
    let mut sums = [0.0f64; 4];
    for r in rows {
        sums[0] += r.instant_ngp.psnr;
        sums[1] += r.renerf.psnr;
        sums[2] += r.neurex.psnr;
        sums[3] += r.asdr.psnr;
        print_row(&[
            r.id.to_string(),
            format!("{:.2}", r.instant_ngp.psnr),
            format!("{:.2}", r.renerf.psnr),
            format!("{:.2}", r.neurex.psnr),
            format!("{:.2}", r.asdr.psnr),
            format!("{:+.2}", r.asdr.psnr - r.instant_ngp.psnr),
            format!("{:.1}", r.asdr_avg_samples),
        ]);
    }
    let n = rows.len() as f64;
    print_row(&[
        "Average".into(),
        format!("{:.2}", sums[0] / n),
        format!("{:.2}", sums[1] / n),
        format!("{:.2}", sums[2] / n),
        format!("{:.2}", sums[3] / n),
        format!("{:+.2}", (sums[3] - sums[0]) / n),
        String::new(),
    ]);
}

/// Prints Table 3 (SSIM / LPIPS for NGP vs ASDR).
pub fn print_table3(rows: &[QualityRow]) {
    println!("\nTable 3: SSIM / LPIPS comparison (Instant-NGP vs ASDR)");
    print_header(&["Scene", "SSIM NGP", "SSIM ASDR", "LPIPS NGP", "LPIPS ASDR"]);
    let mut sums = [0.0f64; 4];
    for r in rows {
        sums[0] += r.instant_ngp.ssim;
        sums[1] += r.asdr.ssim;
        sums[2] += r.instant_ngp.lpips;
        sums[3] += r.asdr.lpips;
        print_row(&[
            r.id.to_string(),
            format!("{:.3}", r.instant_ngp.ssim),
            format!("{:.3}", r.asdr.ssim),
            format!("{:.3}", r.instant_ngp.lpips),
            format!("{:.3}", r.asdr.lpips),
        ]);
    }
    let n = rows.len() as f64;
    print_row(&[
        "Average".into(),
        format!("{:.3}", sums[0] / n),
        format!("{:.3}", sums[1] / n),
        format!("{:.3}", sums[2] / n),
        format!("{:.3}", sums[3] / n),
    ]);
    println!("(paper: average SSIM/LPIPS differ by 0.002 between NGP and ASDR)");
}

/// Scenes Table 3 reports (the six Synthetic-NeRF scenes).
pub fn table3_scenes() -> Vec<SceneHandle> {
    ["Lego", "Ship", "Hotdog", "Chair", "Mic", "Ficus"]
        .iter()
        .map(|n| asdr_scenes::registry::handle(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn quality_ordering_matches_paper() {
        let mut h = Harness::new(Scale::Tiny);
        let rows = run_fig16(&mut h, &["Mic", "Lego"].map(asdr_scenes::registry::handle));
        for r in &rows {
            // ASDR must track Instant-NGP closely…
            assert!(
                r.instant_ngp.psnr - r.asdr.psnr < 1.5,
                "{}: ASDR loses too much ({:.2} vs {:.2})",
                r.id,
                r.asdr.psnr,
                r.instant_ngp.psnr
            );
            // …and introduce less optimization loss than naive reduction
            // (measured against the NGP render, which removes the shared
            // model fit error)
            assert!(
                r.fidelity_asdr > r.fidelity_renerf,
                "{}: ASDR fidelity {:.2} should beat Re-NeRF {:.2}",
                r.id,
                r.fidelity_asdr,
                r.fidelity_renerf
            );
            // adaptive sampling must actually reduce samples
            assert!(r.asdr_avg_samples < h.scale().base_ns() as f64);
        }
    }
}
