//! Fig. 24: software-level optimizations on the GPU (no ASDR hardware).

use crate::{fmt_x, print_header, print_row, Harness};
use asdr_baselines::gpu::{simulate_gpu, GpuSpec};
use asdr_core::algo::RenderOptions;
use asdr_scenes::SceneHandle;

/// Fig. 24 row: GPU speedups from ASDR's algorithms alone.
#[derive(Debug, Clone)]
pub struct Fig24Row {
    /// Scene.
    pub id: SceneHandle,
    /// Adaptive sampling only.
    pub as_only: f64,
    /// Adaptive sampling + rendering approximation.
    pub as_ra: f64,
}

/// Runs Fig. 24 on the given scenes (RTX 3070 model).
pub fn run_fig24(h: &mut Harness, scenes: &[SceneHandle]) -> Vec<Fig24Row> {
    let base_ns = h.scale().base_ns();
    let spec = GpuSpec::rtx3070();
    scenes
        .iter()
        .map(|id| {
            let model = h.model(id);
            let cam = h.camera(id);
            let cfg = model.encoder().config().clone();
            let t = |opts: &RenderOptions| {
                let out = h.render(&*model, &cam, opts);
                simulate_gpu(&spec, &*model, &out.stats, cfg.levels, cfg.feat_dim).total_s
            };
            let base = t(&RenderOptions::instant_ngp(base_ns));
            let as_time = t(&h.as_only_options());
            let asra_time = t(&h.asdr_options());
            Fig24Row { id: id.clone(), as_only: base / as_time, as_ra: base / asra_time }
        })
        .collect()
}

/// Prints Fig. 24.
pub fn print_fig24(rows: &[Fig24Row]) {
    println!("\nFig. 24: GPU software-level optimizations (original CUDA impl = 1x)");
    print_header(&["Scene", "AS", "AS+RA"]);
    let mut acc = [0.0f64; 2];
    for r in rows {
        acc[0] += r.as_only;
        acc[1] += r.as_ra;
        print_row(&[r.id.to_string(), fmt_x(r.as_only), fmt_x(r.as_ra)]);
    }
    let n = rows.len() as f64;
    print_row(&["Average".into(), fmt_x(acc[0] / n), fmt_x(acc[1] / n)]);
    println!("(paper averages: AS 1.84x, AS+RA 2.75x)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn software_speedups_stack() {
        let mut h = Harness::new(Scale::Tiny);
        let rows = run_fig24(&mut h, &["Mic", "Hotdog"].map(asdr_scenes::registry::handle));
        for r in &rows {
            assert!(r.as_only > 1.0, "AS must help: {r:?}");
            assert!(r.as_ra >= r.as_only * 0.98, "RA must stack: {r:?}");
        }
    }
}
