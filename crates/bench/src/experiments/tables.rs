//! Table 1 (dataset statistics) and Table 2 (ASDR configuration).

use crate::{print_header, print_row, Harness};
use asdr_core::arch::AsdrConfig;
use asdr_scenes::{registry, SceneHandle};

/// One Table-1 row: registry metadata plus the procedural stand-in's
/// occupancy.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Scene id.
    pub id: SceneHandle,
    /// Source dataset.
    pub dataset: String,
    /// Native resolution.
    pub resolution: (u32, u32),
    /// Synthetic / real-world.
    pub kind: String,
    /// Occupied-volume fraction of the procedural field.
    pub occupancy: f32,
}

/// Collects Table 1 over the paper scenes.
pub fn run_table1(h: &mut Harness) -> Vec<Table1Row> {
    run_table1_on(h, &registry::paper_scenes())
}

/// Collects Table 1 rows for any scene set.
pub fn run_table1_on(_h: &mut Harness, scenes: &[SceneHandle]) -> Vec<Table1Row> {
    scenes
        .iter()
        .map(|id| {
            let field = id.build();
            Table1Row {
                id: id.clone(),
                dataset: id.dataset().to_string(),
                resolution: id.resolution(),
                kind: id.kind().to_string(),
                occupancy: field.occupancy(1.0, 16),
            }
        })
        .collect()
}

/// Prints Table 1.
pub fn print_table1(rows: &[Table1Row]) {
    println!("\nTable 1: Dataset statistics (procedural stand-ins)");
    print_header(&["Dataset", "Scene", "Resolution", "Type", "Occupancy"]);
    for r in rows {
        print_row(&[
            r.dataset.to_string(),
            r.id.to_string(),
            format!("{}x{}", r.resolution.0, r.resolution.1),
            r.kind.clone(),
            format!("{:.1}%", r.occupancy * 100.0),
        ]);
    }
}

/// Collects Table 2 (both instances).
pub fn run_table2() -> Vec<(AsdrConfig, f64, f64)> {
    [AsdrConfig::server(), AsdrConfig::edge()]
        .into_iter()
        .map(|c| {
            let area = c.total_area_mm2();
            let power = c.total_power_w();
            (c, area, power)
        })
        .collect()
}

/// Prints Table 2.
pub fn print_table2(rows: &[(AsdrConfig, f64, f64)]) {
    for (cfg, area, power) in rows {
        println!("\nTable 2: {} configuration", cfg.name);
        print_header(&["Engine", "Component", "Area (mm^2)", "Power (mW)", "Config"]);
        for r in cfg.table2_rows() {
            print_row(&[
                r.engine.to_string(),
                r.component.to_string(),
                format!("{:.4}", r.area_mm2),
                format!("{:.2}", r.power_mw),
                r.config.to_string(),
            ]);
        }
        println!("Total: {area:.2} mm^2, {power:.2} W (published total incl. CIM dynamic power)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn table1_covers_all_scenes() {
        let mut h = Harness::new(Scale::Tiny);
        let rows = run_table1(&mut h);
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r.occupancy > 0.0));
        // paper: six Synthetic-NeRF scenes
        assert_eq!(rows.iter().filter(|r| r.dataset == "Synthetic-NeRF").count(), 6);
    }

    #[test]
    fn table2_has_two_instances() {
        let rows = run_table2();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].1 > rows[1].1, "server bigger than edge");
    }
}
