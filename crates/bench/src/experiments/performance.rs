//! End-to-end performance experiments: Fig. 17 (speedup), Fig. 18 (phase
//! breakdown), Fig. 19 (energy efficiency), in server and edge settings.

use crate::{fmt_x, print_header, print_row, Harness};
use asdr_baselines::gpu::{simulate_gpu, GpuPerf, GpuSpec};
use asdr_baselines::neurex::{simulate_neurex, NeurexPerf, NeurexVariant};
use asdr_core::algo::RenderOptions;
use asdr_core::arch::chip::{simulate_chip, ChipOptions, PerfReport};
use asdr_scenes::SceneHandle;

/// All platform results for one scene.
#[derive(Debug, Clone)]
pub struct ScenePerf {
    /// Scene.
    pub id: SceneHandle,
    /// RTX 3070 running the fixed Instant-NGP workload.
    pub gpu_server: GpuPerf,
    /// Xavier NX running the fixed Instant-NGP workload.
    pub gpu_edge: GpuPerf,
    /// NeuRex-Server on the fixed workload.
    pub neurex_server: NeurexPerf,
    /// NeuRex-Edge on the fixed workload.
    pub neurex_edge: NeurexPerf,
    /// ASDR-Server on the ASDR workload.
    pub asdr_server: PerfReport,
    /// ASDR-Edge on the ASDR workload.
    pub asdr_edge: PerfReport,
}

/// Runs the per-scene platform suite used by Figs. 17–19.
pub fn run_perf(h: &mut Harness, scenes: &[SceneHandle]) -> Vec<ScenePerf> {
    let base_ns = h.scale().base_ns();
    let asdr_opts = h.asdr_options();
    scenes
        .iter()
        .map(|id| {
            let model = h.model(id);
            let cam = h.camera(id);
            let cfg = model.encoder().config().clone();
            let baseline = h.render(&*model, &cam, &RenderOptions::instant_ngp(base_ns));
            let asdr = h.render(&*model, &cam, &asdr_opts);
            ScenePerf {
                id: id.clone(),
                gpu_server: simulate_gpu(
                    &GpuSpec::rtx3070(),
                    &*model,
                    &baseline.stats,
                    cfg.levels,
                    cfg.feat_dim,
                ),
                gpu_edge: simulate_gpu(
                    &GpuSpec::xavier_nx(),
                    &*model,
                    &baseline.stats,
                    cfg.levels,
                    cfg.feat_dim,
                ),
                neurex_server: simulate_neurex(&model, &baseline.stats, NeurexVariant::Server),
                neurex_edge: simulate_neurex(&model, &baseline.stats, NeurexVariant::Edge),
                asdr_server: simulate_chip(&model, &cam, &asdr, &ChipOptions::server()),
                asdr_edge: simulate_chip(&model, &cam, &asdr, &ChipOptions::edge()),
            }
        })
        .collect()
}

/// Prints Fig. 17: end-to-end speedups normalized to the GPU of each
/// setting.
pub fn print_fig17(rows: &[ScenePerf]) {
    println!("\nFig. 17(a): Server speedup (RTX 3070 = 1x)");
    print_header(&["Scene", "RTX 3070", "NeuRex-Server", "ASDR-Server"]);
    let mut acc = [0.0f64; 2];
    for r in rows {
        let nx = r.gpu_server.total_s / r.neurex_server.total_s;
        let ax = r.gpu_server.total_s / r.asdr_server.time_s;
        acc[0] += nx;
        acc[1] += ax;
        print_row(&[r.id.to_string(), "1.00x".into(), fmt_x(nx), fmt_x(ax)]);
    }
    let n = rows.len() as f64;
    print_row(&["Average".into(), "1.00x".into(), fmt_x(acc[0] / n), fmt_x(acc[1] / n)]);
    println!("(paper averages: NeuRex 2.89x, ASDR 11.84x)");

    println!("\nFig. 17(b): Edge speedup (Xavier NX = 1x)");
    print_header(&["Scene", "Xavier NX", "NeuRex-Edge", "ASDR-Edge"]);
    let mut acc = [0.0f64; 2];
    for r in rows {
        let nx = r.gpu_edge.total_s / r.neurex_edge.total_s;
        let ax = r.gpu_edge.total_s / r.asdr_edge.time_s;
        acc[0] += nx;
        acc[1] += ax;
        print_row(&[r.id.to_string(), "1.00x".into(), fmt_x(nx), fmt_x(ax)]);
    }
    print_row(&["Average".into(), "1.00x".into(), fmt_x(acc[0] / n), fmt_x(acc[1] / n)]);
    println!("(paper averages: NeuRex 9.21x, ASDR 49.61x)");
}

/// Prints Fig. 18: per-phase (encoding / MLP) speedups of ASDR vs the
/// baselines.
pub fn print_fig18(rows: &[ScenePerf]) {
    let clock = 1.0e9;
    println!("\nFig. 18: Phase speedup of ASDR (vs GPU / vs NeuRex)");
    print_header(&[
        "Scene",
        "ENC vs GPU (server)",
        "MLP vs GPU (server)",
        "ENC vs GPU (edge)",
        "MLP vs GPU (edge)",
        "ENC vs NeuRex (server)",
        "MLP vs NeuRex (server)",
    ]);
    for r in rows {
        let enc_s = r.asdr_server.encoding_cycles / clock;
        let mlp_s = r.asdr_server.mlp_cycles / clock;
        let enc_e = r.asdr_edge.encoding_cycles / clock;
        let mlp_e = r.asdr_edge.mlp_cycles / clock;
        print_row(&[
            r.id.to_string(),
            fmt_x(r.gpu_server.encoding_s / enc_s),
            fmt_x(r.gpu_server.mlp_s / mlp_s),
            fmt_x(r.gpu_edge.encoding_s / enc_e),
            fmt_x(r.gpu_edge.mlp_s / mlp_e),
            fmt_x(r.neurex_server.encoding_s / enc_s),
            fmt_x(r.neurex_server.mlp_s / mlp_s),
        ]);
    }
    println!("(paper: ASDR-Server avg 3.90x ENC / 2.77x MLP over baselines; edge 17.37x / 7.52x)");
}

/// Prints Fig. 19: energy efficiency (frames per joule, normalized to the
/// GPU of each setting).
pub fn print_fig19(rows: &[ScenePerf]) {
    println!("\nFig. 19(a): Server energy efficiency (RTX 3070 = 1x)");
    print_header(&["Scene", "NeuRex-Server", "ASDR-Server"]);
    let mut acc = [0.0f64; 2];
    for r in rows {
        let nx = r.gpu_server.energy_j / r.neurex_server.energy_j;
        let ax = r.gpu_server.energy_j / r.asdr_server.total_energy_j;
        acc[0] += nx;
        acc[1] += ax;
        print_row(&[r.id.to_string(), fmt_x(nx), fmt_x(ax)]);
    }
    let n = rows.len() as f64;
    print_row(&["Average".into(), fmt_x(acc[0] / n), fmt_x(acc[1] / n)]);
    println!("(paper averages: NeuRex 12.70x, ASDR 36.06x)");

    println!("\nFig. 19(b): Edge energy efficiency (Xavier NX = 1x)");
    print_header(&["Scene", "NeuRex-Edge", "ASDR-Edge"]);
    let mut acc = [0.0f64; 2];
    for r in rows {
        let nx = r.gpu_edge.energy_j / r.neurex_edge.energy_j;
        let ax = r.gpu_edge.energy_j / r.asdr_edge.total_energy_j;
        acc[0] += nx;
        acc[1] += ax;
        print_row(&[r.id.to_string(), fmt_x(nx), fmt_x(ax)]);
    }
    print_row(&["Average".into(), fmt_x(acc[0] / n), fmt_x(acc[1] / n)]);
    println!("(paper averages: NeuRex 14.56x, ASDR 82.39x)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn platform_ordering_matches_fig17() {
        let mut h = Harness::new(Scale::Tiny);
        let rows = run_perf(&mut h, &["Palace"].map(asdr_scenes::registry::handle));
        let r = &rows[0];
        // server: ASDR > NeuRex > GPU
        assert!(r.neurex_server.total_s < r.gpu_server.total_s, "NeuRex must beat the GPU");
        assert!(r.asdr_server.time_s < r.neurex_server.total_s, "ASDR must beat NeuRex");
        // edge mirrors it
        assert!(r.neurex_edge.total_s < r.gpu_edge.total_s);
        assert!(r.asdr_edge.time_s < r.neurex_edge.total_s);
        // edge speedup over its GPU exceeds server speedup over its GPU
        let server_x = r.gpu_server.total_s / r.asdr_server.time_s;
        let edge_x = r.gpu_edge.total_s / r.asdr_edge.time_s;
        assert!(edge_x > server_x, "edge {edge_x} vs server {server_x}");
    }

    #[test]
    fn energy_efficiency_favors_asdr() {
        let mut h = Harness::new(Scale::Tiny);
        let rows = run_perf(&mut h, &["Mic"].map(asdr_scenes::registry::handle));
        let r = &rows[0];
        assert!(r.asdr_server.total_energy_j < r.gpu_server.energy_j);
        assert!(r.asdr_edge.total_energy_j < r.neurex_edge.energy_j);
    }
}
