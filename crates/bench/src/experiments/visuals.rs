//! Visualization figures: Fig. 7 (adaptive sample-count heatmap) and Fig. 9
//! (volume-rendering approximation vs naive reduction).

use crate::{print_header, print_row, Harness};
use asdr_core::algo::adaptive::SamplePlan;
use asdr_core::algo::RenderOptions;
use asdr_math::metrics::psnr;
use asdr_math::{Image, Rgb};
use asdr_scenes::SceneHandle;
use std::path::Path;

/// Renders the per-pixel sample-count plan as a blue→red heatmap (the
/// Fig. 7 visualization: red = many samples, blue = few).
pub fn plan_heatmap(plan: &SamplePlan) -> Image {
    let mut img = Image::new(plan.width(), plan.height());
    let base = plan.base_ns() as f32;
    for y in 0..plan.height() {
        for x in 0..plan.width() {
            let t = (plan.count(x, y) as f32 / base).clamp(0.0, 1.0);
            // cold-to-hot ramp
            let c = if t < 0.5 {
                Rgb::new(0.1, 0.2 + 1.6 * t, 1.0 - 1.6 * t)
            } else {
                Rgb::new(2.0 * (t - 0.5) + 0.1, 1.0 - 1.6 * (t - 0.5), 0.1)
            };
            img.set(x, y, c.clamp01());
        }
    }
    img
}

/// Fig. 7 result: the plan statistics plus the heatmap.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Scene.
    pub id: SceneHandle,
    /// Mean planned samples per pixel.
    pub avg_samples: f64,
    /// Base (full) sample count.
    pub base_ns: usize,
    /// Fraction of pixels planned at the ladder minimum ("background"
    /// pixels — the paper reports ~40% for Lego).
    pub frac_minimum: f64,
    /// PSNR of the adaptive render vs the fixed-count render.
    pub fidelity_db: f64,
    /// The heatmap image.
    pub heatmap: Image,
    /// The adaptive render.
    pub render: Image,
}

/// Runs Fig. 7 on a scene.
pub fn run_fig7(h: &mut Harness, id: &SceneHandle) -> Fig7Result {
    let base_ns = h.scale().base_ns();
    let model = h.model(id);
    let cam = h.camera(id);
    let fixed = h.render(&*model, &cam, &RenderOptions::instant_ngp(base_ns));
    let mut opts = h.asdr_options();
    opts.approx_group = 1; // Fig. 7 isolates adaptive sampling
    let out = h.render(&*model, &cam, &opts);
    let min_count = out.plan.counts().iter().copied().min().unwrap_or(0);
    let frac_minimum = out.plan.counts().iter().filter(|&&c| c == min_count).count() as f64
        / out.plan.counts().len() as f64;
    Fig7Result {
        id: id.clone(),
        avg_samples: out.plan.average(),
        base_ns,
        frac_minimum,
        fidelity_db: psnr(&out.image, &fixed.image),
        heatmap: plan_heatmap(&out.plan),
        render: out.image,
    }
}

/// Prints Fig. 7 and writes the heatmap/render PPMs into `dir` (if given).
pub fn print_fig7(r: &Fig7Result, dir: Option<&Path>) {
    println!("\nFig. 7: Adaptive sampling visualization ({})", r.id);
    print_header(&["avg samples", "of base", "pixels at minimum", "PSNR vs fixed"]);
    print_row(&[
        format!("{:.1}", r.avg_samples),
        r.base_ns.to_string(),
        format!("{:.1}%", r.frac_minimum * 100.0),
        format!("{:.2} dB", r.fidelity_db),
    ]);
    println!("(paper: Lego needs 120 of 192 on average; ~40% background pixels take 12)");
    if let Some(d) = dir {
        let _ = std::fs::create_dir_all(d);
        let name = r.id.name().to_lowercase();
        let hp = d.join(format!("fig7_{name}_heatmap.ppm"));
        let rp = d.join(format!("fig7_{name}_render.ppm"));
        if r.heatmap.write_ppm(&hp).is_ok() && r.render.write_ppm(&rp).is_ok() {
            println!("heatmap -> {}, render -> {}", hp.display(), rp.display());
        }
    }
}

/// Fig. 9 result: the three-way approximation comparison.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// Scene.
    pub id: SceneHandle,
    /// PSNR of the full render vs ground truth.
    pub original_psnr: f64,
    /// PSNR of naive half sampling vs ground truth.
    pub naive_psnr: f64,
    /// PSNR of ASDR's group-2 approximation vs ground truth.
    pub approx_psnr: f64,
    /// Color-MLP workload of the approximation relative to the original.
    pub approx_color_frac: f64,
    /// Total workload of naive reduction relative to the original.
    pub naive_work_frac: f64,
}

/// Runs Fig. 9 on a scene (paper uses Lego: 35.01 / 33.32 / 35.03 dB).
pub fn run_fig9(h: &mut Harness, id: &SceneHandle) -> Fig9Result {
    let base_ns = h.scale().base_ns();
    let model = h.model(id);
    let cam = h.camera(id);
    let gt = h.ground_truth(id);
    let full = h.render(&*model, &cam, &RenderOptions::instant_ngp(base_ns));
    let naive = h.render(&*model, &cam, &RenderOptions::instant_ngp(base_ns / 2));
    let mut approx_opts = RenderOptions::instant_ngp(base_ns);
    approx_opts.approx_group = 2;
    let approx = h.render(&*model, &cam, &approx_opts);
    Fig9Result {
        id: id.clone(),
        original_psnr: psnr(&full.image, &gt),
        naive_psnr: psnr(&naive.image, &gt),
        approx_psnr: psnr(&approx.image, &gt),
        approx_color_frac: approx.stats.total_color() as f64 / full.stats.total_color() as f64,
        naive_work_frac: naive.stats.total_density() as f64 / full.stats.total_density() as f64,
    }
}

/// Prints Fig. 9.
pub fn print_fig9(r: &Fig9Result) {
    println!("\nFig. 9: Volume-rendering approximation vs naive reduction ({})", r.id);
    print_header(&["variant", "PSNR (dB)", "workload"]);
    print_row(&["original (full)".into(), format!("{:.2}", r.original_psnr), "100%".into()]);
    print_row(&[
        "naive half sampling".into(),
        format!("{:.2}", r.naive_psnr),
        format!("{:.0}% density+color", r.naive_work_frac * 100.0),
    ]);
    print_row(&[
        "ASDR approximation (n=2)".into(),
        format!("{:.2}", r.approx_psnr),
        format!("{:.0}% color MLP", r.approx_color_frac * 100.0),
    ]);
    println!(
        "(paper, Lego: 35.01 / 33.32 / 35.03 dB — the approximation is ~1.7 dB better than naive)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn fig7_heatmap_reflects_plan() {
        let mut h = Harness::new(Scale::Tiny);
        let r = run_fig7(&mut h, &asdr_scenes::registry::handle("Mic"));
        assert_eq!(r.heatmap.width(), h.scale().resolution());
        assert!(r.avg_samples < r.base_ns as f64);
        assert!(r.frac_minimum > 0.05, "a background-heavy scene has minimum-count pixels");
        assert!(r.fidelity_db > 25.0, "adaptive render too lossy: {}", r.fidelity_db);
    }

    #[test]
    fn fig9_approximation_beats_naive() {
        let mut h = Harness::new(Scale::Tiny);
        let r = run_fig9(&mut h, &asdr_scenes::registry::handle("Lego"));
        // at toy scale the base count is generous relative to scene
        // frequency content, so naive halving barely hurts and the paper's
        // 1.7 dB contrast compresses; the approximation must at least stay
        // in the same band while halving only the color path
        assert!(
            r.approx_psnr >= r.naive_psnr - 0.5,
            "approximation should not lose to naive reduction: {r:?}"
        );
        assert!((r.approx_color_frac - 0.5).abs() < 0.1, "n=2 halves the color MLP: {r:?}");
    }
}
