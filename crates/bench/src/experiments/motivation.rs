//! Motivation / analysis figures: 4 (address trace), 5 (FLOPs breakdown),
//! 8 (color similarity), 13 (storage utilization), 15 (repetition rates).

use crate::{print_header, print_row, Harness};
use asdr_core::arch::addrgen::{HybridAddressGenerator, MappingMode};
use asdr_nerf::profile;
use asdr_scenes::{registry, SceneHandle};

/// Fig. 4 result: the address stream and its locality summary.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Sampled `(access index, byte address)` pairs for plotting.
    pub samples: Vec<(usize, u64)>,
    /// Mean absolute stride between consecutive accesses.
    pub mean_stride: f64,
    /// Address-space span touched.
    pub span: u64,
}

/// Runs Fig. 4 on the Lego scene (1500 consecutive sample points, as the
/// paper plots).
pub fn run_fig4(h: &mut Harness) -> Fig4Result {
    let lego = registry::handle("Lego");
    let model = h.model(&lego);
    let cam = h.camera(&lego);
    let addrs = profile::trace_addresses(&model, &cam, h.scale().base_ns(), 1500);
    let n = addrs.len();
    let step = (n / 60).max(1);
    let samples: Vec<(usize, u64)> = addrs.iter().copied().enumerate().step_by(step).collect();
    let lo = addrs.iter().copied().min().unwrap_or(0);
    let hi = addrs.iter().copied().max().unwrap_or(0);
    Fig4Result { samples, mean_stride: profile::mean_address_stride(&addrs), span: hi - lo }
}

/// Prints Fig. 4.
pub fn print_fig4(r: &Fig4Result) {
    println!("\nFig. 4: Data-access visualization (Lego, 1500 consecutive sample points)");
    print_header(&["access #", "byte address"]);
    for (i, a) in &r.samples {
        print_row(&[i.to_string(), format!("{a:#x}")]);
    }
    println!(
        "mean |stride| = {:.0} bytes over a {:#x}-byte span — hash mapping destroys spatial locality",
        r.mean_stride, r.span
    );
}

/// Fig. 5 result: FLOP percentage shares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Result {
    /// Embedding (encoding) share, percent.
    pub embedding: f64,
    /// Density MLP share, percent.
    pub density: f64,
    /// Color MLP share, percent.
    pub color: f64,
}

/// Runs Fig. 5.
pub fn run_fig5(h: &mut Harness) -> Fig5Result {
    let model = h.model(&registry::handle("Lego"));
    let (e, d, c) = profile::flops_breakdown(&*model);
    Fig5Result { embedding: e, density: d, color: c }
}

/// Prints Fig. 5 (paper: 2.10 / 32.19 / 65.71).
pub fn print_fig5(r: &Fig5Result) {
    println!("\nFig. 5: FLOPs breakdown (paper: embedding 2.10%, density 32.19%, color 65.71%)");
    print_header(&["Embedding", "Density MLP", "Color MLP"]);
    print_row(&[
        format!("{:.2}%", r.embedding),
        format!("{:.2}%", r.density),
        format!("{:.2}%", r.color),
    ]);
}

/// Fig. 8 result row.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Scene.
    pub id: SceneHandle,
    /// 5th-percentile cosine similarity ("95% of similarities ≥ this").
    pub p05: f32,
    /// Fraction of similarities ≥ 0.9.
    pub frac_high: f64,
    /// Pairs measured.
    pub count: usize,
}

/// Runs Fig. 8 on the paper's three scenes (Mic, Lego, Palace).
pub fn run_fig8(h: &mut Harness) -> Vec<Fig8Row> {
    run_fig8_on(h, &["Mic", "Lego", "Palace"].map(registry::handle))
}

/// Runs Fig. 8 on any scene set.
pub fn run_fig8_on(h: &mut Harness, scenes: &[SceneHandle]) -> Vec<Fig8Row> {
    scenes
        .iter()
        .map(|id| {
            let model = h.model(id);
            let cam = h.camera(id);
            let stats = profile::color_similarity(&model, &cam, h.scale().base_ns(), 3);
            Fig8Row {
                id: id.clone(),
                p05: stats.p05,
                frac_high: stats.frac_high,
                count: stats.count,
            }
        })
        .collect()
}

/// Prints Fig. 8 (paper: 95% of similarities ≥ 0.9994 / 1.0000 / 0.9964).
pub fn print_fig8(rows: &[Fig8Row]) {
    println!("\nFig. 8: Cosine similarity between adjacent sampled point colors");
    print_header(&["Scene", "95% of similarities >=", "frac >= 0.9", "pairs"]);
    for r in rows {
        print_row(&[
            r.id.to_string(),
            format!("{:.4}", r.p05),
            format!("{:.1}%", r.frac_high * 100.0),
            r.count.to_string(),
        ]);
    }
}

/// Fig. 13 result: per-level storage utilization for both mappings.
#[derive(Debug, Clone)]
pub struct Fig13Result {
    /// Per-level utilization under all-hash mapping.
    pub naive: Vec<f64>,
    /// Per-level utilization under hybrid mapping.
    pub hybrid: Vec<f64>,
    /// Averages (paper: 62.20% → 85.95%).
    pub naive_avg: f64,
    /// Hybrid average.
    pub hybrid_avg: f64,
}

/// Runs Fig. 13 on the current grid configuration.
pub fn run_fig13(h: &mut Harness) -> Fig13Result {
    let cfg = h.scale().grid();
    let naive_gen = HybridAddressGenerator::new(cfg.clone(), MappingMode::AllHash);
    let hybrid_gen = HybridAddressGenerator::new(cfg.clone(), MappingMode::Hybrid);
    let naive: Vec<f64> = (0..cfg.levels).map(|l| naive_gen.level_utilization(l)).collect();
    let hybrid: Vec<f64> = (0..cfg.levels).map(|l| hybrid_gen.level_utilization(l)).collect();
    Fig13Result {
        naive_avg: naive_gen.average_utilization(),
        hybrid_avg: hybrid_gen.average_utilization(),
        naive,
        hybrid,
    }
}

/// Prints Fig. 13.
pub fn print_fig13(r: &Fig13Result) {
    println!("\nFig. 13: Storage utilization before/after hybrid mapping");
    print_header(&["Table", "All-hash", "Hybrid"]);
    for (l, (n, hy)) in r.naive.iter().zip(&r.hybrid).enumerate() {
        print_row(&[l.to_string(), format!("{:.1}%", n * 100.0), format!("{:.1}%", hy * 100.0)]);
    }
    println!(
        "average: {:.2}% -> {:.2}% (paper: 62.20% -> 85.95%)",
        r.naive_avg * 100.0,
        r.hybrid_avg * 100.0
    );
}

/// Fig. 15 result: per-level repetition rates.
#[derive(Debug, Clone)]
pub struct Fig15Result {
    /// Inter-ray repetition per level (fractions).
    pub inter_ray: Vec<f64>,
    /// Intra-ray max points per voxel, per level.
    pub intra_ray: Vec<f64>,
}

/// Runs Fig. 15 on Lego.
pub fn run_fig15(h: &mut Harness) -> Fig15Result {
    let lego = registry::handle("Lego");
    let model = h.model(&lego);
    let cam = h.camera(&lego);
    let p = profile::repetition_rates(&model, &cam, h.scale().base_ns(), 5);
    Fig15Result { inter_ray: p.inter_ray, intra_ray: p.intra_ray }
}

/// Prints Fig. 15.
pub fn print_fig15(r: &Fig15Result) {
    println!("\nFig. 15: Point repetition rates (Lego)");
    print_header(&["Level", "Inter-ray repetition", "Intra-ray max pts/voxel"]);
    for l in 0..r.inter_ray.len() {
        print_row(&[
            l.to_string(),
            format!("{:.1}%", r.inter_ray[l] * 100.0),
            format!("{:.1}", r.intra_ray[l]),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn motivation_figures_reproduce_paper_shapes() {
        let mut h = Harness::new(Scale::Tiny);
        let f4 = run_fig4(&mut h);
        assert!(f4.mean_stride > 1000.0, "hash stream must be scattered");
        assert!(!f4.samples.is_empty());

        let f5 = run_fig5(&mut h);
        assert!(f5.color > f5.density && f5.density > f5.embedding);
        assert!((f5.embedding + f5.density + f5.color - 100.0).abs() < 1e-6);

        let f8 = run_fig8(&mut h);
        assert_eq!(f8.len(), 3);
        assert!(f8.iter().all(|r| r.frac_high > 0.6), "{f8:?}");

        let f13 = run_fig13(&mut h);
        assert!(f13.hybrid_avg > f13.naive_avg);

        let f15 = run_fig15(&mut h);
        let n = f15.inter_ray.len();
        assert!(f15.inter_ray[0] > f15.inter_ray[n - 1]);
    }
}
