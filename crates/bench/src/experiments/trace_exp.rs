//! The `trace` experiment: representative replay — a full synthetic
//! diurnal trace versus its SimPoint-style sampled reduction, replayed
//! through the same warm [`RenderService`] (ROADMAP "trace capture,
//! compression, and representative replay").
//!
//! A seeded diurnal arrival process (trough-to-peak sinusoid with a
//! Zipf-skewed scene mix) is drained once into a concrete trace. The
//! *full* run replays every request through a 1-worker service at
//! [`SPEED`]× time warp; the *sampled* run clusters the trace's
//! fixed-size windows by (scene-mix, rate, resolution) fingerprint,
//! replays only the weighted medoid windows, and extrapolates the
//! full-trace miss rate with [`weighted_estimate`]'s 95% error bar. The
//! report compares wall-clock (the compression the sampling buys) against
//! estimate error (what it costs): the measured full-trace miss rate must
//! land inside the sampled estimate's error bar. Both runs share one
//! pre-warmed in-memory store, so neither pays cold fits.

use crate::{fmt_x, print_header, print_row, Harness};
use asdr_scenes::SceneHandle;
use asdr_serve::trace::sample::collect_window_obs;
use asdr_serve::trace::source::drain;
use asdr_serve::trace::{format, sample_trace, Arrivals, Estimate, PlanMeta, SynthSpec};
use asdr_serve::{
    BinarySource, ModelStore, RenderProfile, RenderRequest, ReplayDriver, SyntheticSource,
};
use std::sync::Arc;
use std::time::Instant;

/// Simulated trace length, seconds.
pub const DURATION_S: u64 = 40;
/// Replay time warp: arrival offsets are divided by this.
pub const SPEED: f64 = 20.0;
/// Phase-sampling window, milliseconds of simulated time.
pub const WINDOW_MS: u64 = 4000;
/// Medoid windows kept by the sampling pass.
pub const CLUSTERS: usize = 3;
/// Diurnal trough arrival rate, requests per second.
const BASE_HZ: f64 = 0.5;
/// Diurnal peak arrival rate, requests per second.
const PEAK_HZ: f64 = 2.5;
/// Diurnal cycle length, seconds.
const PERIOD_S: f64 = 20.0;
/// Seed for both the generator and the medoid tie-break.
const SEED: u64 = 17;
/// Deadline as a multiple of the measured warm single-frame latency.
const DEADLINE_FACTOR: f64 = 2.5;

/// One replay's measured outcome.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// Requests replayed.
    pub requests: u64,
    /// Frames rendered.
    pub frames: u64,
    /// Requests that missed their deadline.
    pub misses: u64,
    /// Wall-clock from first submission to last completion, milliseconds.
    pub wall_ms: f64,
    /// Cumulative fits on the shared store at shutdown — stays at the
    /// warm-up count when the replay itself fits nothing.
    pub fits: u64,
}

impl TraceRun {
    /// Deadline-miss rate of the run (every request carries a deadline).
    pub fn miss_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.misses as f64 / self.requests as f64
    }
}

/// The full-vs-sampled comparison.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Scene names in the mix.
    pub scenes: Vec<String>,
    /// Calibrated per-request deadline, milliseconds.
    pub deadline_ms: u64,
    /// The sampling plan (window size, kept medoids, cluster weights).
    pub plan: PlanMeta,
    /// Extrapolated full-trace estimate from the sampled run.
    pub estimate: Estimate,
    /// Every request replayed.
    pub full: TraceRun,
    /// Only the weighted medoid windows replayed.
    pub sampled: TraceRun,
}

impl TraceReport {
    /// Wall-clock compression the sampled replay achieves.
    pub fn compression(&self) -> f64 {
        self.full.wall_ms / self.sampled.wall_ms.max(1e-9)
    }

    /// Absolute gap between the measured full-trace miss rate and the
    /// sampled estimate.
    pub fn estimate_error(&self) -> f64 {
        (self.full.miss_rate() - self.estimate.est_miss_rate).abs()
    }

    /// Whether the full-trace miss rate lands inside the estimate's
    /// error bar — the representativeness claim of the sampling.
    pub fn within_error_bars(&self) -> bool {
        self.estimate_error() <= self.estimate.miss_err
    }
}

/// Runs the comparison; see the module docs.
///
/// # Panics
///
/// Panics if `scenes` is empty.
pub fn run_trace(h: &mut Harness, scenes: &[SceneHandle]) -> TraceReport {
    assert!(!scenes.is_empty(), "trace experiment needs at least one scene");
    let profile = RenderProfile {
        grid: h.scale().grid(),
        base_ns: h.scale().base_ns(),
        default_resolution: h.scale().resolution(),
    };
    let resolution = profile.default_resolution;
    // one pre-warmed store for every run: the comparison measures replay,
    // not cold fits
    let store = Arc::new(ModelStore::builder().in_memory_only().build());
    for s in scenes {
        store.get_or_fit(s, &profile.grid);
    }

    // calibrate the deadline against a measured warm single-frame latency
    let single_ms = {
        let service = service(&profile, &store, 4);
        let t0 = Instant::now();
        service
            .submit(RenderRequest::frame(scenes[0].clone(), resolution))
            .expect("queue sized for one request")
            .wait()
            .expect("calibration render");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        service.shutdown();
        ms
    };
    let deadline_ms = ((single_ms * DEADLINE_FACTOR).max(1.0)).round() as u64;

    let spec = SynthSpec {
        arrivals: Arrivals::Diurnal { base_hz: BASE_HZ, peak_hz: PEAK_HZ, period_s: PERIOD_S },
        scenes: scenes.iter().map(|s| s.name().to_string()).collect(),
        zipf_s: 1.0,
        duration_ms: DURATION_S * 1000,
        seed: SEED,
        resolution: Some(resolution),
        frames: 1,
        deadline_ms: Some(deadline_ms),
    };
    let entries = drain(&mut SyntheticSource::new(spec));
    assert!(!entries.is_empty(), "the diurnal spec generates arrivals");
    let sampled =
        sample_trace(&entries, WINDOW_MS, CLUSTERS, SEED).expect("non-empty trace samples");
    let driver = ReplayDriver::new(profile.clone()).speed(SPEED);

    // full replay: every request, time-warped
    let queue = entries.len().max(sampled.entries.len()) + 1;
    let (full, _) = replay(&driver, &profile, &store, queue, &mut entries.clone().into_iter());

    // sampled replay: the medoid windows, re-based onto the compressed
    // clock by the same BinarySource path the binaries use
    let bytes = format::encode(&sampled.entries, Some(&sampled.plan));
    let mut source = BinarySource::from_bytes(&bytes).expect("just-encoded trace decodes");
    let (sampled_run, measurements) = replay(&driver, &profile, &store, queue, &mut source);
    let obs = collect_window_obs(&sampled.plan, measurements);
    let estimate =
        asdr_serve::trace::weighted_estimate(&sampled.plan, &obs).expect("one obs per pick");

    TraceReport {
        scenes: scenes.iter().map(|s| s.name().to_string()).collect(),
        deadline_ms,
        plan: sampled.plan,
        estimate,
        full,
        sampled: sampled_run,
    }
}

fn service(
    profile: &RenderProfile,
    store: &Arc<ModelStore>,
    queue: usize,
) -> asdr_serve::RenderService {
    asdr_serve::RenderService::builder(profile.clone())
        .store(store.clone())
        .workers(1)
        .queue_capacity(queue)
        .build()
        .expect("valid serve profile")
}

/// Per-request `(window, deadlined, missed, frames)` measurement rows
/// in the shape [`collect_window_obs`] consumes.
type Measurements = Vec<(Option<usize>, bool, bool, usize)>;

/// Replays one source through a fresh 1-worker service, returning the
/// run's outcome plus the per-request measurements.
fn replay(
    driver: &ReplayDriver,
    profile: &RenderProfile,
    store: &Arc<ModelStore>,
    queue: usize,
    source: &mut (impl asdr_serve::TraceSource + ?Sized),
) -> (TraceRun, Measurements) {
    let svc = service(profile, store, queue);
    let run = driver.run(source, &svc).expect("replay against a healthy service");
    let mut measurements = Vec::with_capacity(run.requests.len());
    let mut misses = 0u64;
    for req in &run.requests {
        let r = req.ticket.wait().expect("render worker healthy");
        let missed = r.deadline_met == Some(false);
        misses += u64::from(missed);
        measurements.push((req.window, req.deadlined, missed, r.images.len()));
    }
    let wall_ms = run.started.elapsed().as_secs_f64() * 1e3;
    let stats = svc.shutdown();
    (
        TraceRun {
            requests: stats.requests,
            frames: stats.frames,
            misses,
            wall_ms,
            fits: stats.store.fits,
        },
        measurements,
    )
}

/// Prints the comparison report.
pub fn print_trace(r: &TraceReport) {
    println!(
        "\nTrace: diurnal {BASE_HZ}-{PEAK_HZ} Hz over {DURATION_S}s, {} scenes ({}), deadline {} ms, {}x warp",
        r.scenes.len(),
        r.scenes.join(", "),
        r.deadline_ms,
        SPEED,
    );
    println!(
        "sampling: {} windows of {} ms -> {} medoids ({} of {} ms replayed)",
        r.plan.total_windows,
        r.plan.window_ms,
        r.plan.picks.len(),
        r.estimate.replayed_ms,
        r.estimate.equivalent_ms,
    );
    print_header(&["Replay", "requests", "frames", "miss rate", "wall ms"]);
    for (label, run) in [("full trace", &r.full), ("sampled medoids", &r.sampled)] {
        print_row(&[
            label.into(),
            format!("{}", run.requests),
            format!("{}", run.frames),
            format!("{}/{} ({:.0}%)", run.misses, run.requests, run.miss_rate() * 100.0),
            format!("{:.0}", run.wall_ms),
        ]);
    }
    println!(
        "estimate: miss rate {:.3} +/- {:.3} (measured {:.3}, error {:.3} -> {})",
        r.estimate.est_miss_rate,
        r.estimate.miss_err,
        r.full.miss_rate(),
        r.estimate_error(),
        if r.within_error_bars() { "inside the error bar" } else { "OUTSIDE the error bar" },
    );
    println!(
        "compression: {} wall-clock ({:.0} -> {:.0} ms), fps estimate {:.2} +/- {:.2}",
        fmt_x(r.compression()),
        r.full.wall_ms,
        r.sampled.wall_ms,
        r.estimate.est_fps,
        r.estimate.fps_err,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use asdr_scenes::registry;

    #[test]
    fn sampled_replay_compresses_and_estimates_inside_the_error_bar() {
        let mut h = Harness::new(Scale::Tiny);
        let scenes = [registry::handle("Mic"), registry::handle("Lego")];
        let r = run_trace(&mut h, &scenes);
        assert!(r.full.requests > r.sampled.requests, "sampling must drop requests: {r:?}");
        assert!(r.sampled.requests > 0, "the medoid windows hold work: {r:?}");
        // the shared store's fit counter is cumulative: it must never move
        // past the warm-up fits (one per scene) in either replay
        assert_eq!(r.full.fits, scenes.len() as u64, "full replay must fit nothing: {r:?}");
        assert_eq!(r.sampled.fits, scenes.len() as u64, "sampled replay must fit nothing: {r:?}");
        assert_eq!(r.plan.picks.len(), CLUSTERS.min(r.plan.total_windows as usize));
        assert!(
            r.estimate.replayed_ms < r.estimate.equivalent_ms,
            "the plan must cover less simulated time than the trace: {:?}",
            r.plan
        );
        assert!(r.sampled.wall_ms < r.full.wall_ms, "sampled replay must be faster: {r:?}");
        // the representativeness claim itself — the error-bar floor makes
        // this robust even when neither run misses a deadline
        assert!(
            r.within_error_bars(),
            "full miss rate {:.3} vs estimate {:.3} +/- {:.3}",
            r.full.miss_rate(),
            r.estimate.est_miss_rate,
            r.estimate.miss_err
        );
        print_trace(&r); // shape-check the printer too
    }
}
