//! The `serve` experiment: multi-tenant serving throughput over a shared
//! model store (ROADMAP "production-scale system"; the SG2042/SG2044
//! manycore characterizations in PAPERS.md make the same point — sustained
//! throughput comes from scheduling concurrent requests over shared warm
//! state, not from one fast frame).
//!
//! The workload is a mixed-scene burst replayed twice through one
//! [`RenderService`]: per scene, a deadlined high-priority frame, a
//! normal 3-frame orbit sequence, and a low-priority background frame. The
//! first burst hits a cold store (every scene fits exactly once,
//! single-flighted); the second hits the warm store. The report quantifies
//! throughput, latency percentiles, cache hit rate, and the probe work the
//! per-request plan reuse avoided.

use crate::{print_header, print_row, Harness};
use asdr_scenes::SceneHandle;
use asdr_serve::{ModelStore, Priority, RenderProfile, RenderRequest, RenderService, ServeStats};
use std::sync::Arc;
use std::time::Duration;

/// Requests submitted per scene per burst.
pub const REQUESTS_PER_SCENE: usize = 3;
/// Frames in the orbit-sequence request.
const SEQUENCE_FRAMES: usize = 3;
/// Deadline on the high-priority request (generous: the report counts
/// misses, the tests do not gate on them).
const HIGH_DEADLINE: Duration = Duration::from_secs(5);

/// The measured serving report.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Scene names in the mix.
    pub scenes: Vec<String>,
    /// Latency of every cold-burst request, milliseconds.
    pub cold_latencies_ms: Vec<f64>,
    /// Latency of every warm-burst request, milliseconds.
    pub warm_latencies_ms: Vec<f64>,
    /// Final aggregate service statistics (both bursts).
    pub stats: ServeStats,
}

impl ServeReport {
    /// Requests completed across both bursts.
    pub fn requests(&self) -> u64 {
        self.stats.requests
    }

    /// Mean cold-burst latency over mean warm-burst latency.
    pub fn warm_speedup(&self) -> f64 {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let warm = mean(&self.warm_latencies_ms);
        if warm > 0.0 {
            mean(&self.cold_latencies_ms) / warm
        } else {
            1.0
        }
    }
}

/// The per-scene burst: one latency-critical frame, one coherent sequence,
/// one background frame.
fn burst(scenes: &[SceneHandle], resolution: u32) -> Vec<RenderRequest> {
    scenes
        .iter()
        .flat_map(|s| {
            [
                RenderRequest::frame(s.clone(), resolution)
                    .with_priority(Priority::High)
                    .with_deadline(HIGH_DEADLINE),
                RenderRequest::sequence(s.clone(), resolution, SEQUENCE_FRAMES),
                RenderRequest::frame(s.clone(), resolution).with_priority(Priority::Low),
            ]
        })
        .collect()
}

/// Replays the two-burst workload and gathers the report.
///
/// # Panics
///
/// Panics if `scenes` is empty.
pub fn run_serve(h: &mut Harness, scenes: &[SceneHandle]) -> ServeReport {
    assert!(!scenes.is_empty(), "serve experiment needs at least one scene");
    let profile = RenderProfile {
        grid: h.scale().grid(),
        base_ns: h.scale().base_ns(),
        default_resolution: h.scale().resolution(),
    };
    let resolution = profile.default_resolution;
    // a fresh store so the reported fit count and hit rate describe this
    // workload, not whatever the harness ran before
    let store = Arc::new(ModelStore::builder().in_memory_only().build());
    let service = RenderService::builder(profile)
        .store(store)
        .queue_capacity(scenes.len() * REQUESTS_PER_SCENE * 2)
        .build()
        .expect("valid serve profile");
    let run_burst = |reqs: Vec<RenderRequest>| -> Vec<f64> {
        let tickets: Vec<_> = reqs
            .into_iter()
            .map(|r| service.submit(r).expect("queue sized for the burst"))
            .collect();
        tickets
            .iter()
            .map(|t| t.wait().expect("render worker healthy").latency.as_secs_f64() * 1e3)
            .collect()
    };
    let cold_latencies_ms = run_burst(burst(scenes, resolution));
    let warm_latencies_ms = run_burst(burst(scenes, resolution));
    let stats = service.shutdown();
    ServeReport {
        scenes: scenes.iter().map(|s| s.name().to_string()).collect(),
        cold_latencies_ms,
        warm_latencies_ms,
        stats,
    }
}

/// Prints the serving report.
pub fn print_serve(r: &ServeReport) {
    let s = &r.stats;
    println!(
        "\nServe: {} scenes ({}), 2 bursts x {} requests",
        r.scenes.len(),
        r.scenes.join(", "),
        r.scenes.len() * REQUESTS_PER_SCENE,
    );
    print_header(&["Metric", "Value"]);
    print_row(&["requests / frames".into(), format!("{} / {}", s.requests, s.frames)]);
    print_row(&["throughput".into(), format!("{:.2} frames/s", s.throughput_fps)]);
    print_row(&[
        "latency p50 / p95".into(),
        format!("{:.1} / {:.1} ms", s.p50_latency_ms, s.p95_latency_ms),
    ]);
    print_row(&["warm-burst speedup".into(), crate::fmt_x(r.warm_speedup())]);
    print_row(&[
        "store".into(),
        format!(
            "{} fits, hit rate {:.0}%, {} single-flight waits",
            s.store.fits,
            s.store.hit_rate() * 100.0,
            s.store.single_flight_waits
        ),
    ]);
    print_row(&[
        "plan reuse".into(),
        format!(
            "{}/{} frames, ~{:.0} probe points avoided",
            s.reused_frames, s.frames, s.probe_points_avoided_est
        ),
    ]);
    if s.deadlined_requests > 0 {
        print_row(&[
            "deadlines".into(),
            format!("{}/{} missed", s.deadline_misses, s.deadlined_requests),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use asdr_scenes::registry;

    #[test]
    fn mixed_burst_fits_each_scene_once_and_hits_warm() {
        let mut h = Harness::new(Scale::Tiny);
        let scenes = [registry::handle("Mic"), registry::handle("Pulse")];
        let r = run_serve(&mut h, &scenes);
        let expect_requests = (scenes.len() * REQUESTS_PER_SCENE * 2) as u64;
        assert_eq!(r.requests(), expect_requests);
        assert_eq!(r.stats.store.fits, scenes.len() as u64, "each scene fits exactly once");
        // one store lookup per *batch* (batching amortizes them): with
        // perfect batching, half the lookups are the cold-burst fits
        assert!(
            r.stats.store.hit_rate() >= 0.5,
            "warm lookups must dominate or match fits: {:?}",
            r.stats.store
        );
        assert_eq!(r.stats.frames, (scenes.len() * (1 + 3 + 1) * 2) as u64);
        assert!(r.stats.reused_frames > 0, "sequence requests must reuse their plan");
        assert!(r.stats.throughput_fps > 0.0);
        assert!(r.stats.p95_latency_ms >= r.stats.p50_latency_ms);
        print_serve(&r); // shape-check the printer too
    }
}
