//! Regenerates the ASDR paper's tables and figures.
//!
//! ```text
//! experiments <id>... [--scale tiny|small|paper] [--scene NAME]... [--list]
//! ```
//!
//! Every experiment lives in one row of [`EXPERIMENTS`]; id validation,
//! dispatch, the `all` subset, and `--list` output are all derived from that
//! single table. `--scene` (repeatable, comma-separable) restricts the
//! scene-driven experiments to the named registry scenes — any registered
//! scene works, including custom ones such as the zoo families. A few
//! analyses are scene-fixed (marked in `--list`); they print a note and
//! ignore the flag rather than silently dropping it.

use asdr_bench::experiments::*;
use asdr_bench::{Harness, Scale};
use asdr_core::algo::RenderOptions;
use asdr_core::arch::chip::{simulate_chip, ChipOptions};
use asdr_scenes::{registry, SceneHandle};

/// The scene selection an invocation runs on: either the paper defaults of
/// each experiment or the `--scene` override.
struct SceneSel {
    chosen: Option<Vec<SceneHandle>>,
}

impl SceneSel {
    /// The scenes a "full table" experiment iterates (default: all ten
    /// paper scenes).
    fn paper(&self) -> Vec<SceneHandle> {
        self.chosen.clone().unwrap_or_else(registry::paper_scenes)
    }

    /// The scenes a performance experiment iterates (default: the perf
    /// five).
    fn perf(&self) -> Vec<SceneHandle> {
        self.chosen.clone().unwrap_or_else(registry::perf_scenes)
    }

    /// The scenes an experiment with a bespoke default subset iterates.
    fn subset(&self, defaults: &[&str]) -> Vec<SceneHandle> {
        self.chosen
            .clone()
            .unwrap_or_else(|| defaults.iter().map(|n| registry::handle(n)).collect())
    }

    /// The scenes a one-scene-at-a-time experiment iterates: every
    /// `--scene` name, or just `default`.
    fn each(&self, default: &str) -> Vec<SceneHandle> {
        self.chosen.clone().unwrap_or_else(|| vec![registry::handle(default)])
    }
}

/// One experiment the CLI can run.
struct Experiment {
    /// Subcommand id.
    id: &'static str,
    /// One-line description for `--list` / `--help`.
    describe: &'static str,
    /// Whether `all` includes this id (aliases and `debug` are excluded).
    in_all: bool,
    /// Whether the experiment honors `--scene` (scene-fixed analyses and
    /// pure-hardware tables do not; they announce that instead of silently
    /// ignoring the flag).
    scene_aware: bool,
    /// Runner.
    run: fn(&mut Harness, &SceneSel),
}

/// Dispatches one experiment, announcing when `--scene` does not apply.
fn run_experiment(e: &Experiment, h: &mut Harness, sel: &SceneSel) {
    if !e.scene_aware && sel.chosen.is_some() {
        eprintln!("note: `{}` is scene-fixed and ignores --scene", e.id);
    }
    (e.run)(h, sel);
}

/// The single source of truth: validation, dispatch, `--list`, and the
/// `all` subset all derive from this table.
const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "table1",
        describe: "dataset statistics (scene metadata + occupancy)",
        in_all: true,
        scene_aware: true,
        run: |h, sel| tables::print_table1(&tables::run_table1_on(h, &sel.paper())),
    },
    Experiment {
        id: "table2",
        describe: "ASDR-Server / ASDR-Edge hardware configurations",
        in_all: true,
        scene_aware: false,
        run: |_h, _sel| tables::print_table2(&tables::run_table2()),
    },
    Experiment {
        id: "fig4",
        describe: "hash address trace visualization (Lego)",
        in_all: true,
        scene_aware: false,
        run: |h, _sel| motivation::print_fig4(&motivation::run_fig4(h)),
    },
    Experiment {
        id: "fig5",
        describe: "FLOPs breakdown across pipeline stages",
        in_all: true,
        scene_aware: false,
        run: |h, _sel| motivation::print_fig5(&motivation::run_fig5(h)),
    },
    Experiment {
        id: "fig7",
        describe: "adaptive sample-count heatmaps",
        in_all: true,
        scene_aware: true,
        run: |h, sel| {
            let out = std::env::temp_dir().join("asdr_figures");
            for id in sel.subset(&["Lego", "Mic"]) {
                visuals::print_fig7(&visuals::run_fig7(h, &id), Some(&out));
            }
        },
    },
    Experiment {
        id: "fig8",
        describe: "adjacent-sample color similarity",
        in_all: true,
        scene_aware: true,
        run: |h, sel| {
            motivation::print_fig8(&motivation::run_fig8_on(
                h,
                &sel.subset(&["Mic", "Lego", "Palace"]),
            ))
        },
    },
    Experiment {
        id: "fig9",
        describe: "rendering approximation vs naive reduction",
        in_all: true,
        scene_aware: true,
        run: |h, sel| {
            for id in sel.each("Lego") {
                visuals::print_fig9(&visuals::run_fig9(h, &id));
            }
        },
    },
    Experiment {
        id: "fig13",
        describe: "storage utilization under hybrid mapping",
        in_all: true,
        scene_aware: false,
        run: |h, _sel| motivation::print_fig13(&motivation::run_fig13(h)),
    },
    Experiment {
        id: "fig15",
        describe: "inter/intra-ray point repetition rates",
        in_all: true,
        scene_aware: false,
        run: |h, _sel| motivation::print_fig15(&motivation::run_fig15(h)),
    },
    Experiment {
        id: "quality",
        describe: "rendering quality: Fig. 16 PSNR + Table 3 SSIM/LPIPS",
        in_all: true,
        scene_aware: true,
        run: run_quality,
    },
    Experiment {
        id: "fig16",
        describe: "alias of `quality`",
        in_all: false,
        scene_aware: true,
        run: run_quality,
    },
    Experiment {
        id: "table3",
        describe: "alias of `quality`",
        in_all: false,
        scene_aware: true,
        run: run_quality,
    },
    Experiment {
        id: "perf",
        describe: "end-to-end speedup + energy: Figs. 17-19",
        in_all: true,
        scene_aware: true,
        run: run_perf,
    },
    Experiment {
        id: "fig17",
        describe: "alias of `perf`",
        in_all: false,
        scene_aware: true,
        run: run_perf,
    },
    Experiment {
        id: "fig18",
        describe: "alias of `perf`",
        in_all: false,
        scene_aware: true,
        run: run_perf,
    },
    Experiment {
        id: "fig19",
        describe: "alias of `perf`",
        in_all: false,
        scene_aware: true,
        run: run_perf,
    },
    Experiment {
        id: "fig20",
        describe: "SW/HW contribution ablation",
        in_all: true,
        scene_aware: true,
        run: |h, sel| {
            ablation::print_fig20(&ablation::run_fig20(
                h,
                &sel.subset(&["Palace", "Fountain", "Family"]),
            ))
        },
    },
    Experiment {
        id: "fig21",
        describe: "design-space sweeps: delta threshold + group size",
        in_all: true,
        scene_aware: true,
        run: |h, sel| {
            for id in sel.subset(&["Palace", "Fountain", "Family"]) {
                let pts = dse::run_fig21a(h, &id, &[0.0, 1.0 / 2048.0, 1.0 / 256.0]);
                dse::print_fig21a(&id, &pts);
            }
            for id in sel.subset(&["Lego", "Chair", "Mic"]) {
                let pts = dse::run_fig21b(h, &id, &[2, 3, 4]);
                dse::print_fig21b(&id, &pts);
            }
        },
    },
    Experiment {
        id: "fig22",
        describe: "register-cache size sweep",
        in_all: true,
        scene_aware: true,
        run: |h, sel| {
            for id in sel.perf() {
                let pts = dse::run_fig22(h, &id, &[0, 2, 4, 8, 16]);
                dse::print_fig22(&id, &pts);
            }
        },
    },
    Experiment {
        id: "fig23",
        describe: "early termination x adaptive sampling ablation",
        in_all: true,
        scene_aware: true,
        run: |h, sel| ablation::print_fig23(&ablation::run_fig23(h, &sel.perf())),
    },
    Experiment {
        id: "fig24",
        describe: "ASDR algorithms on the GPU (software only)",
        in_all: true,
        scene_aware: true,
        run: |h, sel| gpu_sw::print_fig24(&gpu_sw::run_fig24(h, &sel.paper())),
    },
    Experiment {
        id: "fig25",
        describe: "TensoRF generalization: performance",
        in_all: true,
        scene_aware: true,
        run: |h, sel| tensorf_exp::print_fig25(&tensorf_exp::run_fig25(h, &sel.perf())),
    },
    Experiment {
        id: "table4",
        describe: "TensoRF generalization: quality",
        in_all: true,
        scene_aware: true,
        run: |h, sel| tensorf_exp::print_table4(&tensorf_exp::run_table4(h, &sel.paper())),
    },
    Experiment {
        id: "table5",
        describe: "model families (DVGO / TensoRF / NGP) under ASDR",
        in_all: true,
        scene_aware: true,
        run: |h, sel| {
            for id in sel.subset(&["Mic", "Lego"]) {
                models_cmp::print_table5(&id, &models_cmp::run_table5(h, &id));
            }
        },
    },
    Experiment {
        id: "fig26",
        describe: "hardware configurations: speedup + energy (Figs. 26-27)",
        in_all: true,
        scene_aware: true,
        run: run_hwconfig,
    },
    Experiment {
        id: "fig27",
        describe: "alias of `fig26`",
        in_all: false,
        scene_aware: true,
        run: run_hwconfig,
    },
    Experiment {
        id: "precision",
        describe: "feature-bit and ADC/noise precision sweeps",
        in_all: true,
        scene_aware: true,
        run: |h, sel| {
            let dev = precision::run_device_accuracy(&[3, 4, 5, 6, 7, 8], &[0.0, 0.05, 0.1]);
            for scene in sel.each("Lego") {
                let feat = precision::run_feature_bits(h, &scene, &[3, 4, 5, 6, 8, 10]);
                precision::print_precision(&scene, &feat, &dev);
            }
        },
    },
    Experiment {
        id: "sequence",
        describe: "multi-frame sequences: plan reuse vs per-frame re-probing",
        in_all: true,
        scene_aware: true,
        run: |h, sel| {
            for id in sel.each("Pulse") {
                sequence::print_sequence(&sequence::run_sequence(h, &id, 6, 3));
            }
        },
    },
    Experiment {
        id: "serve",
        describe: "multi-tenant serving: throughput, latency, cache hit rate",
        in_all: true,
        scene_aware: true,
        run: |h, sel| {
            serve_exp::print_serve(&serve_exp::run_serve(h, &sel.subset(&["Mic", "Lego", "Pulse"])))
        },
    },
    Experiment {
        id: "cluster",
        describe: "sharded serving: autoscaling vs fixed workers under deadlines",
        in_all: true,
        scene_aware: true,
        run: |h, sel| {
            cluster_exp::print_cluster(&cluster_exp::run_cluster(
                h,
                &sel.subset(&["Mic", "Lego", "Pulse"]),
            ))
        },
    },
    Experiment {
        id: "trace",
        describe: "representative replay: full vs phase-sampled trace",
        in_all: true,
        scene_aware: true,
        run: |h, sel| {
            trace_exp::print_trace(&trace_exp::run_trace(h, &sel.subset(&["Mic", "Lego", "Pulse"])))
        },
    },
    Experiment {
        id: "debug",
        describe: "raw per-stage cycle breakdown (simulator calibration)",
        in_all: false,
        scene_aware: true,
        run: debug_stage_cycles,
    },
    Experiment {
        id: "all",
        describe: "every experiment marked for the full run",
        in_all: false,
        scene_aware: true,
        run: |h, sel| {
            for e in EXPERIMENTS.iter().filter(|e| e.in_all) {
                run_experiment(e, h, sel);
            }
        },
    },
];

fn run_quality(h: &mut Harness, sel: &SceneSel) {
    let rows = quality::run_fig16(h, &sel.paper());
    quality::print_fig16(&rows);
    let t3_set = quality::table3_scenes();
    let t3: Vec<_> = rows.iter().filter(|r| t3_set.contains(&r.id)).cloned().collect();
    if !t3.is_empty() {
        quality::print_table3(&t3);
    }
}

fn run_perf(h: &mut Harness, sel: &SceneSel) {
    let rows = performance::run_perf(h, &sel.perf());
    performance::print_fig17(&rows);
    performance::print_fig18(&rows);
    performance::print_fig19(&rows);
}

fn run_hwconfig(h: &mut Harness, sel: &SceneSel) {
    for server in [true, false] {
        let rows = hwconfig::run_hwconfig(h, &sel.perf(), server);
        hwconfig::print_fig26(&rows, server);
        hwconfig::print_fig27(&rows, server);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut ids: Vec<String> = Vec::new();
    let mut scene_names: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("--scale needs tiny|small|paper"));
            }
            "--tiny" => scale = Scale::Tiny,
            "--scene" => {
                i += 1;
                let arg = args.get(i).unwrap_or_else(|| die("--scene needs a scene name"));
                scene_names.extend(arg.split(',').map(str::to_string));
            }
            "--list" => {
                print_list();
                return;
            }
            "-h" | "--help" => {
                print_usage();
                return;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    // validate everything up front: a typo must not abort a multi-hour run
    // halfway through
    if let Some(bad) = ids.iter().find(|id| find_experiment(id).is_none()) {
        die(&format!("unknown experiment id: {bad} (see --list)"));
    }
    let chosen = if scene_names.is_empty() {
        None
    } else {
        Some(
            scene_names
                .iter()
                .map(|n| {
                    registry::get(n).unwrap_or_else(|| {
                        die(&format!(
                            "unknown scene: {n} (registered: {})",
                            registry::all().iter().map(|s| s.name()).collect::<Vec<_>>().join(", ")
                        ))
                    })
                })
                .collect(),
        )
    };
    let sel = SceneSel { chosen };
    let mut h = Harness::new(scale);
    println!("# ASDR experiments (scale: {scale:?})");
    for id in &ids {
        let e = find_experiment(id).expect("ids validated above");
        run_experiment(e, &mut h, &sel);
    }
}

fn find_experiment(id: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.id == id)
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn print_usage() {
    println!("usage: experiments <id>... [--scale tiny|small|paper] [--scene NAME]... [--list]");
    println!("ids:");
    let all_ids: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
    for chunk in all_ids.chunks(12) {
        println!("    {}", chunk.join(" "));
    }
    println!("run `experiments --list` for per-id descriptions");
}

fn print_list() {
    println!("experiments:");
    for e in EXPERIMENTS {
        let tag = if e.in_all { "*" } else { " " };
        let fixed = if e.scene_aware { "" } else { " [scene-fixed]" };
        println!("  {tag} {:<10} {}{fixed}", e.id, e.describe);
    }
    println!("(* = included in `all`; [scene-fixed] ignores --scene)");
    println!("scenes:");
    for s in registry::all() {
        println!(
            "    {:<10} {} ({}x{})",
            s.name(),
            s.dataset(),
            s.resolution().0,
            s.resolution().1
        );
    }
}

/// Prints the raw per-stage cycle breakdown used when calibrating the
/// simulator (not a paper figure).
fn debug_stage_cycles(h: &mut Harness, sel: &SceneSel) {
    let base_ns = h.scale().base_ns();
    for id in sel.subset(&["Palace", "Mic"]) {
        let model = h.model(&id);
        let cam = h.camera(&id);
        let fixed = h.render(&*model, &cam, &RenderOptions::instant_ngp(base_ns));
        let asdr = h.render(&*model, &cam, &RenderOptions::asdr_default(base_ns));
        for (label, out) in [("fixed", &fixed), ("asdr", &asdr)] {
            for (cfg_label, opts) in [
                ("server", ChipOptions::server()),
                ("edge", ChipOptions::edge()),
                ("edge-strawman", ChipOptions::edge().strawman()),
            ] {
                let r = simulate_chip(&model, &cam, out, &opts);
                let pts = out.stats.total_encoded() as f64;
                println!(
                    "{id} {label:>5} {cfg_label:<13} enc {:>9.0} ({:.2}/pt) mlp {:>9.0} ({:.2}/pt) rnd {:>9.0} total {:>9.0} hit {:.2} conf/pt {:.2}",
                    r.encoding_cycles,
                    r.encoding_cycles / pts,
                    r.mlp_cycles,
                    r.mlp_cycles / pts,
                    r.render_cycles,
                    r.total_cycles,
                    r.cache_hit_rate,
                    r.conflicts_per_point,
                );
            }
        }
    }
}
