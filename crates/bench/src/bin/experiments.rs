//! Regenerates the ASDR paper's tables and figures.
//!
//! ```text
//! experiments <id>... [--scale tiny|small|paper]
//! ids: every paper table/figure plus `quality`, `perf`, `precision`,
//!      `debug`, and `all` — run `experiments --help` for the full list
//!      (kept in [`KNOWN_IDS`])
//! ```

use asdr_bench::experiments::*;
use asdr_bench::{Harness, Scale};
use asdr_core::algo::{render, RenderOptions};
use asdr_core::arch::chip::{simulate_chip, ChipOptions};
use asdr_scenes::SceneId;

/// Every id `run_one` accepts, so arguments can be validated up front
/// (a typo must not abort a multi-hour run halfway through).
const KNOWN_IDS: [&str; 29] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig13",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "fig27",
    "quality",
    "perf",
    "precision",
    "debug",
    "all",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("--scale needs tiny|small|paper"));
            }
            "--tiny" => scale = Scale::Tiny,
            "-h" | "--help" => {
                print_usage();
                return;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if let Some(bad) = ids.iter().find(|id| !KNOWN_IDS.contains(&id.as_str())) {
        die(&format!("unknown experiment id: {bad} (see --help)"));
    }
    let mut h = Harness::new(scale);
    println!("# ASDR experiments (scale: {scale:?})");
    for id in &ids {
        run_one(&mut h, id);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn print_usage() {
    println!("usage: experiments <id>... [--scale tiny|small|paper]");
    println!("ids:");
    for chunk in KNOWN_IDS.chunks(12) {
        println!("    {}", chunk.join(" "));
    }
}

fn run_one(h: &mut Harness, id: &str) {
    match id {
        "table1" => tables::print_table1(&tables::run_table1(h)),
        "table2" => tables::print_table2(&tables::run_table2()),
        "fig4" => motivation::print_fig4(&motivation::run_fig4(h)),
        "fig5" => motivation::print_fig5(&motivation::run_fig5(h)),
        "fig8" => motivation::print_fig8(&motivation::run_fig8(h)),
        "fig7" => {
            let out = std::env::temp_dir().join("asdr_figures");
            for id in [SceneId::Lego, SceneId::Mic] {
                visuals::print_fig7(&visuals::run_fig7(h, id), Some(&out));
            }
        }
        "fig9" => visuals::print_fig9(&visuals::run_fig9(h, SceneId::Lego)),
        "fig13" => motivation::print_fig13(&motivation::run_fig13(h)),
        "fig15" => motivation::print_fig15(&motivation::run_fig15(h)),
        "fig16" | "table3" | "quality" => {
            let rows = quality::run_fig16(h, &SceneId::ALL);
            quality::print_fig16(&rows);
            let t3: Vec<_> =
                rows.iter().filter(|r| quality::TABLE3_SCENES.contains(&r.id)).cloned().collect();
            quality::print_table3(&t3);
        }
        "fig17" | "fig18" | "fig19" | "perf" => {
            let rows = performance::run_perf(h, &SceneId::PERF);
            performance::print_fig17(&rows);
            performance::print_fig18(&rows);
            performance::print_fig19(&rows);
        }
        "fig20" => ablation::print_fig20(&ablation::run_fig20(
            h,
            &[SceneId::Palace, SceneId::Fountain, SceneId::Family],
        )),
        "fig21" => {
            for id in [SceneId::Palace, SceneId::Fountain, SceneId::Family] {
                let pts = dse::run_fig21a(h, id, &[0.0, 1.0 / 2048.0, 1.0 / 256.0]);
                dse::print_fig21a(id, &pts);
            }
            for id in [SceneId::Lego, SceneId::Chair, SceneId::Mic] {
                let pts = dse::run_fig21b(h, id, &[2, 3, 4]);
                dse::print_fig21b(id, &pts);
            }
        }
        "fig22" => {
            for id in SceneId::PERF {
                let pts = dse::run_fig22(h, id, &[0, 2, 4, 8, 16]);
                dse::print_fig22(id, &pts);
            }
        }
        "fig23" => ablation::print_fig23(&ablation::run_fig23(h, &SceneId::PERF)),
        "fig24" => gpu_sw::print_fig24(&gpu_sw::run_fig24(h, &SceneId::ALL)),
        "fig25" => tensorf_exp::print_fig25(&tensorf_exp::run_fig25(h, &SceneId::PERF)),
        "table4" => tensorf_exp::print_table4(&tensorf_exp::run_table4(h, &SceneId::ALL)),
        "fig26" | "fig27" => {
            for server in [true, false] {
                let rows = hwconfig::run_hwconfig(h, &SceneId::PERF, server);
                hwconfig::print_fig26(&rows, server);
                hwconfig::print_fig27(&rows, server);
            }
        }
        "table5" => {
            for id in [SceneId::Mic, SceneId::Lego] {
                models_cmp::print_table5(id, &models_cmp::run_table5(h, id));
            }
        }
        "precision" => {
            let feat = precision::run_feature_bits(h, SceneId::Lego, &[3, 4, 5, 6, 8, 10]);
            let dev = precision::run_device_accuracy(&[3, 4, 5, 6, 7, 8], &[0.0, 0.05, 0.1]);
            precision::print_precision(SceneId::Lego, &feat, &dev);
        }
        "debug" => debug_stage_cycles(h),
        "all" => {
            for id in [
                "table1",
                "table2",
                "fig4",
                "fig5",
                "fig7",
                "fig8",
                "fig9",
                "fig13",
                "fig15",
                "quality",
                "perf",
                "fig20",
                "fig21",
                "fig22",
                "fig23",
                "fig24",
                "fig25",
                "table4",
                "table5",
                "fig26",
                "precision",
            ] {
                run_one(h, id);
            }
        }
        other => {
            eprintln!("unknown experiment id: {other} (see --help)");
            std::process::exit(2);
        }
    }
}

/// Prints the raw per-stage cycle breakdown used when calibrating the
/// simulator (not a paper figure).
fn debug_stage_cycles(h: &mut Harness) {
    let base_ns = h.scale().base_ns();
    for id in [SceneId::Palace, SceneId::Mic] {
        let model = h.model(id);
        let cam = h.camera(id);
        let fixed = render(&*model, &cam, &RenderOptions::instant_ngp(base_ns));
        let asdr = render(&*model, &cam, &RenderOptions::asdr_default(base_ns));
        for (label, out) in [("fixed", &fixed), ("asdr", &asdr)] {
            for (cfg_label, opts) in [
                ("server", ChipOptions::server()),
                ("edge", ChipOptions::edge()),
                ("edge-strawman", ChipOptions::edge().strawman()),
            ] {
                let r = simulate_chip(&model, &cam, out, &opts);
                let pts = out.stats.total_encoded() as f64;
                println!(
                    "{id} {label:>5} {cfg_label:<13} enc {:>9.0} ({:.2}/pt) mlp {:>9.0} ({:.2}/pt) rnd {:>9.0} total {:>9.0} hit {:.2} conf/pt {:.2}",
                    r.encoding_cycles,
                    r.encoding_cycles / pts,
                    r.mlp_cycles,
                    r.mlp_cycles / pts,
                    r.render_cycles,
                    r.total_cycles,
                    r.cache_hit_rate,
                    r.conflicts_per_point,
                );
            }
        }
    }
}
