//! The store acceptance contract, end to end through the real binary: a
//! cold `asdr-serve` run on the bundled mixed 3-scene workload fits each
//! scene exactly once, and a second run against the same `--store-dir`
//! performs **zero** fits while producing **byte-identical** images.
//!
//! Two separate processes, so this genuinely covers the cross-process
//! persistence path (checkpoint write, reload, metadata validation) — not
//! just two store instances in one address space.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workload_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scripts/serve-workload-tiny.jsonl")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdr_serve_bin_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reads `"key": <integer>` out of the stats JSON (the store block's keys
/// are unique in the artifact).
fn json_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle).unwrap_or_else(|| panic!("no {key:?} in {json}"));
    json[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable {key:?} in {json}"))
}

fn run(store_dir: &Path, images: &Path, out: &Path) -> String {
    let status = Command::new(env!("CARGO_BIN_EXE_asdr-serve"))
        .args(["--workload".as_ref(), workload_path().as_os_str()])
        .args(["--scale", "tiny", "--workers", "2"])
        .args(["--store-dir".as_ref(), store_dir.as_os_str()])
        .args(["--dump-images".as_ref(), images.as_os_str()])
        .args(["--out".as_ref(), out.as_os_str()])
        .status()
        .expect("spawn asdr-serve");
    assert!(status.success(), "asdr-serve exited with {status}");
    std::fs::read_to_string(out).expect("stats artifact written")
}

/// Every dumped frame, name -> bytes.
fn dumped_frames(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("image dump directory")
        .map(|e| {
            let e = e.unwrap();
            (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).unwrap())
        })
        .collect()
}

#[test]
fn warm_rerun_performs_zero_fits_and_renders_identically() {
    let store_dir = fresh_dir("store");
    let cold_images = fresh_dir("cold");
    let warm_images = fresh_dir("warm");
    let stats_out = fresh_dir("stats");

    let cold = run(&store_dir, &cold_images, &stats_out.join("cold.json"));
    assert_eq!(json_u64(&cold, "fits"), 3, "cold run fits each of the 3 scenes once: {cold}");
    assert_eq!(json_u64(&cold, "disk_hits"), 0, "nothing to load on a cold store: {cold}");

    let warm = run(&store_dir, &warm_images, &stats_out.join("warm.json"));
    assert_eq!(json_u64(&warm, "fits"), 0, "warm run must fit nothing: {warm}");
    assert_eq!(json_u64(&warm, "disk_hits"), 3, "each scene loads from checkpoint once: {warm}");
    assert_eq!(json_u64(&warm, "disk_errors"), 0, "checkpoints must round-trip clean: {warm}");

    let cold_frames = dumped_frames(&cold_images);
    let warm_frames = dumped_frames(&warm_images);
    assert_eq!(cold_frames.len(), 8, "the bundled workload renders 8 frames");
    assert_eq!(
        cold_frames.keys().collect::<Vec<_>>(),
        warm_frames.keys().collect::<Vec<_>>(),
        "both runs dump the same frame set"
    );
    for (name, bytes) in &cold_frames {
        assert_eq!(bytes, &warm_frames[name], "{name}: warm frame diverged from cold frame");
    }

    for dir in [store_dir, cold_images, warm_images, stats_out] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
