//! Cross-process cold-fit single-flight, with **real processes**: four
//! `asdr-serve` binaries start cold and concurrently against one store
//! directory, and across all of them each (scene, grid) key is fitted
//! **exactly once** — the others wait on the advisory lock file and load
//! the winner's checkpoint. This is the multi-process analogue of
//! `store_props.rs::concurrent_requests_fit_exactly_once` (threads) and
//! `store_lock.rs` (store instances): here nothing is shared but the
//! filesystem, exactly the deployment the ROADMAP's duplicate-fit gap
//! described.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};

const PROCESSES: usize = 4;
const SCENES: usize = 2;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdr_multiproc_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reads `"key": <integer>` out of the stats JSON.
fn json_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle).unwrap_or_else(|| panic!("no {key:?} in {json}"));
    json[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable {key:?} in {json}"))
}

fn spawn(workload: &Path, store: &Path, images: &Path, out: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_asdr-serve"))
        .args(["--workload".as_ref(), workload.as_os_str()])
        .args(["--scale", "tiny", "--workers", "2"])
        .args(["--store-dir".as_ref(), store.as_os_str()])
        .args(["--dump-images".as_ref(), images.as_os_str()])
        .args(["--out".as_ref(), out.as_os_str()])
        .spawn()
        .expect("spawn asdr-serve")
}

/// Every dumped frame, name -> bytes.
fn dumped_frames(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("image dump directory")
        .map(|e| {
            let e = e.unwrap();
            (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).unwrap())
        })
        .collect()
}

#[test]
fn four_cold_processes_fit_each_key_exactly_once() {
    let root = fresh_dir("root");
    let store = root.join("store");
    // a small 2-scene workload (24 px keeps the render cost negligible
    // next to the fits the test is about); every process replays it whole
    let workload = root.join("workload.jsonl");
    std::fs::write(
        &workload,
        "# multiproc single-flight workload\n\
         {\"scene\": \"Mic\",  \"frames\": 1, \"resolution\": 24}\n\
         {\"scene\": \"Lego\", \"frames\": 1, \"resolution\": 24}\n",
    )
    .unwrap();

    let children: Vec<(usize, Child)> = (0..PROCESSES)
        .map(|i| {
            let images = root.join(format!("images-{i}"));
            let out = root.join(format!("stats-{i}.json"));
            (i, spawn(&workload, &store, &images, &out))
        })
        .collect();
    let mut fits_total = 0;
    let mut disk_hits_total = 0;
    let mut lock_waits_total = 0;
    for (i, mut child) in children {
        let status = child.wait().expect("join asdr-serve");
        assert!(status.success(), "process {i} exited with {status}");
        let json = std::fs::read_to_string(root.join(format!("stats-{i}.json"))).unwrap();
        assert_eq!(json_u64(&json, "disk_errors"), 0, "process {i} saw a torn checkpoint");
        fits_total += json_u64(&json, "fits");
        disk_hits_total += json_u64(&json, "disk_hits");
        lock_waits_total += json_u64(&json, "lock_waits");
    }
    assert_eq!(
        fits_total, SCENES as u64,
        "across all {PROCESSES} processes each (scene, grid) must fit exactly once \
         ({disk_hits_total} disk hits, {lock_waits_total} lock waits)"
    );
    assert_eq!(
        disk_hits_total,
        (PROCESSES * SCENES) as u64 - SCENES as u64,
        "every non-fitting lookup loads the winner's checkpoint"
    );

    // and the deduplicated fits serve byte-identical pixels everywhere
    let reference = dumped_frames(&root.join("images-0"));
    assert_eq!(reference.len(), 2, "the workload renders one frame per scene");
    for i in 1..PROCESSES {
        let frames = dumped_frames(&root.join(format!("images-{i}")));
        assert_eq!(
            frames.keys().collect::<Vec<_>>(),
            reference.keys().collect::<Vec<_>>(),
            "process {i} dumped a different frame set"
        );
        for (name, bytes) in &reference {
            assert_eq!(bytes, &frames[name], "process {i}, {name}: pixels diverged");
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}
