//! The cross-process cold-fit lock protocol, exercised in-process with
//! separate [`ModelStore`] instances over one directory (each store is a
//! process in spirit — they share no memory state, only the filesystem).
//! The genuinely multi-process analogue is `store_lock_multiproc.rs`.

use asdr_nerf::NgpModel;
use asdr_scenes::registry;
use asdr_serve::ModelStore;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

mod common;
use common::{blank_model, test_grid};

fn model_tag(m: &NgpModel) -> f32 {
    m.color_mlp().layers()[0].bias()[0]
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdr_lock_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn concurrent_cold_stores_fit_once_through_the_lock_file() {
    let dir = fresh_dir("dedup");
    let grid = test_grid();
    let scene = registry::handle("Mic");
    let fits = Arc::new(AtomicUsize::new(0));
    let n = 4;
    let gate = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let (dir, grid, scene, fits, gate) =
                (dir.clone(), grid.clone(), scene.clone(), fits.clone(), gate.clone());
            std::thread::spawn(move || {
                // each thread its own store over the shared directory: the
                // in-memory single-flight cannot help, only the lock file
                let store = ModelStore::builder().dir(&dir).build();
                gate.wait();
                let m = store.get_or_fit_with(&scene, &grid, || {
                    fits.fetch_add(1, Ordering::SeqCst);
                    // stay under the lock long enough that every peer
                    // arrives at it
                    std::thread::sleep(Duration::from_millis(150));
                    blank_model(&grid, 21.0)
                });
                (model_tag(&m), store.stats())
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(fits.load(Ordering::SeqCst), 1, "the lock file must single-flight the fit");
    assert!(results.iter().all(|(tag, _)| *tag == 21.0), "all stores see the one fitted model");
    let total_fits: u64 = results.iter().map(|(_, s)| s.fits).sum();
    let total_disk_hits: u64 = results.iter().map(|(_, s)| s.disk_hits).sum();
    let total_lock_waits: u64 = results.iter().map(|(_, s)| s.lock_waits).sum();
    assert_eq!(total_fits, 1);
    assert_eq!(total_disk_hits, (n - 1) as u64, "waiters load the published checkpoint");
    assert!(total_lock_waits >= 1, "someone must have blocked on the lock: {results:?}");
    assert!(
        !dir.read_dir()
            .unwrap()
            .any(|e| { e.unwrap().path().extension().is_some_and(|x| x == "lock") }),
        "no lock file survives the protocol"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_stale_lock_from_a_dead_process_is_broken() {
    let dir = fresh_dir("stale");
    let grid = test_grid();
    let scene = registry::handle("Lego");
    std::fs::create_dir_all(&dir).unwrap();
    // a dead process's leftover: a lock file nobody will ever remove
    let survivor =
        ModelStore::builder().dir(&dir).lock_stale_after(Duration::from_millis(60)).build();
    let lock: Vec<_> = {
        // fit once just to learn the checkpoint file name, then reset
        survivor.get_or_fit_with(&scene, &grid, || blank_model(&grid, 1.0));
        let names: Vec<_> = dir.read_dir().unwrap().map(|e| e.unwrap().path()).collect();
        for p in &names {
            std::fs::remove_file(p).unwrap();
        }
        names.iter().map(|p| p.with_extension("ckpt.lock")).collect()
    };
    std::fs::write(&lock[0], b"pid 999999\n").unwrap();
    // a second store (the survivor process, in spirit) must wait out the
    // stale timeout, break the lock, and refit rather than hang
    let store = ModelStore::builder().dir(&dir).lock_stale_after(Duration::from_millis(60)).build();
    let m = store.get_or_fit_with(&scene, &grid, || blank_model(&grid, 33.0));
    assert_eq!(model_tag(&m), 33.0, "the survivor refits after breaking the stale lock");
    let stats = store.stats();
    assert_eq!(stats.fits, 1);
    assert!(stats.lock_steals >= 1, "the stale lock must be counted as stolen: {stats:?}");
    assert!(!lock[0].exists(), "the broken lock is gone");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_waiter_loads_the_checkpoint_the_lock_holder_publishes() {
    let dir = fresh_dir("handoff");
    let grid = test_grid();
    let scene = registry::handle("Chair");
    let gate = Arc::new(Barrier::new(2));
    let fitter = {
        let (dir, grid, scene, gate) = (dir.clone(), grid.clone(), scene.clone(), gate.clone());
        std::thread::spawn(move || {
            let store = ModelStore::builder().dir(&dir).build();
            store.get_or_fit_with(&scene, &grid, || {
                gate.wait(); // the lock is held; let the waiter go
                std::thread::sleep(Duration::from_millis(120));
                blank_model(&grid, 55.0)
            });
            store.stats()
        })
    };
    gate.wait();
    let waiter = ModelStore::builder().dir(&dir).build();
    let m = waiter.get_or_fit_with(&scene, &grid, || unreachable!("the waiter must never fit"));
    assert_eq!(model_tag(&m), 55.0, "the waiter gets the holder's model, bit for bit");
    let fitter_stats = fitter.join().unwrap();
    let waiter_stats = waiter.stats();
    assert_eq!(fitter_stats.fits, 1);
    assert_eq!((waiter_stats.fits, waiter_stats.disk_hits), (0, 1));
    assert_eq!(waiter_stats.lock_waits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
