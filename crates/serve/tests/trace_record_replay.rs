//! The record→replay contract, end to end through the real binaries: a
//! JSONL run with `--record` captures a binary trace whose replay renders
//! **byte-identical** frames and performs the same number of fits as the
//! JSONL run itself.
//!
//! Three processes against one shared store directory: a cold JSONL run
//! that records, then a warm JSONL run and a warm recorded-trace run,
//! whose image dumps and store counters must agree exactly.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workload_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scripts/serve-workload-tiny.jsonl")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdr_trace_rr_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn json_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle).unwrap_or_else(|| panic!("no {key:?} in {json}"));
    json[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable {key:?} in {json}"))
}

/// Runs `asdr-serve` with the given input selector, returning the stats
/// artifact text.
fn run(
    input: [&std::ffi::OsStr; 2],
    store: &Path,
    images: &Path,
    out: &Path,
    record: Option<&Path>,
) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_asdr-serve"));
    cmd.args(input)
        .args(["--scale", "tiny", "--workers", "2"])
        .args(["--store-dir".as_ref(), store.as_os_str()])
        .args(["--dump-images".as_ref(), images.as_os_str()])
        .args(["--out".as_ref(), out.as_os_str()]);
    if let Some(r) = record {
        cmd.args(["--record".as_ref(), r.as_os_str()]);
    }
    let status = cmd.status().expect("spawn asdr-serve");
    assert!(status.success(), "asdr-serve exited with {status}");
    std::fs::read_to_string(out).expect("stats artifact written")
}

fn dumped_frames(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("image dump directory")
        .map(|e| {
            let e = e.unwrap();
            (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).unwrap())
        })
        .collect()
}

#[test]
fn recorded_trace_replays_byte_identical_frames_and_equal_fits() {
    let store = fresh_dir("store");
    let cold_images = fresh_dir("cold");
    let jsonl_images = fresh_dir("jsonl");
    let trace_images = fresh_dir("trace");
    let scratch = fresh_dir("scratch");
    let trace_path = scratch.join("captured.trace");
    let workload = workload_path();

    let workload_arg: [&std::ffi::OsStr; 2] = ["--workload".as_ref(), workload.as_os_str()];
    let cold =
        run(workload_arg, &store, &cold_images, &scratch.join("cold.json"), Some(&trace_path));
    assert_eq!(json_u64(&cold, "fits"), 3, "cold run fits each scene once: {cold}");
    assert!(trace_path.is_file(), "--record wrote a binary trace");

    let warm_jsonl =
        run(workload_arg, &store, &jsonl_images, &scratch.join("warm_jsonl.json"), None);
    let trace_arg: [&std::ffi::OsStr; 2] = ["--trace".as_ref(), trace_path.as_os_str()];
    let warm_trace = run(trace_arg, &store, &trace_images, &scratch.join("warm_trace.json"), None);

    // equal fit counts: both warm runs hit the store for everything
    for (label, stats) in [("jsonl", &warm_jsonl), ("trace", &warm_trace)] {
        assert_eq!(json_u64(stats, "fits"), 0, "warm {label} run must fit nothing: {stats}");
        assert_eq!(json_u64(stats, "disk_errors"), 0, "{label}: {stats}");
    }
    assert_eq!(
        json_u64(&warm_jsonl, "requests"),
        json_u64(&warm_trace, "requests"),
        "the recorded trace holds every request"
    );
    assert_eq!(json_u64(&warm_jsonl, "frames"), json_u64(&warm_trace, "frames"));

    // byte-identical frames: JSONL replay, recorded-trace replay, and the
    // recording (cold) run all dump exactly the same images
    let jsonl_frames = dumped_frames(&jsonl_images);
    let trace_frames = dumped_frames(&trace_images);
    let cold_frames = dumped_frames(&cold_images);
    assert_eq!(
        jsonl_frames.keys().collect::<Vec<_>>(),
        trace_frames.keys().collect::<Vec<_>>(),
        "same request indices, same frame set"
    );
    for (name, bytes) in &jsonl_frames {
        assert_eq!(bytes, &trace_frames[name], "{name}: trace frame diverged from JSONL frame");
        assert_eq!(bytes, &cold_frames[name], "{name}: warm frame diverged from recording run");
    }

    for dir in [store, cold_images, jsonl_images, trace_images, scratch] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
