//! Model-store contracts: single-flight deduplication, LRU eviction that
//! never touches in-flight fits, and disk-layer degradation (corrupt or
//! stale checkpoints refit instead of panicking).
//!
//! Fits are injected through `get_or_fit_with` so the tests can count,
//! stall, and tag them without paying for real scene fits.

use asdr_nerf::grid::GridConfig;
use asdr_nerf::NgpModel;
use asdr_scenes::procedural::SdfScene;
use asdr_scenes::registry::{self, SceneDef};
use asdr_scenes::{SceneHandle, SceneRegistry};
use asdr_serve::ModelStore;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

mod common;
use common::{blank_model, test_grid};

fn model_tag(m: &NgpModel) -> f32 {
    m.color_mlp().layers()[0].bias()[0]
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdr_store_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn concurrent_requests_fit_exactly_once() {
    let store = Arc::new(ModelStore::builder().in_memory_only().build());
    let scene = registry::handle("Mic");
    let grid = test_grid();
    let fits = Arc::new(AtomicUsize::new(0));
    let n = 8;
    let gate = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let (store, scene, grid, fits, gate) =
                (store.clone(), scene.clone(), grid.clone(), fits.clone(), gate.clone());
            std::thread::spawn(move || {
                gate.wait();
                let m = store.get_or_fit_with(&scene, &grid, || {
                    fits.fetch_add(1, Ordering::SeqCst);
                    // stay in flight long enough that every peer arrives
                    std::thread::sleep(Duration::from_millis(100));
                    blank_model(&grid, 7.0)
                });
                model_tag(&m)
            })
        })
        .collect();
    let tags: Vec<f32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(fits.load(Ordering::SeqCst), 1, "single-flight must deduplicate the fit");
    assert!(tags.iter().all(|&t| t == 7.0), "all callers see the one fitted model");
    let stats = store.stats();
    assert_eq!(stats.fits, 1);
    assert_eq!(stats.memory_hits, (n - 1) as u64, "waiters resolve to memory hits");
    assert!(stats.single_flight_waits >= 1, "someone must have blocked: {stats:?}");
}

#[test]
fn lru_eviction_drops_the_least_recent_ready_entry() {
    let store = ModelStore::builder().capacity(2).in_memory_only().build();
    let grid = test_grid();
    let (a, b, c) = (registry::handle("Mic"), registry::handle("Lego"), registry::handle("Chair"));
    store.get_or_fit_with(&a, &grid, || blank_model(&grid, 1.0));
    store.get_or_fit_with(&b, &grid, || blank_model(&grid, 2.0));
    // touch A so B becomes least-recently-used
    store.get_or_fit_with(&a, &grid, || unreachable!("A is resident"));
    store.get_or_fit_with(&c, &grid, || blank_model(&grid, 3.0));
    assert!(store.contains("Mic", &grid), "recently-touched entry survives");
    assert!(store.contains("Chair", &grid), "the newest entry survives");
    assert!(!store.contains("Lego", &grid), "the LRU entry is evicted");
    let stats = store.stats();
    assert_eq!((stats.evictions, stats.resident), (1, 2));
    // an evicted entry refits on revisit (no disk layer here)
    store.get_or_fit_with(&b, &grid, || blank_model(&grid, 4.0));
    assert_eq!(store.stats().fits, 4);
}

#[test]
fn eviction_never_drops_an_in_flight_entry() {
    let store = Arc::new(ModelStore::builder().capacity(1).in_memory_only().build());
    let grid = test_grid();
    let slow = registry::handle("Mic");
    let gate = Arc::new(Barrier::new(2));
    let fitter = {
        let (store, slow, grid, gate) = (store.clone(), slow.clone(), grid.clone(), gate.clone());
        std::thread::spawn(move || {
            store.get_or_fit_with(&slow, &grid, || {
                gate.wait(); // fit has started
                gate.wait(); // hold in flight until the main thread says so
                blank_model(&grid, 9.0)
            })
        })
    };
    gate.wait(); // Mic is now in flight
                 // churn the store well past capacity while the fit is in flight
    for name in ["Lego", "Chair", "Hotdog"] {
        store.get_or_fit_with(&registry::handle(name), &grid, || blank_model(&grid, 0.0));
    }
    assert!(store.stats().evictions >= 2, "churn must actually evict");
    gate.wait(); // release the fitter
    assert_eq!(model_tag(&fitter.join().unwrap()), 9.0);
    // the in-flight entry survived the churn and published normally
    let fits_before = store.stats().fits;
    let m = store.get_or_fit_with(&slow, &grid, || unreachable!("Mic must be resident"));
    assert_eq!(model_tag(&m), 9.0);
    assert_eq!(store.stats().fits, fits_before, "no refit after the churn");
}

#[test]
fn a_panicking_fit_unwinds_cleanly() {
    let store = Arc::new(ModelStore::builder().in_memory_only().build());
    let scene = registry::handle("Mic");
    let grid = test_grid();
    let crashed = {
        let (store, scene, grid) = (store.clone(), scene.clone(), grid.clone());
        std::thread::spawn(move || {
            store.get_or_fit_with(&scene, &grid, || panic!("fit exploded"));
        })
    };
    assert!(crashed.join().is_err(), "the fit panic propagates to its caller");
    // the in-flight marker was unwound: the key is fittable again, not wedged
    let m = store.get_or_fit_with(&scene, &grid, || blank_model(&grid, 5.0));
    assert_eq!(model_tag(&m), 5.0);
    assert_eq!(store.stats().fits, 2, "the panicked attempt counted as a fit too");
}

#[test]
fn checkpoints_survive_across_store_instances() {
    let dir = fresh_dir("warm");
    let grid = test_grid();
    let scene = registry::handle("Mic");
    {
        let cold = ModelStore::builder().dir(&dir).build();
        cold.get_or_fit_with(&scene, &grid, || blank_model(&grid, 42.0));
        assert_eq!(cold.stats().fits, 1);
    }
    // a new store (new process, in spirit) loads the checkpoint instead of
    // fitting
    let warm = ModelStore::builder().dir(&dir).build();
    let m = warm.get_or_fit_with(&scene, &grid, || unreachable!("warm store must not fit"));
    assert_eq!(model_tag(&m), 42.0, "the loaded model is the one that was fitted");
    let stats = warm.stats();
    assert_eq!((stats.fits, stats.disk_hits), (0, 1));
    // different fit config: same scene, separate entry, fresh fit
    let other_grid = GridConfig { levels: 3, ..test_grid() };
    warm.get_or_fit_with(&scene, &other_grid, || blank_model(&other_grid, 1.0));
    assert_eq!(warm.stats().fits, 1, "a new fingerprint must not alias the old checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoints_degrade_to_a_refit() {
    let dir = fresh_dir("corrupt");
    let grid = test_grid();
    let scene = registry::handle("Lego");
    {
        let store = ModelStore::builder().dir(&dir).build();
        store.get_or_fit_with(&scene, &grid, || blank_model(&grid, 6.0));
    }
    let ckpt = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
    // truncate mid-file: the load must fail structurally, not panic
    let bytes = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, &bytes[..bytes.len() / 2]).unwrap();
    let store = ModelStore::builder().dir(&dir).build();
    let m = store.get_or_fit_with(&scene, &grid, || blank_model(&grid, 8.0));
    assert_eq!(model_tag(&m), 8.0, "corrupt checkpoint must refit");
    let stats = store.stats();
    assert_eq!((stats.fits, stats.disk_hits, stats.disk_errors), (1, 0, 1));
    // the refit rewrote a valid checkpoint
    let healed = ModelStore::builder().dir(&dir).build();
    let m = healed.get_or_fit_with(&scene, &grid, || unreachable!("checkpoint was healed"));
    assert_eq!(model_tag(&m), 8.0);
    assert_eq!(healed.stats().disk_hits, 1);
    // outright garbage (bad magic) degrades the same way
    std::fs::write(&ckpt, b"not a checkpoint at all").unwrap();
    let store = ModelStore::builder().dir(&dir).build();
    store.get_or_fit_with(&scene, &grid, || blank_model(&grid, 9.0));
    assert_eq!(store.stats().disk_errors, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_name_different_def_refits_instead_of_aliasing() {
    let store = ModelStore::builder().in_memory_only().build();
    let grid = test_grid();
    let real = registry::handle("Mic");
    let from_real = store.get_or_fit_with(&real, &grid, || blank_model(&grid, 1.0));
    // an isolated registry reusing the name with a different definition
    let mut isolated = SceneRegistry::empty();
    let impostor: SceneHandle = isolated
        .register(SceneDef::new("Mic", || {
            Box::new(SdfScene::new(
                "impostor",
                |p| (p.norm() - 0.2, asdr_math::Rgb::WHITE),
                50.0,
                0.03,
            ))
        }))
        .unwrap();
    let from_impostor = store.get_or_fit_with(&impostor, &grid, || blank_model(&grid, 2.0));
    assert!(!Arc::ptr_eq(&from_real, &from_impostor), "alias must refit, not share");
    assert_eq!(model_tag(&from_impostor), 2.0);
    assert_eq!(store.stats().fits, 2);
    // the impostor's entry replaced the original under that key
    let again = store.get_or_fit_with(&impostor, &grid, || unreachable!("impostor resident"));
    assert!(Arc::ptr_eq(&from_impostor, &again));
}

#[test]
fn alias_refits_never_touch_the_named_checkpoint() {
    let dir = fresh_dir("alias");
    let grid = test_grid();
    let real = registry::handle("Chair");
    {
        let store = ModelStore::builder().dir(&dir).build();
        store.get_or_fit_with(&real, &grid, || blank_model(&grid, 11.0));
        // same-name handle from a different def: memory-layer refit only
        let mut isolated = SceneRegistry::empty();
        let impostor: SceneHandle = isolated
            .register(SceneDef::new("Chair", || {
                Box::new(SdfScene::new(
                    "impostor",
                    |p| (p.norm() - 0.2, asdr_math::Rgb::WHITE),
                    50.0,
                    0.03,
                ))
            }))
            .unwrap();
        let m = store.get_or_fit_with(&impostor, &grid, || blank_model(&grid, 66.0));
        assert_eq!(model_tag(&m), 66.0);
    }
    // the checkpoint on disk still holds the *real* scene's model — a later
    // process asking for Chair must not be served the impostor's fit
    let next_process = ModelStore::builder().dir(&dir).build();
    let m = next_process.get_or_fit_with(&real, &grid, || unreachable!("checkpoint intact"));
    assert_eq!(model_tag(&m), 11.0, "alias refit must not overwrite the named checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}
