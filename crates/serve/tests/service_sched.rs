//! Scheduler contracts: deadline-aware priority ordering, per-scene
//! batching, bounded admission, and schedule-independent output.
//!
//! The services here run over stores pre-populated with cheap blank models
//! (the scheduler does not care what the model predicts), a paused worker
//! pool so whole bursts are staged before anything runs, and
//! `completed_seq` on each result as the observable execution order.

use asdr_scenes::registry;
use asdr_serve::{ModelStore, Priority, RenderProfile, RenderRequest, RenderService, ServeError};
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::{blank_model, test_grid};

fn test_profile() -> RenderProfile {
    RenderProfile { grid: test_grid(), base_ns: 16, default_resolution: 16 }
}

/// A store where every named scene is already resident, so no test pays
/// for a real fit.
fn warm_store(scenes: &[&str]) -> Arc<ModelStore> {
    let store = ModelStore::builder().in_memory_only().build();
    let grid = test_grid();
    for name in scenes {
        store.get_or_fit_with(&registry::handle(name), &grid, || blank_model(&grid, 0.0));
    }
    Arc::new(store)
}

#[test]
fn queue_pops_priority_then_deadline_then_fifo() {
    let service = RenderService::builder(test_profile())
        .store(warm_store(&["Mic"]))
        .workers(1)
        .batch_max(1) // no riders: ordering only
        .paused()
        .build()
        .unwrap();
    let mic = registry::handle("Mic");
    let low =
        service.submit(RenderRequest::frame(mic.clone(), 16).with_priority(Priority::Low)).unwrap();
    let late = service
        .submit(RenderRequest::frame(mic.clone(), 16).with_deadline(Duration::from_secs(60)))
        .unwrap();
    let early = service
        .submit(RenderRequest::frame(mic.clone(), 16).with_deadline(Duration::from_secs(1)))
        .unwrap();
    let plain = service.submit(RenderRequest::frame(mic.clone(), 16)).unwrap();
    let high = service.submit(RenderRequest::frame(mic, 16).with_priority(Priority::High)).unwrap();
    service.start();
    service.shutdown();
    assert_eq!(high.wait().unwrap().completed_seq, 0, "priority first");
    assert_eq!(early.wait().unwrap().completed_seq, 1, "earliest deadline within a priority");
    assert_eq!(late.wait().unwrap().completed_seq, 2, "deadlined before best-effort");
    assert_eq!(plain.wait().unwrap().completed_seq, 3, "FIFO among equals");
    assert_eq!(low.wait().unwrap().completed_seq, 4, "background last");
}

#[test]
fn same_scene_requests_ride_the_batch() {
    let service = RenderService::builder(test_profile())
        .store(warm_store(&["Mic", "Lego"]))
        .workers(1)
        .batch_max(4)
        .paused()
        .build()
        .unwrap();
    let (mic, lego) = (registry::handle("Mic"), registry::handle("Lego"));
    let a1 = service.submit(RenderRequest::frame(mic.clone(), 16)).unwrap();
    let b1 = service.submit(RenderRequest::frame(lego, 16)).unwrap();
    let a2 = service.submit(RenderRequest::frame(mic, 16)).unwrap();
    service.start();
    let stats = service.shutdown();
    // a2 rides a1's batch (same scene + resolution), overtaking b1
    assert_eq!(a1.wait().unwrap().completed_seq, 0);
    assert_eq!(a2.wait().unwrap().completed_seq, 1, "same-scene rider overtakes the other scene");
    assert_eq!(b1.wait().unwrap().completed_seq, 2);
    assert_eq!(stats.requests, 3);
    // the Mic batch shared one store lookup; Lego made its own
    assert_eq!(stats.store.memory_hits, 2, "one lookup per batch, not per request");
    assert_eq!(stats.store.fits, 2, "only the pre-warm fits");
}

#[test]
fn admission_queue_is_bounded() {
    let service = RenderService::builder(test_profile())
        .store(warm_store(&["Mic"]))
        .workers(1)
        .queue_capacity(2)
        .paused()
        .build()
        .unwrap();
    let mic = registry::handle("Mic");
    let _t1 = service.submit(RenderRequest::frame(mic.clone(), 16)).unwrap();
    let _t2 = service.submit(RenderRequest::frame(mic.clone(), 16)).unwrap();
    let err = service.submit(RenderRequest::frame(mic.clone(), 16)).unwrap_err();
    assert_eq!(err, ServeError::QueueFull { capacity: 2 });
    // draining the queue reopens admission
    service.start();
    let t3 = loop {
        match service.submit(RenderRequest::frame(mic.clone(), 16)) {
            Ok(t) => break t,
            Err(ServeError::QueueFull { .. }) => std::thread::sleep(Duration::from_millis(2)),
            Err(e) => panic!("unexpected {e}"),
        }
    };
    t3.wait().unwrap();
}

#[test]
fn invalid_requests_are_rejected_at_submit() {
    let service = RenderService::builder(test_profile())
        .store(warm_store(&["Mic"]))
        .workers(1)
        .build()
        .unwrap();
    let mic = registry::handle("Mic");
    let mut zero_frames = RenderRequest::frame(mic.clone(), 16);
    zero_frames.frames = 0;
    assert!(matches!(service.submit(zero_frames), Err(ServeError::InvalidRequest(_))));
    let zero_res = RenderRequest::frame(mic, 0);
    assert!(matches!(service.submit(zero_res), Err(ServeError::InvalidRequest(_))));
}

#[test]
fn multi_frame_requests_reuse_their_sample_plan() {
    let service = RenderService::builder(test_profile())
        .store(warm_store(&["Mic"]))
        .workers(1)
        .plan_refresh_every(4)
        .build()
        .unwrap();
    let r = service
        .submit(RenderRequest::sequence(registry::handle("Mic"), 16, 4))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(r.images.len(), 4);
    assert_eq!(r.reused_frames, 3, "frames 1..3 reuse frame 0's plan");
    let stats = service.shutdown();
    assert_eq!(stats.frames, 4);
    assert_eq!(stats.reused_frames, 3);
    assert!(stats.probe_points_avoided_est > 0.0);
    assert!((stats.reuse_fraction() - 0.75).abs() < 1e-12);
}

#[test]
fn output_is_independent_of_workers_and_batching() {
    // the determinism contract behind the cold/warm acceptance test: the
    // same request renders byte-identically no matter how it is scheduled
    let render = |workers: usize, batch_max: usize, shuffle: bool| {
        let service = RenderService::builder(test_profile())
            .store(warm_store(&["Mic", "Lego"]))
            .workers(workers)
            .batch_max(batch_max)
            .paused()
            .build()
            .unwrap();
        let mut reqs = vec![
            RenderRequest::sequence(registry::handle("Mic"), 16, 2),
            RenderRequest::frame(registry::handle("Lego"), 16).with_priority(Priority::High),
            RenderRequest::frame(registry::handle("Mic"), 16),
        ];
        if shuffle {
            reqs.reverse();
        }
        let mut tickets: Vec<_> = reqs.into_iter().map(|r| service.submit(r).unwrap()).collect();
        if shuffle {
            tickets.reverse(); // compare in canonical order
        }
        service.start();
        let images: Vec<_> = tickets.iter().map(|t| t.wait().unwrap().images.clone()).collect();
        service.shutdown();
        images
    };
    let reference = render(1, 1, false);
    assert_eq!(render(3, 4, false), reference, "worker count / batching changed pixels");
    assert_eq!(render(2, 2, true), reference, "arrival order changed pixels");
}

#[test]
fn a_panicking_scene_fails_its_ticket_not_the_service() {
    // the registry is open, so a scene whose builder panics is reachable
    // user code; it must surface as RenderFailed on that ticket while the
    // worker survives and keeps serving other scenes
    use asdr_scenes::registry::SceneDef;
    if registry::get("sched-panics").is_none() {
        registry::register(SceneDef::new("sched-panics", || panic!("builder exploded"))).unwrap();
    }
    let service = RenderService::builder(test_profile())
        .store(warm_store(&["Mic"]))
        .workers(1)
        .build()
        .unwrap();
    let doomed =
        service.submit(RenderRequest::frame(registry::handle("sched-panics"), 16)).unwrap();
    match doomed.wait() {
        Err(ServeError::RenderFailed(why)) => {
            assert!(why.contains("builder exploded"), "panic payload survives: {why}")
        }
        other => panic!("expected RenderFailed, got {other:?}"),
    }
    // the same worker still serves healthy requests
    let ok = service.submit(RenderRequest::frame(registry::handle("Mic"), 16)).unwrap();
    assert!(ok.wait().is_ok(), "worker must survive a panicked batch");
    let stats = service.shutdown();
    assert_eq!(stats.requests, 1, "only the healthy request counts as completed");
}

#[test]
fn deadline_misses_are_counted() {
    let service = RenderService::builder(test_profile())
        .store(warm_store(&["Mic"]))
        .workers(1)
        .build()
        .unwrap();
    let hopeless = service
        .submit(
            RenderRequest::frame(registry::handle("Mic"), 16)
                .with_deadline(Duration::from_nanos(1)),
        )
        .unwrap();
    assert_eq!(hopeless.wait().unwrap().deadline_met, Some(false));
    let relaxed = service
        .submit(
            RenderRequest::frame(registry::handle("Mic"), 16)
                .with_deadline(Duration::from_secs(120)),
        )
        .unwrap();
    assert_eq!(relaxed.wait().unwrap().deadline_met, Some(true));
    // a sentinel "no deadline, really" duration must not overflow the
    // absolute-deadline computation (which would poison the queue lock)
    let forever = service
        .submit(RenderRequest::frame(registry::handle("Mic"), 16).with_deadline(Duration::MAX))
        .unwrap();
    assert_eq!(forever.wait().unwrap().deadline_met, Some(true));
    let stats = service.shutdown();
    assert_eq!((stats.deadlined_requests, stats.deadline_misses), (3, 1));
}

#[test]
fn worker_pool_resizes_while_serving() {
    let service = RenderService::builder(test_profile())
        .store(warm_store(&["Mic"]))
        .workers(1)
        .paused()
        .build()
        .unwrap();
    assert_eq!(service.workers(), 1);
    let mic = registry::handle("Mic");
    let tickets: Vec<_> =
        (0..6).map(|_| service.submit(RenderRequest::frame(mic.clone(), 16)).unwrap()).collect();
    assert_eq!(service.queue_len(), 6);
    // grow while paused: the new threads park with the rest
    assert_eq!(service.set_workers(3), 1, "set_workers returns the previous target");
    assert_eq!(service.workers(), 3);
    service.start();
    for t in &tickets {
        t.wait().unwrap();
    }
    // shrink below the live pool: excess workers retire between batches and
    // the survivors keep serving
    assert_eq!(service.set_workers(1), 3);
    assert_eq!(service.workers(), 1);
    let after = service.submit(RenderRequest::frame(mic.clone(), 16)).unwrap();
    assert!(after.wait().is_ok(), "a shrunk pool must still serve");
    // zero clamps to one: a pool can never scale itself to a standstill
    service.set_workers(0);
    assert_eq!(service.workers(), 1);
    let stats = service.shutdown();
    assert_eq!(stats.requests, 7);
}

#[test]
fn completion_hook_sees_successes_and_failures() {
    use asdr_serve::Completion;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    if registry::get("hook-panics").is_none() {
        use asdr_scenes::registry::SceneDef;
        registry::register(SceneDef::new("hook-panics", || panic!("builder exploded"))).unwrap();
    }
    let done = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(Mutex::new(Vec::new()));
    let hook = {
        let (done, failed) = (done.clone(), failed.clone());
        Arc::new(move |c: &Completion<'_>| match c.result {
            Some(r) => {
                assert_eq!(r.scene, c.scene);
                assert_eq!(r.resolution, c.resolution, "result carries its resolution");
                assert!(r.latency >= r.queue_wait, "hook sees a coherent latency split");
                done.fetch_add(1, Ordering::SeqCst);
            }
            None => failed.lock().unwrap().push((c.scene.to_string(), c.frames)),
        })
    };
    let service = RenderService::builder(test_profile())
        .store(warm_store(&["Mic"]))
        .workers(1)
        .on_complete(hook)
        .build()
        .unwrap();
    let ok = service.submit(RenderRequest::sequence(registry::handle("Mic"), 16, 2)).unwrap();
    let doomed = service.submit(RenderRequest::frame(registry::handle("hook-panics"), 16)).unwrap();
    assert!(ok.wait().is_ok());
    assert!(doomed.wait().is_err());
    service.shutdown();
    assert_eq!(done.load(Ordering::SeqCst), 1, "one successful completion observed");
    assert_eq!(
        failed.lock().unwrap().as_slice(),
        &[("hook-panics".to_string(), 1)],
        "failures are observed too (budget release depends on it)"
    );
}
