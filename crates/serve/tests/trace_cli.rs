//! The `asdr-trace` toolbox, exercised through the real binary:
//! `gen` materialises a seeded spec, `sample` compresses it to weighted
//! medoid windows, `record` transcodes JSONL, and `report` merges stats
//! artifacts into one markdown table.

use asdr_serve::trace::format;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asdr_trace_cli_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn trace_cmd(args: &[&std::ffi::OsStr]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_asdr-trace")).args(args).output().expect("spawn asdr-trace")
}

fn ok(args: &[&std::ffi::OsStr]) -> String {
    let out = trace_cmd(args);
    assert!(
        out.status.success(),
        "asdr-trace {:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn gen_sample_record_report_pipeline() {
    let dir = fresh_dir();
    let full = dir.join("full.trace");
    let sampled = dir.join("sampled.trace");

    // gen: a seeded 20s poisson trace
    ok(&[
        "gen".as_ref(),
        "poisson:rate=3,duration=20s,seed=5,resolution=16,deadline=300".as_ref(),
        "--out".as_ref(),
        full.as_os_str(),
    ]);
    let decoded = format::read_file(&full).unwrap();
    assert!(decoded.plan.is_none());
    assert!(decoded.entries.len() > 20, "3 Hz for 20s yields ~60 arrivals");
    assert!(decoded.entries.iter().all(|e| e.resolution == Some(16)));

    // gen is deterministic: same spec, same bytes
    let full2 = dir.join("full2.trace");
    ok(&[
        "gen".as_ref(),
        "poisson:rate=3,duration=20s,seed=5,resolution=16,deadline=300".as_ref(),
        "--out".as_ref(),
        full2.as_os_str(),
    ]);
    assert_eq!(std::fs::read(&full).unwrap(), std::fs::read(&full2).unwrap());

    // sample: 10 windows of 2s down to 3 medoids
    let stdout = ok(&[
        "sample".as_ref(),
        "--trace".as_ref(),
        full.as_os_str(),
        "--window-ms".as_ref(),
        "2000".as_ref(),
        "--clusters".as_ref(),
        "3".as_ref(),
        "--out".as_ref(),
        sampled.as_os_str(),
    ]);
    assert!(stdout.contains("down to 3 medoids"), "{stdout}");
    let plan = format::read_file(&sampled).unwrap().plan.expect("sampled trace carries a plan");
    assert_eq!(plan.total_windows, 10);
    assert_eq!(plan.picks.len(), 3);
    assert_eq!(plan.picks.iter().map(|p| p.cluster_size).sum::<u64>(), 10);

    // sampling an already sampled trace is refused
    let out = trace_cmd(&[
        "sample".as_ref(),
        "--trace".as_ref(),
        sampled.as_os_str(),
        "--window-ms".as_ref(),
        "2000".as_ref(),
        "--clusters".as_ref(),
        "2".as_ref(),
        "--out".as_ref(),
        dir.join("x.trace").as_os_str(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("already a sampled trace"));

    // record: transcode the bundled JSONL workload
    let workload =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scripts/serve-workload-tiny.jsonl");
    let transcoded = dir.join("workload.trace");
    ok(&[
        "record".as_ref(),
        "--workload".as_ref(),
        workload.as_os_str(),
        "--out".as_ref(),
        transcoded.as_os_str(),
    ]);
    assert_eq!(format::read_file(&transcoded).unwrap().entries.len(), 5);

    // report: merge two stats artifacts into one table
    let a = dir.join("full.json");
    let b = dir.join("sampled.json");
    std::fs::write(&a, r#"{"requests": 60, "miss_rate": 0.1}"#).unwrap();
    std::fs::write(&b, r#"{"requests": 18, "est_miss_rate": 0.12, "miss_err": 0.07}"#).unwrap();
    let report = dir.join("report.md");
    ok(&[
        "report".as_ref(),
        "--out".as_ref(),
        report.as_os_str(),
        format!("full={}", a.display()).as_ref(),
        format!("sampled={}", b.display()).as_ref(),
    ]);
    let md = std::fs::read_to_string(&report).unwrap();
    assert!(md.starts_with("| metric | full | sampled |"), "{md}");
    assert!(md.contains("| requests | 60 | 18 |"), "{md}");
    assert!(md.contains("| est_miss_rate | - | 0.1200 |"), "{md}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_invocations_exit_with_usage() {
    for args in [
        vec!["frobnicate"],
        vec!["gen"],
        vec!["gen", "poisson:rate=1,duration=10s"],
        vec!["sample", "--window-ms", "1000"],
        vec!["report"],
    ] {
        let argv: Vec<&std::ffi::OsStr> = args.iter().map(|s| s.as_ref()).collect();
        let out = trace_cmd(&argv);
        assert_eq!(out.status.code(), Some(2), "asdr-trace {args:?} should exit 2");
    }
}
