//! Scaffolding shared by the serve integration tests: a tiny fit
//! configuration and a structurally-valid model that costs nothing to
//! build, so no scheduler or store test pays for a real scene fit.

use asdr_math::{Aabb, Vec3};
use asdr_nerf::embedding::EmbeddingSet;
use asdr_nerf::grid::GridConfig;
use asdr_nerf::mlp::{Activation, Dense, Mlp};
use asdr_nerf::model::{COLOR_IN_DIM, DENSITY_OUT_DIM};
use asdr_nerf::occupancy::OccupancyGrid;
use asdr_nerf::{HashEncoder, NgpModel};

/// A grid small enough that checkpoints are a few KB.
pub fn test_grid() -> GridConfig {
    GridConfig { levels: 2, base_res: 4, max_res: 8, table_size: 1 << 8, feat_dim: 2 }
}

/// A cheap structurally-valid model; `tag` lands in the color MLP's first
/// bias so instances are distinguishable (read it back with
/// `model.color_mlp().layers()[0].bias()[0]`).
pub fn blank_model(grid: &GridConfig, tag: f32) -> NgpModel {
    let encoder = HashEncoder::new(grid.clone(), EmbeddingSet::new(grid));
    let density =
        Mlp::new(vec![Dense::zeros(grid.encoded_dim(), DENSITY_OUT_DIM, Activation::None)]);
    let mut color = Mlp::new(vec![Dense::zeros(COLOR_IN_DIM, 3, Activation::None)]);
    color.layers_mut()[0].bias_mut()[0] = tag;
    let bounds = Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0));
    let occ = OccupancyGrid::from_cells(4, bounds, vec![true; 64]).expect("valid cells");
    NgpModel::new(encoder, density, color, bounds, occ)
}
