//! Property tests for the binary trace codec: arbitrary entry vectors
//! round-trip exactly (including arrival ordering and re-numbered
//! origins), and no truncation or header corruption can make `decode`
//! panic — every mutilation degrades to a named error.

use asdr_serve::trace::format;
use asdr_serve::{Priority, TimedRequest};
use proptest::collection;
use proptest::prelude::*;

const SCENES: [&str; 4] = ["Mic", "Lego", "Pulse", "Palace"];

proptest! {
    #[test]
    fn codec_round_trips_arbitrary_traces(
        raw in collection::vec(
            (
                0u64..120_000,
                0usize..SCENES.len(),
                1usize..=64,
                0u32..4,
                0u8..3,
                0u64..4000,
                0u32..3,
            ),
            0..40,
        )
    ) {
        let entries: Vec<TimedRequest> = raw
            .clone()
            .into_iter()
            .map(|(at_ms, scene, frames, res, prio, deadline, az)| TimedRequest {
                at_ms,
                scene: SCENES[scene].to_string(),
                frames,
                resolution: (res > 0).then_some(res * 16),
                priority: match prio {
                    0 => Priority::Low,
                    1 => Priority::Normal,
                    _ => Priority::High,
                },
                deadline_ms: (deadline > 0).then_some(deadline),
                azimuth_step_deg: (az > 0).then_some(az as f32 * 0.75),
                origin: 0,
                window: None,
            })
            .collect();

        // The encoder sorts by arrival (stable) and the decoder numbers
        // records 1-based — that, and nothing else, may change.
        let mut expect = entries.clone();
        expect.sort_by_key(|e| e.at_ms);
        for (i, e) in expect.iter_mut().enumerate() {
            e.origin = i + 1;
        }

        let bytes = format::encode(&entries, None);
        let decoded = match format::decode(&bytes) {
            Ok(d) => d,
            Err(e) => return Err(TestCaseError::Fail(format!("decode failed: {e}"))),
        };
        prop_assert!(decoded.plan.is_none());
        prop_assert_eq!(decoded.entries, expect);
    }

    #[test]
    fn truncated_traces_error_instead_of_panicking(
        n in 1usize..12,
        cut_seed in 0usize..10_000,
    ) {
        let entries: Vec<TimedRequest> = (0..n)
            .map(|i| TimedRequest {
                at_ms: i as u64 * 17,
                scene: SCENES[i % SCENES.len()].to_string(),
                frames: 1 + i % 3,
                resolution: Some(32),
                priority: Priority::Normal,
                deadline_ms: Some(100 + i as u64),
                azimuth_step_deg: None,
                origin: 0,
                window: None,
            })
            .collect();
        let bytes = format::encode(&entries, None);
        let cut = cut_seed % bytes.len();
        let err = match format::decode(&bytes[..cut]) {
            Ok(_) => return Err(TestCaseError::Fail(format!(
                "a {cut}-byte prefix of a {}-byte trace decoded", bytes.len()
            ))),
            Err(e) => e,
        };
        prop_assert!(err.starts_with("trace "), "error names the trace layer: {}", err);
    }

    #[test]
    fn corrupt_headers_are_named(flip in 0usize..8, mask in 1u8..=255) {
        let entries = vec![TimedRequest {
            at_ms: 5,
            scene: "Mic".to_string(),
            frames: 1,
            resolution: None,
            priority: Priority::Normal,
            deadline_ms: None,
            azimuth_step_deg: None,
            origin: 0,
            window: None,
        }];
        let mut bytes = format::encode(&entries, None);
        bytes[flip] ^= mask;
        let err = match format::decode(&bytes) {
            Ok(_) => return Err(TestCaseError::Fail(
                "decoded a trace with a corrupted magic/version byte".to_string()
            )),
            Err(e) => e,
        };
        prop_assert!(err.starts_with("trace header: "), "{}", err);
    }
}

#[test]
fn empty_and_garbage_inputs_error_cleanly() {
    assert!(format::decode(&[]).unwrap_err().starts_with("trace header: "));
    assert!(format::decode(b"not a trace at all").unwrap_err().starts_with("trace header: "));
}
