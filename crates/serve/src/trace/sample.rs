//! SimPoint-style phase sampling: replay a few *representative* windows
//! of a long trace instead of all of it, and report an estimate with
//! error bars.
//!
//! The pipeline mirrors SimPoint's program-phase analysis, transposed to
//! serving traffic: split the trace into fixed windows, fingerprint each
//! window by its (scene-mix, arrival-rate, resolution-mix) vector,
//! cluster the fingerprints with k-medoids (PAM), and keep only the
//! medoid window of each cluster, weighted by its cluster's size. A
//! replay of the sampled trace measures each kept window and
//! [`weighted_estimate`] extrapolates miss rate and throughput back to
//! the full trace, with a 95% error bar.

use crate::trace::format::{PlanMeta, PlanPick};
use crate::trace::source::TimedRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A trace reduced to its weighted medoid windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledTrace {
    /// Entries of the retained windows, original timestamps kept;
    /// [`BinarySource`](crate::trace::source::BinarySource) re-bases them
    /// at replay time using `plan`.
    pub entries: Vec<TimedRequest>,
    /// Which windows were kept and what each one stands for.
    pub plan: PlanMeta,
}

/// Per-window fingerprint: scene-mix fractions, normalised arrival rate,
/// and resolution-mix fractions, concatenated into one vector. With
/// `closed_loop` an extra backlog dimension is appended (see
/// [`backlog_profile`]).
fn fingerprints(
    entries: &[TimedRequest],
    window_ms: u64,
    total_windows: usize,
    closed_loop: bool,
) -> Vec<Vec<f64>> {
    let mut scene_names: Vec<&str> = entries.iter().map(|e| e.scene.as_str()).collect();
    scene_names.sort_unstable();
    scene_names.dedup();
    let mut resolutions: Vec<Option<u32>> = entries.iter().map(|e| e.resolution).collect();
    resolutions.sort_unstable();
    resolutions.dedup();

    let mut counts = vec![0usize; total_windows];
    let dim = scene_names.len() + 1 + resolutions.len();
    let mut fps = vec![vec![0.0f64; dim]; total_windows];
    for e in entries {
        let w = (e.at_ms / window_ms) as usize;
        counts[w] += 1;
        let s = scene_names.binary_search(&e.scene.as_str()).expect("scene indexed above");
        fps[w][s] += 1.0;
        let r = resolutions.iter().position(|&x| x == e.resolution).expect("resolution indexed");
        fps[w][scene_names.len() + 1 + r] += 1.0;
    }
    let max_count = counts.iter().copied().max().unwrap_or(0).max(1) as f64;
    for (w, fp) in fps.iter_mut().enumerate() {
        let n = counts[w] as f64;
        if counts[w] > 0 {
            for v in fp.iter_mut() {
                *v /= n;
            }
        }
        fp[scene_names.len()] = counts[w] as f64 / max_count;
    }
    if closed_loop {
        for (fp, b) in fps.iter_mut().zip(backlog_profile(entries, window_ms, total_windows)) {
            fp.push(b);
        }
    }
    fps
}

/// Normalised queue-backlog profile of the trace under a fixed-capacity
/// server: per-window offered work is the frame count, capacity is the
/// trace-wide mean work per window, and backlog carries over as
/// `b[w] = max(0, b[w-1] + work[w] - capacity)`.
///
/// Open-loop fingerprints treat each window in isolation, so a burst
/// window looks the same whether it lands on an idle server or on top of
/// an hour of accumulated queue. The backlog dimension separates those
/// two regimes, which is what a closed-loop (queue-aware) replay
/// actually experiences.
fn backlog_profile(entries: &[TimedRequest], window_ms: u64, total_windows: usize) -> Vec<f64> {
    let mut work = vec![0.0f64; total_windows];
    for e in entries {
        work[(e.at_ms / window_ms) as usize] += e.frames.max(1) as f64;
    }
    let capacity = work.iter().sum::<f64>() / total_windows.max(1) as f64;
    let mut backlog = vec![0.0f64; total_windows];
    let mut b = 0.0f64;
    for (w, &wk) in work.iter().enumerate() {
        b = (b + wk - capacity).max(0.0);
        backlog[w] = b;
    }
    let max = backlog.iter().copied().fold(0.0f64, f64::max).max(1e-12);
    for v in &mut backlog {
        *v /= max;
    }
    backlog
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Total cost of an assignment: each point's distance to its nearest
/// medoid.
fn cost(fps: &[Vec<f64>], medoids: &[usize]) -> f64 {
    fps.iter()
        .map(|fp| medoids.iter().map(|&m| dist(fp, &fps[m])).fold(f64::INFINITY, f64::min))
        .sum()
}

/// Deterministic k-medoids (greedy BUILD + PAM swaps). `seed` only breaks
/// the initial-medoid tie; the swap phase is exhaustive, so results are
/// stable for a given trace.
fn k_medoids(fps: &[Vec<f64>], k: usize, seed: u64) -> Vec<usize> {
    let n = fps.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut medoids = vec![rng.gen_range(0..n)];
    // BUILD: greedily add the point that lowers total cost the most.
    while medoids.len() < k {
        let best = (0..n)
            .filter(|i| !medoids.contains(i))
            .min_by(|&a, &b| {
                let ca = cost(fps, &[medoids.clone(), vec![a]].concat());
                let cb = cost(fps, &[medoids.clone(), vec![b]].concat());
                ca.partial_cmp(&cb).expect("finite costs")
            })
            .expect("k <= n");
        medoids.push(best);
    }
    // PAM: swap any (medoid, non-medoid) pair while it improves the cost.
    let mut best_cost = cost(fps, &medoids);
    loop {
        let mut improved = false;
        for mi in 0..medoids.len() {
            for cand in 0..n {
                if medoids.contains(&cand) {
                    continue;
                }
                let old = medoids[mi];
                medoids[mi] = cand;
                let c = cost(fps, &medoids);
                if c + 1e-12 < best_cost {
                    best_cost = c;
                    improved = true;
                } else {
                    medoids[mi] = old;
                }
            }
        }
        if !improved {
            return medoids;
        }
    }
}

/// Reduces `entries` to `k` weighted medoid windows of `window_ms` each,
/// fingerprinting windows open-loop (each window in isolation).
///
/// # Errors
///
/// Returns a message if the trace is empty or the parameters are zero.
pub fn sample_trace(
    entries: &[TimedRequest],
    window_ms: u64,
    k: usize,
    seed: u64,
) -> Result<SampledTrace, String> {
    sample_trace_with(entries, window_ms, k, seed, false)
}

/// Like [`sample_trace`], but `closed_loop` adds a carried-backlog
/// dimension to every window fingerprint, so windows that arrive on a
/// congested server cluster apart from identical traffic arriving on an
/// idle one.
///
/// # Errors
///
/// Returns a message if the trace is empty or the parameters are zero.
pub fn sample_trace_with(
    entries: &[TimedRequest],
    window_ms: u64,
    k: usize,
    seed: u64,
    closed_loop: bool,
) -> Result<SampledTrace, String> {
    if entries.is_empty() {
        return Err("sample: trace is empty".into());
    }
    if window_ms == 0 {
        return Err("sample: window-ms must be positive".into());
    }
    if k == 0 {
        return Err("sample: clusters must be positive".into());
    }
    let span = entries.iter().map(|e| e.at_ms).max().expect("non-empty") + 1;
    let total_windows = span.div_ceil(window_ms) as usize;
    let k = k.min(total_windows);
    let fps = fingerprints(entries, window_ms, total_windows, closed_loop);
    let medoids = k_medoids(&fps, k, seed);

    // Assign every window to its nearest medoid; ties go to the earlier
    // medoid so weights are deterministic.
    let mut sizes = vec![0u64; medoids.len()];
    for fp in &fps {
        let nearest = medoids
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                dist(fp, &fps[a]).partial_cmp(&dist(fp, &fps[b])).expect("finite")
            })
            .map(|(i, _)| i)
            .expect("k >= 1");
        sizes[nearest] += 1;
    }
    let mut picks: Vec<PlanPick> = medoids
        .iter()
        .zip(&sizes)
        .map(|(&m, &sz)| PlanPick { start_ms: m as u64 * window_ms, cluster_size: sz })
        .collect();
    picks.sort_by_key(|p| p.start_ms);
    let plan = PlanMeta { window_ms, total_windows: total_windows as u64, picks };

    let kept: Vec<TimedRequest> = entries
        .iter()
        .filter(|e| {
            plan.picks.iter().any(|p| e.at_ms >= p.start_ms && e.at_ms < p.start_ms + window_ms)
        })
        .cloned()
        .collect();
    Ok(SampledTrace { entries: kept, plan })
}

/// Measurements from replaying one retained window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowObs {
    /// Requests in the window that carried a deadline.
    pub deadlined: usize,
    /// Of those, how many missed it.
    pub misses: usize,
    /// Frames rendered for the window's requests.
    pub frames: usize,
}

/// A full-trace estimate extrapolated from sampled windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Weighted deadline-miss-rate estimate for the full trace.
    pub est_miss_rate: f64,
    /// 95% half-width on `est_miss_rate` (never below the 0.05 floor).
    pub miss_err: f64,
    /// Weighted frames-per-second estimate.
    pub est_fps: f64,
    /// Weighted standard deviation of per-window fps.
    pub fps_err: f64,
    /// Simulated milliseconds the full trace covers.
    pub equivalent_ms: u64,
    /// Simulated milliseconds actually replayed.
    pub replayed_ms: u64,
}

/// Absolute floor on the miss-rate error bar: with a handful of sampled
/// windows the binomial term alone understates window-selection error.
pub const MISS_ERR_FLOOR: f64 = 0.05;

/// Extrapolates window measurements to a full-trace [`Estimate`].
///
/// `obs[i]` must be the measurement of `plan.picks[i]`'s window. The
/// miss-rate bar is `1.96 * sqrt(Σ wᵢ² pᵢ(1-pᵢ)/nᵢ)` (a weighted binomial
/// 95% interval) plus the [`MISS_ERR_FLOOR`].
///
/// # Errors
///
/// Returns a message when `obs` and the plan disagree in length.
pub fn weighted_estimate(plan: &PlanMeta, obs: &[WindowObs]) -> Result<Estimate, String> {
    if obs.len() != plan.picks.len() {
        return Err(format!(
            "estimate: {} window observations for {} picks",
            obs.len(),
            plan.picks.len()
        ));
    }
    let total = plan.total_windows.max(1) as f64;
    let window_s = plan.window_ms as f64 / 1e3;
    let mut est_miss = 0.0;
    let mut miss_var = 0.0;
    let mut est_fps = 0.0;
    for (pick, o) in plan.picks.iter().zip(obs) {
        let w = pick.cluster_size as f64 / total;
        let n = o.deadlined.max(1) as f64;
        let p = o.misses as f64 / n;
        est_miss += w * p;
        miss_var += w * w * p * (1.0 - p) / n;
        est_fps += w * o.frames as f64 / window_s;
    }
    let mut fps_var = 0.0;
    for (pick, o) in plan.picks.iter().zip(obs) {
        let w = pick.cluster_size as f64 / total;
        let fps = o.frames as f64 / window_s;
        fps_var += w * (fps - est_fps) * (fps - est_fps);
    }
    Ok(Estimate {
        est_miss_rate: est_miss,
        miss_err: 1.96 * miss_var.sqrt() + MISS_ERR_FLOOR,
        est_fps,
        fps_err: fps_var.sqrt(),
        equivalent_ms: plan.equivalent_ms(),
        replayed_ms: plan.replayed_ms(),
    })
}

/// Groups replay measurements by window index into per-pick [`WindowObs`].
///
/// Each item is `(window, carried_deadline, missed, frames)`; requests
/// with `window == None` are ignored (full-trace replays have no plan).
pub fn collect_window_obs(
    plan: &PlanMeta,
    measurements: impl IntoIterator<Item = (Option<usize>, bool, bool, usize)>,
) -> Vec<WindowObs> {
    let mut obs = vec![WindowObs::default(); plan.picks.len()];
    for (window, deadlined, missed, frames) in measurements {
        let Some(w) = window else { continue };
        if w >= obs.len() {
            continue;
        }
        obs[w].frames += frames;
        if deadlined {
            obs[w].deadlined += 1;
            if missed {
                obs[w].misses += 1;
            }
        }
    }
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Priority;
    use crate::trace::source::{drain, BinarySource, TraceSource};
    use crate::trace::synth::SyntheticSource;

    fn entry(at_ms: u64, scene: &str) -> TimedRequest {
        TimedRequest {
            at_ms,
            scene: scene.to_string(),
            frames: 1,
            resolution: None,
            priority: Priority::Normal,
            deadline_ms: Some(100),
            azimuth_step_deg: None,
            origin: 0,
            window: None,
        }
    }

    #[test]
    fn sampling_validates_inputs() {
        assert!(sample_trace(&[], 1000, 2, 0).unwrap_err().contains("empty"));
        let e = [entry(0, "Mic")];
        assert!(sample_trace(&e, 0, 2, 0).unwrap_err().contains("window-ms"));
        assert!(sample_trace(&e, 1000, 0, 0).unwrap_err().contains("clusters"));
    }

    #[test]
    fn two_phase_trace_keeps_one_window_per_phase() {
        // Phase A: Mic every 100ms for 4s. Phase B: Lego every 25ms for 4s.
        let mut entries = Vec::new();
        for t in (0..4000).step_by(100) {
            entries.push(entry(t, "Mic"));
        }
        for t in (4000..8000).step_by(25) {
            entries.push(entry(t, "Lego"));
        }
        let sampled = sample_trace(&entries, 1000, 2, 42).unwrap();
        assert_eq!(sampled.plan.total_windows, 8);
        assert_eq!(sampled.plan.picks.len(), 2);
        let phase_of = |p: &PlanPick| if p.start_ms < 4000 { "A" } else { "B" };
        let phases: Vec<&str> = sampled.plan.picks.iter().map(phase_of).collect();
        assert!(phases.contains(&"A") && phases.contains(&"B"), "picks: {:?}", sampled.plan.picks);
        for p in &sampled.plan.picks {
            assert_eq!(p.cluster_size, 4, "two clean phases of four windows each");
        }
        assert_eq!(sampled.plan.equivalent_ms(), 8000);
        assert_eq!(sampled.plan.replayed_ms(), 2000);
    }

    #[test]
    fn closed_loop_sampling_separates_backlog_regimes() {
        // One request per 1s window; the first four carry 100 frames each,
        // the last four carry 1. Open-loop fingerprints (scene mix,
        // arrival count, resolution mix) are identical for all eight
        // windows, so one cluster swallows everything. The backlog
        // dimension ramps up over the heavy phase and drains over the
        // light one, so closed-loop sampling tells the regimes apart.
        let mut entries = Vec::new();
        for w in 0..8u64 {
            let mut e = entry(w * 1000, "Mic");
            e.frames = if w < 4 { 100 } else { 1 };
            entries.push(e);
        }
        let open = sample_trace_with(&entries, 1000, 2, 3, false).unwrap();
        let closed = sample_trace_with(&entries, 1000, 2, 3, true).unwrap();
        assert_eq!(sample_trace(&entries, 1000, 2, 3).unwrap(), open, "default is open-loop");

        let open_sizes: Vec<u64> = open.plan.picks.iter().map(|p| p.cluster_size).collect();
        assert!(open_sizes.contains(&8), "open-loop sees 8 identical windows: {open_sizes:?}");
        for p in &closed.plan.picks {
            assert!(
                p.cluster_size >= 2 && p.cluster_size <= 6,
                "closed-loop splits the backlog regimes, picks: {:?}",
                closed.plan.picks
            );
        }
        assert_ne!(open.plan.picks, closed.plan.picks);
        assert_eq!(closed, sample_trace_with(&entries, 1000, 2, 3, true).unwrap(), "determinism");
    }

    #[test]
    fn sampling_is_deterministic_and_k_is_capped() {
        let entries: Vec<_> = (0..10).map(|i| entry(i * 500, "Mic")).collect();
        let a = sample_trace(&entries, 1000, 3, 7).unwrap();
        let b = sample_trace(&entries, 1000, 3, 7).unwrap();
        assert_eq!(a, b);
        let capped = sample_trace(&entries, 1000, 99, 7).unwrap();
        assert_eq!(capped.plan.picks.len(), 5, "k capped at window count");
    }

    #[test]
    fn sampled_trace_survives_the_binary_format() {
        let mut synth =
            SyntheticSource::from_spec("poisson:rate=4,duration=30s,seed=2,deadline=200").unwrap();
        let entries = drain(&mut synth);
        let sampled = sample_trace(&entries, 2000, 3, 0).unwrap();
        let bytes = crate::trace::format::encode(&sampled.entries, Some(&sampled.plan));
        let mut src = BinarySource::from_bytes(&bytes).unwrap();
        assert_eq!(src.plan(), Some(&sampled.plan));
        let replayed = drain(&mut src);
        assert_eq!(replayed.len(), sampled.entries.len());
        let max_at = replayed.iter().map(|e| e.at_ms).max().unwrap();
        assert!(max_at < sampled.plan.replayed_ms(), "re-based onto the compressed clock");
        assert!(replayed.iter().all(|e| e.window.is_some()));
    }

    #[test]
    fn weighted_estimate_weights_by_cluster_size() {
        let plan = PlanMeta {
            window_ms: 1000,
            total_windows: 10,
            picks: vec![
                PlanPick { start_ms: 0, cluster_size: 9 },
                PlanPick { start_ms: 5000, cluster_size: 1 },
            ],
        };
        let obs = [
            WindowObs { deadlined: 10, misses: 0, frames: 20 },
            WindowObs { deadlined: 10, misses: 10, frames: 100 },
        ];
        let est = weighted_estimate(&plan, &obs).unwrap();
        assert!((est.est_miss_rate - 0.1).abs() < 1e-9);
        assert!(est.miss_err >= MISS_ERR_FLOOR);
        assert!((est.est_fps - (0.9 * 20.0 + 0.1 * 100.0)).abs() < 1e-9);
        assert!(est.fps_err > 0.0);
        assert_eq!((est.equivalent_ms, est.replayed_ms), (10_000, 2000));
        assert!(weighted_estimate(&plan, &obs[..1]).unwrap_err().contains("1 window"));
    }

    #[test]
    fn collect_window_obs_groups_by_window() {
        let plan = PlanMeta {
            window_ms: 1000,
            total_windows: 4,
            picks: vec![
                PlanPick { start_ms: 0, cluster_size: 2 },
                PlanPick { start_ms: 2000, cluster_size: 2 },
            ],
        };
        let obs = collect_window_obs(
            &plan,
            [
                (Some(0), true, false, 3),
                (Some(0), true, true, 3),
                (Some(1), false, false, 5),
                (None, true, true, 7),
            ],
        );
        assert_eq!(obs[0], WindowObs { deadlined: 2, misses: 1, frames: 6 });
        assert_eq!(obs[1], WindowObs { deadlined: 0, misses: 0, frames: 5 });
    }
}
