//! [`TraceSource`] — the one currency every workload front door speaks.
//!
//! A trace source yields [`TimedRequest`]s: a render request plus its
//! arrival offset, already validated, independent of where it came from.
//! [`JsonlSource`] wraps the human-editable JSON-lines format,
//! [`BinarySource`] wraps the compact binary format (including sampled
//! traces, whose windows it re-bases and tags), and
//! [`SyntheticSource`](crate::trace::synth::SyntheticSource) generates
//! open-loop workloads from a seeded RNG. The shared
//! [`ReplayDriver`](crate::trace::replay) consumes any of them — the
//! `asdr-serve` and `asdr-cluster` binaries no longer own replay loops.

use crate::profile::RenderProfile;
use crate::service::{Priority, RenderRequest};
use crate::trace::format::{self, DecodedTrace, PlanMeta};
use crate::workload::{parse_workload, WorkloadEntry};
use std::path::Path;

/// One render request with its arrival time — the unit every
/// [`TraceSource`] yields, whatever format it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRequest {
    /// Arrival offset from replay start, milliseconds.
    pub at_ms: u64,
    /// Registry scene name (resolved at submit time).
    pub scene: String,
    /// Frames in the request (>= 1).
    pub frames: usize,
    /// Frame resolution override (`None`: the profile's default).
    pub resolution: Option<u32>,
    /// Scheduling class.
    pub priority: Priority,
    /// Latency budget from submission, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Orbit step override, degrees per frame.
    pub azimuth_step_deg: Option<f32>,
    /// 1-based line (JSONL) or record (binary) in the source, so
    /// resolution failures name where the request came from.
    pub origin: usize,
    /// Weighted-window index when replaying a sampled trace; `None` on
    /// full traces. Measurements grouped by this index feed the
    /// [`weighted_estimate`](crate::trace::sample::weighted_estimate).
    pub window: Option<usize>,
}

impl TimedRequest {
    /// Resolves the entry into a submit-ready request under `profile`.
    ///
    /// # Errors
    ///
    /// Returns a message if the scene is not registered.
    pub fn to_request(&self, profile: &RenderProfile) -> Result<RenderRequest, String> {
        let scene = asdr_scenes::registry::get(&self.scene)
            .ok_or_else(|| format!("unknown scene {:?} (see `experiments --list`)", self.scene))?;
        let mut req = RenderRequest::sequence(
            scene,
            self.resolution.unwrap_or(profile.default_resolution),
            self.frames,
        )
        .with_priority(self.priority);
        if let Some(ms) = self.deadline_ms {
            req = req.with_deadline(std::time::Duration::from_millis(ms));
        }
        if let Some(step) = self.azimuth_step_deg {
            req.azimuth_step_deg = step;
        }
        Ok(req)
    }
}

impl From<WorkloadEntry> for TimedRequest {
    fn from(e: WorkloadEntry) -> Self {
        TimedRequest {
            at_ms: e.at_ms,
            scene: e.scene,
            frames: e.frames,
            resolution: e.resolution,
            priority: e.priority,
            deadline_ms: e.deadline_ms,
            azimuth_step_deg: e.azimuth_step_deg,
            origin: e.line,
            window: None,
        }
    }
}

/// A stream of timed render requests.
///
/// Sources validate at construction, so `next` is infallible; `None` ends
/// the trace. Implementations must yield non-decreasing `at_ms`.
pub trait TraceSource {
    /// The next request, or `None` at end of trace.
    fn next(&mut self) -> Option<TimedRequest>;

    /// Total requests, when known up front (synthetic sources stream).
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// The weighted-window plan, when this source replays a sampled trace.
    fn plan(&self) -> Option<&PlanMeta> {
        None
    }
}

/// Every remaining request, drained in order.
pub fn drain(source: &mut (impl TraceSource + ?Sized)) -> Vec<TimedRequest> {
    let mut out = Vec::new();
    while let Some(e) = source.next() {
        out.push(e);
    }
    out
}

impl TraceSource for std::vec::IntoIter<TimedRequest> {
    fn next(&mut self) -> Option<TimedRequest> {
        Iterator::next(self)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.len())
    }
}

/// The JSON-lines workload format as a [`TraceSource`].
#[derive(Debug)]
pub struct JsonlSource {
    entries: std::vec::IntoIter<TimedRequest>,
}

impl JsonlSource {
    /// Parses a workload text (see [`parse_workload`]); entries are
    /// ordered by arrival offset, ties keeping file order.
    ///
    /// # Errors
    ///
    /// Returns `"line N: why"` for the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries: Vec<TimedRequest> =
            parse_workload(text)?.into_iter().map(TimedRequest::from).collect();
        entries.sort_by_key(|e| e.at_ms);
        Ok(JsonlSource { entries: entries.into_iter() })
    }

    /// Reads and parses a workload file.
    ///
    /// # Errors
    ///
    /// Returns `"path: why"` on I/O or parse failure.
    pub fn from_file(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

impl TraceSource for JsonlSource {
    fn next(&mut self) -> Option<TimedRequest> {
        Iterator::next(&mut self.entries)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.entries.len())
    }
}

/// The compact binary format as a [`TraceSource`].
///
/// For a *sampled* trace (one carrying a [`PlanMeta`]), the source
/// re-bases each retained window onto a contiguous clock — window `i`
/// replays at `i * window_ms` — and tags every request with its window
/// index, so an hour-equivalent trace replays in the sum of its medoid
/// windows.
#[derive(Debug)]
pub struct BinarySource {
    entries: std::vec::IntoIter<TimedRequest>,
    plan: Option<PlanMeta>,
}

impl BinarySource {
    /// Decodes a binary trace from bytes.
    ///
    /// # Errors
    ///
    /// See [`format::decode`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        Ok(Self::from_decoded(format::decode(bytes)?))
    }

    /// Reads and decodes a binary trace file.
    ///
    /// # Errors
    ///
    /// Returns `"path: why"` on I/O or decode failure.
    pub fn from_file(path: &Path) -> Result<Self, String> {
        Ok(Self::from_decoded(format::read_file(path)?))
    }

    /// Wraps an already decoded trace.
    pub fn from_decoded(trace: DecodedTrace) -> Self {
        let entries = match &trace.plan {
            None => trace.entries,
            Some(plan) => rebase_windows(trace.entries, plan),
        };
        BinarySource { entries: entries.into_iter(), plan: trace.plan }
    }
}

/// Maps each record of a sampled trace into its window's re-based slot;
/// records outside every retained window are dropped (a sampled file
/// normally only stores retained windows — this tolerates hand-built ones).
fn rebase_windows(entries: Vec<TimedRequest>, plan: &PlanMeta) -> Vec<TimedRequest> {
    let mut out = Vec::with_capacity(entries.len());
    for mut e in entries {
        let Some((idx, pick)) = plan
            .picks
            .iter()
            .enumerate()
            .find(|(_, p)| e.at_ms >= p.start_ms && e.at_ms < p.start_ms + plan.window_ms)
        else {
            continue;
        };
        e.window = Some(idx);
        e.at_ms = idx as u64 * plan.window_ms + (e.at_ms - pick.start_ms);
        out.push(e);
    }
    out.sort_by_key(|e| e.at_ms);
    out
}

impl TraceSource for BinarySource {
    fn next(&mut self) -> Option<TimedRequest> {
        Iterator::next(&mut self.entries)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.entries.len())
    }

    fn plan(&self) -> Option<&PlanMeta> {
        self.plan.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::format::PlanPick;

    fn entry(at_ms: u64, scene: &str) -> TimedRequest {
        TimedRequest {
            at_ms,
            scene: scene.to_string(),
            frames: 1,
            resolution: Some(32),
            priority: Priority::Normal,
            deadline_ms: None,
            azimuth_step_deg: None,
            origin: 0,
            window: None,
        }
    }

    #[test]
    fn jsonl_source_yields_in_arrival_order() {
        let text = r#"
            {"scene": "Mic", "at_ms": 50}
            {"scene": "Lego"}
            {"scene": "Pulse", "at_ms": 10}
        "#;
        let mut src = JsonlSource::parse(text).unwrap();
        assert_eq!(src.len_hint(), Some(3));
        assert!(src.plan().is_none());
        let drained = drain(&mut src);
        let order: Vec<&str> = drained.iter().map(|e| e.scene.as_str()).collect();
        assert_eq!(order, ["Lego", "Pulse", "Mic"]);
        assert_eq!(drained[0].origin, 3, "origins keep pointing at source lines");
        assert!(JsonlSource::parse("{\"frames\": 1}").is_err());
    }

    #[test]
    fn binary_source_round_trips_a_jsonl_trace() {
        let text = r#"{"scene": "Mic", "frames": 2, "deadline_ms": 40, "priority": "high"}"#;
        let mut jsonl = JsonlSource::parse(text).unwrap();
        let entries = drain(&mut jsonl);
        let bytes = format::encode(&entries, None);
        let mut bin = BinarySource::from_bytes(&bytes).unwrap();
        let back = drain(&mut bin);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].scene, "Mic");
        assert_eq!(back[0].frames, 2);
        assert_eq!(back[0].deadline_ms, Some(40));
        assert_eq!(back[0].priority, Priority::High);
    }

    #[test]
    fn sampled_traces_rebase_and_tag_windows() {
        let plan = PlanMeta {
            window_ms: 1000,
            total_windows: 10,
            picks: vec![
                PlanPick { start_ms: 4000, cluster_size: 6 },
                PlanPick { start_ms: 8000, cluster_size: 4 },
            ],
        };
        let entries = vec![
            entry(4200, "Mic"),  // window 0 at +200
            entry(8900, "Lego"), // window 1 at +900
            entry(6000, "Drop"), // outside every pick
        ];
        let bytes = format::encode(&entries, Some(&plan));
        let mut src = BinarySource::from_bytes(&bytes).unwrap();
        assert_eq!(src.plan().unwrap().total_windows, 10);
        let got = drain(&mut src);
        assert_eq!(got.len(), 2, "records outside retained windows are dropped");
        assert_eq!((got[0].at_ms, got[0].window), (200, Some(0)));
        assert_eq!(got[0].scene, "Mic");
        assert_eq!((got[1].at_ms, got[1].window), (1900, Some(1)));
    }

    #[test]
    fn timed_request_resolves_against_the_registry() {
        let profile = RenderProfile::tiny();
        let ok = entry(0, "Mic").to_request(&profile).unwrap();
        assert_eq!(ok.scene.name(), "Mic");
        assert_eq!(ok.resolution, 32);
        assert!(entry(0, "no-such-scene").to_request(&profile).is_err());
    }
}
