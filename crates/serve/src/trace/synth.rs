//! Synthetic workload generation — open-loop arrival processes with a
//! Zipf-skewed scene mix, all drawn from one seeded [`StdRng`] so the same
//! spec string always produces the same trace.
//!
//! Two arrival processes cover the serving stories in the ROADMAP:
//! `poisson` (memoryless load at a fixed rate) and `diurnal` (a day/night
//! sinusoid between a base and a peak rate, sampled by thinning). Scenes
//! are picked from a ranked list with probability `∝ 1/(rank+1)^s` — the
//! classic hot-scene skew; `s = 0` is uniform.

use crate::service::Priority;
use crate::trace::format::{MAX_AT_MS, MAX_DEADLINE_MS, MAX_FRAMES, MAX_RESOLUTION};
use crate::trace::source::{TimedRequest, TraceSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The arrival process of a [`SynthSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum Arrivals {
    /// Memoryless arrivals at a fixed rate (requests per second).
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_hz: f64,
    },
    /// Sinusoidal day/night load: the instantaneous rate swings between
    /// `base_hz` and `peak_hz` over one `period_s`-second cycle, starting
    /// at the trough.
    Diurnal {
        /// Trough arrival rate, requests per second.
        base_hz: f64,
        /// Peak arrival rate, requests per second.
        peak_hz: f64,
        /// Full cycle length, seconds.
        period_s: f64,
    },
}

impl Arrivals {
    /// Instantaneous rate (requests per second) at time `t_s`.
    fn rate_at(&self, t_s: f64) -> f64 {
        match *self {
            Arrivals::Poisson { rate_hz } => rate_hz,
            Arrivals::Diurnal { base_hz, peak_hz, period_s } => {
                let phase = (t_s / period_s) * std::f64::consts::TAU;
                base_hz + (peak_hz - base_hz) * 0.5 * (1.0 - phase.cos())
            }
        }
    }

    /// Upper bound on [`rate_at`](Self::rate_at), the thinning envelope.
    fn peak(&self) -> f64 {
        match *self {
            Arrivals::Poisson { rate_hz } => rate_hz,
            Arrivals::Diurnal { peak_hz, .. } => peak_hz,
        }
    }
}

/// A parsed synthetic-workload spec — everything [`SyntheticSource`]
/// needs, down to the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Arrival process.
    pub arrivals: Arrivals,
    /// Ranked scene list; earlier names are hotter under `zipf_s > 0`.
    pub scenes: Vec<String>,
    /// Zipf skew exponent for the scene mix (0 = uniform).
    pub zipf_s: f64,
    /// Trace length, milliseconds of simulated arrivals.
    pub duration_ms: u64,
    /// RNG seed; same spec + seed → identical trace.
    pub seed: u64,
    /// Resolution stamped on every request (`None`: profile default).
    pub resolution: Option<u32>,
    /// Frames per request.
    pub frames: usize,
    /// Deadline stamped on every request, milliseconds.
    pub deadline_ms: Option<u64>,
}

/// Scene list used when a spec names none — the three zoo scenes every
/// workload fixture in this repo exercises.
pub const DEFAULT_SCENES: [&str; 3] = ["Mic", "Lego", "Pulse"];

impl SynthSpec {
    /// Parses a spec string of the form
    /// `poisson:rate=1.2,duration=120s,scenes=Mic+Lego+Pulse,zipf=1.1,seed=7`
    /// or `diurnal:base=0.5,peak=4,period=60s,duration=120s,...`.
    ///
    /// Durations accept `s`/`ms` suffixes (bare numbers are seconds).
    /// Optional keys: `zipf` (default 1.0), `seed` (default 0), `frames`
    /// (default 1), `resolution`, `deadline` (ms, default none).
    ///
    /// # Errors
    ///
    /// Returns `"synthetic spec: why"` naming the offending key.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let err = |why: String| format!("synthetic spec: {why}");
        let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
        let mut kv = std::collections::BTreeMap::new();
        for part in rest.split(',').filter(|p| !p.trim().is_empty()) {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| err(format!("expected key=value, got {:?}", part.trim())))?;
            if kv.insert(k.trim().to_string(), v.trim().to_string()).is_some() {
                return Err(err(format!("duplicate key {:?}", k.trim())));
            }
        }
        let mut take = |k: &str| kv.remove(k);
        let rate = |k: &str, v: String| -> Result<f64, String> {
            let x: f64 = v.parse().map_err(|_| err(format!("{k} must be a number, got {v:?}")))?;
            if !x.is_finite() || x <= 0.0 {
                return Err(err(format!("{k} must be positive, got {v}")));
            }
            Ok(x)
        };
        let arrivals = match kind {
            "poisson" => {
                let v = take("rate").ok_or_else(|| err("poisson needs rate=<hz>".into()))?;
                Arrivals::Poisson { rate_hz: rate("rate", v)? }
            }
            "diurnal" => {
                let base = take("base").ok_or_else(|| err("diurnal needs base=<hz>".into()))?;
                let peak = take("peak").ok_or_else(|| err("diurnal needs peak=<hz>".into()))?;
                let period =
                    take("period").ok_or_else(|| err("diurnal needs period=<seconds>".into()))?;
                let (base_hz, peak_hz) = (rate("base", base)?, rate("peak", peak)?);
                if peak_hz < base_hz {
                    return Err(err(format!("peak ({peak_hz}) must be >= base ({base_hz})")));
                }
                let period_ms = parse_duration_ms("period", &period).map_err(err)?;
                Arrivals::Diurnal { base_hz, peak_hz, period_s: period_ms as f64 / 1e3 }
            }
            other => {
                return Err(err(format!("unknown generator {other:?} (poisson or diurnal)")));
            }
        };
        let duration = take("duration").ok_or_else(|| err("needs duration=<seconds>".into()))?;
        let duration_ms = parse_duration_ms("duration", &duration).map_err(&err)?;
        if duration_ms > MAX_AT_MS {
            return Err(err(format!("duration {duration_ms}ms exceeds {MAX_AT_MS}ms")));
        }
        let scenes: Vec<String> = match take("scenes") {
            Some(list) => list.split('+').map(|s| s.trim().to_string()).collect(),
            None => DEFAULT_SCENES.iter().map(|s| s.to_string()).collect(),
        };
        if scenes.iter().any(String::is_empty) {
            return Err(err("scenes has an empty name (use scenes=Mic+Lego)".into()));
        }
        let zipf_s = match take("zipf") {
            Some(v) => {
                let x: f64 =
                    v.parse().map_err(|_| err(format!("zipf must be a number, got {v:?}")))?;
                if !x.is_finite() || x < 0.0 {
                    return Err(err(format!("zipf must be >= 0, got {v}")));
                }
                x
            }
            None => 1.0,
        };
        let seed = match take("seed") {
            Some(v) => v.parse().map_err(|_| err(format!("seed must be a u64, got {v:?}")))?,
            None => 0,
        };
        let frames = match take("frames") {
            Some(v) => {
                let n: u64 =
                    v.parse().map_err(|_| err(format!("frames must be an integer, got {v:?}")))?;
                if n == 0 || n > MAX_FRAMES {
                    return Err(err(format!("frames must be 1..={MAX_FRAMES}, got {v}")));
                }
                n as usize
            }
            None => 1,
        };
        let resolution = match take("resolution") {
            Some(v) => {
                let n: u64 = v
                    .parse()
                    .map_err(|_| err(format!("resolution must be an integer, got {v:?}")))?;
                if n == 0 || n > MAX_RESOLUTION {
                    return Err(err(format!("resolution must be 1..={MAX_RESOLUTION}, got {v}")));
                }
                Some(n as u32)
            }
            None => None,
        };
        let deadline_ms = match take("deadline") {
            Some(v) => {
                let ms = parse_duration_ms("deadline", &v).map_err(&err)?;
                if ms == 0 || ms > MAX_DEADLINE_MS {
                    return Err(err(format!("deadline must be 1..={MAX_DEADLINE_MS}ms, got {v}")));
                }
                Some(ms)
            }
            None => None,
        };
        if let Some(k) = kv.keys().next() {
            return Err(err(format!("unknown key {k:?}")));
        }
        Ok(SynthSpec {
            arrivals,
            scenes,
            zipf_s,
            duration_ms,
            seed,
            resolution,
            frames,
            deadline_ms,
        })
    }
}

/// Parses `120`, `120s`, or `1500ms` into milliseconds. A bare number is
/// seconds, except for `deadline`, where the field is conventionally
/// milliseconds (`deadline_ms` in the JSONL format).
fn parse_duration_ms(key: &str, v: &str) -> Result<u64, String> {
    let bare_scale = if key == "deadline" { 1.0 } else { 1e3 };
    let (num, scale) = if let Some(ms) = v.strip_suffix("ms") {
        (ms, 1.0)
    } else if let Some(s) = v.strip_suffix('s') {
        (s, 1e3)
    } else {
        (v, bare_scale)
    };
    let x: f64 = num.trim().parse().map_err(|_| format!("{key} must be a duration, got {v:?}"))?;
    if !x.is_finite() || x <= 0.0 {
        return Err(format!("{key} must be positive, got {v:?}"));
    }
    Ok((x * scale).round() as u64)
}

/// A lazily generated synthetic trace (see [`SynthSpec::parse`] for the
/// spec language). Arrivals stream one at a time; nothing is buffered.
#[derive(Debug)]
pub struct SyntheticSource {
    spec: SynthSpec,
    rng: StdRng,
    /// Continuous arrival clock, milliseconds.
    clock_ms: f64,
    /// Cumulative Zipf distribution over `spec.scenes`.
    scene_cdf: Vec<f64>,
    emitted: usize,
}

impl SyntheticSource {
    /// Builds a source from an already parsed spec.
    pub fn new(spec: SynthSpec) -> Self {
        let mut weights: Vec<f64> = (0..spec.scenes.len())
            .map(|rank| 1.0 / ((rank + 1) as f64).powf(spec.zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        let rng = StdRng::seed_from_u64(spec.seed);
        SyntheticSource { spec, rng, clock_ms: 0.0, scene_cdf: weights, emitted: 0 }
    }

    /// Parses `spec` and builds the source.
    ///
    /// # Errors
    ///
    /// See [`SynthSpec::parse`].
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        Ok(Self::new(SynthSpec::parse(spec)?))
    }

    /// The spec this source generates from.
    pub fn spec(&self) -> &SynthSpec {
        &self.spec
    }

    /// Advances the clock to the next accepted arrival (thinning against
    /// the peak rate), or past the end of the trace.
    fn next_arrival_ms(&mut self) -> f64 {
        let peak = self.spec.arrivals.peak();
        loop {
            let u: f64 = self.rng.gen();
            // Exponential inter-arrival under the envelope rate; clamp u
            // away from 1 so ln() stays finite.
            let dt_s = -(1.0 - u.min(1.0 - 1e-12)).ln() / peak;
            self.clock_ms += dt_s * 1e3;
            if self.clock_ms >= self.spec.duration_ms as f64 {
                return self.clock_ms;
            }
            let accept = self.spec.arrivals.rate_at(self.clock_ms / 1e3) / peak;
            if self.rng.gen_bool(accept.clamp(0.0, 1.0)) {
                return self.clock_ms;
            }
        }
    }

    /// Draws a scene from the Zipf CDF.
    fn pick_scene(&mut self) -> String {
        let u: f64 = self.rng.gen();
        let idx = self.scene_cdf.iter().position(|&c| u < c).unwrap_or(self.spec.scenes.len() - 1);
        self.spec.scenes[idx].clone()
    }
}

impl TraceSource for SyntheticSource {
    fn next(&mut self) -> Option<TimedRequest> {
        let at = self.next_arrival_ms();
        if at >= self.spec.duration_ms as f64 {
            return None;
        }
        self.emitted += 1;
        let scene = self.pick_scene();
        Some(TimedRequest {
            at_ms: at as u64,
            scene,
            frames: self.spec.frames,
            resolution: self.spec.resolution,
            priority: Priority::Normal,
            deadline_ms: self.spec.deadline_ms,
            azimuth_step_deg: None,
            origin: self.emitted,
            window: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::source::drain;

    #[test]
    fn spec_parse_covers_both_generators() {
        let p =
            SynthSpec::parse("poisson:rate=2,duration=30s,scenes=Mic+Lego,zipf=0,seed=9").unwrap();
        assert_eq!(p.arrivals, Arrivals::Poisson { rate_hz: 2.0 });
        assert_eq!(p.duration_ms, 30_000);
        assert_eq!(p.scenes, ["Mic", "Lego"]);
        assert_eq!(p.seed, 9);
        let d = SynthSpec::parse("diurnal:base=0.5,peak=4,period=60s,duration=2500ms").unwrap();
        assert_eq!(d.arrivals, Arrivals::Diurnal { base_hz: 0.5, peak_hz: 4.0, period_s: 60.0 });
        assert_eq!(d.duration_ms, 2500);
        assert_eq!(d.scenes, DEFAULT_SCENES);
    }

    #[test]
    fn spec_parse_rejects_nonsense_with_named_keys() {
        for (spec, needle) in [
            ("uniform:duration=10s", "unknown generator"),
            ("poisson:duration=10s", "needs rate"),
            ("poisson:rate=0,duration=10s", "rate must be positive"),
            ("poisson:rate=1", "needs duration"),
            ("poisson:rate=1,duration=10s,bogus=3", "unknown key \"bogus\""),
            ("poisson:rate=1,duration=10s,seed=1,seed=2", "duplicate key"),
            ("diurnal:base=4,peak=1,period=60,duration=10s", "must be >= base"),
            ("poisson:rate=1,duration=10s,frames=0", "frames must be"),
        ] {
            let e = SynthSpec::parse(spec).unwrap_err();
            assert!(e.contains(needle), "{spec}: {e}");
            assert!(e.starts_with("synthetic spec: "), "{e}");
        }
    }

    #[test]
    fn same_seed_same_trace_different_seed_different() {
        let spec = "poisson:rate=5,duration=20s,seed=7,resolution=32,deadline=400";
        let a = drain(&mut SyntheticSource::from_spec(spec).unwrap());
        let b = drain(&mut SyntheticSource::from_spec(spec).unwrap());
        assert!(!a.is_empty());
        assert_eq!(a, b);
        let c = drain(
            &mut SyntheticSource::from_spec(
                "poisson:rate=5,duration=20s,seed=8,resolution=32,deadline=400",
            )
            .unwrap(),
        );
        assert_ne!(a, c);
        assert!(a.iter().all(|e| e.at_ms < 20_000));
        assert!(a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms), "arrivals non-decreasing");
        assert_eq!(a[0].resolution, Some(32));
        assert_eq!(a[0].deadline_ms, Some(400));
    }

    #[test]
    fn poisson_rate_is_roughly_respected() {
        let n =
            drain(&mut SyntheticSource::from_spec("poisson:rate=10,duration=100s,seed=3").unwrap())
                .len() as f64;
        // 1000 expected arrivals; 5 sigma ≈ 158.
        assert!((n - 1000.0).abs() < 200.0, "got {n} arrivals, expected ~1000");
    }

    #[test]
    fn zipf_skews_toward_the_first_scene() {
        let entries = drain(
            &mut SyntheticSource::from_spec(
                "poisson:rate=20,duration=60s,scenes=Mic+Lego+Pulse,zipf=1.5,seed=5",
            )
            .unwrap(),
        );
        let count = |name: &str| entries.iter().filter(|e| e.scene == name).count();
        assert!(count("Mic") > count("Lego"), "hot scene dominates");
        assert!(count("Lego") > count("Pulse") / 2, "tail still sampled");
    }

    #[test]
    fn diurnal_puts_more_load_at_the_peak() {
        // period 60s, trough at t=0/60, peak at t=30: compare first vs
        // middle third of one cycle.
        let entries = drain(
            &mut SyntheticSource::from_spec(
                "diurnal:base=0.5,peak=8,period=60s,duration=60s,seed=11",
            )
            .unwrap(),
        );
        let third = |lo: u64, hi: u64| {
            entries.iter().filter(|e| e.at_ms >= lo && e.at_ms < hi).count() as f64
        };
        assert!(third(20_000, 40_000) > 2.0 * third(0, 20_000), "peak third >> trough third");
    }
}
