//! The compact binary trace format (VERSION 1).
//!
//! A trace file is a request log: every record is one render request with
//! its arrival offset. The encoding is hand-rolled — the same trade the
//! checkpoint and workload parsers make in this registry-less environment
//! (no serde) — and tuned for the quantities request logs actually have:
//! arrival times are **delta-encoded** (bursts cost one byte per record),
//! scene names are **interned** into a string table (a million-request
//! Zipf-skewed log stores each hot name once), and every integer field is
//! an LEB128 **varint** (small frames/resolutions cost one byte).
//!
//! Layout:
//!
//! ```text
//! magic    7 bytes   b"ASDRTRC"
//! version  u8        1
//! flags    u8        bit0: weighted sample plan present
//! scenes   varint n, then n x (varint len + utf-8 bytes)
//! plan?    varint window_ms, varint total_windows,
//!          varint picks, picks x (varint start_ms + varint cluster_size)
//! records  varint n, then n x record
//! record   varint delta_at_ms        (vs. the previous record)
//!          varint scene index        (into the table)
//!          varint frames
//!          u8     field flags        bit0 resolution, bit1 deadline,
//!                                    bit2 azimuth, bits 3-4 priority
//!          [varint resolution] [varint deadline_ms] [f32-le azimuth]
//! ```
//!
//! Records are stored sorted by arrival offset (the encoder sorts, stably,
//! so ties keep submission order); the delta encoding makes any decoded
//! trace monotonic by construction. Decoding is total: a truncated or
//! corrupt file returns a `"trace header: …"` / `"trace record N: …"`
//! message, never a panic.

use crate::service::Priority;
use crate::trace::source::TimedRequest;
use std::path::Path;

/// File magic, followed by the one-byte version.
pub const MAGIC: &[u8; 7] = b"ASDRTRC";
/// Current (and only) format version.
pub const VERSION: u8 = 1;

/// Largest accepted arrival offset, milliseconds (~115 days). Shared with
/// the JSONL parser so both front doors reject the same nonsense.
pub const MAX_AT_MS: u64 = 10_000_000_000;
/// Largest accepted deadline, milliseconds (~28 hours).
pub const MAX_DEADLINE_MS: u64 = 100_000_000;
/// Largest accepted frame count per request.
pub const MAX_FRAMES: u64 = 4096;
/// Largest accepted square resolution.
pub const MAX_RESOLUTION: u64 = 8192;

const FLAG_PLAN: u8 = 1;
const RF_RESOLUTION: u8 = 1;
const RF_DEADLINE: u8 = 1 << 1;
const RF_AZIMUTH: u8 = 1 << 2;
const RF_PRIORITY_SHIFT: u8 = 3;

/// One retained window of a sampled trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanPick {
    /// Window start in the *original* trace's clock, milliseconds.
    pub start_ms: u64,
    /// Windows this medoid represents (its cluster's size); the window's
    /// replay weight is `cluster_size / total_windows`.
    pub cluster_size: u64,
}

/// The weighted-window sampling plan a sampled trace carries (SimPoint
/// style: replay the medoid windows, weight their measurements by cluster
/// size).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanMeta {
    /// Fixed window length, milliseconds.
    pub window_ms: u64,
    /// Windows the full trace was split into.
    pub total_windows: u64,
    /// The medoid windows, in replay order.
    pub picks: Vec<PlanPick>,
}

impl PlanMeta {
    /// Milliseconds of original trace the plan stands for.
    pub fn equivalent_ms(&self) -> u64 {
        self.total_windows * self.window_ms
    }

    /// Milliseconds actually replayed (the medoid windows, back to back).
    pub fn replayed_ms(&self) -> u64 {
        self.picks.len() as u64 * self.window_ms
    }

    /// Replay weight of pick `i` (`cluster_size / total_windows`).
    pub fn weight(&self, i: usize) -> f64 {
        if self.total_windows == 0 {
            return 0.0;
        }
        self.picks[i].cluster_size as f64 / self.total_windows as f64
    }
}

/// A fully decoded trace: the records plus the optional sampling plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedTrace {
    /// The request records, sorted by `at_ms`, `origin` = 1-based index.
    pub entries: Vec<TimedRequest>,
    /// The weighted-window plan, when this is a sampled trace.
    pub plan: Option<PlanMeta>,
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn priority_code(p: Priority) -> u8 {
    match p {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    }
}

fn priority_from_code(c: u8) -> Result<Priority, String> {
    match c {
        0 => Ok(Priority::Low),
        1 => Ok(Priority::Normal),
        2 => Ok(Priority::High),
        _ => Err(format!("unknown priority code {c}")),
    }
}

/// Encodes a trace. The entries are sorted (stably) by arrival offset;
/// `plan` marks the file as a sampled trace.
pub fn encode(entries: &[TimedRequest], plan: Option<&PlanMeta>) -> Vec<u8> {
    let mut sorted: Vec<&TimedRequest> = entries.iter().collect();
    sorted.sort_by_key(|e| e.at_ms);

    // intern scene names in first-appearance order
    let mut names: Vec<&str> = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    for e in &sorted {
        index_of.entry(e.scene.as_str()).or_insert_with(|| {
            names.push(e.scene.as_str());
            names.len() - 1
        });
    }

    let mut out = Vec::with_capacity(16 + entries.len() * 4);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(if plan.is_some() { FLAG_PLAN } else { 0 });
    push_varint(&mut out, names.len() as u64);
    for name in &names {
        push_varint(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
    }
    if let Some(plan) = plan {
        push_varint(&mut out, plan.window_ms);
        push_varint(&mut out, plan.total_windows);
        push_varint(&mut out, plan.picks.len() as u64);
        for pick in &plan.picks {
            push_varint(&mut out, pick.start_ms);
            push_varint(&mut out, pick.cluster_size);
        }
    }
    push_varint(&mut out, sorted.len() as u64);
    let mut prev_at = 0u64;
    for e in &sorted {
        push_varint(&mut out, e.at_ms - prev_at);
        prev_at = e.at_ms;
        push_varint(&mut out, index_of[e.scene.as_str()] as u64);
        push_varint(&mut out, e.frames as u64);
        let mut rflags = priority_code(e.priority) << RF_PRIORITY_SHIFT;
        if e.resolution.is_some() {
            rflags |= RF_RESOLUTION;
        }
        if e.deadline_ms.is_some() {
            rflags |= RF_DEADLINE;
        }
        if e.azimuth_step_deg.is_some() {
            rflags |= RF_AZIMUTH;
        }
        out.push(rflags);
        if let Some(r) = e.resolution {
            push_varint(&mut out, u64::from(r));
        }
        if let Some(d) = e.deadline_ms {
            push_varint(&mut out, d);
        }
        if let Some(a) = e.azimuth_step_deg {
            out.extend_from_slice(&a.to_le_bytes());
        }
    }
    out
}

/// Streaming byte reader with bounds-checked primitives.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err("unexpected end of file".into());
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 63 && byte > 1 {
                return Err("varint overflows u64".into());
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn bounded(&mut self, what: &str, max: u64) -> Result<u64, String> {
        let v = self.varint()?;
        if v > max {
            return Err(format!("{what} {v} out of range (max {max})"));
        }
        Ok(v)
    }
}

/// Decodes a trace.
///
/// # Errors
///
/// Returns `"trace header: why"` for a bad magic/version/table and
/// `"trace record N: why"` (1-based) for a corrupt or truncated record —
/// decoding never panics, whatever the input bytes.
pub fn decode(bytes: &[u8]) -> Result<DecodedTrace, String> {
    let header = |e: String| format!("trace header: {e}");
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(MAGIC.len()).map_err(&header)?;
    if magic != MAGIC {
        return Err(header("bad magic (not an ASDR trace file)".into()));
    }
    let version = r.u8().map_err(&header)?;
    if version != VERSION {
        return Err(header(format!("unsupported version {version} (expected {VERSION})")));
    }
    let flags = r.u8().map_err(&header)?;
    if flags & !FLAG_PLAN != 0 {
        return Err(header(format!("unknown flags {flags:#04x}")));
    }
    let scene_count = r.bounded("scene count", 1 << 20).map_err(&header)?;
    let mut scenes = Vec::with_capacity(scene_count as usize);
    for i in 0..scene_count {
        let len = r.bounded("scene name length", 4096).map_err(&header)?;
        let raw = r.take(len as usize).map_err(&header)?;
        let name = std::str::from_utf8(raw)
            .map_err(|_| header(format!("scene {i} is not valid utf-8")))?;
        if name.is_empty() {
            return Err(header(format!("scene {i} has an empty name")));
        }
        scenes.push(name.to_string());
    }
    let plan = if flags & FLAG_PLAN != 0 {
        let window_ms = r.bounded("plan window_ms", MAX_AT_MS).map_err(&header)?;
        if window_ms == 0 {
            return Err(header("plan window_ms must be >= 1".into()));
        }
        let total_windows = r.bounded("plan total windows", 1 << 32).map_err(&header)?;
        let picks = r.bounded("plan pick count", total_windows).map_err(&header)?;
        let mut out = Vec::with_capacity(picks as usize);
        for _ in 0..picks {
            let start_ms = r.bounded("plan window start", MAX_AT_MS).map_err(&header)?;
            let cluster_size = r.bounded("plan cluster size", total_windows).map_err(&header)?;
            out.push(PlanPick { start_ms, cluster_size });
        }
        let covered: u64 = out.iter().map(|p| p.cluster_size).sum();
        if covered != total_windows {
            return Err(header(format!(
                "plan cluster sizes cover {covered} of {total_windows} windows"
            )));
        }
        Some(PlanMeta { window_ms, total_windows, picks: out })
    } else {
        None
    };
    let record_count = r
        .bounded("record count", (bytes.len() as u64).saturating_add(1))
        .map_err(|e| header(format!("{e} (count exceeds file size)")))?;
    let mut entries = Vec::with_capacity(record_count as usize);
    let mut at_ms = 0u64;
    for i in 0..record_count {
        let rec = |e: String| format!("trace record {}: {e}", i + 1);
        let delta = r.bounded("arrival delta", MAX_AT_MS).map_err(&rec)?;
        at_ms = at_ms
            .checked_add(delta)
            .filter(|&t| t <= MAX_AT_MS)
            .ok_or_else(|| rec(format!("arrival offset exceeds {MAX_AT_MS} ms")))?;
        let scene_idx = r.varint().map_err(&rec)?;
        let scene = scenes
            .get(scene_idx as usize)
            .ok_or_else(|| rec(format!("scene index {scene_idx} out of table ({scene_count})")))?
            .clone();
        let frames = r.bounded("frames", MAX_FRAMES).map_err(&rec)?;
        if frames == 0 {
            return Err(rec("frames must be >= 1".into()));
        }
        let rflags = r.u8().map_err(&rec)?;
        if rflags >> RF_PRIORITY_SHIFT > 2 {
            return Err(rec(format!("unknown record flags {rflags:#04x}")));
        }
        let priority = priority_from_code(rflags >> RF_PRIORITY_SHIFT).map_err(&rec)?;
        let resolution = if rflags & RF_RESOLUTION != 0 {
            let v = r.bounded("resolution", MAX_RESOLUTION).map_err(&rec)?;
            if v == 0 {
                return Err(rec("resolution must be >= 1".into()));
            }
            Some(v as u32)
        } else {
            None
        };
        let deadline_ms = if rflags & RF_DEADLINE != 0 {
            Some(r.bounded("deadline_ms", MAX_DEADLINE_MS).map_err(&rec)?)
        } else {
            None
        };
        let azimuth_step_deg = if rflags & RF_AZIMUTH != 0 {
            let raw: [u8; 4] = r.take(4).map_err(&rec)?.try_into().expect("4 bytes");
            let a = f32::from_le_bytes(raw);
            if !a.is_finite() {
                return Err(rec("azimuth step is not finite".into()));
            }
            Some(a)
        } else {
            None
        };
        entries.push(TimedRequest {
            at_ms,
            scene,
            frames: frames as usize,
            resolution,
            priority,
            deadline_ms,
            azimuth_step_deg,
            origin: (i + 1) as usize,
            window: None,
        });
    }
    if r.pos != bytes.len() {
        return Err(format!(
            "trace record {record_count}: {} trailing bytes after the last record",
            bytes.len() - r.pos
        ));
    }
    Ok(DecodedTrace { entries, plan })
}

/// Encodes and writes a trace file (creating parent directories).
///
/// # Errors
///
/// Returns a message naming the path on I/O failure.
pub fn write_file(
    path: &Path,
    entries: &[TimedRequest],
    plan: Option<&PlanMeta>,
) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, encode(entries, plan))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Reads and decodes a trace file.
///
/// # Errors
///
/// Returns `"path: why"` on I/O or decode failure.
pub fn read_file(path: &Path) -> Result<DecodedTrace, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    decode(&bytes).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at_ms: u64, scene: &str) -> TimedRequest {
        TimedRequest {
            at_ms,
            scene: scene.to_string(),
            frames: 1,
            resolution: None,
            priority: Priority::Normal,
            deadline_ms: None,
            azimuth_step_deg: None,
            origin: 0,
            window: None,
        }
    }

    #[test]
    fn varint_round_trips_across_widths() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut r = Reader { bytes: &buf, pos: 0 };
            assert_eq!(r.varint().unwrap(), v);
            assert_eq!(r.pos, buf.len());
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let decoded = decode(&encode(&[], None)).unwrap();
        assert!(decoded.entries.is_empty());
        assert!(decoded.plan.is_none());
    }

    #[test]
    fn a_mixed_trace_round_trips_with_all_fields() {
        let mut a = entry(5, "Mic");
        a.frames = 3;
        a.resolution = Some(48);
        a.deadline_ms = Some(500);
        a.azimuth_step_deg = Some(0.75);
        a.priority = Priority::High;
        let b = entry(5, "Lego");
        let c = entry(1000, "Mic");
        let decoded = decode(&encode(&[a.clone(), b.clone(), c.clone()], None)).unwrap();
        assert_eq!(decoded.entries.len(), 3);
        assert_eq!(decoded.entries[0].scene, "Mic");
        assert_eq!(decoded.entries[0].frames, 3);
        assert_eq!(decoded.entries[0].resolution, Some(48));
        assert_eq!(decoded.entries[0].deadline_ms, Some(500));
        assert_eq!(decoded.entries[0].azimuth_step_deg, Some(0.75));
        assert_eq!(decoded.entries[0].priority, Priority::High);
        assert_eq!(decoded.entries[0].origin, 1, "origins are 1-based record numbers");
        assert_eq!(decoded.entries[1].scene, "Lego");
        assert_eq!(decoded.entries[1].at_ms, 5, "burst ties keep submission order");
        assert_eq!(decoded.entries[2].at_ms, 1000);
    }

    #[test]
    fn encoder_sorts_by_arrival_offset() {
        let traced = encode(&[entry(90, "B"), entry(10, "A")], None);
        let decoded = decode(&traced).unwrap();
        assert_eq!(decoded.entries[0].scene, "A");
        assert_eq!(decoded.entries[1].scene, "B");
    }

    #[test]
    fn interning_makes_hot_scenes_cheap() {
        let hot: Vec<TimedRequest> = (0..1000).map(|i| entry(i, "OneHotScene")).collect();
        let bytes = encode(&hot, None);
        // one name + ~4 bytes per record; far below storing the name per record
        assert!(bytes.len() < 1000 * 8, "interned encoding too large: {} bytes", bytes.len());
    }

    #[test]
    fn plan_round_trips() {
        let plan = PlanMeta {
            window_ms: 2000,
            total_windows: 30,
            picks: vec![
                PlanPick { start_ms: 0, cluster_size: 12 },
                PlanPick { start_ms: 8000, cluster_size: 18 },
            ],
        };
        let decoded = decode(&encode(&[entry(1, "Mic")], Some(&plan))).unwrap();
        assert_eq!(decoded.plan.as_ref(), Some(&plan));
        assert_eq!(plan.equivalent_ms(), 60_000);
        assert_eq!(plan.replayed_ms(), 4000);
        assert!((plan.weight(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn header_corruption_degrades_to_errors() {
        let good = encode(&[entry(0, "Mic")], None);
        for (why, bytes) in [
            ("empty file", Vec::new()),
            ("bad magic", b"NOTTRACE".to_vec()),
            ("truncated magic", good[..4].to_vec()),
            ("bad version", {
                let mut b = good.clone();
                b[7] = 9;
                b
            }),
            ("unknown flags", {
                let mut b = good.clone();
                b[8] = 0x80;
                b
            }),
        ] {
            let err = decode(&bytes).unwrap_err();
            assert!(err.starts_with("trace header:"), "{why}: {err}");
        }
    }

    #[test]
    fn record_corruption_names_the_record() {
        let good = encode(&[entry(0, "Mic"), entry(7, "Mic")], None);
        // truncate mid-way through the record section
        let err = decode(&good[..good.len() - 2]).unwrap_err();
        assert!(err.starts_with("trace record 2:"), "{err}");
        // trailing garbage is rejected too
        let mut padded = good.clone();
        padded.push(0);
        let err = decode(&padded).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn file_round_trip_and_io_errors_name_the_path() {
        let dir = std::env::temp_dir().join(format!("asdr_trace_fmt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("t.trace");
        write_file(&path, &[entry(3, "Mic")], None).unwrap();
        let decoded = read_file(&path).unwrap();
        assert_eq!(decoded.entries[0].at_ms, 3);
        let missing = read_file(&dir.join("nope.trace")).unwrap_err();
        assert!(missing.contains("nope.trace"), "{missing}");
        std::fs::write(dir.join("junk.trace"), b"junk").unwrap();
        let junk = read_file(&dir.join("junk.trace")).unwrap_err();
        assert!(junk.contains("junk.trace") && junk.contains("trace header"), "{junk}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
