//! Trace capture, compression, and representative replay (ROADMAP:
//! "trace capture, compression, and representative replay").
//!
//! The subsystem turns the serving layer's 14-line JSONL fixtures into a
//! real workload pipeline:
//!
//! * [`format`] — the compact VERSION-1 binary trace codec
//!   (delta-encoded arrivals, interned scene names, varint fields);
//! * [`source`] — the [`TraceSource`] trait and its three
//!   implementations ([`JsonlSource`], [`BinarySource`],
//!   [`SyntheticSource`]), the one currency the replay path speaks;
//! * [`synth`] — seeded `poisson`/`diurnal` generators with Zipf
//!   hot-scene skew;
//! * [`replay`] — the shared [`ReplayDriver`] both `asdr-serve` and
//!   `asdr-cluster` submit through, with `--speed` time-warping and
//!   `--record` capture;
//! * [`sample`] — SimPoint-style phase sampling: fingerprint fixed
//!   windows, k-medoids-cluster them, replay weighted medoids, and
//!   extrapolate a full-trace estimate with error bars;
//! * [`report`] — merges per-run stats JSON artifacts into one
//!   comparative markdown table.
//!
//! The `asdr-trace` binary fronts the pipeline with
//! `record | gen | sample | report` subcommands.

pub mod format;
pub mod replay;
pub mod report;
pub mod sample;
pub mod source;
pub mod synth;

pub use format::{DecodedTrace, PlanMeta, PlanPick};
pub use replay::{Replay, ReplayDriver, ReplayTarget, ReplayedRequest, SubmitOutcome};
pub use sample::{
    sample_trace, sample_trace_with, weighted_estimate, Estimate, SampledTrace, WindowObs,
};
pub use source::{BinarySource, JsonlSource, TimedRequest, TraceSource};
pub use synth::{Arrivals, SynthSpec, SyntheticSource};
