//! The shared replay driver — one submit loop for every binary and every
//! [`TraceSource`].
//!
//! `asdr-serve` and `asdr-cluster` used to carry near-identical
//! parse/sleep/submit loops; both now feed a [`ReplayDriver`], which owns
//! the open-loop clock (sleep until each request's arrival offset,
//! optionally time-warped by `--speed`), the busy-retry policy (a full
//! queue blocks the replay clock rather than dropping work), and `--record`
//! capture of every admitted request into the binary trace format. The
//! driver is generic over a [`ReplayTarget`], so a single-node
//! [`RenderService`] and a sharded cluster router replay identically.

use crate::profile::RenderProfile;
use crate::service::{RenderRequest, RenderService, RenderTicket, ServeError};
use crate::trace::format::{self, PlanMeta};
use crate::trace::source::{TimedRequest, TraceSource};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One admission attempt's outcome, as the driver sees it.
#[derive(Debug)]
pub enum SubmitOutcome<T> {
    /// The request was admitted; hold the ticket.
    Admitted(T),
    /// The target is momentarily full — retry after a poll interval.
    Busy,
    /// The request can never be admitted; abort the replay.
    Fatal(String),
}

/// Anything a trace can be replayed into.
///
/// Implementations map their own retryable-overload error to
/// [`SubmitOutcome::Busy`]; everything else is fatal.
pub trait ReplayTarget {
    /// The per-request completion handle.
    type Ticket;

    /// Attempts to admit one request.
    fn try_submit(&self, req: RenderRequest) -> SubmitOutcome<Self::Ticket>;

    /// Parks until admission capacity *may* be available or `timeout`
    /// passes; called by the driver after [`SubmitOutcome::Busy`]. The
    /// default is a plain sleep (identical behavior to the old poll
    /// loop); targets with a completion signal override it so an idle
    /// replay wakes the moment a slot frees instead of spinning the poll
    /// interval out.
    fn wait_capacity(&self, timeout: Duration) {
        std::thread::sleep(timeout);
    }
}

impl ReplayTarget for RenderService {
    type Ticket = RenderTicket;

    fn try_submit(&self, req: RenderRequest) -> SubmitOutcome<RenderTicket> {
        match self.submit(req) {
            Ok(t) => SubmitOutcome::Admitted(t),
            Err(ServeError::QueueFull { .. }) => SubmitOutcome::Busy,
            Err(e) => SubmitOutcome::Fatal(e.to_string()),
        }
    }

    fn wait_capacity(&self, timeout: Duration) {
        RenderService::wait_capacity(self, timeout);
    }
}

/// One admitted request, paired with where it came from.
#[derive(Debug)]
pub struct ReplayedRequest<T> {
    /// 0-based submission index.
    pub index: usize,
    /// 1-based line/record in the source (for error context).
    pub origin: usize,
    /// Scene name, kept for the per-request table.
    pub scene: String,
    /// Sampled-window index, when replaying a sampled trace.
    pub window: Option<usize>,
    /// Whether the request carried a deadline.
    pub deadlined: bool,
    /// The target's completion handle.
    pub ticket: T,
}

/// A finished submission pass: every ticket, in arrival order.
#[derive(Debug)]
pub struct Replay<T> {
    /// Admitted requests with their tickets; callers wait on these.
    pub requests: Vec<ReplayedRequest<T>>,
    /// The sampled-trace plan, when the source carried one.
    pub plan: Option<PlanMeta>,
    /// When the replay clock started (wall-clock measurements anchor here).
    pub started: Instant,
    /// Wall time spent submitting (excludes waiting on tickets).
    pub submit_wall: Duration,
}

/// The shared open-loop replay driver (see the module docs).
#[derive(Debug, Clone)]
pub struct ReplayDriver {
    profile: RenderProfile,
    speed: f64,
    record: Option<PathBuf>,
    poll: Duration,
}

impl ReplayDriver {
    /// A driver replaying in real time under `profile`, recording nothing.
    pub fn new(profile: RenderProfile) -> Self {
        ReplayDriver { profile, speed: 1.0, record: None, poll: Duration::from_millis(5) }
    }

    /// Time-warps the replay clock: arrival offsets are divided by
    /// `speed`, so `2.0` replays twice as fast. Validated in [`run`](Self::run).
    pub fn speed(mut self, speed: f64) -> Self {
        self.speed = speed;
        self
    }

    /// Captures every admitted request (at its warped arrival offset)
    /// into a binary trace at `path` when the replay finishes.
    pub fn record(mut self, path: Option<PathBuf>) -> Self {
        self.record = path;
        self
    }

    /// How long to sleep when the target reports [`SubmitOutcome::Busy`].
    pub fn poll(mut self, poll: Duration) -> Self {
        self.poll = poll;
        self
    }

    /// Drains `source` into `target`: sleeps until each entry's (warped)
    /// arrival offset, resolves it against the profile, and submits,
    /// retrying while the target is busy.
    ///
    /// # Errors
    ///
    /// Returns `"entry N: why"` when a request cannot be resolved,
    /// `"request N: why"` on a fatal submit error, a speed-validation
    /// message, or a record-file write error. Any already-issued tickets
    /// are dropped (their requests still complete in the target).
    pub fn run<S: TraceSource + ?Sized, T: ReplayTarget>(
        &self,
        source: &mut S,
        target: &T,
    ) -> Result<Replay<T::Ticket>, String> {
        if !self.speed.is_finite() || self.speed <= 0.0 {
            return Err(format!("--speed must be a positive number, got {}", self.speed));
        }
        let plan = source.plan().cloned();
        let started = Instant::now();
        let mut requests = Vec::with_capacity(source.len_hint().unwrap_or(0));
        let mut recorded: Vec<TimedRequest> = Vec::new();
        while let Some(entry) = source.next() {
            let index = requests.len();
            let req = entry
                .to_request(&self.profile)
                .map_err(|e| format!("entry {}: {e}", entry.origin))?;
            let warped_ms = (entry.at_ms as f64 / self.speed).round() as u64;
            if let Some(wait) = Duration::from_millis(warped_ms).checked_sub(started.elapsed()) {
                std::thread::sleep(wait);
            }
            let ticket = loop {
                match target.try_submit(req.clone()) {
                    SubmitOutcome::Admitted(t) => break t,
                    SubmitOutcome::Busy => target.wait_capacity(self.poll),
                    SubmitOutcome::Fatal(e) => return Err(format!("request {index}: {e}")),
                }
            };
            if self.record.is_some() {
                // The capture is the *warped* schedule with window tags
                // stripped — replaying it reproduces this run verbatim.
                recorded.push(TimedRequest {
                    at_ms: warped_ms,
                    origin: index + 1,
                    window: None,
                    ..entry.clone()
                });
            }
            requests.push(ReplayedRequest {
                index,
                origin: entry.origin,
                scene: entry.scene,
                window: entry.window,
                deadlined: entry.deadline_ms.is_some(),
                ticket,
            });
        }
        if let Some(path) = &self.record {
            format::write_file(path, &recorded, None)?;
        }
        Ok(Replay { requests, plan, started, submit_wall: started.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Priority;
    use crate::trace::source::BinarySource;
    use std::sync::Mutex;

    /// A target that stays busy for the first `busy` submissions of each
    /// request index, then admits, echoing the request back as a ticket.
    struct MockTarget {
        busy: usize,
        attempts: Mutex<usize>,
        admitted: Mutex<Vec<String>>,
        waits: Mutex<usize>,
    }

    impl MockTarget {
        fn new(busy: usize) -> Self {
            MockTarget {
                busy,
                attempts: Mutex::new(0),
                admitted: Mutex::new(Vec::new()),
                waits: Mutex::new(0),
            }
        }
    }

    impl ReplayTarget for MockTarget {
        type Ticket = RenderRequest;

        fn try_submit(&self, req: RenderRequest) -> SubmitOutcome<RenderRequest> {
            let mut attempts = self.attempts.lock().unwrap();
            *attempts += 1;
            if *attempts <= self.busy {
                return SubmitOutcome::Busy;
            }
            self.admitted.lock().unwrap().push(req.scene.name().to_string());
            SubmitOutcome::Admitted(req)
        }

        // wake instantly: the driver's retry policy must not depend on the
        // wait actually sleeping, only on being called between attempts
        fn wait_capacity(&self, _timeout: Duration) {
            *self.waits.lock().unwrap() += 1;
        }
    }

    fn entry(at_ms: u64, scene: &str, origin: usize) -> TimedRequest {
        TimedRequest {
            at_ms,
            scene: scene.to_string(),
            frames: 1,
            resolution: Some(16),
            priority: Priority::Normal,
            deadline_ms: Some(250),
            azimuth_step_deg: None,
            origin,
            window: None,
        }
    }

    fn driver() -> ReplayDriver {
        ReplayDriver::new(RenderProfile::tiny())
    }

    #[test]
    fn replays_through_busy_targets_in_order() {
        let target = MockTarget::new(2);
        let mut source =
            vec![entry(0, "Mic", 1), entry(1, "Lego", 2), entry(2, "Mic", 3)].into_iter();
        let replay = driver().poll(Duration::from_millis(1)).run(&mut source, &target).unwrap();
        assert_eq!(replay.requests.len(), 3);
        assert_eq!(*target.admitted.lock().unwrap(), ["Mic", "Lego", "Mic"]);
        assert_eq!(replay.requests[1].scene, "Lego");
        assert_eq!(replay.requests[1].origin, 2);
        assert!(replay.requests[0].deadlined);
        assert!(replay.plan.is_none());
        // every Busy outcome parked in wait_capacity exactly once — the
        // condvar hook replaced the driver's old unconditional sleep
        assert_eq!(*target.waits.lock().unwrap(), 2);
    }

    #[test]
    fn full_service_queues_wake_on_freed_slots() {
        // capacity 1, workers parked: the queue fills with one request,
        // wait_capacity must block while full and wake once a worker
        // claims the queued batch
        let service = RenderService::builder(RenderProfile::tiny())
            .store(std::sync::Arc::new(
                crate::store::ModelStore::builder().in_memory_only().build(),
            ))
            .workers(1)
            .queue_capacity(1)
            .paused()
            .build()
            .unwrap();
        let req = || entry(0, "Mic", 1).to_request(&RenderProfile::tiny()).unwrap();
        let t0 = service.submit(req()).unwrap();
        assert!(matches!(service.submit(req()), Err(ServeError::QueueFull { .. })));
        // full queue: the bounded wait times out without a notify
        let start = Instant::now();
        ReplayTarget::wait_capacity(&service, Duration::from_millis(30));
        assert!(start.elapsed() >= Duration::from_millis(25), "full queue must park");
        // unpark: the worker claims the batch, freeing the slot and
        // notifying the waiter well before the generous timeout
        service.start();
        ReplayTarget::wait_capacity(&service, Duration::from_secs(30));
        t0.wait().unwrap();
        service.submit(req()).unwrap().wait().unwrap();
        service.shutdown();
    }

    #[test]
    fn speed_warps_the_clock_and_the_recording() {
        let dir = std::env::temp_dir().join(format!("asdr-replay-{}", std::process::id()));
        let path = dir.join("warped.trace");
        let target = MockTarget::new(0);
        let mut source = vec![entry(0, "Mic", 1), entry(400, "Lego", 2)].into_iter();
        let t0 = Instant::now();
        let replay =
            driver().speed(100.0).record(Some(path.clone())).run(&mut source, &target).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(300), "400ms warped 100x replays fast");
        assert_eq!(replay.requests.len(), 2);
        let decoded = format::read_file(&path).unwrap();
        assert_eq!(decoded.entries.len(), 2);
        assert_eq!(decoded.entries[1].at_ms, 4, "400ms / 100x");
        assert_eq!(decoded.entries[1].scene, "Lego");
        assert_eq!(decoded.entries[1].deadline_ms, Some(250));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recorded_traces_replay_identically() {
        let dir = std::env::temp_dir().join(format!("asdr-replay2-{}", std::process::id()));
        let path = dir.join("capture.trace");
        let entries = vec![entry(0, "Mic", 1), entry(2, "Lego", 2)];
        let target = MockTarget::new(0);
        driver().record(Some(path.clone())).run(&mut entries.clone().into_iter(), &target).unwrap();
        let mut recorded = BinarySource::from_file(&path).unwrap();
        let target2 = MockTarget::new(0);
        let replay = driver().run(&mut recorded, &target2).unwrap();
        assert_eq!(*target2.admitted.lock().unwrap(), *target.admitted.lock().unwrap());
        assert_eq!(replay.requests.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_entries_and_bad_speeds_are_named() {
        let target = MockTarget::new(0);
        let e =
            driver().run(&mut vec![entry(0, "no-such-scene", 7)].into_iter(), &target).unwrap_err();
        assert!(e.starts_with("entry 7: "), "{e}");
        let e = driver().speed(0.0).run(&mut Vec::new().into_iter(), &target).unwrap_err();
        assert!(e.contains("--speed"), "{e}");
    }

    #[test]
    fn render_service_is_a_replay_target() {
        let service = RenderService::builder(RenderProfile::tiny())
            .store(std::sync::Arc::new(
                crate::store::ModelStore::builder().in_memory_only().build(),
            ))
            .workers(1)
            .build()
            .unwrap();
        let mut source = vec![entry(0, "Mic", 1)].into_iter();
        let replay = driver().run(&mut source, &service).unwrap();
        let result = replay.requests.into_iter().next().unwrap().ticket.wait().unwrap();
        assert_eq!(result.images.len(), 1);
        service.shutdown();
    }
}
