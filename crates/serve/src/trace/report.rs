//! Merging per-run stats artifacts into one comparative markdown table.
//!
//! Every binary in the workspace writes its stats as flat-ish JSON
//! (`ServeStats::to_json`, `ClusterStats::to_json`, the `TRACE_ESTIMATE`
//! JSON from sampled replays). `asdr-trace report` pulls the top-level
//! numeric fields out of each artifact with a tolerant scanner — no JSON
//! parser dependency, same spirit as the workload parser — and lays runs
//! out as table columns so a nightly job uploads one comparison instead
//! of N blobs.

use std::collections::BTreeMap;

/// Metric names pinned to the top of the table, in this order; everything
/// else follows alphabetically.
const PREFERRED_ORDER: [&str; 12] = [
    "requests",
    "frames",
    "throughput_fps",
    "p50_latency_ms",
    "p95_latency_ms",
    "mean_queue_wait_ms",
    "deadlined_requests",
    "deadline_misses",
    "miss_rate",
    "total_fits",
    "est_miss_rate",
    "miss_err",
];

/// Extracts top-level `"key": number` pairs from a JSON text.
///
/// The scanner is deliberately shallow: keys inside nested objects or
/// arrays (per-shard breakdowns, scale-event lists) are skipped, and on
/// duplicate keys the first occurrence wins. Booleans, strings, and
/// malformed values are ignored rather than rejected — a report should
/// merge what it can.
pub fn scan_metrics(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b'"' if depth == 1 => {
                let Some(end) = text[i + 1..].find('"') else { break };
                let key = &text[i + 1..i + 1 + end];
                i += end + 2;
                // Only `"key":` at depth 1 is a candidate; a string *value*
                // is skipped here because no colon follows it.
                let rest = text[i..].trim_start();
                let Some(after_colon) = rest.strip_prefix(':') else { continue };
                let val = after_colon.trim_start();
                let num_len = val
                    .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                    .unwrap_or(val.len());
                if num_len > 0 {
                    if let Ok(x) = val[..num_len].parse::<f64>() {
                        out.entry(key.to_string()).or_insert(x);
                    }
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Formats a metric value: integers plainly, everything else to 4 digits.
fn fmt_value(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.4}")
    }
}

/// Merges labelled stats artifacts into one markdown table, metrics as
/// rows and runs as columns. Metrics a run lacks render as `-`.
pub fn merge_report(artifacts: &[(String, BTreeMap<String, f64>)]) -> String {
    let mut keys: Vec<&str> = Vec::new();
    for name in PREFERRED_ORDER {
        if artifacts.iter().any(|(_, m)| m.contains_key(name)) {
            keys.push(name);
        }
    }
    let mut rest: Vec<&str> = artifacts
        .iter()
        .flat_map(|(_, m)| m.keys())
        .map(String::as_str)
        .filter(|k| !PREFERRED_ORDER.contains(k))
        .collect();
    rest.sort_unstable();
    rest.dedup();
    keys.extend(rest);

    let mut out = String::from("| metric |");
    for (label, _) in artifacts {
        out.push_str(&format!(" {label} |"));
    }
    out.push_str("\n|---|");
    out.push_str(&"---|".repeat(artifacts.len()));
    out.push('\n');
    for key in keys {
        out.push_str(&format!("| {key} |"));
        for (_, metrics) in artifacts {
            match metrics.get(key) {
                Some(&x) => out.push_str(&format!(" {} |", fmt_value(x))),
                None => out.push_str(" - |"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_takes_top_level_numbers_only() {
        let json = r#"{
            "requests": 12, "miss_rate": 0.25,
            "store": {"fits": 3, "disk_hits": 1},
            "shards": [{"requests": 6}],
            "label": "warm run",
            "requests": 99
        }"#;
        let m = scan_metrics(json);
        assert_eq!(m.get("requests"), Some(&12.0), "first occurrence wins");
        assert_eq!(m.get("miss_rate"), Some(&0.25));
        assert!(!m.contains_key("fits"), "nested keys skipped");
        assert!(!m.contains_key("label"), "string values skipped");
    }

    #[test]
    fn scanner_survives_garbage() {
        assert!(scan_metrics("").is_empty());
        assert!(scan_metrics("not json at all").is_empty());
        assert_eq!(scan_metrics(r#"{"a": 1, "broken"#).get("a"), Some(&1.0));
        assert_eq!(scan_metrics(r#"{"e": 1.5e3}"#).get("e"), Some(&1500.0));
    }

    #[test]
    fn merged_table_aligns_runs_as_columns() {
        let a = scan_metrics(r#"{"requests": 4, "miss_rate": 0.5, "zeta": 7}"#);
        let b = scan_metrics(r#"{"requests": 4, "est_miss_rate": 0.45, "miss_err": 0.08}"#);
        let md = merge_report(&[("full".to_string(), a), ("sampled".to_string(), b)]);
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| metric | full | sampled |");
        assert_eq!(lines[1], "|---|---|---|");
        assert!(lines[2].starts_with("| requests | 4 | 4 |"), "{md}");
        assert!(md.contains("| miss_rate | 0.5000 | - |"), "{md}");
        assert!(md.contains("| est_miss_rate | - | 0.4500 |"), "{md}");
        assert_eq!(lines.last().unwrap(), &"| zeta | 7 | - |", "extras sort after preferred");
    }
}
