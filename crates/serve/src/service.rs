//! The multi-tenant render service: a bounded admission queue feeding a
//! worker pool of reusable frame-engine sessions over a shared
//! [`ModelStore`].
//!
//! Scheduling is **deadline-aware priority ordering**: the queue pops the
//! highest [`Priority`] first, earliest absolute deadline within a
//! priority, FIFO as the tie-break. When a worker claims a request it also
//! drags along up to `batch_max - 1` queued requests for the **same scene
//! and resolution** (per-scene batching), so the whole batch shares one
//! model lookup and one [`FrameEngine`] session.
//!
//! Within a request, consecutive frames reuse the engine's [`SamplePlan`]
//! via [`PlanPolicy::Reuse`]; plan state never crosses a request boundary,
//! so **images are byte-identical regardless of worker count, batching, or
//! arrival order** — the property the end-to-end tests pin down.
//!
//! [`SamplePlan`]: asdr_core::algo::SamplePlan

use crate::config;
use crate::profile::RenderProfile;
use crate::store::{ModelStore, StoreStats};
use asdr_core::algo::{ExecPolicy, FrameEngine, PlanPolicy, RenderStats, SequenceFrame};
use asdr_math::Image;
use asdr_nerf::NgpModel;
use asdr_obs::{Counter, Histogram, JsonWriter, Scope, TraceId};
use asdr_scenes::registry::OrbitCamera;
use asdr_scenes::SceneHandle;
use std::cmp::Reverse;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Request urgency class. Higher runs first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work (pre-warming, speculative frames).
    Low,
    /// Interactive default.
    Normal,
    /// Latency-critical (the VR head pose of the paper's motivation).
    High,
}

impl Priority {
    /// Parses a case-insensitive priority name.
    pub fn parse(s: &str) -> Option<Priority> {
        match s.to_ascii_lowercase().as_str() {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }
}

/// One unit of client work: a scene, a viewpoint (or short sequence), and
/// the scheduling metadata the queue orders by.
#[derive(Debug, Clone)]
pub struct RenderRequest {
    /// The scene to render (already resolved against a registry).
    pub scene: SceneHandle,
    /// Viewpoint override; `None` uses the scene's standard orbit.
    pub camera: Option<OrbitCamera>,
    /// Square frame resolution in pixels.
    pub resolution: u32,
    /// Frames in this request (>= 1); frames beyond the first orbit the
    /// camera by [`RenderRequest::azimuth_step_deg`] per frame.
    pub frames: usize,
    /// Per-frame azimuth advance for multi-frame requests, degrees.
    pub azimuth_step_deg: f32,
    /// Scheduling class.
    pub priority: Priority,
    /// Latency budget measured from submission; `None` = best effort.
    pub deadline: Option<Duration>,
    /// Observability trace id. [`TraceId::UNSET`] by default; when span
    /// capture is enabled, [`RenderService::submit`] assigns a fresh id to
    /// unset requests. The cluster layers set it before submission (and
    /// carry it over the wire) so one request's spans join across the
    /// fleet client, hedged duplicates, and failover resubmits.
    pub trace: TraceId,
}

impl RenderRequest {
    /// Default per-frame azimuth advance (matches the `sequence`
    /// experiment's slow orbit).
    pub const DEFAULT_AZIMUTH_STEP_DEG: f32 = 1.5;

    /// A single-frame request at `resolution` with default scheduling.
    pub fn frame(scene: SceneHandle, resolution: u32) -> Self {
        RenderRequest {
            scene,
            camera: None,
            resolution,
            frames: 1,
            azimuth_step_deg: Self::DEFAULT_AZIMUTH_STEP_DEG,
            priority: Priority::Normal,
            deadline: None,
            trace: TraceId::UNSET,
        }
    }

    /// An `n`-frame orbit sequence at `resolution`.
    pub fn sequence(scene: SceneHandle, resolution: u32, n: usize) -> Self {
        RenderRequest { frames: n, ..Self::frame(scene, resolution) }
    }

    /// Sets the scheduling class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the latency budget.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the viewpoint.
    #[must_use]
    pub fn with_camera(mut self, camera: OrbitCamera) -> Self {
        self.camera = Some(camera);
        self
    }

    /// Sets the observability trace id (cluster layers propagate it over
    /// the wire; most callers let [`RenderService::submit`] assign one).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceId) -> Self {
        self.trace = trace;
        self
    }

    /// The camera for frame `i` of this request.
    fn camera_for_frame(&self, i: usize) -> asdr_math::Camera {
        let mut orbit = self.camera.unwrap_or_else(|| self.scene.def().camera_orbit());
        orbit.azimuth_deg += i as f32 * self.azimuth_step_deg;
        orbit.camera(self.resolution, self.resolution)
    }
}

/// Why a submission was refused, or a submitted request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue is at capacity; retry after completions drain.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The request failed validation (message names the constraint).
    InvalidRequest(String),
    /// The request's fit or render panicked (message carries the panic).
    /// The open registry makes this reachable — a registered scene's
    /// builder is arbitrary user code — so it fails the ticket, never the
    /// service: the worker survives and keeps serving.
    RenderFailed(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} pending)")
            }
            ServeError::ShuttingDown => f.write_str("service is shutting down"),
            ServeError::InvalidRequest(why) => write!(f, "invalid request: {why}"),
            ServeError::RenderFailed(why) => write!(f, "render failed: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The completed output of one request.
#[derive(Debug)]
pub struct RenderResult {
    /// Scene name.
    pub scene: String,
    /// Square frame resolution the request rendered at.
    pub resolution: u32,
    /// The rendered frames, in order.
    pub images: Vec<Image>,
    /// Operation counts aggregated over the request's frames.
    pub stats: RenderStats,
    /// Frames that skipped Phase I by reusing the request's sample plan.
    pub reused_frames: usize,
    /// Time spent queued before a worker claimed the request.
    pub queue_wait: Duration,
    /// Submission-to-completion latency.
    pub latency: Duration,
    /// Whether the latency met the deadline (`None` = no deadline).
    pub deadline_met: Option<bool>,
    /// Global completion sequence number (0-based, service-wide) — the
    /// observable execution order the scheduler tests assert on.
    pub completed_seq: u64,
    /// The trace id the request carried ([`TraceId::UNSET`] when
    /// observability was disabled at admission), echoed so a remote
    /// client can join its spans with the shard's.
    pub trace: TraceId,
}

/// What a completion hook observes: one finished (or failed) request.
///
/// The hook runs on the worker thread after the request's statistics are
/// folded in and immediately before its ticket fills, so a cluster layer
/// can release admission budget and feed its cost model without polling
/// tickets. Hooks must be cheap and must not panic; a panic in a hook is
/// caught and swallowed (tickets must always fill), so whatever
/// bookkeeping the hook was doing is silently lost.
#[derive(Debug)]
pub struct Completion<'a> {
    /// Scene name.
    pub scene: &'a str,
    /// Square frame resolution of the request.
    pub resolution: u32,
    /// Frames the request asked for.
    pub frames: usize,
    /// The result, or `None` when the request failed
    /// ([`ServeError::RenderFailed`]).
    pub result: Option<&'a RenderResult>,
}

/// Observes every request completion (see [`Completion`]).
pub type CompletionHook = Arc<dyn Fn(&Completion<'_>) + Send + Sync>;

/// A handle to a submitted request's eventual [`RenderResult`].
#[derive(Debug, Clone)]
pub struct RenderTicket {
    inner: Arc<TicketInner>,
}

#[derive(Debug)]
struct TicketInner {
    state: Mutex<Option<Result<Arc<RenderResult>, ServeError>>>,
    cond: Condvar,
}

impl RenderTicket {
    fn new() -> Self {
        RenderTicket {
            inner: Arc::new(TicketInner { state: Mutex::new(None), cond: Condvar::new() }),
        }
    }

    /// Blocks until the request completes or fails.
    ///
    /// # Errors
    ///
    /// [`ServeError::RenderFailed`] if the request's fit or render
    /// panicked (the worker survives; only this ticket fails).
    pub fn wait(&self) -> Result<Arc<RenderResult>, ServeError> {
        let mut state = self.inner.state.lock().unwrap();
        while state.is_none() {
            state = self.inner.cond.wait(state).unwrap();
        }
        state.as_ref().expect("loop exits only when filled").clone()
    }

    /// The outcome, if the request has already completed or failed.
    pub fn try_result(&self) -> Option<Result<Arc<RenderResult>, ServeError>> {
        self.inner.state.lock().unwrap().clone()
    }

    fn fill(&self, result: Result<RenderResult, ServeError>) {
        let mut state = self.inner.state.lock().unwrap();
        *state = Some(result.map(Arc::new));
        self.inner.cond.notify_all();
    }
}

/// One queued admission.
struct Queued {
    req: RenderRequest,
    ticket: RenderTicket,
    submitted: Instant,
    deadline_at: Option<Instant>,
    seq: u64,
}

/// The scheduling key: highest priority first, then earliest deadline
/// (deadline-less requests after any deadlined one), then FIFO.
fn sched_key(q: &Queued) -> (Reverse<Priority>, bool, Option<Instant>, u64) {
    (Reverse(q.req.priority), q.deadline_at.is_none(), q.deadline_at, q.seq)
}

struct QueueState {
    queue: VecDeque<Queued>,
    accepting: bool,
    paused: bool,
    next_seq: u64,
    /// Worker-pool size the pool is converging to ([`RenderService::set_workers`]).
    target_workers: usize,
    /// Workers currently alive; drifts toward `target_workers` (growth
    /// spawns immediately, shrink retires workers as they come off a batch).
    alive_workers: usize,
    /// Thread-name counter (worker ids are never reused).
    next_worker_id: usize,
}

/// Pops the best-ranked request plus up to `batch_max - 1` same-scene,
/// same-resolution riders (in submission order), or `None` when empty.
fn pop_batch(q: &mut QueueState, batch_max: usize) -> Option<Vec<Queued>> {
    let best = q.queue.iter().enumerate().min_by_key(|(_, e)| sched_key(e)).map(|(i, _)| i)?;
    let head = q.queue.remove(best).expect("index from enumerate");
    let mut batch = vec![head];
    let mut i = 0;
    while i < q.queue.len() && batch.len() < batch_max {
        let rider = &q.queue[i];
        if rider.req.scene.name() == batch[0].req.scene.name()
            && rider.req.scene.shares_def(&batch[0].req.scene)
            && rider.req.resolution == batch[0].req.resolution
        {
            batch.push(q.queue.remove(i).expect("index in bounds"));
        } else {
            i += 1;
        }
    }
    Some(batch)
}

/// Most recent request latencies the percentile snapshot covers. Bounds
/// the accumulator for service-lifetime operation: memory stays O(window)
/// and a stats() poll sorts at most this many samples, however many
/// requests the service has served.
const LATENCY_WINDOW: usize = 4096;

/// Latency/throughput accumulators, folded under one lock. The scalar
/// request/frame counters that used to live here are registry-backed now
/// (see [`ServeCounters`]); this holds only what needs the lock anyway —
/// the percentile ring and non-atomic aggregates.
#[derive(Default)]
struct StatsAccum {
    /// Ring of the last [`LATENCY_WINDOW`] request latencies.
    latencies_ms: Vec<f64>,
    latency_next: usize,
    queue_wait_sum_ms: f64,
    agg: RenderStats,
    probe_points_avoided_est: f64,
    first_submit: Option<Instant>,
    last_done: Option<Instant>,
}

/// The service's slice of the process-global metrics registry: handles
/// resolved once at build under a unique `serve.N.` scope, read back by
/// [`RenderService::stats`], and dumped wholesale into run bundles.
struct ServeCounters {
    requests: Arc<Counter>,
    frames: Arc<Counter>,
    reused_frames: Arc<Counter>,
    deadlined_requests: Arc<Counter>,
    deadline_misses: Arc<Counter>,
    latency_us: Arc<Histogram>,
    queue_wait_us: Arc<Histogram>,
}

impl ServeCounters {
    fn new(scope: &Scope) -> ServeCounters {
        ServeCounters {
            requests: scope.counter("requests"),
            frames: scope.counter("frames"),
            reused_frames: scope.counter("reused_frames"),
            deadlined_requests: scope.counter("deadlined_requests"),
            deadline_misses: scope.counter("deadline_misses"),
            latency_us: scope.histogram("latency_us"),
            queue_wait_us: scope.histogram("queue_wait_us"),
        }
    }
}

impl StatsAccum {
    fn push_latency(&mut self, ms: f64) {
        if self.latencies_ms.len() < LATENCY_WINDOW {
            self.latencies_ms.push(ms);
        } else {
            self.latencies_ms[self.latency_next] = ms;
        }
        self.latency_next = (self.latency_next + 1) % LATENCY_WINDOW;
    }
}

/// Aggregate service metrics; snapshot with [`RenderService::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests completed.
    pub requests: u64,
    /// Frames rendered.
    pub frames: u64,
    /// Frames that reused a sample plan instead of re-probing.
    pub reused_frames: u64,
    /// Requests that carried a deadline.
    pub deadlined_requests: u64,
    /// Deadlined requests that finished late.
    pub deadline_misses: u64,
    /// Median submission-to-completion latency, milliseconds (over the
    /// most recent window of completions).
    pub p50_latency_ms: f64,
    /// 95th-percentile latency, milliseconds (same window).
    pub p95_latency_ms: f64,
    /// Mean time spent in the admission queue, milliseconds.
    pub mean_queue_wait_ms: f64,
    /// Frames per wall-clock second, first submission to last completion.
    pub throughput_fps: f64,
    /// Probe sample points actually executed.
    pub probe_points: u64,
    /// Probe points plan reuse avoided (estimated from each request's
    /// probed-frame cost).
    pub probe_points_avoided_est: f64,
    /// Model-store activity (fits, hits, evictions).
    pub store: StoreStats,
}

impl ServeStats {
    /// Fraction of frames that skipped Phase I.
    pub fn reuse_fraction(&self) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        self.reused_frames as f64 / self.frames as f64
    }

    /// Serializes the snapshot as a JSON object (the `asdr-serve` artifact
    /// format) through the workspace-shared [`JsonWriter`], so number
    /// formatting cannot drift from the cluster artifact again.
    pub fn to_json(&self) -> String {
        let s = &self.store;
        let mut w = JsonWriter::new();
        w.obj();
        w.gap("\n  ").key("requests").u64(self.requests);
        w.key("frames").u64(self.frames);
        w.key("reused_frames").u64(self.reused_frames);
        w.gap("\n  ").key("deadlined_requests").u64(self.deadlined_requests);
        w.key("deadline_misses").u64(self.deadline_misses);
        w.gap("\n  ").key("p50_latency_ms").f64(self.p50_latency_ms, 3);
        w.key("p95_latency_ms").f64(self.p95_latency_ms, 3);
        w.key("mean_queue_wait_ms").f64(self.mean_queue_wait_ms, 3);
        w.gap("\n  ").key("throughput_fps").f64(self.throughput_fps, 3);
        w.gap("\n  ").key("probe_points").u64(self.probe_points);
        w.key("probe_points_avoided_est").f64(self.probe_points_avoided_est, 0);
        w.gap("\n  ").key("store").obj();
        w.key("memory_hits").u64(s.memory_hits);
        w.key("disk_hits").u64(s.disk_hits);
        w.key("fits").u64(s.fits);
        w.key("evictions").u64(s.evictions);
        w.key("disk_errors").u64(s.disk_errors);
        w.key("single_flight_waits").u64(s.single_flight_waits);
        w.key("lock_waits").u64(s.lock_waits);
        w.key("lock_steals").u64(s.lock_steals);
        w.key("resident").u64(s.resident as u64);
        w.close_obj();
        w.raw("\n");
        w.close_obj();
        w.raw("\n");
        w.finish()
    }
}

/// Configures and builds a [`RenderService`].
pub struct RenderServiceBuilder {
    profile: RenderProfile,
    workers: Option<usize>,
    queue_capacity: usize,
    store: Option<Arc<ModelStore>>,
    exec_policy: ExecPolicy,
    plan_refresh_every: usize,
    batch_max: usize,
    paused: bool,
    on_complete: Option<CompletionHook>,
}

impl RenderServiceBuilder {
    /// Initial worker-pool size (resizable later via
    /// [`RenderService::set_workers`]). Precedence: this setting >
    /// `ASDR_SERVE_WORKERS` > detected parallelism. Zero means "unset"
    /// (fall through to env).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = (n > 0).then_some(n);
        self
    }

    /// Admission-queue capacity (pending requests before
    /// [`ServeError::QueueFull`]; clamped to >= 1).
    #[must_use]
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Shares an existing model store (several services, one warm cache).
    /// Default: a fresh store honoring `ASDR_STORE_DIR`.
    #[must_use]
    pub fn store(mut self, store: Arc<ModelStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Phase-II execution policy of the worker engines.
    #[must_use]
    pub fn exec_policy(mut self, policy: ExecPolicy) -> Self {
        self.exec_policy = policy;
        self
    }

    /// Probe refresh period for multi-frame requests (clamped to >= 1;
    /// plan state never crosses a request boundary).
    #[must_use]
    pub fn plan_refresh_every(mut self, n: usize) -> Self {
        self.plan_refresh_every = n.max(1);
        self
    }

    /// Most requests one worker claims per batch (clamped to >= 1).
    #[must_use]
    pub fn batch_max(mut self, n: usize) -> Self {
        self.batch_max = n.max(1);
        self
    }

    /// Starts with the worker pool parked: submissions queue up but nothing
    /// renders until [`RenderService::start`]. Used to stage bursts (and by
    /// the scheduler tests to make ordering observable).
    #[must_use]
    pub fn paused(mut self) -> Self {
        self.paused = true;
        self
    }

    /// Registers a hook observing every request completion (see
    /// [`Completion`] for the contract). One hook per service.
    #[must_use]
    pub fn on_complete(mut self, hook: CompletionHook) -> Self {
        self.on_complete = Some(hook);
        self
    }

    /// Builds the service and spawns its worker pool.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint if the profile's
    /// render options or the execution policy fail validation.
    pub fn build(self) -> Result<RenderService, String> {
        self.profile.options_for(self.profile.default_resolution).validate()?;
        self.exec_policy.validate()?;
        let workers =
            config::resolve(self.workers, config::env_serve_workers(), config::default_workers());
        let store = self.store.unwrap_or_else(|| Arc::new(ModelStore::builder().build()));
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
                paused: self.paused,
                next_seq: 0,
                target_workers: workers,
                alive_workers: 0,
                next_worker_id: 0,
            }),
            cond: Condvar::new(),
            store,
            profile: self.profile,
            exec_policy: self.exec_policy,
            plan_refresh_every: self.plan_refresh_every,
            batch_max: self.batch_max,
            queue_capacity: self.queue_capacity,
            stats: Mutex::new(StatsAccum::default()),
            counters: ServeCounters::new(&Scope::instance("serve")),
            completed: AtomicU64::new(0),
            on_complete: self.on_complete,
        });
        let mut handles = Vec::new();
        spawn_workers(&shared, &mut handles, workers);
        Ok(RenderService { shared, workers: Mutex::new(handles) })
    }
}

/// Spawns `n` fresh workers, registering them alive before any can observe
/// the pool state.
fn spawn_workers(shared: &Arc<Shared>, handles: &mut Vec<JoinHandle<()>>, n: usize) {
    let first_id = {
        let mut q = shared.queue.lock().unwrap();
        q.alive_workers += n;
        let first = q.next_worker_id;
        q.next_worker_id += n;
        first
    };
    for id in first_id..first_id + n {
        let shared = shared.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("asdr-serve-{id}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn render worker"),
        );
    }
}

/// State shared between the service handle and its workers.
struct Shared {
    queue: Mutex<QueueState>,
    cond: Condvar,
    store: Arc<ModelStore>,
    profile: RenderProfile,
    exec_policy: ExecPolicy,
    plan_refresh_every: usize,
    batch_max: usize,
    queue_capacity: usize,
    stats: Mutex<StatsAccum>,
    counters: ServeCounters,
    completed: AtomicU64,
    on_complete: Option<CompletionHook>,
}

/// The service handle. Dropping it drains the queue and joins the workers;
/// [`RenderService::shutdown`] does the same and returns the final stats.
pub struct RenderService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for RenderService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RenderService")
            .field("workers", &self.workers())
            .field("queue_capacity", &self.shared.queue_capacity)
            .field("profile", &self.shared.profile)
            .finish_non_exhaustive()
    }
}

impl RenderService {
    /// Starts a builder over a render profile.
    pub fn builder(profile: RenderProfile) -> RenderServiceBuilder {
        RenderServiceBuilder {
            profile,
            workers: None,
            queue_capacity: 64,
            store: None,
            exec_policy: ExecPolicy::TileStealing { tile_size: 16 },
            plan_refresh_every: 3,
            batch_max: 4,
            paused: false,
            on_complete: None,
        }
    }

    /// The shared model store.
    pub fn store(&self) -> &Arc<ModelStore> {
        &self.shared.store
    }

    /// The service's render profile.
    pub fn profile(&self) -> &RenderProfile {
        &self.shared.profile
    }

    /// Current worker-pool target size (the pool converges to this:
    /// growth spawns immediately, shrink retires workers between batches).
    pub fn workers(&self) -> usize {
        self.shared.queue.lock().unwrap().target_workers
    }

    /// Resizes the worker pool (clamped to >= 1) and returns the previous
    /// target. Growth spawns threads immediately; shrink lets excess
    /// workers finish their current batch and retire. The autoscaling
    /// control loop in `asdr_cluster` drives this against each shard's
    /// rolling deadline-miss rate. No-op once shutdown has begun.
    pub fn set_workers(&self, n: usize) -> usize {
        let n = n.max(1);
        let (prev, grow) = {
            let mut q = self.shared.queue.lock().unwrap();
            let prev = q.target_workers;
            if !q.accepting {
                return prev;
            }
            q.target_workers = n;
            (prev, n.saturating_sub(q.alive_workers))
        };
        if grow > 0 {
            spawn_workers(&self.shared, &mut self.workers.lock().unwrap(), grow);
        }
        // wake idle workers so a shrink retires them promptly
        self.shared.cond.notify_all();
        prev
    }

    /// Blocks until the admission queue has a free slot, the service stops
    /// accepting, or `timeout` passes — the condvar the replay driver
    /// parks on instead of spinning while the queue is full. Capacity
    /// observed here is advisory: a racing submitter may take the slot, in
    /// which case the next submit returns `QueueFull` and the caller waits
    /// again.
    pub fn wait_capacity(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock().unwrap();
        while q.accepting && q.queue.len() >= self.shared.queue_capacity {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return;
            };
            q = self.shared.cond.wait_timeout(q, left).unwrap().0;
        }
    }

    /// Requests currently waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().unwrap().queue.len()
    }

    /// The admission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue_capacity
    }

    /// Admits a request, returning its ticket.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for malformed requests,
    /// [`ServeError::QueueFull`] at capacity, [`ServeError::ShuttingDown`]
    /// after shutdown began.
    pub fn submit(&self, mut req: RenderRequest) -> Result<RenderTicket, ServeError> {
        if req.frames == 0 {
            return Err(ServeError::InvalidRequest("frames must be >= 1".into()));
        }
        if req.resolution == 0 {
            return Err(ServeError::InvalidRequest("resolution must be >= 1".into()));
        }
        self.shared
            .profile
            .options_for(req.resolution)
            .validate()
            .map_err(ServeError::InvalidRequest)?;
        let submitted = Instant::now();
        // checked: a sentinel like Duration::MAX must not overflow (and
        // certainly not panic inside the queue lock, poisoning the service);
        // an unrepresentable deadline schedules as best-effort and always
        // counts as met
        let deadline_at = req.deadline.and_then(|d| submitted.checked_add(d));
        if asdr_obs::enabled() && !req.trace.is_set() {
            req.trace = TraceId::fresh();
        }
        asdr_obs::event!(req.trace, "admit", format!("scene={}", req.scene.name()));
        let ticket = RenderTicket::new();
        {
            let mut q = self.shared.queue.lock().unwrap();
            if !q.accepting {
                return Err(ServeError::ShuttingDown);
            }
            if q.queue.len() >= self.shared.queue_capacity {
                return Err(ServeError::QueueFull { capacity: self.shared.queue_capacity });
            }
            let seq = q.next_seq;
            q.next_seq += 1;
            q.queue.push_back(Queued { req, ticket: ticket.clone(), submitted, deadline_at, seq });
        }
        let mut stats = self.shared.stats.lock().unwrap();
        stats.first_submit.get_or_insert(submitted);
        drop(stats);
        self.shared.cond.notify_all();
        Ok(ticket)
    }

    /// Unparks a paused worker pool (no-op when already running).
    pub fn start(&self) {
        self.shared.queue.lock().unwrap().paused = false;
        self.shared.cond.notify_all();
    }

    /// A statistics snapshot (completed requests only). The scalar
    /// counters read back from this service's registry scope; workers
    /// update them under the stats lock held here, so the snapshot is
    /// coherent.
    pub fn stats(&self) -> ServeStats {
        let acc = self.shared.stats.lock().unwrap();
        let c = &self.shared.counters;
        let elapsed = match (acc.first_submit, acc.last_done) {
            (Some(t0), Some(t1)) => (t1 - t0).as_secs_f64(),
            _ => 0.0,
        };
        let requests = c.requests.get();
        let frames = c.frames.get();
        ServeStats {
            requests,
            frames,
            reused_frames: c.reused_frames.get(),
            deadlined_requests: c.deadlined_requests.get(),
            deadline_misses: c.deadline_misses.get(),
            p50_latency_ms: percentile(&acc.latencies_ms, 50.0),
            p95_latency_ms: percentile(&acc.latencies_ms, 95.0),
            mean_queue_wait_ms: if requests > 0 {
                acc.queue_wait_sum_ms / requests as f64
            } else {
                0.0
            },
            throughput_fps: if elapsed > 0.0 { frames as f64 / elapsed } else { 0.0 },
            probe_points: acc.agg.probe_points,
            probe_points_avoided_est: acc.probe_points_avoided_est,
            store: self.shared.store.stats(),
        }
    }

    /// Stops admissions, drains the queue, joins the workers, and returns
    /// the final statistics.
    pub fn shutdown(self) -> ServeStats {
        self.drain();
        self.stats()
    }

    /// Stops admissions, drains the queue, and joins the workers without
    /// consuming the handle (idempotent). For services held behind a shared
    /// `Arc` — the cluster's shards — where [`RenderService::shutdown`]
    /// cannot take ownership; read the final [`RenderService::stats`]
    /// afterwards.
    pub fn drain(&self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.accepting = false;
            // a paused pool must still drain what was admitted
            q.paused = false;
        }
        self.shared.cond.notify_all();
        // loop: a concurrent set_workers may push a handle after the first
        // sweep; the second sweep picks up any straggler
        loop {
            let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
            if handles.is_empty() {
                return;
            }
            for h in handles {
                h.join().expect("render worker panicked");
            }
        }
    }
}

impl Drop for RenderService {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Worker thread: claim a batch, render it, repeat until shutdown drains
/// the queue or a shrink retires this worker.
fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if q.alive_workers > q.target_workers {
                    // scaled down: retire between batches
                    q.alive_workers -= 1;
                    return;
                }
                if !q.paused {
                    if let Some(batch) = pop_batch(&mut q, shared.batch_max) {
                        // the claim just freed queue slots: wake anyone
                        // blocked in wait_capacity before going to render
                        shared.cond.notify_all();
                        break Some(batch);
                    }
                    if !q.accepting {
                        q.alive_workers -= 1;
                        break None;
                    }
                }
                q = shared.cond.wait(q).unwrap();
            }
        };
        match batch {
            Some(mut batch) => {
                // a panicking fit or render (reachable: registered scene
                // builders are arbitrary user code) fails the batch's
                // tickets, never the worker — clients see RenderFailed
                // instead of hanging on a ticket nobody will fill
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    render_batch(shared, &mut batch);
                }));
                if let Err(panic) = outcome {
                    let why = ServeError::RenderFailed(panic_message(panic.as_ref()));
                    for item in batch.drain(..) {
                        if let Some(hook) = &shared.on_complete {
                            // budget released even for failed requests; a
                            // hook panic here must not kill the worker
                            let completion = Completion {
                                scene: item.req.scene.name(),
                                resolution: item.req.resolution,
                                frames: item.req.frames,
                                result: None,
                            };
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                hook(&completion);
                            }));
                        }
                        item.ticket.fill(Err(why.clone()));
                    }
                }
            }
            None => return,
        }
    }
}

/// Best-effort panic payload extraction for [`ServeError::RenderFailed`].
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "worker panicked".to_string())
}

/// Renders one same-scene batch: one store lookup, one engine session,
/// per-request plan reuse. Items are removed as they complete, so a panic
/// mid-batch leaves exactly the unserved tickets behind for the caller to
/// fail.
fn render_batch(shared: &Shared, batch: &mut Vec<Queued>) {
    let claimed_at = Instant::now();
    let scene = batch[0].req.scene.clone();
    let resolution = batch[0].req.resolution;
    for item in batch.iter() {
        asdr_obs::span!(item.req.trace, "queue", item.submitted, claimed_at);
        if batch.len() > 1 {
            asdr_obs::event!(item.req.trace, "batch-join", format!("batch={}", batch.len()));
        }
    }
    let store_t0 = Instant::now();
    let model = shared.store.get_or_fit(&scene, &shared.profile.grid);
    asdr_obs::span!(batch[0].req.trace, "store", store_t0, Instant::now());
    let engine = FrameEngine::new(shared.profile.options_for(resolution), shared.exec_policy)
        .expect("options validated at submit");
    while !batch.is_empty() {
        let item = &batch[0];
        let cams: Vec<_> = (0..item.req.frames).map(|i| item.req.camera_for_frame(i)).collect();
        let frames: Vec<SequenceFrame<'_, NgpModel>> =
            cams.iter().map(|c| SequenceFrame::new(&*model, c.clone())).collect();
        let render_t0 = Instant::now();
        // plan reuse stays within this request: every request re-probes its
        // first frame, so output is independent of batching and scheduling
        let out = engine
            .render_sequence(
                &frames,
                &PlanPolicy::Reuse { refresh_every: shared.plan_refresh_every },
            )
            .expect("frames >= 1 validated at submit");
        let done = Instant::now();
        let latency = done - item.submitted;
        let deadline_met = item.req.deadline.map(|d| latency <= d);
        let reused = out.reused_frames();
        let frame_count = out.frames.len();
        let probed = frame_count - reused;
        let aggregate = out.aggregate;
        // phase spans come from the engine's own phase timers, laid
        // end-to-end from the render start
        let probe_dur = Duration::from_secs_f64(out.timings.probe_s);
        asdr_obs::span_at!(item.req.trace, "probe", render_t0, probe_dur);
        asdr_obs::span_at!(
            item.req.trace,
            "render",
            render_t0 + probe_dur,
            Duration::from_secs_f64(out.timings.render_s),
            format!("frames={frame_count} reused={reused}")
        );
        let result = RenderResult {
            scene: scene.name().to_string(),
            resolution,
            // `out` is owned and done with: move the frames, don't clone
            // O(frames x pixels) on the serving hot path
            images: out.frames.into_iter().map(|f| f.image).collect(),
            stats: aggregate,
            reused_frames: reused,
            queue_wait: claimed_at - item.submitted,
            latency,
            deadline_met,
            completed_seq: shared.completed.fetch_add(1, Ordering::Relaxed),
            trace: item.req.trace,
        };
        let mut acc = shared.stats.lock().unwrap();
        // registry counters advance under the stats lock so a stats()
        // snapshot (which also holds it) reads a coherent set
        let c = &shared.counters;
        c.requests.inc();
        c.frames.add(frame_count as u64);
        c.reused_frames.add(reused as u64);
        c.latency_us.record(latency.as_micros() as u64);
        c.queue_wait_us.record(result.queue_wait.as_micros() as u64);
        acc.push_latency(latency.as_secs_f64() * 1e3);
        acc.queue_wait_sum_ms += result.queue_wait.as_secs_f64() * 1e3;
        if let Some(met) = deadline_met {
            c.deadlined_requests.inc();
            if !met {
                c.deadline_misses.inc();
            }
        }
        acc.agg.accumulate(&aggregate);
        if probed > 0 && reused > 0 {
            acc.probe_points_avoided_est +=
                aggregate.probe_points as f64 / probed as f64 * reused as f64;
        }
        acc.last_done = Some(acc.last_done.map_or(done, |t| t.max(done)));
        drop(acc);
        let item = batch.remove(0);
        if let Some(hook) = &shared.on_complete {
            // guarded: this item already left the batch, so a hook panic
            // escaping here would drop its ticket unfilled and hang the
            // waiter forever
            let completion = Completion {
                scene: &result.scene,
                resolution,
                frames: frame_count,
                result: Some(&result),
            };
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook(&completion)));
        }
        if deadline_met == Some(false) {
            asdr_obs::event!(
                item.req.trace,
                "deadline-miss",
                format!("latency_ms={:.1}", latency.as_secs_f64() * 1e3)
            );
        }
        asdr_obs::event!(item.req.trace, "reply");
        item.ticket.fill(Ok(result));
    }
}

/// Nearest-rank percentile over an unsorted sample (0 when empty).
fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::parse("HIGH"), Some(Priority::High));
        assert_eq!(Priority::parse("nope"), None);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&s, 50.0), 3.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 5.0);
        assert_eq!(percentile(&[], 95.0), 0.0);
    }

    #[test]
    fn latency_window_is_bounded() {
        let mut acc = StatsAccum::default();
        for i in 0..(LATENCY_WINDOW + 100) {
            acc.push_latency(i as f64);
        }
        assert_eq!(acc.latencies_ms.len(), LATENCY_WINDOW, "ring must not grow past the window");
        // the oldest entries were overwritten by the newest
        assert!(acc.latencies_ms.contains(&(LATENCY_WINDOW as f64 + 99.0)));
        assert!(!acc.latencies_ms.contains(&0.0));
    }

    #[test]
    fn stats_json_is_shape_stable() {
        let stats = ServeStats {
            requests: 2,
            frames: 5,
            reused_frames: 3,
            deadlined_requests: 1,
            deadline_misses: 0,
            p50_latency_ms: 12.5,
            p95_latency_ms: 40.0,
            mean_queue_wait_ms: 1.25,
            throughput_fps: 8.0,
            probe_points: 1000,
            probe_points_avoided_est: 3000.0,
            store: StoreStats::default(),
        };
        let json = stats.to_json();
        for key in [
            "\"requests\"",
            "\"p95_latency_ms\"",
            "\"throughput_fps\"",
            "\"store\"",
            "\"fits\"",
            "\"lock_waits\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!((stats.reuse_fraction() - 0.6).abs() < 1e-12);
    }
}
