//! `asdr-serve` — replays a workload trace through a [`RenderService`]
//! and reports serving statistics.
//!
//! ```text
//! asdr-serve (--workload FILE | --trace FILE | --synthetic SPEC)
//!            [--scale tiny|small|paper] [--workers N]
//!            [--store-dir DIR | --no-store] [--queue N]
//!            [--speed X] [--record PATH]
//!            [--out STATS.json] [--dump-images DIR] [--bundle DIR]
//! ```
//!
//! Any [`TraceSource`](asdr_serve::TraceSource) can feed the replay: a
//! JSON-lines workload, a binary trace (full or sampled), or a seeded
//! synthetic spec. Entries are submitted at their `at_ms` arrival offsets
//! (optionally time-warped by `--speed`; equal offsets form a burst)
//! through the shared [`ReplayDriver`](asdr_serve::ReplayDriver);
//! `--record` captures every admitted request as a binary trace. The
//! process waits for every ticket, prints a per-request table plus the
//! aggregate [`ServeStats`](asdr_serve::ServeStats) and a machine-readable
//! `TRACE_RESULT` line (with the weighted estimate and error bars when
//! replaying a sampled trace), and writes the stats as JSON to `--out`
//! (the artifact the nightly workflow uploads). `--dump-images` writes
//! every rendered frame as a PPM — two runs against the same
//! `--store-dir` must produce byte-identical dumps (the store acceptance
//! contract, pinned by `tests/serve_e2e.rs`). `--bundle DIR` writes an
//! [`asdr_obs`] run bundle — config snapshot, stage markers, periodic
//! stats samples, the span timeline — that `asdr-trace report` can merge
//! with other processes' bundles.

use asdr_serve::flags::{self, die, value, ReplayFlags};
use asdr_serve::{ModelStore, RenderProfile, RenderService};
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    replay: ReplayFlags,
    profile: RenderProfile,
    workers: Option<usize>,
    store_dir: Option<PathBuf>,
    no_store: bool,
    queue: usize,
    out: Option<PathBuf>,
    dump_images: Option<PathBuf>,
    bundle: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: asdr-serve (--workload FILE | --trace FILE | --synthetic SPEC)\n\
         \u{20}                 [--scale tiny|small|paper] [--workers N]\n\
         \u{20}                 [--store-dir DIR | --no-store] [--queue N]\n\
         \u{20}                 [--speed X] [--record PATH]\n\
         \u{20}                 [--out STATS.json] [--dump-images DIR] [--bundle DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        replay: ReplayFlags::default(),
        profile: RenderProfile::tiny(),
        workers: None,
        store_dir: None,
        no_store: false,
        queue: 64,
        out: None,
        dump_images: None,
        bundle: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        if !args.replay.accept(&argv, &mut i) {
            match argv[i].as_str() {
                "--scale" => {
                    let name = value(&argv, &mut i);
                    args.profile = RenderProfile::parse(&name)
                        .unwrap_or_else(|| die(&format!("unknown scale {name:?}")));
                }
                "--workers" => {
                    args.workers = Some(flags::positive_usize("--workers", &value(&argv, &mut i)));
                }
                "--store-dir" => args.store_dir = Some(PathBuf::from(value(&argv, &mut i))),
                "--no-store" => args.no_store = true,
                "--queue" => {
                    args.queue = value(&argv, &mut i)
                        .parse()
                        .unwrap_or_else(|_| die("--queue needs a number"));
                }
                "--out" => args.out = Some(PathBuf::from(value(&argv, &mut i))),
                "--dump-images" => args.dump_images = Some(PathBuf::from(value(&argv, &mut i))),
                "--bundle" => args.bundle = Some(PathBuf::from(value(&argv, &mut i))),
                "-h" | "--help" => usage(),
                other => die(&format!("unknown argument {other:?} (see --help)")),
            }
        }
        i += 1;
    }
    if args.replay.input.is_none() {
        usage();
    }
    if args.no_store && args.store_dir.is_some() {
        die("--no-store and --store-dir are mutually exclusive");
    }
    args
}

fn main() {
    let args = parse_args();
    let bundle = args.bundle.as_ref().map(|dir| {
        let store_setting = match (&args.store_dir, args.no_store) {
            (Some(d), _) => d.display().to_string(),
            (None, true) => "in-memory".to_string(),
            (None, false) => "env".to_string(),
        };
        let config = [
            ("workers", args.workers.map_or_else(|| "auto".to_string(), |n| n.to_string())),
            ("queue", args.queue.to_string()),
            ("store", store_setting),
        ];
        let b = asdr_obs::Bundle::create(dir, "serve", &config)
            .unwrap_or_else(|e| die(&format!("cannot create bundle {}: {e}", dir.display())));
        b.activate();
        b
    });
    let input = args.replay.input.clone().expect("checked in parse_args");
    let mut source = input.open().unwrap_or_else(|e| die(&e));
    if source.len_hint() == Some(0) {
        die("workload file holds no requests");
    }

    let mut store = ModelStore::builder();
    if let Some(dir) = &args.store_dir {
        store = store.dir(dir);
    } else if args.no_store {
        store = store.in_memory_only();
    }
    let mut builder = RenderService::builder(args.profile.clone()).store(Arc::new(store.build()));
    if let Some(n) = args.workers {
        builder = builder.workers(n);
    }
    let service = builder.queue_capacity(args.queue).build().unwrap_or_else(|e| die(&e));
    println!(
        "# asdr-serve: {} requests, {} workers, store {}",
        source.len_hint().map_or_else(|| "streamed".to_string(), |n| n.to_string()),
        service.workers(),
        service.store().dir().map_or("in-memory".to_string(), |d| d.display().to_string()),
    );

    let driver = args.replay.driver(args.profile.clone());
    if let Some(b) = &bundle {
        b.stage("replaying");
    }
    let replay = driver
        .run(source.as_mut(), &service)
        .unwrap_or_else(|e| die(&format!("{}: {e}", input.describe())));
    if replay.requests.is_empty() {
        die("trace holds no requests");
    }

    let mut measurements = flags::ReplayMeasurements::default();
    let mut last_sample = std::time::Instant::now();
    println!("| req | scene | frames | reused | queue ms | latency ms | deadline |");
    println!("|---|---|---|---|---|---|---|");
    for req in &replay.requests {
        let r = req
            .ticket
            .wait()
            .unwrap_or_else(|e| die(&format!("request {} ({}): {e}", req.index, req.scene)));
        println!(
            "| {} | {} | {} | {} | {:.1} | {:.1} | {} |",
            req.index,
            req.scene,
            r.images.len(),
            r.reused_frames,
            r.queue_wait.as_secs_f64() * 1e3,
            r.latency.as_secs_f64() * 1e3,
            match r.deadline_met {
                Some(true) => "met",
                Some(false) => "MISSED",
                None => "-",
            },
        );
        measurements.push(req.window, req.deadlined, r.deadline_met == Some(false), r.images.len());
        if let Some(dir) = &args.dump_images {
            flags::dump_frames(dir, req.index, &r.images);
        }
        if let Some(b) = &bundle {
            if last_sample.elapsed() >= std::time::Duration::from_secs(1) {
                last_sample = std::time::Instant::now();
                b.stats_sample("replay", &service.stats().to_json());
            }
        }
    }
    let wall = replay.started.elapsed();

    if let Some(b) = &bundle {
        b.stage("shutdown");
    }
    let stats = service.shutdown();
    println!(
        "\n{} requests, {} frames ({} plan-reused, {:.0}% of frames)",
        stats.requests,
        stats.frames,
        stats.reused_frames,
        stats.reuse_fraction() * 100.0,
    );
    println!(
        "latency p50 {:.1} ms / p95 {:.1} ms, mean queue wait {:.1} ms, throughput {:.2} fps",
        stats.p50_latency_ms, stats.p95_latency_ms, stats.mean_queue_wait_ms, stats.throughput_fps,
    );
    println!(
        "store: {} fits, {} memory hits, {} disk hits (hit rate {:.0}%), {} evictions, {} disk errors",
        stats.store.fits,
        stats.store.memory_hits,
        stats.store.disk_hits,
        stats.store.hit_rate() * 100.0,
        stats.store.evictions,
        stats.store.disk_errors,
    );
    if stats.deadlined_requests > 0 {
        println!("deadlines: {}/{} missed", stats.deadline_misses, stats.deadlined_requests);
    }
    println!(
        "{}",
        measurements.trace_result_line(wall, replay.plan.as_ref()).unwrap_or_else(|e| die(&e))
    );
    if let Some(out) = &args.out {
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(out, stats.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", out.display())));
        println!("stats written to {}", out.display());
    }
    if let Some(b) = &bundle {
        b.finish(Some(&stats.to_json()));
    }
}
