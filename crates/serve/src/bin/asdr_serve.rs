//! `asdr-serve` — replays a JSON-lines workload file through a
//! [`RenderService`] and reports serving statistics.
//!
//! ```text
//! asdr-serve --workload FILE [--scale tiny|small|paper] [--workers N]
//!            [--store-dir DIR | --no-store] [--queue N]
//!            [--out STATS.json] [--dump-images DIR]
//! ```
//!
//! Entries are submitted at their `at_ms` arrival offsets (equal offsets
//! form a burst); the process waits for every ticket, prints a per-request
//! table plus the aggregate [`ServeStats`], and writes the stats as JSON to
//! `--out` (the artifact the nightly workflow uploads). `--dump-images`
//! writes every rendered frame as a PPM — two runs against the same
//! `--store-dir` must produce byte-identical dumps (the store acceptance
//! contract, pinned by `tests/serve_e2e.rs`).

use asdr_serve::{parse_workload, ModelStore, RenderProfile, RenderService, ServeError};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    workload: PathBuf,
    profile: RenderProfile,
    workers: Option<usize>,
    store_dir: Option<PathBuf>,
    no_store: bool,
    queue: usize,
    out: Option<PathBuf>,
    dump_images: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: asdr-serve --workload FILE [--scale tiny|small|paper] [--workers N]\n\
         \u{20}                 [--store-dir DIR | --no-store] [--queue N]\n\
         \u{20}                 [--out STATS.json] [--dump-images DIR]"
    );
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: PathBuf::new(),
        profile: RenderProfile::tiny(),
        workers: None,
        store_dir: None,
        no_store: false,
        queue: 64,
        out: None,
        dump_images: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| die(&format!("{} needs a value", argv[*i - 1])))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--workload" => args.workload = PathBuf::from(value(&mut i)),
            "--scale" => {
                let name = value(&mut i);
                args.profile = RenderProfile::parse(&name)
                    .unwrap_or_else(|| die(&format!("unknown scale {name:?}")));
            }
            "--workers" => {
                args.workers = Some(
                    value(&mut i)
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die("--workers needs a positive number")),
                );
            }
            "--store-dir" => args.store_dir = Some(PathBuf::from(value(&mut i))),
            "--no-store" => args.no_store = true,
            "--queue" => {
                args.queue =
                    value(&mut i).parse().unwrap_or_else(|_| die("--queue needs a number"));
            }
            "--out" => args.out = Some(PathBuf::from(value(&mut i))),
            "--dump-images" => args.dump_images = Some(PathBuf::from(value(&mut i))),
            "-h" | "--help" => usage(),
            other => die(&format!("unknown argument {other:?} (see --help)")),
        }
        i += 1;
    }
    if args.workload.as_os_str().is_empty() {
        usage();
    }
    if args.no_store && args.store_dir.is_some() {
        die("--no-store and --store-dir are mutually exclusive");
    }
    args
}

fn main() {
    let args = parse_args();
    let text = std::fs::read_to_string(&args.workload)
        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", args.workload.display())));
    let entries =
        parse_workload(&text).unwrap_or_else(|e| die(&format!("{}: {e}", args.workload.display())));
    if entries.is_empty() {
        die("workload file holds no requests");
    }

    let mut store = ModelStore::builder();
    if let Some(dir) = &args.store_dir {
        store = store.dir(dir);
    } else if args.no_store {
        store = store.in_memory_only();
    }
    let mut builder = RenderService::builder(args.profile.clone()).store(Arc::new(store.build()));
    if let Some(n) = args.workers {
        builder = builder.workers(n);
    }
    let service = builder.queue_capacity(args.queue).build().unwrap_or_else(|e| die(&e));
    println!(
        "# asdr-serve: {} requests, {} workers, store {}",
        entries.len(),
        service.workers(),
        service.store().dir().map_or("in-memory".to_string(), |d| d.display().to_string()),
    );

    // replay at the recorded arrival offsets; a full queue blocks the
    // replay clock rather than dropping work
    let t0 = Instant::now();
    let mut tickets = Vec::with_capacity(entries.len());
    for (idx, entry) in entries.iter().enumerate() {
        let req = entry.to_request(&args.profile).unwrap_or_else(|e| {
            die(&format!("{} line {}: {e}", args.workload.display(), entry.line))
        });
        if let Some(wait) = Duration::from_millis(entry.at_ms).checked_sub(t0.elapsed()) {
            std::thread::sleep(wait);
        }
        let ticket = loop {
            match service.submit(req.clone()) {
                Ok(t) => break t,
                Err(ServeError::QueueFull { .. }) => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => die(&format!("request {idx}: {e}")),
            }
        };
        tickets.push((idx, entry.scene.clone(), ticket));
    }

    println!("| req | scene | frames | reused | queue ms | latency ms | deadline |");
    println!("|---|---|---|---|---|---|---|");
    for (idx, scene, ticket) in &tickets {
        let r = ticket.wait().unwrap_or_else(|e| die(&format!("request {idx} ({scene}): {e}")));
        println!(
            "| {idx} | {scene} | {} | {} | {:.1} | {:.1} | {} |",
            r.images.len(),
            r.reused_frames,
            r.queue_wait.as_secs_f64() * 1e3,
            r.latency.as_secs_f64() * 1e3,
            match r.deadline_met {
                Some(true) => "met",
                Some(false) => "MISSED",
                None => "-",
            },
        );
        if let Some(dir) = &args.dump_images {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
            for (f, image) in r.images.iter().enumerate() {
                let path = dir.join(format!("req{idx:03}-f{f:02}.ppm"));
                image
                    .write_ppm(&path)
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
            }
        }
    }

    let stats = service.shutdown();
    println!(
        "\n{} requests, {} frames ({} plan-reused, {:.0}% of frames)",
        stats.requests,
        stats.frames,
        stats.reused_frames,
        stats.reuse_fraction() * 100.0,
    );
    println!(
        "latency p50 {:.1} ms / p95 {:.1} ms, mean queue wait {:.1} ms, throughput {:.2} fps",
        stats.p50_latency_ms, stats.p95_latency_ms, stats.mean_queue_wait_ms, stats.throughput_fps,
    );
    println!(
        "store: {} fits, {} memory hits, {} disk hits (hit rate {:.0}%), {} evictions, {} disk errors",
        stats.store.fits,
        stats.store.memory_hits,
        stats.store.disk_hits,
        stats.store.hit_rate() * 100.0,
        stats.store.evictions,
        stats.store.disk_errors,
    );
    if stats.deadlined_requests > 0 {
        println!("deadlines: {}/{} missed", stats.deadline_misses, stats.deadlined_requests);
    }
    if let Some(out) = &args.out {
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(out, stats.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", out.display())));
        println!("stats written to {}", out.display());
    }
}
