//! `asdr-trace` — the trace toolbox: capture, generate, sample, report.
//!
//! ```text
//! asdr-trace record  (--workload FILE | --trace FILE | --synthetic SPEC) --out OUT.trace
//! asdr-trace gen     SPEC --out OUT.trace
//! asdr-trace sample  --trace FILE --window-ms N --clusters K [--seed S] [--closed-loop] --out OUT.trace
//! asdr-trace report  [--out FILE] [LABEL=]STATS.json ...
//! asdr-trace report  --bundles DIR [--json] [--out FILE]
//! ```
//!
//! `record` transcodes any trace input into the compact binary format
//! without replaying it; `gen` materialises a synthetic spec (see
//! `asdr_serve::trace::synth`); `sample` reduces a trace to weighted
//! medoid windows SimPoint-style; `report` merges per-run stats JSON
//! artifacts into one comparative markdown table — or, with `--bundles`,
//! merges the [`asdr_obs`] run bundles of a fleet run into one report:
//! per-phase latency breakdown, cross-process `SPAN_JOIN` lines (trace
//! ids followed across hedges and failovers), and a `MISS_ATTRIBUTION`
//! line naming the dominant phase of every deadline miss.

use asdr_serve::flags::{die, positive_usize, value, ReplayFlags};
use asdr_serve::trace::{format, report, sample_trace_with, source};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: asdr-trace record  (--workload FILE | --trace FILE | --synthetic SPEC) --out OUT.trace\n\
         \u{20}      asdr-trace gen     SPEC --out OUT.trace\n\
         \u{20}      asdr-trace sample  --trace FILE --window-ms N --clusters K [--seed S] [--closed-loop] --out OUT.trace\n\
         \u{20}      asdr-trace report  [--out FILE] [LABEL=]STATS.json ...\n\
         \u{20}      asdr-trace report  --bundles DIR [--json] [--out FILE]\n\
         \n\
         SPEC examples:\n\
         \u{20} poisson:rate=1.2,duration=120s,scenes=Mic+Lego+Pulse,zipf=1.1,seed=7\n\
         \u{20} diurnal:base=0.5,peak=4,period=60s,duration=120s,deadline=400,resolution=32"
    );
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let rest = &argv[1..];
    match cmd.as_str() {
        "record" => cmd_record(rest),
        "gen" => cmd_gen(rest),
        "sample" => cmd_sample(rest),
        "report" => cmd_report(rest),
        "-h" | "--help" => usage(),
        other => die(&format!("unknown subcommand {other:?} (see --help)")),
    }
}

/// Writes `entries` (and an optional plan) to `out`, announcing the size.
fn write_trace(
    out: &PathBuf,
    entries: &[source::TimedRequest],
    plan: Option<&format::PlanMeta>,
    what: &str,
) {
    format::write_file(out, entries, plan).unwrap_or_else(|e| die(&e));
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!("{}: {} requests, {} bytes -> {}", what, entries.len(), bytes, out.display());
}

fn cmd_record(argv: &[String]) {
    let mut flags = ReplayFlags::default();
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < argv.len() {
        if !flags.accept(argv, &mut i) {
            match argv[i].as_str() {
                "--out" => out = Some(PathBuf::from(value(argv, &mut i))),
                "-h" | "--help" => usage(),
                other => die(&format!("unknown argument {other:?} (see --help)")),
            }
        }
        i += 1;
    }
    let input = flags.input_or_usage(|| {});
    let out = out.unwrap_or_else(|| die("record needs --out OUT.trace"));
    let mut src = input.open().unwrap_or_else(|e| die(&e));
    let plan = src.plan().cloned();
    let entries = source::drain(src.as_mut());
    write_trace(&out, &entries, plan.as_ref(), "recorded");
}

fn cmd_gen(argv: &[String]) {
    let mut spec: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => out = Some(PathBuf::from(value(argv, &mut i))),
            "-h" | "--help" => usage(),
            s if !s.starts_with('-') && spec.is_none() => spec = Some(s.to_string()),
            other => die(&format!("unknown argument {other:?} (see --help)")),
        }
        i += 1;
    }
    let spec = spec.unwrap_or_else(|| die("gen needs a SPEC (e.g. poisson:rate=1,duration=60s)"));
    let out = out.unwrap_or_else(|| die("gen needs --out OUT.trace"));
    let mut src = asdr_serve::SyntheticSource::from_spec(&spec).unwrap_or_else(|e| die(&e));
    let entries = source::drain(&mut src);
    if entries.is_empty() {
        die("spec generated no arrivals (rate or duration too small)");
    }
    write_trace(&out, &entries, None, "generated");
}

fn cmd_sample(argv: &[String]) {
    let mut trace: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut window_ms: Option<u64> = None;
    let mut clusters: Option<usize> = None;
    let mut seed = 0u64;
    let mut closed_loop = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--trace" => trace = Some(PathBuf::from(value(argv, &mut i))),
            "--out" => out = Some(PathBuf::from(value(argv, &mut i))),
            "--window-ms" => {
                window_ms = Some(positive_usize("--window-ms", &value(argv, &mut i)) as u64);
            }
            "--clusters" => clusters = Some(positive_usize("--clusters", &value(argv, &mut i))),
            "--seed" => {
                seed = value(argv, &mut i)
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an unsigned integer"));
            }
            "--closed-loop" => closed_loop = true,
            "-h" | "--help" => usage(),
            other => die(&format!("unknown argument {other:?} (see --help)")),
        }
        i += 1;
    }
    let trace = trace.unwrap_or_else(|| die("sample needs --trace FILE"));
    let out = out.unwrap_or_else(|| die("sample needs --out OUT.trace"));
    let window_ms = window_ms.unwrap_or_else(|| die("sample needs --window-ms N"));
    let clusters = clusters.unwrap_or_else(|| die("sample needs --clusters K"));
    let decoded = format::read_file(&trace).unwrap_or_else(|e| die(&e));
    if decoded.plan.is_some() {
        die(&format!("{} is already a sampled trace", trace.display()));
    }
    let sampled = sample_trace_with(&decoded.entries, window_ms, clusters, seed, closed_loop)
        .unwrap_or_else(|e| die(&e));
    let plan = &sampled.plan;
    println!(
        "sampled ({}) {} windows of {} ms down to {} medoids ({} of {} requests, {:.1}x compression)",
        if closed_loop { "closed-loop" } else { "open-loop" },
        plan.total_windows,
        plan.window_ms,
        plan.picks.len(),
        sampled.entries.len(),
        decoded.entries.len(),
        plan.equivalent_ms() as f64 / plan.replayed_ms().max(1) as f64,
    );
    for (i, p) in plan.picks.iter().enumerate() {
        println!(
            "  window {i}: t+{} ms, weight {}/{}",
            p.start_ms, p.cluster_size, plan.total_windows
        );
    }
    write_trace(&out, &sampled.entries, Some(plan), "sampled");
}

fn cmd_report(argv: &[String]) {
    let mut out: Option<PathBuf> = None;
    let mut bundles: Option<PathBuf> = None;
    let mut json = false;
    let mut artifacts: Vec<(String, std::collections::BTreeMap<String, f64>)> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => out = Some(PathBuf::from(value(argv, &mut i))),
            "--bundles" => bundles = Some(PathBuf::from(value(argv, &mut i))),
            "--json" => json = true,
            "-h" | "--help" => usage(),
            arg if !arg.starts_with('-') => {
                let (label, path) = match arg.split_once('=') {
                    Some((l, p)) => (l.to_string(), PathBuf::from(p)),
                    None => {
                        let p = PathBuf::from(arg);
                        let stem = p
                            .file_stem()
                            .map(|s| s.to_string_lossy().into_owned())
                            .unwrap_or_else(|| arg.to_string());
                        (stem, p)
                    }
                };
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
                let metrics = report::scan_metrics(&text);
                if metrics.is_empty() {
                    die(&format!("{}: no numeric metrics found", path.display()));
                }
                artifacts.push((label, metrics));
            }
            other => die(&format!("unknown argument {other:?} (see --help)")),
        }
        i += 1;
    }
    if let Some(root) = bundles {
        if !artifacts.is_empty() {
            die("--bundles and [LABEL=]STATS.json arguments are mutually exclusive");
        }
        return bundle_report(&root, json, out.as_deref());
    }
    if json {
        die("--json only applies to --bundles reports");
    }
    if artifacts.is_empty() {
        die("report needs at least one [LABEL=]STATS.json or --bundles DIR");
    }
    let md = report::merge_report(&artifacts);
    match out {
        Some(path) => {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            std::fs::write(&path, &md)
                .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
            println!("report ({} runs) written to {}", artifacts.len(), path.display());
        }
        None => print!("{md}"),
    }
}

/// The `report --bundles` path: merge every bundle under `root` into the
/// cross-process span report (markdown by default, `--json` for the
/// machine-readable artifact).
fn bundle_report(root: &std::path::Path, json: bool, out: Option<&std::path::Path>) {
    let (spans, skipped) = asdr_obs::report::load_bundles(root).unwrap_or_else(|e| die(&e));
    let merged = asdr_obs::report::analyze(&spans, skipped);
    let text = if json { merged.to_json() } else { merged.to_markdown() };
    match out {
        Some(path) => {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            std::fs::write(path, &text)
                .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
            println!(
                "bundle report ({} spans, {} traces, {} processes) written to {}",
                merged.spans,
                merged.traces,
                merged.processes.len(),
                path.display()
            );
        }
        None => print!("{text}"),
    }
}
