//! The persistent, checkpoint-backed model store.
//!
//! A [`ModelStore`] caches fitted [`NgpModel`]s keyed by **scene name +
//! fit-config fingerprint** behind two layers:
//!
//! * an **in-memory layer** of `Arc<NgpModel>` entries with LRU capacity
//!   eviction — eviction only drops the map entry, outstanding `Arc`s held
//!   by renders stay alive;
//! * an optional **on-disk layer**: a directory of VERSION-2 checkpoints
//!   ([`asdr_nerf::io`]), so fits survive across processes. A checkpoint is
//!   only trusted if its embedded scene name and grid configuration match
//!   the request; anything corrupt, truncated, or stale degrades to a refit,
//!   never a panic.
//!
//! Concurrent requests for the same un-fitted key are **single-flighted**:
//! exactly one caller fits (or loads) while the rest block on a condvar and
//! receive the published `Arc`. An in-flight entry is never evicted and is
//! unwound if the fitter panics, so waiters cannot deadlock.
//!
//! Keying by *name* means two registries could alias one name to different
//! scene definitions; like the bench harness, the store compares
//! [`SceneHandle::shares_def`] on every memory hit and refits on a
//! mismatch instead of aliasing. Such alias refits stay memory-only —
//! they neither read nor overwrite the named scene's checkpoint — because
//! the disk layer cannot see definitions and must trust registry names to
//! be stable across processes.

use crate::config;
use asdr_nerf::fit::fit_ngp;
use asdr_nerf::grid::GridConfig;
use asdr_nerf::io::{self, LoadError};
use asdr_nerf::NgpModel;
use asdr_scenes::SceneHandle;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Cache key: scene name plus the fit-configuration fingerprint, so one
/// store can hold the same scene at several scales without collision.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Registry scene name.
    pub scene: String,
    /// Fit-config fingerprint (see [`fingerprint`]).
    pub fingerprint: String,
}

impl StoreKey {
    /// Builds the key for a scene fitted under `grid`.
    pub fn new(scene: &str, grid: &GridConfig) -> Self {
        StoreKey { scene: scene.to_string(), fingerprint: fingerprint(grid) }
    }
}

/// The fit-config fingerprint: every [`GridConfig`] field, so two configs
/// fingerprint equal iff they fit identical models.
pub fn fingerprint(grid: &GridConfig) -> String {
    format!(
        "ngp-L{}-R{}x{}-T{}-F{}",
        grid.levels, grid.base_res, grid.max_res, grid.table_size, grid.feat_dim
    )
}

/// One resident entry.
#[derive(Debug)]
struct Slot {
    state: SlotState,
    /// The exact def this entry was computed from (alias detection).
    handle: SceneHandle,
    /// LRU tick of the last hit or publish.
    last_used: u64,
}

#[derive(Debug)]
enum SlotState {
    /// A fitter is working; waiters block on the store condvar.
    InFlight,
    /// Published and servable.
    Ready(Arc<NgpModel>),
}

#[derive(Debug, Default)]
struct Inner {
    slots: HashMap<StoreKey, Slot>,
    tick: u64,
}

impl Inner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn ready_count(&self) -> usize {
        self.slots.values().filter(|s| matches!(s.state, SlotState::Ready(_))).count()
    }
}

/// Monotonic counters; snapshot with [`ModelStore::stats`].
#[derive(Debug, Default)]
struct Counters {
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    fits: AtomicU64,
    evictions: AtomicU64,
    disk_errors: AtomicU64,
    single_flight_waits: AtomicU64,
}

/// A point-in-time snapshot of store activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups served from the in-memory layer.
    pub memory_hits: u64,
    /// Lookups served by loading a checkpoint from disk.
    pub disk_hits: u64,
    /// Lookups that ran a fresh fit (cold misses, alias refits, corrupt
    /// checkpoints).
    pub fits: u64,
    /// Ready entries dropped by LRU capacity eviction.
    pub evictions: u64,
    /// Checkpoint files that failed to load or save (corruption, stale
    /// metadata, I/O errors). Missing files are ordinary misses, not errors.
    pub disk_errors: u64,
    /// Callers that blocked on another caller's in-flight fit.
    pub single_flight_waits: u64,
    /// Ready entries currently resident in memory.
    pub resident: usize,
}

impl StoreStats {
    /// Total lookups (every lookup is exactly one hit, disk hit, or fit).
    pub fn lookups(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.fits
    }

    /// Fraction of lookups served without a fresh fit.
    pub fn hit_rate(&self) -> f64 {
        let l = self.lookups();
        if l == 0 {
            return 0.0;
        }
        (self.memory_hits + self.disk_hits) as f64 / l as f64
    }
}

/// Configures and builds a [`ModelStore`]. Settings resolve with the
/// documented precedence: explicit builder setting > environment > default
/// (see [`crate::config`]).
#[derive(Debug)]
pub struct ModelStoreBuilder {
    capacity: usize,
    dir: DirSetting,
}

#[derive(Debug)]
enum DirSetting {
    /// Unset: fall back to `ASDR_STORE_DIR`.
    FromEnv,
    /// Explicitly disabled: in-memory only, regardless of the environment.
    Disabled,
    /// Explicit checkpoint directory.
    Path(PathBuf),
}

impl Default for ModelStoreBuilder {
    fn default() -> Self {
        ModelStoreBuilder { capacity: ModelStore::DEFAULT_CAPACITY, dir: DirSetting::FromEnv }
    }
}

impl ModelStoreBuilder {
    /// Maximum resident Ready entries before LRU eviction (clamped to >= 1;
    /// in-flight fits never count against capacity).
    #[must_use]
    pub fn capacity(mut self, n: usize) -> Self {
        self.capacity = n.max(1);
        self
    }

    /// Persists checkpoints under `dir` (created on first write). Takes
    /// precedence over `ASDR_STORE_DIR`.
    #[must_use]
    pub fn dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = DirSetting::Path(dir.into());
        self
    }

    /// Forces in-memory-only operation even when `ASDR_STORE_DIR` is set.
    #[must_use]
    pub fn in_memory_only(mut self) -> Self {
        self.dir = DirSetting::Disabled;
        self
    }

    /// Builds the store.
    pub fn build(self) -> ModelStore {
        let dir = match self.dir {
            DirSetting::Path(p) => Some(p),
            DirSetting::Disabled => None,
            DirSetting::FromEnv => {
                config::resolve(None, config::env_store_dir().cloned().map(Some), None)
            }
        };
        ModelStore {
            inner: Mutex::new(Inner::default()),
            cond: Condvar::new(),
            capacity: self.capacity,
            dir,
            counters: Counters::default(),
        }
    }
}

/// The persistent, versioned, checkpoint-backed model cache (see the module
/// docs for the full semantics).
#[derive(Debug)]
pub struct ModelStore {
    inner: Mutex<Inner>,
    cond: Condvar,
    capacity: usize,
    dir: Option<PathBuf>,
    counters: Counters,
}

/// What [`ModelStore::claim`] decided for a lookup.
enum Claim {
    /// Served from memory.
    Hit(Arc<NgpModel>),
    /// This caller now owns the in-flight marker and must publish or unwind.
    Fit {
        /// The key held a same-name entry from a *different* def; skip the
        /// disk layer (its checkpoint belongs to the other def).
        alias: bool,
    },
}

impl ModelStore {
    /// Default in-memory capacity (entries).
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Starts a builder.
    pub fn builder() -> ModelStoreBuilder {
        ModelStoreBuilder::default()
    }

    /// The checkpoint directory, if persistence is active.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Maximum resident entries before LRU eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The fitted model for `scene` under `grid`: memory, then disk, then a
    /// fresh [`fit_ngp`] — fitted at most once per key across all threads.
    pub fn get_or_fit(&self, scene: &SceneHandle, grid: &GridConfig) -> Arc<NgpModel> {
        self.get_or_fit_with(scene, grid, || fit_ngp(scene.build().as_ref(), grid))
    }

    /// Like [`ModelStore::get_or_fit`] with an injected fit function — the
    /// seam the concurrency tests use to observe and stall fits.
    pub fn get_or_fit_with(
        &self,
        scene: &SceneHandle,
        grid: &GridConfig,
        fit: impl FnOnce() -> NgpModel,
    ) -> Arc<NgpModel> {
        let key = StoreKey::new(scene.name(), grid);
        match self.claim(&key, scene) {
            Claim::Hit(m) => m,
            Claim::Fit { alias } => {
                // we own the in-flight marker; the guard unwinds it if the
                // fit panics so waiters retry instead of deadlocking
                let mut guard = InFlightGuard { store: self, key: &key, published: false };
                let model = match (!alias).then(|| self.load_disk(&key, scene, grid)).flatten() {
                    Some(m) => {
                        self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                        m
                    }
                    None => {
                        self.counters.fits.fetch_add(1, Ordering::Relaxed);
                        let m = Arc::new(fit());
                        // an alias refit must not touch disk either way: a
                        // checkpoint it wrote would be served as the *real*
                        // scene by later processes (the name is the key)
                        if !alias {
                            self.save_disk(&key, scene, &m);
                        }
                        m
                    }
                };
                self.publish(&key, scene, model.clone());
                guard.published = true;
                model
            }
        }
    }

    /// A statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        let resident = self.inner.lock().unwrap().ready_count();
        StoreStats {
            memory_hits: self.counters.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            fits: self.counters.fits.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            disk_errors: self.counters.disk_errors.load(Ordering::Relaxed),
            single_flight_waits: self.counters.single_flight_waits.load(Ordering::Relaxed),
            resident,
        }
    }

    /// Whether a Ready entry for this key is resident in memory.
    pub fn contains(&self, scene: &str, grid: &GridConfig) -> bool {
        let key = StoreKey::new(scene, grid);
        let inner = self.inner.lock().unwrap();
        matches!(inner.slots.get(&key), Some(Slot { state: SlotState::Ready(_), .. }))
    }

    /// Resolves a lookup to a memory hit or an owned in-flight marker,
    /// blocking while another caller fits the same key.
    fn claim(&self, key: &StoreKey, scene: &SceneHandle) -> Claim {
        let mut inner = self.inner.lock().unwrap();
        let mut waited = false;
        loop {
            let tick = inner.touch();
            enum Found {
                Hit(Arc<NgpModel>),
                InFlight,
                Alias,
                Missing,
            }
            let found = match inner.slots.get_mut(key) {
                Some(slot) => match &slot.state {
                    SlotState::Ready(m) if slot.handle.shares_def(scene) => {
                        slot.last_used = tick;
                        Found::Hit(m.clone())
                    }
                    SlotState::Ready(_) => Found::Alias,
                    SlotState::InFlight => Found::InFlight,
                },
                None => Found::Missing,
            };
            match found {
                Found::Hit(m) => {
                    self.counters.memory_hits.fetch_add(1, Ordering::Relaxed);
                    return Claim::Hit(m);
                }
                Found::InFlight => {
                    if !waited {
                        self.counters.single_flight_waits.fetch_add(1, Ordering::Relaxed);
                        waited = true;
                    }
                    inner = self.cond.wait(inner).unwrap();
                }
                alias @ (Found::Alias | Found::Missing) => {
                    let alias = matches!(alias, Found::Alias);
                    inner.slots.insert(
                        key.clone(),
                        Slot { state: SlotState::InFlight, handle: scene.clone(), last_used: tick },
                    );
                    return Claim::Fit { alias };
                }
            }
        }
    }

    /// Publishes a fitted model, evicts past capacity, and wakes waiters.
    fn publish(&self, key: &StoreKey, scene: &SceneHandle, model: Arc<NgpModel>) {
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.touch();
        inner.slots.insert(
            key.clone(),
            Slot { state: SlotState::Ready(model), handle: scene.clone(), last_used: tick },
        );
        // LRU eviction over Ready entries only — an in-flight fit must
        // never be dropped out from under its waiters
        while inner.ready_count() > self.capacity {
            let lru = inner
                .slots
                .iter()
                .filter(|(_, s)| matches!(s.state, SlotState::Ready(_)))
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
                .expect("ready_count > capacity >= 1 implies a ready entry");
            inner.slots.remove(&lru);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        drop(inner);
        self.cond.notify_all();
    }

    /// The checkpoint path for a key.
    fn ckpt_path(&self, key: &StoreKey) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(ckpt_file_name(key)))
    }

    /// Tries the disk layer. Missing files are ordinary misses; corrupt,
    /// truncated, or stale checkpoints count as [`StoreStats::disk_errors`]
    /// and degrade to a refit.
    fn load_disk(
        &self,
        key: &StoreKey,
        scene: &SceneHandle,
        grid: &GridConfig,
    ) -> Option<Arc<NgpModel>> {
        let path = self.ckpt_path(key)?;
        match io::load_model_file(&path) {
            Ok(ckpt) => {
                // trust the file only if its embedded metadata matches the
                // request: a renamed or re-scaled scene must refit
                if ckpt.scene.as_deref() == Some(scene.name())
                    && ckpt.model.encoder().config() == grid
                {
                    Some(Arc::new(ckpt.model))
                } else {
                    self.counters.disk_errors.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
            Err(LoadError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(_) => {
                self.counters.disk_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists a fit (best effort: serving never fails on a full disk).
    ///
    /// Written to a temp file and renamed into place, so a concurrent
    /// process warming from the same directory can never read a torn
    /// checkpoint — it sees either the complete file or none at all.
    fn save_disk(&self, key: &StoreKey, scene: &SceneHandle, model: &NgpModel) {
        let Some(path) = self.ckpt_path(key) else { return };
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let write = || -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            io::save_model_file(model, scene.name(), &tmp)?;
            std::fs::rename(&tmp, &path)
        };
        if write().is_err() {
            let _ = std::fs::remove_file(&tmp);
            self.counters.disk_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Unwinds an owned in-flight marker if the fit never published (panic in
/// the fit function), so blocked waiters retry instead of hanging forever.
struct InFlightGuard<'a> {
    store: &'a ModelStore,
    key: &'a StoreKey,
    published: bool,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        let mut inner = self.store.inner.lock().unwrap();
        if let Some(slot) = inner.slots.get(self.key) {
            if matches!(slot.state, SlotState::InFlight) {
                inner.slots.remove(self.key);
            }
        }
        drop(inner);
        self.store.cond.notify_all();
    }
}

/// Checkpoint file name: sanitized scene name + fingerprint. Name
/// collisions after sanitization are resolved by the scene-name check at
/// load time (the mismatching entry refits).
fn ckpt_file_name(key: &StoreKey) -> String {
    let safe: String = key
        .scene
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
        .collect();
    format!("{safe}-{}.ckpt", key.fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_configs() {
        assert_ne!(fingerprint(&GridConfig::tiny()), fingerprint(&GridConfig::small()));
        assert_eq!(fingerprint(&GridConfig::tiny()), fingerprint(&GridConfig::tiny()));
        let key_a = StoreKey::new("Mic", &GridConfig::tiny());
        let key_b = StoreKey::new("Mic", &GridConfig::small());
        assert_ne!(key_a, key_b, "same scene at two scales must not collide");
    }

    #[test]
    fn ckpt_names_are_filesystem_safe() {
        let key = StoreKey::new("weird scene/name:v2", &GridConfig::tiny());
        let name = ckpt_file_name(&key);
        assert!(!name.contains('/') && !name.contains(':') && !name.contains(' '), "{name}");
        assert!(name.ends_with(".ckpt"));
    }

    #[test]
    fn builder_clamps_capacity_and_honors_in_memory_only() {
        let store = ModelStore::builder().capacity(0).in_memory_only().build();
        assert_eq!(store.capacity(), 1);
        assert_eq!(store.dir(), None);
        let store = ModelStore::builder().dir("/tmp/asdr-store-test").build();
        assert_eq!(store.dir(), Some(Path::new("/tmp/asdr-store-test")));
    }
}
