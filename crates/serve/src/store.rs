//! The persistent, checkpoint-backed model store.
//!
//! A [`ModelStore`] caches fitted [`NgpModel`]s keyed by **scene name +
//! fit-config fingerprint** behind two layers:
//!
//! * an **in-memory layer** of `Arc<NgpModel>` entries with LRU capacity
//!   eviction — eviction only drops the map entry, outstanding `Arc`s held
//!   by renders stay alive;
//! * an optional **on-disk layer**: a directory of VERSION-2 checkpoints
//!   ([`asdr_nerf::io`]), so fits survive across processes. A checkpoint is
//!   only trusted if its embedded scene name and grid configuration match
//!   the request; anything corrupt, truncated, or stale degrades to a refit,
//!   never a panic.
//!
//! Concurrent requests for the same un-fitted key are **single-flighted**:
//! exactly one caller fits (or loads) while the rest block on a condvar and
//! receive the published `Arc`. An in-flight entry is never evicted and is
//! unwound if the fitter panics, so waiters cannot deadlock.
//!
//! When a checkpoint directory is configured, cold fits are also
//! single-flighted **across processes** through an advisory lock file next
//! to each checkpoint (`<ckpt>.lock`, created with `O_EXCL`): the winner
//! re-checks the disk under the lock, fits, publishes the checkpoint, and
//! unlocks; losers poll for the checkpoint to appear instead of running a
//! duplicate fit. A lock left behind by a dead process goes stale after
//! [`ModelStoreBuilder::lock_stale_after`] and is broken by the next
//! waiter, which then refits — serving degrades to a duplicate fit, never
//! a deadlock.
//!
//! Keying by *name* means two registries could alias one name to different
//! scene definitions; like the bench harness, the store compares
//! [`SceneHandle::shares_def`] on every memory hit and refits on a
//! mismatch instead of aliasing. Such alias refits stay memory-only —
//! they neither read nor overwrite the named scene's checkpoint — because
//! the disk layer cannot see definitions and must trust registry names to
//! be stable across processes.

use crate::config;
use asdr_nerf::fit::fit_ngp;
use asdr_nerf::grid::GridConfig;
use asdr_nerf::io::{self, LoadError};
use asdr_nerf::NgpModel;
use asdr_scenes::SceneHandle;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Cache key: scene name plus the fit-configuration fingerprint, so one
/// store can hold the same scene at several scales without collision.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Registry scene name.
    pub scene: String,
    /// Fit-config fingerprint (see [`fingerprint`]).
    pub fingerprint: String,
}

impl StoreKey {
    /// Builds the key for a scene fitted under `grid`.
    pub fn new(scene: &str, grid: &GridConfig) -> Self {
        StoreKey { scene: scene.to_string(), fingerprint: fingerprint(grid) }
    }
}

/// The fit-config fingerprint: every [`GridConfig`] field, so two configs
/// fingerprint equal iff they fit identical models.
pub fn fingerprint(grid: &GridConfig) -> String {
    format!(
        "ngp-L{}-R{}x{}-T{}-F{}",
        grid.levels, grid.base_res, grid.max_res, grid.table_size, grid.feat_dim
    )
}

/// One resident entry.
#[derive(Debug)]
struct Slot {
    state: SlotState,
    /// The exact def this entry was computed from (alias detection).
    handle: SceneHandle,
    /// LRU tick of the last hit or publish.
    last_used: u64,
}

#[derive(Debug)]
enum SlotState {
    /// A fitter is working; waiters block on the store condvar.
    InFlight,
    /// Published and servable.
    Ready(Arc<NgpModel>),
}

#[derive(Debug, Default)]
struct Inner {
    slots: HashMap<StoreKey, Slot>,
    tick: u64,
}

impl Inner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn ready_count(&self) -> usize {
        self.slots.values().filter(|s| matches!(s.state, SlotState::Ready(_))).count()
    }
}

/// Monotonic counters; snapshot with [`ModelStore::stats`]. Registry-backed
/// under a unique `store.N.` scope of the process-global
/// [`Registry`](asdr_obs::Registry): handles resolve once at build, so the
/// hot path stays a plain relaxed atomic add — the `serve_store/memory_hit`
/// bench budget (within 1% of the pre-registry baseline) allows nothing
/// more.
#[derive(Debug)]
struct Counters {
    memory_hits: Arc<asdr_obs::Counter>,
    disk_hits: Arc<asdr_obs::Counter>,
    fits: Arc<asdr_obs::Counter>,
    evictions: Arc<asdr_obs::Counter>,
    disk_errors: Arc<asdr_obs::Counter>,
    single_flight_waits: Arc<asdr_obs::Counter>,
    lock_waits: Arc<asdr_obs::Counter>,
    lock_steals: Arc<asdr_obs::Counter>,
}

impl Counters {
    fn new(scope: &asdr_obs::Scope) -> Counters {
        Counters {
            memory_hits: scope.counter("memory_hits"),
            disk_hits: scope.counter("disk_hits"),
            fits: scope.counter("fits"),
            evictions: scope.counter("evictions"),
            disk_errors: scope.counter("disk_errors"),
            single_flight_waits: scope.counter("single_flight_waits"),
            lock_waits: scope.counter("lock_waits"),
            lock_steals: scope.counter("lock_steals"),
        }
    }
}

/// A point-in-time snapshot of store activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups served from the in-memory layer.
    pub memory_hits: u64,
    /// Lookups served by loading a checkpoint from disk.
    pub disk_hits: u64,
    /// Lookups that ran a fresh fit (cold misses, alias refits, corrupt
    /// checkpoints).
    pub fits: u64,
    /// Ready entries dropped by LRU capacity eviction.
    pub evictions: u64,
    /// Checkpoint files that failed to load or save (corruption, stale
    /// metadata, I/O errors). Missing files are ordinary misses, not errors.
    pub disk_errors: u64,
    /// Callers that blocked on another caller's in-flight fit.
    pub single_flight_waits: u64,
    /// Cold fits that waited on another **process's** lock file instead of
    /// duplicating the fit (each either loaded the published checkpoint or,
    /// if the lock went stale, refitted).
    pub lock_waits: u64,
    /// Stale lock files broken (the owning process died mid-fit).
    pub lock_steals: u64,
    /// Ready entries currently resident in memory.
    pub resident: usize,
}

impl StoreStats {
    /// Total lookups (every lookup is exactly one hit, disk hit, or fit).
    pub fn lookups(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.fits
    }

    /// Fraction of lookups served without a fresh fit.
    pub fn hit_rate(&self) -> f64 {
        let l = self.lookups();
        if l == 0 {
            return 0.0;
        }
        (self.memory_hits + self.disk_hits) as f64 / l as f64
    }
}

/// Configures and builds a [`ModelStore`]. Settings resolve with the
/// documented precedence: explicit builder setting > environment > default
/// (see [`crate::config`]).
#[derive(Debug)]
pub struct ModelStoreBuilder {
    capacity: usize,
    dir: DirSetting,
    lock_stale_after: Duration,
}

#[derive(Debug)]
enum DirSetting {
    /// Unset: fall back to `ASDR_STORE_DIR`.
    FromEnv,
    /// Explicitly disabled: in-memory only, regardless of the environment.
    Disabled,
    /// Explicit checkpoint directory.
    Path(PathBuf),
}

impl Default for ModelStoreBuilder {
    fn default() -> Self {
        ModelStoreBuilder {
            capacity: ModelStore::DEFAULT_CAPACITY,
            dir: DirSetting::FromEnv,
            lock_stale_after: ModelStore::DEFAULT_LOCK_STALE_AFTER,
        }
    }
}

impl ModelStoreBuilder {
    /// Maximum resident Ready entries before LRU eviction (clamped to >= 1;
    /// in-flight fits never count against capacity).
    #[must_use]
    pub fn capacity(mut self, n: usize) -> Self {
        self.capacity = n.max(1);
        self
    }

    /// Persists checkpoints under `dir` (created on first write). Takes
    /// precedence over `ASDR_STORE_DIR`.
    #[must_use]
    pub fn dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = DirSetting::Path(dir.into());
        self
    }

    /// Forces in-memory-only operation even when `ASDR_STORE_DIR` is set.
    #[must_use]
    pub fn in_memory_only(mut self) -> Self {
        self.dir = DirSetting::Disabled;
        self
    }

    /// Age past which another process's cold-fit lock file is presumed
    /// abandoned (its owner died mid-fit) and broken by a waiter, which then
    /// refits. Must exceed the longest expected fit, or two live processes
    /// will duplicate work (clamped to >= 1 ms).
    #[must_use]
    pub fn lock_stale_after(mut self, age: Duration) -> Self {
        self.lock_stale_after = age.max(Duration::from_millis(1));
        self
    }

    /// Builds the store.
    pub fn build(self) -> ModelStore {
        let dir = match self.dir {
            DirSetting::Path(p) => Some(p),
            DirSetting::Disabled => None,
            DirSetting::FromEnv => {
                config::resolve(None, config::env_store_dir().cloned().map(Some), None)
            }
        };
        ModelStore {
            inner: Mutex::new(Inner::default()),
            cond: Condvar::new(),
            capacity: self.capacity,
            dir,
            lock_stale_after: self.lock_stale_after,
            counters: Counters::new(&asdr_obs::Scope::instance("store")),
        }
    }
}

/// The persistent, versioned, checkpoint-backed model cache (see the module
/// docs for the full semantics).
#[derive(Debug)]
pub struct ModelStore {
    inner: Mutex<Inner>,
    cond: Condvar,
    capacity: usize,
    dir: Option<PathBuf>,
    lock_stale_after: Duration,
    counters: Counters,
}

/// What [`ModelStore::claim`] decided for a lookup.
enum Claim {
    /// Served from memory.
    Hit(Arc<NgpModel>),
    /// This caller now owns the in-flight marker and must publish or unwind.
    Fit {
        /// The key held a same-name entry from a *different* def; skip the
        /// disk layer (its checkpoint belongs to the other def).
        alias: bool,
    },
}

impl ModelStore {
    /// Default in-memory capacity (entries).
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Default [`ModelStoreBuilder::lock_stale_after`]: generous next to
    /// any real fit, small next to a wedged deployment.
    pub const DEFAULT_LOCK_STALE_AFTER: Duration = Duration::from_secs(120);

    /// How often a waiter blocked on another process's lock re-checks the
    /// disk for the published checkpoint.
    const LOCK_POLL: Duration = Duration::from_millis(15);

    /// Starts a builder.
    pub fn builder() -> ModelStoreBuilder {
        ModelStoreBuilder::default()
    }

    /// The checkpoint directory, if persistence is active.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Maximum resident entries before LRU eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The fitted model for `scene` under `grid`: memory, then disk, then a
    /// fresh [`fit_ngp`] — fitted at most once per key across all threads.
    pub fn get_or_fit(&self, scene: &SceneHandle, grid: &GridConfig) -> Arc<NgpModel> {
        self.get_or_fit_with(scene, grid, || fit_ngp(scene.build().as_ref(), grid))
    }

    /// Like [`ModelStore::get_or_fit`] with an injected fit function — the
    /// seam the concurrency tests use to observe and stall fits.
    pub fn get_or_fit_with(
        &self,
        scene: &SceneHandle,
        grid: &GridConfig,
        fit: impl FnOnce() -> NgpModel,
    ) -> Arc<NgpModel> {
        let key = StoreKey::new(scene.name(), grid);
        match self.claim(&key, scene) {
            Claim::Hit(m) => m,
            Claim::Fit { alias } => {
                // we own the in-flight marker; the guard unwinds it if the
                // fit panics so waiters retry instead of deadlocking
                let mut guard = InFlightGuard { store: self, key: &key, published: false };
                // an alias refit must not touch disk either way: a
                // checkpoint it wrote would be served as the *real* scene by
                // later processes (the name is the key)
                let model = if !alias && self.dir.is_some() {
                    match self.load_disk(&key, scene, grid, true) {
                        Some(m) => {
                            self.counters.disk_hits.inc();
                            m
                        }
                        None => self.fit_under_lock(&key, scene, grid, fit),
                    }
                } else {
                    self.counters.fits.inc();
                    Arc::new(fit())
                };
                self.publish(&key, scene, model.clone());
                guard.published = true;
                model
            }
        }
    }

    /// Runs a cold fit under the key's cross-process advisory lock file:
    /// acquire (or wait out) `<ckpt>.lock`, re-check the disk, fit, publish
    /// the checkpoint, unlock. A waiter that sees the checkpoint appear
    /// loads it instead of fitting; a stale lock (owner died) is broken and
    /// the waiter refits. Only called with a configured directory.
    fn fit_under_lock(
        &self,
        key: &StoreKey,
        scene: &SceneHandle,
        grid: &GridConfig,
        fit: impl FnOnce() -> NgpModel,
    ) -> Arc<NgpModel> {
        let lock = self
            .ckpt_path(key)
            .map(|p| p.with_extension("ckpt.lock"))
            .expect("caller checked dir.is_some()");
        let mut fit = Some(fit);
        let mut counted_wait = false;
        // local staleness clock: mtime can lie (clock skew across the
        // machines sharing the directory puts it in the future, where
        // elapsed() fails), so staleness also accrues from how long *we*
        // have watched this lock without a checkpoint appearing — the
        // degrade-to-refit guarantee must not depend on any remote clock
        let mut watching_since = std::time::Instant::now();
        loop {
            match try_lock(&lock) {
                TryLock::Acquired(_guard) => {
                    // the race window: another process may have published
                    // while we waited for (or raced to) the lock. Quiet
                    // load: the pre-lock attempt already counted any
                    // corruption, and a re-count per waiter poll would
                    // inflate disk_errors without new information.
                    if let Some(m) = self.load_disk(key, scene, grid, false) {
                        self.counters.disk_hits.inc();
                        return m;
                    }
                    self.counters.fits.inc();
                    let m = Arc::new(fit.take().expect("fit consumed at most once")());
                    self.save_disk(key, scene, &m);
                    return m; // _guard drop removes the lock file
                }
                TryLock::Busy { age } => {
                    let stale = age.is_some_and(|a| a > self.lock_stale_after)
                        || watching_since.elapsed() > self.lock_stale_after;
                    if stale {
                        // the owner is presumed dead mid-fit; break its lock
                        // and contend for a fresh one (create_new keeps this
                        // atomic). Restart the local clock: the next holder
                        // deserves a full staleness window.
                        let _ = std::fs::remove_file(&lock);
                        self.counters.lock_steals.inc();
                        watching_since = std::time::Instant::now();
                        continue;
                    }
                    if !counted_wait {
                        self.counters.lock_waits.inc();
                        counted_wait = true;
                    }
                    std::thread::sleep(Self::LOCK_POLL);
                    if let Some(m) = self.load_disk(key, scene, grid, false) {
                        self.counters.disk_hits.inc();
                        return m;
                    }
                }
                TryLock::Unavailable => {
                    // the directory refuses lock files (read-only,
                    // permissions): serve without cross-process dedup rather
                    // than not at all
                    self.counters.fits.inc();
                    let m = Arc::new(fit.take().expect("fit consumed at most once")());
                    self.save_disk(key, scene, &m);
                    return m;
                }
            }
        }
    }

    /// A statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        let resident = self.inner.lock().unwrap().ready_count();
        StoreStats {
            memory_hits: self.counters.memory_hits.get(),
            disk_hits: self.counters.disk_hits.get(),
            fits: self.counters.fits.get(),
            evictions: self.counters.evictions.get(),
            disk_errors: self.counters.disk_errors.get(),
            single_flight_waits: self.counters.single_flight_waits.get(),
            lock_waits: self.counters.lock_waits.get(),
            lock_steals: self.counters.lock_steals.get(),
            resident,
        }
    }

    /// Whether a Ready entry for this key is resident in memory.
    pub fn contains(&self, scene: &str, grid: &GridConfig) -> bool {
        let key = StoreKey::new(scene, grid);
        let inner = self.inner.lock().unwrap();
        matches!(inner.slots.get(&key), Some(Slot { state: SlotState::Ready(_), .. }))
    }

    /// Resolves a lookup to a memory hit or an owned in-flight marker,
    /// blocking while another caller fits the same key.
    fn claim(&self, key: &StoreKey, scene: &SceneHandle) -> Claim {
        let mut inner = self.inner.lock().unwrap();
        let mut waited = false;
        loop {
            let tick = inner.touch();
            enum Found {
                Hit(Arc<NgpModel>),
                InFlight,
                Alias,
                Missing,
            }
            let found = match inner.slots.get_mut(key) {
                Some(slot) => match &slot.state {
                    SlotState::Ready(m) if slot.handle.shares_def(scene) => {
                        slot.last_used = tick;
                        Found::Hit(m.clone())
                    }
                    SlotState::Ready(_) => Found::Alias,
                    SlotState::InFlight => Found::InFlight,
                },
                None => Found::Missing,
            };
            match found {
                Found::Hit(m) => {
                    self.counters.memory_hits.inc();
                    return Claim::Hit(m);
                }
                Found::InFlight => {
                    if !waited {
                        self.counters.single_flight_waits.inc();
                        waited = true;
                    }
                    inner = self.cond.wait(inner).unwrap();
                }
                alias @ (Found::Alias | Found::Missing) => {
                    let alias = matches!(alias, Found::Alias);
                    inner.slots.insert(
                        key.clone(),
                        Slot { state: SlotState::InFlight, handle: scene.clone(), last_used: tick },
                    );
                    return Claim::Fit { alias };
                }
            }
        }
    }

    /// Publishes a fitted model, evicts past capacity, and wakes waiters.
    fn publish(&self, key: &StoreKey, scene: &SceneHandle, model: Arc<NgpModel>) {
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.touch();
        inner.slots.insert(
            key.clone(),
            Slot { state: SlotState::Ready(model), handle: scene.clone(), last_used: tick },
        );
        // LRU eviction over Ready entries only — an in-flight fit must
        // never be dropped out from under its waiters
        while inner.ready_count() > self.capacity {
            let lru = inner
                .slots
                .iter()
                .filter(|(_, s)| matches!(s.state, SlotState::Ready(_)))
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
                .expect("ready_count > capacity >= 1 implies a ready entry");
            inner.slots.remove(&lru);
            self.counters.evictions.inc();
        }
        drop(inner);
        self.cond.notify_all();
    }

    /// The checkpoint path for a key.
    fn ckpt_path(&self, key: &StoreKey) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(ckpt_file_name(key)))
    }

    /// Tries the disk layer. Missing files are ordinary misses; corrupt,
    /// truncated, or stale checkpoints degrade to a refit and (when
    /// `count_errors`) count as [`StoreStats::disk_errors`] — the re-checks
    /// inside the lock protocol pass `false` so one bad file counts once.
    fn load_disk(
        &self,
        key: &StoreKey,
        scene: &SceneHandle,
        grid: &GridConfig,
        count_errors: bool,
    ) -> Option<Arc<NgpModel>> {
        let path = self.ckpt_path(key)?;
        let error = |counters: &Counters| {
            if count_errors {
                counters.disk_errors.inc();
            }
        };
        match io::load_model_file(&path) {
            Ok(ckpt) => {
                // trust the file only if its embedded metadata matches the
                // request: a renamed or re-scaled scene must refit
                if ckpt.scene.as_deref() == Some(scene.name())
                    && ckpt.model.encoder().config() == grid
                {
                    Some(Arc::new(ckpt.model))
                } else {
                    error(&self.counters);
                    None
                }
            }
            Err(LoadError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(_) => {
                error(&self.counters);
                None
            }
        }
    }

    /// Persists a fit (best effort: serving never fails on a full disk).
    ///
    /// Written to a temp file and renamed into place, so a concurrent
    /// process warming from the same directory can never read a torn
    /// checkpoint — it sees either the complete file or none at all.
    fn save_disk(&self, key: &StoreKey, scene: &SceneHandle, model: &NgpModel) {
        let Some(path) = self.ckpt_path(key) else { return };
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let write = || -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            io::save_model_file(model, scene.name(), &tmp)?;
            std::fs::rename(&tmp, &path)
        };
        if write().is_err() {
            let _ = std::fs::remove_file(&tmp);
            self.counters.disk_errors.inc();
        }
    }
}

/// One attempt to take a cross-process cold-fit lock.
enum TryLock {
    /// This process created the lock file; the guard removes it on drop
    /// (including on a fit panic, so other processes are not stuck waiting
    /// out the stale timeout).
    Acquired(LockFile),
    /// Another process holds the lock; `age` is the lock file's mtime age
    /// (`None` when the file vanished between create and stat).
    Busy { age: Option<Duration> },
    /// The directory refuses lock files entirely (read-only, permissions).
    Unavailable,
}

/// Atomically attempts to create `path` as this process's lock file.
fn try_lock(path: &Path) -> TryLock {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::OpenOptions::new().write(true).create_new(true).open(path) {
        Ok(mut f) => {
            // contents are diagnostic only; staleness runs on mtime
            let _ = writeln!(f, "pid {}", std::process::id());
            TryLock::Acquired(LockFile { path: path.to_path_buf() })
        }
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
            let age = std::fs::metadata(path)
                .ok()
                .and_then(|m| m.modified().ok())
                .and_then(|t| t.elapsed().ok());
            TryLock::Busy { age }
        }
        Err(_) => TryLock::Unavailable,
    }
}

/// An owned lock file, removed on drop. If another waiter already deemed
/// this lock stale and stole it, the removal may take out the stealer's
/// lock too — the next load-or-fit still converges, it just may duplicate
/// one fit (the documented stale-timeout trade).
struct LockFile {
    path: PathBuf,
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Unwinds an owned in-flight marker if the fit never published (panic in
/// the fit function), so blocked waiters retry instead of hanging forever.
struct InFlightGuard<'a> {
    store: &'a ModelStore,
    key: &'a StoreKey,
    published: bool,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        let mut inner = self.store.inner.lock().unwrap();
        if let Some(slot) = inner.slots.get(self.key) {
            if matches!(slot.state, SlotState::InFlight) {
                inner.slots.remove(self.key);
            }
        }
        drop(inner);
        self.store.cond.notify_all();
    }
}

/// Checkpoint file name: sanitized scene name + fingerprint. Name
/// collisions after sanitization are resolved by the scene-name check at
/// load time (the mismatching entry refits).
fn ckpt_file_name(key: &StoreKey) -> String {
    let safe: String = key
        .scene
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
        .collect();
    format!("{safe}-{}.ckpt", key.fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_configs() {
        assert_ne!(fingerprint(&GridConfig::tiny()), fingerprint(&GridConfig::small()));
        assert_eq!(fingerprint(&GridConfig::tiny()), fingerprint(&GridConfig::tiny()));
        let key_a = StoreKey::new("Mic", &GridConfig::tiny());
        let key_b = StoreKey::new("Mic", &GridConfig::small());
        assert_ne!(key_a, key_b, "same scene at two scales must not collide");
    }

    #[test]
    fn ckpt_names_are_filesystem_safe() {
        let key = StoreKey::new("weird scene/name:v2", &GridConfig::tiny());
        let name = ckpt_file_name(&key);
        assert!(!name.contains('/') && !name.contains(':') && !name.contains(' '), "{name}");
        assert!(name.ends_with(".ckpt"));
    }

    #[test]
    fn builder_clamps_capacity_and_honors_in_memory_only() {
        let store = ModelStore::builder().capacity(0).in_memory_only().build();
        assert_eq!(store.capacity(), 1);
        assert_eq!(store.dir(), None);
        let store = ModelStore::builder().dir("/tmp/asdr-store-test").build();
        assert_eq!(store.dir(), Some(Path::new("/tmp/asdr-store-test")));
    }
}
